#!/usr/bin/env python
"""Own or lease?  The §4.5.5 case study as a full decision analysis.

The paper compares the BJUT grid lab's owned 15-node cluster ($3,160/mo
all-in) against 30 always-on EC2 instances ($2,260/mo) and concludes SSP
is more cost-effective.  This example extends that single point to the
whole decision surface:

1. the lease-cost curve over duty level (instances billed only when busy);
2. the break-even EC2 price and duty level;
3. the 2009 reserved-instance crossover;
4. one-at-a-time sensitivity of the conclusion.

Run:  python examples/breakeven_analysis.py
"""

from repro.costmodel.breakeven import (
    breakeven_price,
    breakeven_utilization,
    reserved_crossover_hours,
    sensitivity_table,
    utilization_cost_curve,
)
from repro.costmodel.compare import paper_case_study
from repro.costmodel.pricing import EC2_2009_SMALL, EC2_2009_SMALL_RESERVED
from repro.costmodel.tco import BJUT_DCS_CASE, BJUT_SSP_CASE
from repro.experiments.report import render_table

# --- the paper's own numbers -------------------------------------------- #
case = paper_case_study()
print(f"Paper case study: {case}")
print(f"  (paper reports DCS $3,160/mo, SSP $2,260/mo, ratio 71.5%)\n")

# --- 1. duty-level curve ------------------------------------------------- #
print(render_table(
    utilization_cost_curve(BJUT_DCS_CASE, BJUT_SSP_CASE),
    title="Monthly cost by duty level (0.466 = NASA load, 0.762 = BLUE load)",
))

# --- 2. break-evens ------------------------------------------------------ #
u = breakeven_utilization(BJUT_DCS_CASE, BJUT_SSP_CASE)
p = breakeven_price(BJUT_DCS_CASE, BJUT_SSP_CASE)
print(f"\nBreak-even duty level: {'none — leasing wins even always-on' if u is None else f'{u:.1%}'}")
print(f"Break-even EC2 price:  ${p:.4f}/instance-hour "
      f"(2009 actual: ${EC2_2009_SMALL.usd_per_instance_hour:.2f} -> lease)")

# --- 3. reserved instances ----------------------------------------------- #
h = reserved_crossover_hours(EC2_2009_SMALL, EC2_2009_SMALL_RESERVED)
print(f"Reserved-instance crossover: {h:.0f} running hours per month "
      f"({h / 720:.0%} duty) — above this, reserve; below, stay on-demand.")

# --- 4. sensitivity ------------------------------------------------------ #
print()
print(render_table(
    [pt.to_row() for pt in sensitivity_table(BJUT_DCS_CASE, BJUT_SSP_CASE)],
    title="Sensitivity: SSP/DCS ratio under one-at-a-time perturbations",
))
print(
    "\nThe lease-vs-own conclusion survives halving/doubling energy cost and "
    "any depreciation schedule; only a ~3x cloud price increase flips it."
)
