#!/usr/bin/env python
"""The full paper, end to end: do service providers benefit from the
economies of scale?

Runs the complete §4 evaluation — three service providers (NASA iPSC batch
jobs, SDSC BLUE batch jobs, a Montage-1000 workflow) across the four
systems (DCS, SSP, DRP, DawningCloud) — and prints Tables 2-4 plus
Figures 12-14 with the paper's published values alongside.

This is the slowest example (~30 s: it simulates 4 × 2 weeks of cluster
operation).

Run:  python examples/economies_of_scale.py
"""

from repro.experiments.config import EvaluationSetup
from repro.experiments.figures import figure12_13_14
from repro.experiments.report import (
    render_consolidated,
    render_percentage_rows,
    render_table,
)
from repro.experiments.tables import table_from_consolidated
from repro.systems.consolidation import run_all_systems

setup = EvaluationSetup(seed=0)
print(
    f"simulating 3 service providers × 4 systems over "
    f"{setup.horizon / 86400:.0f} days (pool {setup.capacity} nodes)..."
)
result = run_all_systems(
    setup.bundles(consolidated=True),
    setup.policies,
    capacity=setup.capacity,
    horizon=setup.horizon,
)

for table_no, name, kind, paper in (
    (2, "nasa-ipsc", "htc", "paper: 43008 / 43008 / 54118 / 29014"),
    (3, "sdsc-blue", "htc", "paper: 48384 / 48384 / 35838 / 35201"),
    (4, "montage", "mtc", "paper: 166 / 166 / 662 / 166"),
):
    rows = render_percentage_rows(table_from_consolidated(result, name, kind))
    print(render_table(rows, title=f"Table {table_no}: {name} ({paper})"))

figures = figure12_13_14(setup, result=result)
print(render_consolidated(figures))

print("Headline comparisons (measured vs paper):")
print(
    f"  DawningCloud vs DCS/SSP total: "
    f"{result.savings_vs('DawningCloud', 'DCS'):+.1%} (paper +29.7%)"
)
print(
    f"  DawningCloud vs DRP total:     "
    f"{result.savings_vs('DawningCloud', 'DRP'):+.1%} (paper +29.0%)"
)
print(
    f"  peak ratio DawningCloud/DCS:   "
    f"{result.peak_ratio('DawningCloud', 'DCS'):.2f} (paper 1.06)"
)
print(
    f"  peak ratio DawningCloud/DRP:   "
    f"{result.peak_ratio('DawningCloud', 'DRP'):.2f} (paper 0.21)"
)
print(
    "\nConclusion (as in §4.5.6): with DawningCloud, MTC and HTC service\n"
    "providers and the resource provider all benefit from the economies of\n"
    "scale on the cloud platform."
)
