#!/usr/bin/env python
"""Capacity planning: how big a cloud does the resource provider need?

The paper's Figure 13 argument in executable form.  Peak resource
consumption decides how much hardware the resource provider must stand up;
this example measures, for the NASA trace:

* the *no-queue* demand profile (what a DRP cloud must absorb);
* the DawningCloud owned-resources profile under the paper's policy;
* how the all-or-nothing provision policy trades pool size against
  completion and cost.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.core.policies import ResourceManagementPolicy
from repro.experiments.config import nasa_bundle
from repro.systems.drp import run_drp
from repro.systems.dsp_runner import run_dawningcloud_htc
from repro.workloads.stats import no_queue_demand_series, summarize

HOUR = 3600.0

bundle = nasa_bundle(seed=0)
trace = bundle.trace
print(summarize(trace))

# --- the DRP view: no queueing, demand hits the provider raw ------------- #
demand = no_queue_demand_series(trace, step=60.0)
print("\nno-queue (DRP-style) demand on the provider:")
print(f"  mean {demand.mean():7.1f} nodes")
print(f"  p95  {np.percentile(demand, 95):7.1f} nodes")
print(f"  p99  {np.percentile(demand, 99):7.1f} nodes")
print(f"  peak {demand.max():7.1f} nodes  <- DRP capacity requirement")

drp = run_drp(bundle)
print(f"  simulated DRP peak: {drp.peak_nodes:.0f} nodes, "
      f"cost {drp.resource_consumption:.0f} node-hours")

# --- the DawningCloud view: queueing smooths the peak --------------------- #
policy = ResourceManagementPolicy.for_htc(40, 1.2)
print("\nDawningCloud pool-size trade-off (B=40, R=1.2):")
print("pool   peak   node-hours   completed")
for capacity in (150, 250, 420, 1000):
    m = run_dawningcloud_htc(bundle, policy, capacity=capacity)
    print(
        f"{capacity:4d}   {m.peak_nodes:4.0f}   {m.resource_consumption:10.0f}"
        f"   {m.completed_jobs:5d}/{len(trace)}"
    )

print(
    "\nReading: the dedicated system needs 128 nodes, a DRP cloud needs "
    f"{drp.peak_nodes:.0f},\nwhile DawningCloud's queue + threshold policy serves "
    "the same workload from a\nmuch smaller pool — the provider-side economy of "
    "scale (paper Figure 13)."
)
