#!/usr/bin/env python
"""Bring your own trace: run a real SWF log through the four systems.

The paper replays two Parallel Workloads Archive logs.  This environment
cannot download them, so the evaluation uses calibrated synthetic
stand-ins — but the library reads the archive's actual format (SWF,
Standard Workload Format), and this example shows the full path a user
with real data follows, **through the spec API**: the SWF file is just a
``swf`` workload component with a ``path`` parameter, crossed with the
four systems by one :class:`~repro.api.spec.ExperimentSpec`.

1. obtain an SWF file (here: we *write* one from a synthetic trace, so
   the example is self-contained — substitute any archive log);
2. declare the experiment: the ``swf`` workload × DCS/SSP/DRP/DawningCloud;
3. run it via :class:`~repro.api.run.Simulation` and print the
   Table-2-style comparison.

Run:  python examples/byo_trace.py [path/to/log.swf]
"""

import sys
import tempfile
from pathlib import Path

from repro.api import Simulation
from repro.experiments.report import render_table
from repro.workloads.stats import summarize
from repro.workloads.swf import parse_swf_file, write_swf
from repro.workloads.traces import generate_nasa_ipsc

# --- 1. an SWF file ------------------------------------------------------ #
if len(sys.argv) > 1:
    swf_path = Path(sys.argv[1])
else:
    # Self-contained: serialize the NASA stand-in to SWF, then treat the
    # file exactly as if it had come from the archive.
    swf_path = Path(tempfile.mkdtemp()) / "synthetic-nasa.swf"
    swf_path.write_text(write_swf(generate_nasa_ipsc(seed=0)))
    print(f"(no SWF given; wrote a synthetic one to {swf_path})\n")

trace = parse_swf_file(swf_path)  # a peek at what the spec will replay
print(f"parsed: {summarize(trace)}\n")

# --- 2. the experiment, as data ------------------------------------------ #
b = max(trace.machine_nodes // 3, 1)
spec = {
    "name": "byo-trace-four-ways",
    "workloads": [{"generator": "swf", "params": {"path": str(swf_path)}}],
    "systems": [
        "dcs",
        "ssp",
        {"runner": "drp", "params": {"capacity": 4 * trace.machine_nodes}},
        {"runner": "dawningcloud",
         "params": {"capacity": 4 * trace.machine_nodes},
         "policy": {"name": "paper-htc",
                    "params": {"initial_nodes": b, "threshold_ratio": 1.5}}},
    ],
}

# --- 3. run + report ------------------------------------------------------ #
results = Simulation(spec).run()
base = next(r for r in results if r.system == "dcs")
rows = [
    {
        "system": r.system,
        "node_hours": round(r.metrics["resource_consumption"]),
        "saved_vs_dcs": None if r.system == "dcs"
        else f"{1 - r.metrics['resource_consumption'] / base.metrics['resource_consumption']:.1%}",
        "completed_jobs": r.metrics["completed_jobs"],
        "peak_nodes": r.metrics["peak_nodes"],
    }
    for r in results
]
print(render_table(rows, title=f"Four systems on {trace.name!r}"))
print(
    "\nDrop any Parallel Workloads Archive .swf in place of the synthetic "
    "file to rerun\nthe paper's comparison on the real log — or write the "
    "same spec as TOML and use\n`repro-experiments run-spec` with no "
    "Python at all."
)
