#!/usr/bin/env python
"""Bring your own trace: run a real SWF log through the four systems.

The paper replays two Parallel Workloads Archive logs.  This environment
cannot download them, so the evaluation uses calibrated synthetic
stand-ins — but the library reads the archive's actual format (SWF,
Standard Workload Format), and this example shows the full path a user
with real data follows:

1. obtain an SWF file (here: we *write* one from a synthetic trace, so
   the example is self-contained — substitute any archive log);
2. parse it, normalize to one CPU per node (§4.4's normalization);
3. optionally rescale the load;
4. run DCS/SSP/DRP/DawningCloud and print the Table-2-style comparison.

Run:  python examples/byo_trace.py [path/to/log.swf]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.policies import ResourceManagementPolicy
from repro.experiments.report import render_table
from repro.experiments.runner import run_four_systems
from repro.systems.base import WorkloadBundle
from repro.workloads.stats import summarize
from repro.workloads.swf import parse_swf_file, write_swf
from repro.workloads.traces import generate_nasa_ipsc

# --- 1. an SWF file ------------------------------------------------------ #
if len(sys.argv) > 1:
    swf_path = Path(sys.argv[1])
else:
    # Self-contained: serialize the NASA stand-in to SWF, then treat the
    # file exactly as if it had come from the archive.
    swf_path = Path(tempfile.mkdtemp()) / "synthetic-nasa.swf"
    swf_path.write_text(write_swf(generate_nasa_ipsc(seed=0)))
    print(f"(no SWF given; wrote a synthetic one to {swf_path})\n")

# --- 2. parse + normalize ------------------------------------------------ #
trace = parse_swf_file(swf_path)
print(f"parsed: {summarize(trace)}\n")

# --- 3. bundle ------------------------------------------------------------ #
bundle = WorkloadBundle.from_trace(trace.name, trace)

# --- 4. the four systems -------------------------------------------------- #
policy = ResourceManagementPolicy.for_htc(
    initial_nodes=max(trace.machine_nodes // 3, 1), threshold_ratio=1.5
)
results = run_four_systems(bundle, policy, capacity=4 * trace.machine_nodes)
base = results["DCS"].resource_consumption
rows = [
    {
        "system": name,
        "node_hours": round(m.resource_consumption),
        "saved_vs_dcs": None if name == "DCS"
        else f"{1 - m.resource_consumption / base:.1%}",
        "completed_jobs": m.completed_jobs,
        "peak_nodes": m.peak_nodes,
    }
    for name, m in results.items()
]
print(render_table(rows, title=f"Four systems on {trace.name!r}"))
print(
    "\nDrop any Parallel Workloads Archive .swf in place of the synthetic "
    "file to rerun the paper's comparison on the real log."
)
