#!/usr/bin/env python
"""Policy comparison: the paper's B/R rule against adaptive alternatives.

The paper's conclusion (§6) promises an investigation of "the optimal
resource management and scheduling policies".  This example runs the NASA
iPSC trace under five resize policies at the same initial resources B=40:

* ``paper(B,R)``          — §3.2.2's threshold-ratio rule (R=1.2);
* ``demand-tracking``     — provision to the queue every scan;
* ``ewma-predictive``     — provision to a smoothed demand estimate;
* ``chunked-hysteresis``  — grow in 16-node instance groups;
* ``static``              — never resize (the SSP limit case).

The table prints cost (node-hours), throughput (completed jobs), lease
churn (adjusted nodes) and peak footprint, which is the whole design
space in four columns: aggressive growth buys throughput with churn,
smoothing trades a little throughput for calm, and the static TRE is
cheap but starves the trace's 128-node bursts.

Run:  python examples/policy_comparison.py
"""

from repro.core.adaptive import policy_catalog
from repro.experiments.ablations import run_htc_cloud
from repro.experiments.config import nasa_bundle
from repro.experiments.report import render_table
from repro.metrics.jobstats import compute_statistics

bundle = nasa_bundle(seed=0)

rows = []
for name, factory in policy_catalog("htc").items():
    policy = factory(40)
    metrics, cloud = run_htc_cloud(bundle, policy, capacity=420)
    stats = compute_statistics(cloud.tre(bundle.name).server.completed)
    rows.append(
        {
            "policy": name,
            "node_hours": round(metrics.resource_consumption),
            "completed_jobs": metrics.completed_jobs,
            "mean_wait_s": stats.to_row()["mean_wait_s"],
            "adjusted_nodes": metrics.adjusted_nodes,
            "peak_nodes": metrics.peak_nodes,
        }
    )

print(render_table(rows, title="NASA iPSC trace, B=40, capacity 420"))

paper_row = next(r for r in rows if r["policy"] == "paper(B,R)")
static_row = next(r for r in rows if r["policy"] == "static")
print(
    f"\nThe paper's rule completes {paper_row['completed_jobs']} jobs for "
    f"{paper_row['node_hours']} node-hours; a static B-node TRE saves "
    f"{1 - static_row['node_hours'] / paper_row['node_hours']:.0%} of the cost "
    f"but abandons {paper_row['completed_jobs'] - static_row['completed_jobs']} "
    f"jobs — dynamic resizing is what makes consolidation safe."
)
