#!/usr/bin/env python
"""Spec-API quickstart: compose an experiment from data, not code.

The five-minute tour of ``repro.api``:

1. every pluggable piece — workloads, systems, schedulers, policies,
   billing meters — lives in the component registry under a string key
   (``repro-experiments list-components``);
2. an :class:`~repro.api.spec.ExperimentSpec` names components and
   parameters: workloads × systems × seeds × sweep grids, pure data;
3. :class:`~repro.api.run.Simulation` materializes and runs it, returning
   structured results — and caches by the spec's content digest, so
   rerunning an unchanged spec is a JSON load;
4. the same dict as a TOML file runs with zero Python:
   ``repro-experiments run-spec examples/specs/minilab-four-ways.toml``.

Run:  python examples/spec_quickstart.py
"""

from repro.api import ExperimentSpec, Simulation, default_components, spec_digest

# --- 1. what is there to compose? ---------------------------------------- #
registry = default_components()
print("workloads: ", ", ".join(registry.names("workload")))
print("systems:   ", ", ".join(registry.names("system")))
print("schedulers:", ", ".join(registry.names("scheduler")))
print("meters:    ", ", ".join(registry.names("billing-meter")))

# --- 2. an experiment as data -------------------------------------------- #
# The paper's Table 2 question — does a NASA-like HTC provider benefit
# from the cloud? — plus a billing sweep the paper could not ask.
spec = ExperimentSpec.from_dict({
    "name": "nasa-billing-cross",
    "description": "NASA trace: four systems under two billing meters",
    "workloads": ["nasa-ipsc"],
    "systems": [
        "dcs",
        "drp",
        {"runner": "dawningcloud",
         "policy": {"name": "paper-htc",
                    "params": {"initial_nodes": 40, "threshold_ratio": 1.2}}},
    ],
    "sweep": {"billing.name": ["per-hour", "per-second"]},
})
print(f"\nspec digest (the cache key): {spec_digest(spec)}")

# --- 3. run it ------------------------------------------------------------ #
sim = Simulation(spec, seed=0)
results = sim.run()

print(f"\n{'system':14s} {'billing':11s} {'node-hours':>10s} {'completed':>9s}")
for r in results:
    billing = r.point.get("billing.name", "per-hour")
    print(
        f"{r.system:14s} {billing:11s} "
        f"{r.metrics['resource_consumption']:10.0f} "
        f"{r.metrics['completed_jobs']:9d}"
    )

dc_hr = next(r for r in results
             if r.system == "dawningcloud"
             and r.point["billing.name"] == "per-hour")
drp_hr = next(r for r in results
              if r.system == "drp" and r.point["billing.name"] == "per-hour")
saving = 1 - (dc_hr.metrics["resource_consumption"]
              / drp_hr.metrics["resource_consumption"])
print(
    f"\nUnder the paper's hourly meter DawningCloud saves {saving:.1%} vs "
    f"DRP;\nper-second billing erases DRP's hour-rounding penalty — most "
    f"of the DRP\ngap is billing granularity, which is exactly the kind of "
    f"question a\none-line sweep answers."
)
