#!/usr/bin/env python
"""Quickstart: consolidate an HTC and an MTC service provider on one cloud.

This is the five-minute tour of the public API:

1. generate workloads (a small synthetic batch trace + a fork-join workflow);
2. stand up a DawningCloud resource provider;
3. register service providers with their resource-management policies
   (initial resources B, threshold ratio R — §3.2.2 of the paper);
4. run and read the per-provider and provider-wide metrics.

Run:  python examples/quickstart.py
"""

from repro import DawningCloud, ResourceManagementPolicy
from repro.workloads.traces import HTCTraceSpec, generate_htc_trace
from repro.workloads.workflowgen import fork_join

HOUR = 3600.0

# --- 1. workloads ------------------------------------------------------- #
# A one-day, 32-node batch trace at 45% utilization...
batch_spec = HTCTraceSpec(
    name="lab-batch",
    machine_nodes=32,
    duration=24 * HOUR,
    n_jobs=300,
    target_utilization=0.45,
    size_pmf=((1, 0.4), (2, 0.25), (4, 0.2), (8, 0.1), (16, 0.04), (32, 0.01)),
    runtime_mixture=((0.7, 600.0, 0.8), (0.3, 3600.0, 0.5)),
)
batch_trace = generate_htc_trace(batch_spec, seed=42)

# ...and a 64-wide fork-join workflow submitted six hours in.
workflow = fork_join(width=64, mean_runtime=45.0, seed=42)
workflow.submit_time = 6 * HOUR
for task in workflow.tasks:
    task.submit_time = workflow.submit_time

# --- 2. the cloud platform ---------------------------------------------- #
cloud = DawningCloud(capacity=256)

# --- 3. service providers ----------------------------------------------- #
cloud.add_htc_provider("physics-lab", ResourceManagementPolicy.for_htc(8, 1.5))
cloud.add_mtc_provider(
    "astro-lab",
    ResourceManagementPolicy.for_mtc(4, 8.0),
    create_at=workflow.submit_time,  # TRE created on demand (§2.2)
)
cloud.submit_trace("physics-lab", batch_trace)
cloud.submit_workflow("astro-lab", workflow)

# --- 4. run & report ----------------------------------------------------- #
cloud.run(until=24 * HOUR)
cloud.shutdown()

print("=== per-service-provider metrics ===")
for name in ("physics-lab", "astro-lab"):
    m = cloud.provider_metrics(name, 24 * HOUR)
    line = (
        f"{name:12s} consumed {m.resource_consumption:6.0f} node-hours, "
        f"completed {m.completed_jobs}/{m.submitted_jobs} jobs, "
        f"peak {m.peak_nodes:.0f} nodes"
    )
    if m.tasks_per_second is not None:
        line += f", {m.tasks_per_second:.2f} tasks/s"
    print(line)

agg = cloud.resource_provider_metrics(24 * HOUR)
print("\n=== resource provider ===")
print(
    f"total consumption {agg.total_consumption:.0f} node-hours, "
    f"capacity-planning peak {agg.peak_nodes:.0f} nodes, "
    f"{agg.adjusted_nodes} node adjustments"
)
fixed_cost = 32 * 24 + 64 * 1  # what two dedicated clusters would have burned
print(
    f"two dedicated (DCS) systems would have owned {fixed_cost} node-hours "
    f"-> consolidation saves {1 - agg.total_consumption / fixed_cost:.1%}"
)
