#!/usr/bin/env python
"""TCO calculator: own a cluster (DCS) or lease a virtual one (SSP)?

Reproduces §4.5.5's Beijing-University-of-Technology case study and then
generalizes it: at what cluster size, electricity price, or cloud rate does
owning beat leasing?

Run:  python examples/tco_calculator.py
"""

from repro.costmodel.compare import compare_dcs_vs_ssp, paper_case_study
from repro.costmodel.pricing import EC2_2009_SMALL, InstancePricing
from repro.costmodel.tco import DCSCostModel, SSPCostModel

# --- the paper's case exactly -------------------------------------------- #
case = paper_case_study()
print("Paper case (BJUT grid lab, 15 dual-CPU nodes vs 30 EC2 instances):")
print(f"  DCS: ${case.dcs_tco_per_month:8,.0f} / month   (paper: $3,160)")
print(f"  SSP: ${case.ssp_tco_per_month:8,.0f} / month   (paper: $2,260)")
print(f"  SSP/DCS = {case.ssp_over_dcs:.1%}              (paper: 71.5%)")

# --- sensitivity: cloud price per instance-hour --------------------------- #
print("\nBreak-even cloud price (30 always-on instances, 1000 GB/mo inbound):")
print("$/instance-hour   SSP $/mo   cheaper option")
for rate in (0.06, 0.10, 0.14, 0.18, 0.22):
    pricing = InstancePricing("custom", rate, 0.10)
    ssp = SSPCostModel(pricing, n_instances=30, inbound_gb_per_month=1000)
    comparison = compare_dcs_vs_ssp(
        DCSCostModel(120_000, 8, 30_000, 1_600), ssp
    )
    winner = "SSP (lease)" if comparison.ssp_cheaper else "DCS (own)"
    print(f"{rate:15.2f}   {comparison.ssp_tco_per_month:8,.0f}   {winner}")

# --- sensitivity: utilization-aware leasing ------------------------------- #
# The fixed-size comparison assumes 24/7 instances.  A provider that leases
# only the hours it uses (the DSP model's point) pays far less:
print("\nWhat if the service provider paid only for used hours (DSP-style)?")
for utilization in (1.0, 0.75, 0.466, 0.25):
    hours = 720 * utilization
    cost = EC2_2009_SMALL.instance_cost(30, hours) + EC2_2009_SMALL.transfer_cost(
        1000
    )
    print(
        f"  {utilization:5.1%} busy -> ${cost:7,.0f} / month "
        f"({cost / case.dcs_tco_per_month:.0%} of owning)"
    )
print(
    "\nAt the NASA trace's 46.6% utilization, pay-per-hour leasing costs about\n"
    "a third of ownership — the economies of scale the paper's title asks about."
)
