#!/usr/bin/env python
"""The paper's MTC scenario: a Montage-1000 mosaic workflow, four ways.

Reproduces Table 4's comparison end to end through the spec API: the
same 1000-task Montage workflow (166 projections, 662 difference fits,
166 background corrections, 6 singleton stages; mean task runtime
11.38 s) is one ``montage`` workload component, crossed with:

* DCS — a dedicated 166-node cluster the organization owns;
* SSP — the same 166 nodes leased as a fixed virtual cluster;
* DRP — every ready task grabs an EC2-style instance immediately;
* DawningCloud — an on-demand MTC runtime environment with B=10, R=8.

Run:  python examples/montage_workflow.py
"""

from repro.api import Simulation
from repro.workloads.montage import MontageSpec, generate_montage

# --- inspect the workflow ------------------------------------------------ #
workflow = generate_montage(MontageSpec(), seed=0)
print(f"workflow: {workflow.name}")
print(f"  tasks:          {len(workflow.tasks)}")
print(f"  level widths:   {workflow.level_widths()}")
print(f"  mean runtime:   {workflow.mean_task_runtime():.2f} s (paper: 11.38 s)")
print(f"  critical path:  {workflow.critical_path_length():.0f} s")
print(f"  type census:    {workflow.type_census()}")

# --- the experiment, as data --------------------------------------------- #
paper_policy = {"name": "paper-mtc",
                "params": {"initial_nodes": 10, "threshold_ratio": 8.0}}
spec = {
    "name": "montage-four-ways",
    "workloads": ["montage"],  # Table 4's exact instance (the defaults)
    "systems": [
        "dcs",
        "ssp",
        "drp",
        {"runner": "dawningcloud", "policy": paper_policy},
    ],
}
results = {r.system: r.metrics for r in Simulation(spec, seed=0).run()}

print("\nsystem          node-hours   tasks/s   peak nodes   (paper node-hours)")
paper = {"dcs": 166, "ssp": 166, "drp": 662, "dawningcloud": 166}
for system, m in results.items():
    print(
        f"{system:14s}  {m['resource_consumption']:9.0f}"
        f"  {m['tasks_per_second']:8.2f}"
        f"  {m['peak_nodes']:10.0f}   ({paper[system]})"
    )

drp, dc = results["drp"], results["dawningcloud"]
saving = 1 - dc["resource_consumption"] / drp["resource_consumption"]
print(
    f"\nDawningCloud saves {saving:.1%} of the MTC service provider's cost "
    f"vs DRP (paper: 74.9%)"
)
print(
    "Why: under DRP the 662-wide mDiffFit level grabs 662 per-hour-billed\n"
    "instances at once, while DawningCloud's R=8 threshold keeps the TRE at\n"
    "the steady 166-node level and queues the diffs behind it."
)
