#!/usr/bin/env python
"""Federation (the paper's future work): n resource providers, m service
providers.

Section 6 closes with "the generalized case in that n resource providers
provision resources to m service providers of heterogeneous workloads".
This example places six heterogeneous service providers on one big cloud
vs. two half-size clouds and compares cost and capacity needs.

Run:  python examples/federated_clouds.py
"""

from repro.core.policies import ResourceManagementPolicy
from repro.federation.model import (
    FederatedResourceProvider,
    Federation,
    least_loaded_placement,
    round_robin_placement,
)
from repro.systems.base import WorkloadBundle
from repro.workloads.traces import HTCTraceSpec, generate_htc_trace
from repro.workloads.workflowgen import fork_join

HOUR = 3600.0


def make_htc_bundle(name, seed, utilization, nodes=32):
    spec = HTCTraceSpec(
        name=name,
        machine_nodes=nodes,
        duration=24 * HOUR,
        n_jobs=250,
        target_utilization=utilization,
        size_pmf=((1, 0.4), (2, 0.25), (4, 0.2), (8, 0.1), (16, 0.05)),
        runtime_mixture=((0.7, 900.0, 0.7), (0.3, 3600.0, 0.5)),
    )
    return WorkloadBundle.from_trace(name, generate_htc_trace(spec, seed=seed))


def make_mtc_bundle(name, seed, width):
    wf = fork_join(width=width, mean_runtime=60.0, seed=seed)
    wf.submit_time = 4 * HOUR
    for t in wf.tasks:
        t.submit_time = wf.submit_time
    return WorkloadBundle.from_workflow(name, wf, fixed_nodes=width // 4)


bundles = [
    make_htc_bundle("chem-lab", 1, 0.35),
    make_htc_bundle("bio-lab", 2, 0.55),
    make_htc_bundle("cs-lab", 3, 0.45),
    make_htc_bundle("physics-lab", 4, 0.25),
    make_mtc_bundle("astro-flow", 5, width=48),
    make_mtc_bundle("geo-flow", 6, width=24),
]
policies = {
    b.name: (
        ResourceManagementPolicy.for_htc(6, 1.5)
        if b.kind == "htc"
        else ResourceManagementPolicy.for_mtc(4, 8.0)
    )
    for b in bundles
}

print("six service providers, three federation layouts\n")
layouts = {
    "1 × 256-node cloud": [FederatedResourceProvider("mega", 256)],
    "2 × 128-node clouds (least-loaded)": [
        FederatedResourceProvider("east", 128),
        FederatedResourceProvider("west", 128),
    ],
    "2 × 128-node clouds (round-robin)": [
        FederatedResourceProvider("east", 128),
        FederatedResourceProvider("west", 128),
    ],
}
strategies = {
    "1 × 256-node cloud": least_loaded_placement,
    "2 × 128-node clouds (least-loaded)": least_loaded_placement,
    "2 × 128-node clouds (round-robin)": round_robin_placement,
}

for label, providers in layouts.items():
    federation = Federation(providers, policies)
    placement = federation.place(bundles, strategy=strategies[label])
    result = federation.run(bundles, placement=placement, horizon=24 * HOUR)
    completed = result.completed_jobs()
    print(f"{label}:")
    for pname, metrics in result.per_provider.items():
        members = sorted(b for b, t in placement.items() if t == pname)
        print(
            f"  {pname:5s} -> {metrics.total_consumption:7.0f} node-hours, "
            f"peak {metrics.peak_nodes:4.0f}  serving {', '.join(members)}"
        )
    print(
        f"  federation total: {result.total_consumption:.0f} node-hours, "
        f"summed peak {result.total_peak:.0f}, completed {completed} jobs\n"
    )

print(
    "Reading: when no cloud's pool is the binding constraint the layouts\n"
    "coincide — placement strategy only shifts which cloud pays the burst.\n"
    "Shrink the per-cloud capacities (or grow the workloads) and the\n"
    "all-or-nothing provision policy starts rejecting expansions, which is\n"
    "where single-big-cloud consolidation pulls ahead of the federation."
)
