#!/usr/bin/env python
"""Workflow zoo: the paper's MTC experiment across Pegasus workflow shapes.

Table 4 shows DawningCloud running Montage for 166 node-hours while the
DRP user pays 662 — a 74.9% saving.  How much of that is Montage's
particular shape?  This example generates the four other canonical
Pegasus workflows at the same scale (~1000 tasks, mean runtime 11.38 s)
and runs each through DCS/SSP, DRP and DawningCloud.

What to look for in the table:

* DawningCloud always tracks the demand-sized fixed system — the DSP
  model's dynamic sizing is shape-independent;
* the DRP penalty is NOT shape-independent: it needs a burst of ready
  tasks wider than the steady level (Montage's 662 mDiffFit), and
  shrinks to zero for DAGs whose wide stages release gradually.

Run:  python examples/workflow_zoo.py
"""

from repro.core.policies import ResourceManagementPolicy
from repro.experiments.config import montage_bundle
from repro.experiments.report import render_table
from repro.experiments.runner import run_four_systems
from repro.systems.base import WorkloadBundle
from repro.workloads.pegasus import PEGASUS_GENERATORS, PegasusSpec, generate_pegasus
from repro.workloads.workflow import Workflow

POLICY = ResourceManagementPolicy.for_mtc(initial_nodes=10, threshold_ratio=8.0)


def steady_width(wf: Workflow) -> int:
    """§4.4's sizing rule: the width of the work-dominant level."""
    return max(
        (sum(wf.task(j).runtime for j in level), len(level))
        for level in wf.levels()
    )[1]


bundles = [montage_bundle(seed=0)]
for name in sorted(PEGASUS_GENERATORS):
    wf = generate_pegasus(
        name, PegasusSpec(n_tasks_hint=1000, mean_runtime=11.38), seed=0
    )
    bundles.append(
        WorkloadBundle.from_workflow(name, wf, fixed_nodes=steady_width(wf))
    )

rows = []
for bundle in bundles:
    results = run_four_systems(bundle, POLICY, capacity=3000)
    dcs = results["DCS"].resource_consumption
    drp = results["DRP"].resource_consumption
    dc = results["DawningCloud"].resource_consumption
    rows.append(
        {
            "workflow": bundle.name,
            "tasks": bundle.n_jobs,
            "fixed_nodes": bundle.fixed_nodes,
            "dcs": round(dcs),
            "drp": round(drp),
            "dawningcloud": round(dc),
            "dc_vs_drp_saving": f"{1 - dc / drp:.1%}",
            "tasks_per_s": results["DawningCloud"].tasks_per_second,
        }
    )

print(render_table(rows, title="Four systems across the Pegasus family "
                               "(node-hours; MTC policy B=10 R=8)"))
print(
    "\nMontage's fan-out burst (662 short diffs from 166 projections) is what "
    "drives the paper's 74.9% saving over DRP; shapes without such a burst "
    "still cost DawningCloud no more than a right-sized dedicated machine."
)
