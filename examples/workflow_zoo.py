#!/usr/bin/env python
"""Workflow zoo: the paper's MTC experiment across Pegasus workflow shapes.

Table 4 shows DawningCloud running Montage for 166 node-hours while the
DRP user pays 662 — a 74.9% saving.  How much of that is Montage's
particular shape?  This example declares one
:class:`~repro.api.spec.ExperimentSpec` whose workloads are Montage plus
the four canonical Pegasus workflows at the same scale (~1000 tasks,
mean runtime 11.38 s) and whose systems are DCS, DRP and DawningCloud —
the whole zoo is the workloads × systems cross of a single spec.

What to look for in the table:

* DawningCloud always tracks the demand-sized fixed system — the DSP
  model's dynamic sizing is shape-independent;
* the DRP penalty is NOT shape-independent: it needs a burst of ready
  tasks wider than the steady level (Montage's 662 mDiffFit), and
  shrinks to zero for DAGs whose wide stages release gradually.

Run:  python examples/workflow_zoo.py
"""

from repro.api import Simulation
from repro.experiments.report import render_table
from repro.workloads.pegasus import PEGASUS_GENERATORS, PegasusSpec, generate_pegasus
from repro.workloads.workflow import Workflow


def steady_width(wf: Workflow) -> int:
    """§4.4's sizing rule: the width of the work-dominant level."""
    return max(
        (sum(wf.task(j).runtime for j in level), len(level))
        for level in wf.levels()
    )[1]


# §4.4 sizes each DCS machine to its workflow's steady level; that number
# comes from the DAG, so compute it per family and put it in the spec.
workloads = [{"generator": "montage", "label": "montage"}]
for name in sorted(PEGASUS_GENERATORS):
    wf = generate_pegasus(
        name, PegasusSpec(n_tasks_hint=1000, mean_runtime=11.38), seed=0
    )
    workloads.append({
        "generator": "pegasus",
        "label": name,
        "params": {"family": name, "n_tasks": 1000, "mean_runtime": 11.38,
                   "fixed_nodes": steady_width(wf)},
    })

paper_policy = {"name": "paper-mtc",
                "params": {"initial_nodes": 10, "threshold_ratio": 8.0}}
spec = {
    "name": "workflow-zoo",
    "workloads": workloads,
    "systems": [
        {"runner": "dcs"},
        {"runner": "ssp"},
        {"runner": "drp"},
        {"runner": "dawningcloud",
         "params": {"capacity": 3000}, "policy": paper_policy},
    ],
}

results = Simulation(spec, seed=0).run()
by_workload: dict[str, dict] = {}
for r in results:
    by_workload.setdefault(r.workload, {})[r.system] = r.metrics

rows = []
for workload, systems in by_workload.items():
    dcs = systems["dcs"]["resource_consumption"]
    drp = systems["drp"]["resource_consumption"]
    dc = systems["dawningcloud"]["resource_consumption"]
    rows.append(
        {
            "workflow": workload,
            "tasks": systems["dcs"]["submitted_jobs"],
            "dcs": round(dcs),
            "drp": round(drp),
            "dawningcloud": round(dc),
            "dc_vs_drp_saving": f"{1 - dc / drp:.1%}",
            "tasks_per_s": round(systems["dawningcloud"]["tasks_per_second"], 2),
        }
    )

print(render_table(rows, title="Four systems across the Pegasus family "
                               "(node-hours; MTC policy B=10 R=8)"))
print(
    "\nMontage's fan-out burst (662 short diffs from 166 projections) is what "
    "drives the paper's 74.9% saving over DRP; shapes without such a burst "
    "still cost DawningCloud no more than a right-sized dedicated machine."
)
