"""Tests for the cost-aware DRP pooling variants (systems.drp extension)."""

import pytest

from repro.core.policies import ResourceManagementPolicy
from repro.experiments.ablations import drp_pooling_ablation
from repro.systems.base import WorkloadBundle
from repro.systems.drp import run_drp, run_drp_pooled
from repro.workloads.job import Job, Trace

HOUR = 3600.0

#: whole-simulation tests: excluded from the fast tier
pytestmark = pytest.mark.slow



def _reuse_friendly_trace() -> WorkloadBundle:
    """One user submits back-to-back same-size short jobs: ideal for reuse."""
    jobs = [
        Job(job_id=i + 1, submit_time=700.0 * i, size=4, runtime=600.0,
            user_id=0)
        for i in range(20)
    ]
    trace = Trace("reuse", jobs, machine_nodes=16, duration=6 * HOUR)
    return WorkloadBundle.from_trace("reuse", trace)


def _scattered_users_trace() -> WorkloadBundle:
    """Every job from a different user: per-user pooling can never reuse."""
    jobs = [
        Job(job_id=i + 1, submit_time=700.0 * i, size=4, runtime=600.0,
            user_id=i)
        for i in range(20)
    ]
    trace = Trace("scattered", jobs, machine_nodes=16, duration=6 * HOUR)
    return WorkloadBundle.from_trace("scattered", trace)


class TestPooledRuns:
    def test_reuse_cuts_cost_for_back_to_back_jobs(self):
        bundle = _reuse_friendly_trace()
        naive = run_drp(bundle)
        pooled = run_drp_pooled(bundle)
        # naive: 20 jobs x 4 nodes x 1 started hour = 80 node-hours;
        # pooled: ~6 jobs/hour chain onto the same 4 nodes
        assert naive.resource_consumption == 80.0
        assert pooled.resource_consumption < 0.5 * naive.resource_consumption

    def test_per_user_pooling_useless_across_users(self):
        bundle = _scattered_users_trace()
        naive = run_drp(bundle)
        pooled = run_drp_pooled(bundle)
        assert pooled.resource_consumption >= naive.resource_consumption

    def test_shared_pool_rescues_scattered_users(self):
        bundle = _scattered_users_trace()
        shared = run_drp_pooled(bundle, shared=True)
        naive = run_drp(bundle)
        assert shared.resource_consumption < 0.5 * naive.resource_consumption

    def test_all_variants_complete_everything(self):
        for bundle in (_reuse_friendly_trace(), _scattered_users_trace()):
            for m in (
                run_drp(bundle),
                run_drp_pooled(bundle),
                run_drp_pooled(bundle, shared=True),
            ):
                assert m.completed_jobs == 20

    def test_system_labels(self):
        bundle = _reuse_friendly_trace()
        assert run_drp_pooled(bundle).system == "DRP-pooled"
        assert run_drp_pooled(bundle, shared=True).system == "DRP-shared-pool"

    def test_mtc_bundle_rejected(self):
        from repro.workloads.montage import MontageSpec, generate_montage

        wf = generate_montage(MontageSpec(n_images=4, n_diffs=6), seed=0)
        bundle = WorkloadBundle.from_workflow("m", wf, fixed_nodes=4)
        with pytest.raises(ValueError, match="HTC"):
            run_drp_pooled(bundle)


class TestPoolingLadder:
    def test_ladder_rows(self):
        bundle = _scattered_users_trace()
        rows = drp_pooling_ablation(
            bundle, ResourceManagementPolicy.for_htc(4, 1.5), capacity=64
        )
        assert [r["strategy"] for r in rows] == [
            "DRP (per-job leases)",
            "DRP + per-user pool",
            "DRP + shared pool",
            "DawningCloud",
        ]
        assert rows[0]["saving_vs_naive_drp"] == 0.0

    def test_sharing_beats_per_user_on_scattered_trace(self):
        bundle = _scattered_users_trace()
        rows = drp_pooling_ablation(
            bundle, ResourceManagementPolicy.for_htc(4, 1.5), capacity=64
        )
        by = {r["strategy"]: r for r in rows}
        assert (
            by["DRP + shared pool"]["saving_vs_naive_drp"]
            > by["DRP + per-user pool"]["saving_vs_naive_drp"]
        )
