"""Edge-case tests for the usage time series (metrics.timeseries)."""

import numpy as np
import pytest

from repro.metrics.timeseries import UsageRecorder, merge_usage

HOUR = 3600.0


class TestLevelSteps:
    def test_simultaneous_events_merge(self):
        rec = UsageRecorder()
        rec.record(10.0, 5)
        rec.record(10.0, -2)
        times, levels = rec.level_steps()
        assert times.tolist() == [10.0]
        assert levels.tolist() == [3.0]

    def test_out_of_order_recording_is_sorted(self):
        rec = UsageRecorder()
        rec.record(100.0, 2)
        rec.record(50.0, 4)
        times, levels = rec.level_steps()
        assert times.tolist() == [50.0, 100.0]
        assert levels.tolist() == [4.0, 6.0]

    def test_zero_delta_ignored(self):
        rec = UsageRecorder()
        rec.record(5.0, 0)
        assert rec.events == []
        assert rec.current_level() == 0


class TestIntegral:
    def test_rectangle(self):
        rec = UsageRecorder()
        rec.record(0.0, 10)
        rec.record(100.0, -10)
        assert rec.integral_node_seconds(200.0) == 1000.0

    def test_horizon_truncates(self):
        rec = UsageRecorder()
        rec.record(0.0, 10)
        assert rec.integral_node_seconds(50.0) == 500.0

    def test_staircase(self):
        rec = UsageRecorder()
        rec.record(0.0, 4)     # [0,10): 4
        rec.record(10.0, 4)    # [10,20): 8
        rec.record(20.0, -8)   # after: 0
        assert rec.integral_node_seconds(30.0) == 4 * 10 + 8 * 10

    def test_empty_is_zero(self):
        assert UsageRecorder().integral_node_seconds(100.0) == 0.0


class TestHourlyPeaks:
    def test_peak_carried_across_hour_boundaries(self):
        rec = UsageRecorder()
        rec.record(0.5 * HOUR, 10)  # rises mid hour 0, stays up
        peaks = rec.hourly_peak_series(3 * HOUR)
        assert peaks.tolist() == [10.0, 10.0, 10.0]

    def test_spike_only_counts_in_its_hour(self):
        rec = UsageRecorder()
        rec.record(1.5 * HOUR, 20)
        rec.record(1.6 * HOUR, -20)
        peaks = rec.hourly_peak_series(3 * HOUR)
        assert peaks.tolist() == [0.0, 20.0, 0.0]

    def test_partial_last_hour(self):
        rec = UsageRecorder()
        rec.record(0.0, 3)
        peaks = rec.hourly_peak_series(1.5 * HOUR)
        assert len(peaks) == 2
        assert peaks.tolist() == [3.0, 3.0]

    def test_overall_peak(self):
        rec = UsageRecorder()
        rec.record(10.0, 7)
        rec.record(20.0, 5)
        rec.record(30.0, -12)
        assert rec.peak(HOUR) == 12.0


class TestMerge:
    def test_merged_level_is_sum(self):
        a, b = UsageRecorder("a"), UsageRecorder("b")
        a.record(0.0, 5)
        b.record(0.0, 3)
        b.record(50.0, -3)
        merged = merge_usage([a, b])
        _, levels = merged.level_steps()
        assert levels.tolist() == [8.0, 5.0]

    def test_merged_integral_is_additive(self):
        a, b = UsageRecorder("a"), UsageRecorder("b")
        a.record(0.0, 2)
        b.record(10.0, 4)
        merged = merge_usage([a, b])
        assert merged.integral_node_seconds(100.0) == pytest.approx(
            a.integral_node_seconds(100.0) + b.integral_node_seconds(100.0)
        )

    def test_merged_peak_never_exceeds_sum_of_peaks(self):
        a, b = UsageRecorder("a"), UsageRecorder("b")
        a.record(0.0, 5)
        a.record(10.0, -5)
        b.record(20.0, 7)  # peaks do not overlap in time
        merged = merge_usage([a, b])
        assert merged.peak(HOUR) == 7.0
        assert merged.peak(HOUR) <= a.peak(HOUR) + b.peak(HOUR)


class TestIncrementalMatchesVectorized:
    """The in-order fast path must be indistinguishable from the numpy path."""

    def _pair(self, events):
        """Same events fed in order (fast path) and shuffled (numpy path)."""
        fast = UsageRecorder("fast")
        for t, d in events:
            fast.record(t, d)
        slow = UsageRecorder("slow")
        for t, d in reversed(events):  # reversed feed forces the fallback
            slow.record(t, d)
        if len(events) > 1:
            assert not slow._sorted
        return fast, slow

    @pytest.mark.parametrize("seed", range(6))
    def test_random_sequences_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 120))
        times = np.sort(rng.uniform(0, 10 * HOUR, size=n))
        if seed % 2:
            times = np.round(times / 600) * 600  # force simultaneous events
        events = []
        level = 0
        for t in times:
            delta = int(rng.integers(-3, 8))
            delta = max(delta, -level) or 1
            level += delta
            events.append((float(t), delta))
        fast, slow = self._pair(events)
        horizon = float(times[-1] + float(rng.uniform(0, 2 * HOUR)))
        f_times, f_levels = fast.level_steps()
        s_times, s_levels = slow.level_steps()
        assert np.array_equal(f_times, s_times)
        assert np.array_equal(f_levels, s_levels)
        assert np.array_equal(
            fast.hourly_peak_series(horizon), slow.hourly_peak_series(horizon)
        )
        assert fast.peak(horizon) == slow.peak(horizon)
        assert fast.integral_node_seconds(horizon) == pytest.approx(
            slow.integral_node_seconds(horizon), rel=1e-12
        )
        mid = horizon / 3  # horizon inside the recorded span
        assert fast.integral_node_seconds(mid) == pytest.approx(
            slow.integral_node_seconds(mid), rel=1e-12
        )
        assert np.array_equal(
            fast.hourly_peak_series(mid), slow.hourly_peak_series(mid)
        )

    def test_simultaneous_cancel_does_not_pollute_peak(self):
        rec = UsageRecorder()
        rec.record(10.0, 5)
        rec.record(100.0, 50)   # transient...
        rec.record(100.0, -50)  # ...net zero at the same instant
        rec.record(200.0, 1)
        assert rec.peak(HOUR) == 6.0
