"""Tests for usage time series, accounting formulas and result records."""

import pytest

from repro.metrics.accounting import (
    dcs_consumption_node_hours,
    drp_htc_consumption_node_hours,
    savings_vs_baseline,
    work_node_hours,
)
from repro.metrics.overhead import ManagementOverhead
from repro.metrics.results import ProviderMetrics, ResourceProviderMetrics
from repro.metrics.timeseries import UsageRecorder, merge_usage
from tests.conftest import make_job, make_trace

HOUR = 3600.0


class TestUsageRecorder:
    def test_integral_of_step_function(self):
        rec = UsageRecorder()
        rec.record(0.0, 10)
        rec.record(100.0, -4)
        rec.record(200.0, -6)
        assert rec.integral_node_seconds(300.0) == pytest.approx(
            10 * 100 + 6 * 100
        )

    def test_integral_extends_open_level_to_horizon(self):
        rec = UsageRecorder()
        rec.record(0.0, 5)
        assert rec.integral_node_seconds(100.0) == pytest.approx(500)

    def test_hourly_peak_series(self):
        rec = UsageRecorder()
        rec.record(0.0, 3)
        rec.record(1800.0, 7)  # peak 10 inside hour 0
        rec.record(1900.0, -7)
        rec.record(2 * HOUR + 10, -3)
        peaks = rec.hourly_peak_series(3 * HOUR)
        assert list(peaks) == [10, 3, 3]

    def test_peak(self):
        rec = UsageRecorder()
        rec.record(10.0, 4)
        rec.record(20.0, 8)
        rec.record(30.0, -12)
        assert rec.peak(HOUR) == 12

    def test_simultaneous_events_merge(self):
        rec = UsageRecorder()
        rec.record(10.0, 5)
        rec.record(10.0, -5)
        times, levels = rec.level_steps()
        assert list(levels) == [0]

    def test_zero_delta_ignored(self):
        rec = UsageRecorder()
        rec.record(1.0, 0)
        assert rec.events == []

    def test_empty_recorder(self):
        rec = UsageRecorder()
        assert rec.integral_node_seconds(100.0) == 0.0
        assert rec.peak(HOUR) == 0.0

    def test_current_level(self):
        rec = UsageRecorder()
        rec.record(0.0, 4)
        rec.record(1.0, -1)
        assert rec.current_level() == 3

    def test_merge(self):
        a, b = UsageRecorder("a"), UsageRecorder("b")
        a.record(0.0, 3)
        b.record(0.0, 4)
        merged = merge_usage([a, b])
        assert merged.peak(HOUR) == 7


class TestAccountingFormulas:
    def test_dcs_nasa_number(self):
        assert dcs_consumption_node_hours(128, 336 * HOUR) == 43008

    def test_dcs_montage_number(self):
        # a few-hundred-second makespan rounds to one hour
        assert dcs_consumption_node_hours(166, 410.0) == 166

    def test_dcs_blue_number(self):
        assert dcs_consumption_node_hours(144, 336 * HOUR) == 48384

    def test_drp_closed_form(self):
        trace = make_trace(
            [make_job(1, size=4, runtime=100), make_job(2, size=2, runtime=HOUR + 1)],
            duration=3 * HOUR,
        )
        # 4×1 + 2×2
        assert drp_htc_consumption_node_hours(trace) == 8

    def test_work_node_hours(self):
        trace = make_trace([make_job(1, size=2, runtime=HOUR)], duration=2 * HOUR)
        assert work_node_hours(trace) == pytest.approx(2.0)

    def test_savings_sign_convention(self):
        assert savings_vs_baseline(70, 100) == pytest.approx(0.3)
        assert savings_vs_baseline(130, 100) == pytest.approx(-0.3)

    def test_savings_needs_positive_baseline(self):
        with pytest.raises(ValueError):
            savings_vs_baseline(1, 0)


class TestOverhead:
    def test_totals(self):
        oh = ManagementOverhead("DawningCloud")
        oh.add(100)
        assert oh.adjusted_nodes == 100
        assert oh.total_overhead_s == pytest.approx(1574.3)

    def test_per_hour(self):
        oh = ManagementOverhead("x", adjusted_nodes=200)
        assert oh.overhead_s_per_hour(2 * HOUR) == pytest.approx(
            200 * 15.743 / 2
        )


class TestResultRecords:
    def _provider(self, name, cons, peak):
        usage = UsageRecorder(name)
        usage.record(0.0, int(peak))
        usage.record(HOUR, -int(peak))
        return ProviderMetrics(
            provider=name,
            system="X",
            workload=name,
            resource_consumption=cons,
            completed_jobs=10,
            submitted_jobs=10,
            peak_nodes=peak,
            usage=usage,
        )

    def test_aggregate_sums_consumption_and_peaks(self):
        providers = [self._provider("a", 100, 5), self._provider("b", 50, 7)]
        agg = ResourceProviderMetrics.from_providers("X", providers, 2 * HOUR)
        assert agg.total_consumption == 150
        assert agg.peak_nodes == 12  # capacity-planning sum
        assert agg.concurrent_peak_nodes == 12  # both in hour 0 here

    def test_to_row_shapes(self):
        p = self._provider("a", 100.04, 5)
        row = p.to_row()
        assert row["resource_consumption"] == 100.0
        agg = ResourceProviderMetrics.from_providers("X", [p], HOUR)
        assert set(agg.to_row()) == {
            "system",
            "total_consumption",
            "peak_nodes",
            "concurrent_peak_nodes",
            "adjusted_nodes",
        }
