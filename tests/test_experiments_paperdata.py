"""Tests for the published-values module (experiments.paperdata)."""

import pytest

from repro.experiments.paperdata import (
    CHOSEN_PARAMETERS,
    CONSOLIDATED_CLAIMS,
    HEADLINE,
    PAPER_TABLES,
    TABLE2_NASA,
    TABLE3_BLUE,
    TABLE4_MONTAGE,
    TCO_CLAIMS,
    check_headline_shapes,
    check_table_shapes,
)


class TestConstants:
    def test_tables_internally_consistent(self):
        """Published 'saved resources' percentages match the consumptions."""
        for table in (TABLE2_NASA, TABLE3_BLUE, TABLE4_MONTAGE):
            dcs = table[0].resource_consumption
            for row in table[1:]:
                expected = 1.0 - row.resource_consumption / dcs
                assert row.saved_resources == pytest.approx(expected, abs=0.002), row

    def test_tco_ratio_matches(self):
        assert (
            TCO_CLAIMS.ssp_tco_per_month / TCO_CLAIMS.dcs_tco_per_month
        ) == pytest.approx(TCO_CLAIMS.ssp_over_dcs, abs=0.001)

    def test_headline_savings_recoverable_from_tables(self):
        # 46.4% HTC max vs DRP is NASA: 1 - 29014/54118
        nasa = {r.system: r.resource_consumption for r in TABLE2_NASA}
        assert 1 - nasa["DawningCloud"] / nasa["DRP"] == pytest.approx(
            HEADLINE["max_htc_saving_vs_drp"], abs=0.001
        )
        mont = {r.system: r.resource_consumption for r in TABLE4_MONTAGE}
        assert 1 - mont["DawningCloud"] / mont["DRP"] == pytest.approx(
            HEADLINE["max_mtc_saving_vs_drp"], abs=0.001
        )

    def test_chosen_parameters_cover_all_workloads(self):
        assert set(CHOSEN_PARAMETERS) == {"nasa-ipsc", "sdsc-blue", "montage"}

    def test_table_registry(self):
        assert set(PAPER_TABLES) == {"table2", "table3", "table4"}


class TestTableShapeChecks:
    def test_published_values_pass_their_own_checks(self):
        for tid, table in PAPER_TABLES.items():
            measured = {r.system: r.resource_consumption for r in table}
            assert check_table_shapes(tid, measured) == []

    def test_nasa_violation_detected(self):
        measured = {"DCS": 43008, "SSP": 43008, "DRP": 40000,
                    "DawningCloud": 29014}
        v = check_table_shapes("table2", measured)
        assert any("DRP must cost MORE" in msg for msg in v)

    def test_fixed_systems_must_agree(self):
        measured = {"DCS": 100, "SSP": 101, "DRP": 200, "DawningCloud": 80}
        v = check_table_shapes("table2", measured)
        assert any("identically" in msg for msg in v)

    def test_montage_equality_enforced(self):
        measured = {"DCS": 166, "SSP": 166, "DRP": 662, "DawningCloud": 170}
        v = check_table_shapes("table4", measured)
        assert any("equal the fixed system" in msg for msg in v)


class TestHeadlineShapeChecks:
    def _good(self):
        totals = {"DCS": 91558, "SSP": 91558, "DRP": 90618,
                  "DawningCloud": 64381}
        peaks = {"DCS": 438, "SSP": 438, "DRP": 2100, "DawningCloud": 464}
        adjustments = {"SSP": 876, "DawningCloud": 5000, "DRP": 20000,
                       "DCS": 0}
        return totals, peaks, adjustments

    def test_paper_claims_pass(self):
        totals, peaks, adjustments = self._good()
        assert check_headline_shapes(totals, peaks, adjustments) == []

    def test_each_violation_detected(self):
        totals, peaks, adjustments = self._good()
        bad_totals = dict(totals, DawningCloud=95000)
        assert check_headline_shapes(bad_totals, peaks, adjustments)
        bad_peaks = dict(peaks, DawningCloud=1500)
        assert check_headline_shapes(totals, bad_peaks, adjustments)
        bad_adj = dict(adjustments, SSP=10_000)
        assert check_headline_shapes(totals, peaks, bad_adj)

    def test_consolidated_claim_constants(self):
        assert CONSOLIDATED_CLAIMS.dc_peak_over_fixed == 1.06
        assert CONSOLIDATED_CLAIMS.adjustment_order == (
            "SSP", "DawningCloud", "DRP",
        )
