"""Tests for the EXPERIMENTS.md generator's rendering helpers.

The full render reruns the complete evaluation (it is exercised by the
repository's own EXPERIMENTS.md and the CLI); these tests pin the cheap,
pure rendering pieces.
"""

from repro.experiments.expmd import _md_table, _pct, _verdict


class TestMdTable:
    def test_basic_layout(self):
        text = _md_table(("a", "b"), ((1, 2), (3, None)))
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert lines[3] == "| 3 | — |"

    def test_float_formatting(self):
        text = _md_table(("x",), ((2.494999,), (43008.0,)))
        assert "2.49" in text
        assert "43,008" in text


class TestVerdict:
    def test_clean(self):
        assert "all published shapes hold" in _verdict([])

    def test_violations_listed(self):
        out = _verdict(["first", "second"])
        assert "VIOLATIONS" in out and "first; second" in out


class TestPct:
    def test_none_is_dash(self):
        assert _pct(None) == "—"

    def test_value(self):
        assert _pct(0.325) == "32.5%"
        assert _pct(-0.258) == "-25.8%"


def test_repository_experiments_md_up_to_date_header():
    """The checked-in EXPERIMENTS.md is this module's output format."""
    from pathlib import Path

    import pytest

    path = Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
    if not path.is_file():
        pytest.skip(
            "EXPERIMENTS.md not present in this checkout; regenerate it with "
            "`python -m repro.experiments.expmd --out EXPERIMENTS.md`"
        )
    text = path.read_text()
    assert text.startswith("# EXPERIMENTS — paper vs. measured")
    assert "Shape check" in text
    assert "experiments-md" in text
