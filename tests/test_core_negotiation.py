"""Tests for the dynamic resource negotiation mechanism (§3.2.1)."""

import pytest

from repro.cluster.provision import ResourceProvisionService
from repro.core.negotiation import DynamicResourceManager
from repro.core.policies import ResourceManagementPolicy
from repro.core.servers import REServer
from repro.scheduling.firstfit import FirstFitScheduler
from tests.conftest import make_job

HOUR = 3600.0


def build(engine, capacity=100, B=4, R=1.5, scan=60.0):
    provision = ResourceProvisionService(capacity)
    server = REServer(engine, "tre", FirstFitScheduler(), scan)
    policy = ResourceManagementPolicy(B, R, scan)
    manager = DynamicResourceManager(engine, server, provision, policy)
    return provision, server, manager


class TestStartup:
    def test_initial_resources_acquired(self, engine):
        provision, server, manager = build(engine, B=4)
        manager.start()
        assert server.owned == 4
        assert provision.allocated_nodes("tre") == 4
        assert manager.initial_lease.kind == "initial"

    def test_double_start_rejected(self, engine):
        _, _, manager = build(engine)
        manager.start()
        with pytest.raises(RuntimeError):
            manager.start()

    def test_start_fails_when_pool_too_small(self, engine):
        _, _, manager = build(engine, capacity=2, B=4)
        with pytest.raises(RuntimeError):
            manager.start()


class TestDr1Expansion:
    def test_queue_pressure_triggers_dr1(self, engine):
        provision, server, manager = build(engine, B=4, R=1.5)
        manager.start()
        # queue demand 10 on owned 4: ratio 2.5 > 1.5 -> DR1 = 6
        for i in range(5):
            server.submit_job(make_job(i + 1, size=2, runtime=HOUR * 3))
        engine.run(until=60.0)  # first scan
        assert server.owned == 10
        assert manager.dynamic_grants == 1

    def test_no_expansion_below_threshold(self, engine):
        provision, server, manager = build(engine, B=8, R=1.5)
        manager.start()
        server.submit_job(make_job(1, size=6, runtime=HOUR))
        engine.run(until=60.0)
        assert server.owned == 8  # ratio 0.75, nothing requested

    def test_rejection_counted_and_server_continues(self, engine):
        provision, server, manager = build(engine, capacity=6, B=4, R=1.0)
        manager.start()
        for i in range(6):
            server.submit_job(make_job(i + 1, size=2, runtime=100.0))
        engine.run(until=60.0)
        # DR1 = 12 - 4 = 8 > free 2: rejected; jobs still run on the 4 owned
        assert manager.dynamic_rejections >= 1
        assert server.owned == 4
        engine.run(until=1200.0)
        assert server.completed_count == 6


class TestDr2Expansion:
    def test_oversized_job_triggers_dr2(self, engine):
        provision, server, manager = build(engine, B=4, R=2.0)
        manager.start()
        server.submit_job(make_job(1, size=7, runtime=HOUR))
        engine.run(until=60.0)
        # ratio 7/4 = 1.75 <= 2.0, biggest 7 > owned 4 -> DR2 = 3
        assert server.owned == 7
        engine.run(until=2 * HOUR)
        assert server.completed_count == 1


class TestRelease:
    def test_idle_dynamic_lease_released_at_hourly_check(self, engine):
        provision, server, manager = build(engine, B=4, R=1.0)
        manager.start()
        for i in range(4):
            server.submit_job(make_job(i + 1, size=2, runtime=600.0))
        engine.run(until=60.0)
        assert server.owned == 8  # DR1 granted
        # jobs end by ~660s; the lease's hourly check at 3660s sees 4+ idle
        engine.run(until=2 * HOUR)
        assert server.owned == 4
        assert provision.allocated_nodes("tre") == 4

    def test_busy_lease_not_released(self, engine):
        provision, server, manager = build(engine, B=4, R=1.0)
        manager.start()
        for i in range(4):
            server.submit_job(make_job(i + 1, size=2, runtime=5 * HOUR))
        engine.run(until=60.0)
        assert server.owned == 8
        engine.run(until=3 * HOUR)  # two hourly checks pass, still busy
        assert server.owned == 8

    def test_initial_resources_never_released(self, engine):
        """§3.2.2.1: initial resources are not reclaimed until destruction."""
        provision, server, manager = build(engine, B=6, R=1.0)
        manager.start()
        engine.run(until=5 * HOUR)  # fully idle the whole time
        assert server.owned == 6

    def test_release_charges_started_hours(self, engine):
        provision, server, manager = build(engine, B=4, R=1.0)
        manager.start()
        for i in range(4):
            server.submit_job(make_job(i + 1, size=2, runtime=600.0))
        engine.run(until=2 * HOUR)
        # the 4-node dynamic lease is granted at the 60 s scan and released
        # by its own hourly check at 3660 s: exactly one started hour/node
        assert provision.consumption_node_hours("tre") == pytest.approx(4)


class TestShutdown:
    def test_shutdown_returns_everything(self, engine):
        provision, server, manager = build(engine, B=4, R=1.0)
        manager.start()
        for i in range(4):
            server.submit_job(make_job(i + 1, size=2, runtime=HOUR * 10))
        engine.run(until=60.0)
        manager.shutdown()
        assert provision.allocated_nodes("tre") == 0
        assert server.owned == 0

    def test_shutdown_bills_initial_lease(self, engine):
        provision, server, manager = build(engine, B=5, R=1.5)
        manager.start()
        engine.run(until=10 * HOUR)
        manager.shutdown()
        assert provision.consumption_node_hours("tre") == pytest.approx(50)
