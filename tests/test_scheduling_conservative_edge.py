"""Edge-case tests for the conservative-backfill reservation profile."""

from repro.scheduling.base import RunningJob
from repro.scheduling.conservative import ConservativeBackfillScheduler, _Profile
from repro.workloads.job import Job


def J(jid, size, runtime):
    j = Job(job_id=jid, submit_time=0.0, size=size, runtime=runtime)
    j.mark_queued(0.0)
    return j


class TestProfile:
    def test_initial_profile_reflects_running_completions(self):
        running = [
            RunningJob(J(1, 3, 10.0), finish_time=10.0),
            RunningJob(J(2, 2, 20.0), finish_time=20.0),
        ]
        p = _Profile(0.0, 5, running)
        assert p.times[:3] == [0.0, 10.0, 20.0]
        assert p.free[:3] == [5, 8, 10]

    def test_simultaneous_completions_merge(self):
        running = [
            RunningJob(J(1, 3, 10.0), finish_time=10.0),
            RunningJob(J(2, 2, 10.0), finish_time=10.0),
        ]
        p = _Profile(0.0, 0, running)
        assert p.times[:2] == [0.0, 10.0]
        assert p.free[:2] == [0, 5]

    def test_finish_in_past_clamps_to_now(self):
        # a completion event at t < now is counted as already free
        running = [RunningJob(J(1, 4, 1.0), finish_time=5.0)]
        p = _Profile(10.0, 2, running)
        assert p.times[0] == 10.0
        assert p.free == [2, 6]

    def test_earliest_start_spanning_steps(self):
        running = [RunningJob(J(1, 4, 10.0), finish_time=10.0)]
        p = _Profile(0.0, 4, running)
        # 4 nodes are free the whole way: a 4-wide 100s job starts now
        assert p.earliest_start(4, 100.0) == 0.0
        # 8 nodes only from t=10
        assert p.earliest_start(8, 100.0) == 10.0

    def test_reserve_debits_exact_window(self):
        p = _Profile(0.0, 10, [])
        p.reserve(5.0, 4, 10.0)  # [5, 15): free 6
        assert p.earliest_start(8, 1.0) == 0.0  # fits before the window
        assert p.earliest_start(8, 10.0) == 15.0  # must wait it out
        assert p.earliest_start(6, 10.0) == 0.0

    def test_reserve_with_infinite_start_is_noop(self):
        p = _Profile(0.0, 2, [])
        start = p.earliest_start(5, 10.0)
        assert start == float("inf")
        p.reserve(start, 5, 10.0)
        assert p.earliest_start(2, 1.0) == 0.0  # untouched


class TestOversizedJobs:
    def test_oversized_head_does_not_crash_or_block_profile(self):
        # head wider than anything ever free: skipped; next job backfills
        q = [J(1, 100, 10.0), J(2, 2, 5.0)]
        picked = ConservativeBackfillScheduler().select(0.0, q, 4)
        assert [j.job_id for j in picked] == [2]

    def test_sequence_of_reservations_is_consistent(self):
        # Three jobs, capacity 4: each reserves after the previous.
        q = [J(1, 4, 10.0), J(2, 4, 10.0), J(3, 4, 10.0)]
        picked = ConservativeBackfillScheduler().select(0.0, q, 4)
        assert [j.job_id for j in picked] == [1]
