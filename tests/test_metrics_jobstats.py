"""Tests for job-level QoS statistics (metrics.jobstats)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.jobstats import (
    achieved_utilization,
    bounded_slowdowns,
    compute_statistics,
    jains_fairness_index,
    per_user_waits,
    response_times,
    wait_times,
)
from repro.workloads.job import Job


def done_job(jid, submit, start, runtime, size=1, user=0):
    j = Job(job_id=jid, submit_time=submit, size=size, runtime=runtime,
            user_id=user)
    j.mark_queued(submit)
    j.mark_running(start)
    j.mark_completed(start + runtime)
    return j


class TestBasics:
    def test_wait_and_response(self):
        jobs = [done_job(1, 0.0, 5.0, 10.0), done_job(2, 2.0, 2.0, 3.0)]
        assert wait_times(jobs).tolist() == [5.0, 0.0]
        assert response_times(jobs).tolist() == [15.0, 3.0]

    def test_incomplete_jobs_excluded(self):
        running = Job(job_id=3, submit_time=0.0, size=1, runtime=5.0)
        running.mark_queued(0.0)
        jobs = [done_job(1, 0.0, 1.0, 2.0), running]
        assert len(wait_times(jobs)) == 1

    def test_bounded_slowdown_floor(self):
        # 1-second job that waited 1 second: raw slowdown 2.0, but the
        # τ=10 floor gives (1+1)/10 = 0.2 -> clipped to 1.0
        short = done_job(1, 0.0, 1.0, 1.0)
        assert bounded_slowdowns([short]).tolist() == [1.0]

    def test_bounded_slowdown_above_floor(self):
        j = done_job(1, 0.0, 100.0, 100.0)  # waited 100, ran 100
        assert bounded_slowdowns([j]).tolist() == [2.0]

    def test_tau_validation(self):
        with pytest.raises(ValueError):
            bounded_slowdowns([], tau_s=0.0)


class TestAggregate:
    def test_compute_statistics_values(self):
        jobs = [done_job(i, 0.0, float(i), 100.0) for i in range(1, 11)]
        s = compute_statistics(jobs)
        assert s.n_jobs == 10
        assert s.mean_wait_s == pytest.approx(np.mean(range(1, 11)))
        assert s.max_wait_s == 10.0
        assert s.mean_response_s == pytest.approx(s.mean_wait_s + 100.0)

    def test_empty_input_gives_zero_record(self):
        s = compute_statistics([])
        assert s.n_jobs == 0
        assert s.mean_wait_s == 0.0

    def test_to_row_roundtrip(self):
        s = compute_statistics([done_job(1, 0.0, 2.0, 50.0)])
        row = s.to_row()
        assert row["n_jobs"] == 1
        assert row["mean_wait_s"] == 2.0


class TestUtilization:
    def test_perfect_packing_is_one(self):
        jobs = [done_job(1, 0.0, 0.0, 100.0, size=4)]
        assert achieved_utilization(jobs, 400.0) == pytest.approx(1.0)

    def test_half_idle(self):
        jobs = [done_job(1, 0.0, 0.0, 100.0, size=2)]
        assert achieved_utilization(jobs, 400.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            achieved_utilization([], 0.0)


class TestFairness:
    def test_per_user_waits(self):
        jobs = [
            done_job(1, 0.0, 10.0, 5.0, user=1),
            done_job(2, 0.0, 20.0, 5.0, user=1),
            done_job(3, 0.0, 0.0, 5.0, user=2),
        ]
        waits = per_user_waits(jobs)
        assert waits == {1: 15.0, 2: 0.0}

    def test_jains_index_equal_is_one(self):
        assert jains_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jains_index_single_hog(self):
        assert jains_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_jains_index_all_zero_is_fair(self):
        assert jains_fairness_index([0.0, 0.0]) == 1.0

    def test_jains_index_validation(self):
        with pytest.raises(ValueError):
            jains_fairness_index([])
        with pytest.raises(ValueError):
            jains_fairness_index([-1.0])


# --------------------------------------------------------------------- #
# properties
# --------------------------------------------------------------------- #
@settings(max_examples=50, deadline=None)
@given(
    waits=st.lists(st.floats(min_value=0, max_value=1e5), min_size=1, max_size=30),
    runtime=st.floats(min_value=0.1, max_value=1e5),
)
def test_slowdowns_at_least_one(waits, runtime):
    jobs = [
        done_job(i, 0.0, w, runtime) for i, w in enumerate(waits)
    ]
    assert (bounded_slowdowns(jobs) >= 1.0).all()


@settings(max_examples=50, deadline=None)
@given(values=st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1,
                       max_size=20))
def test_jains_index_bounds(values):
    idx = jains_fairness_index(values)
    assert 1.0 / len(values) - 1e-9 <= idx <= 1.0 + 1e-9
