"""Tests for TRE lifecycle, the CSF and the TRE bundle."""

import pytest

from repro.cluster.provision import ResourceProvisionService
from repro.core.csf import CommonServiceFramework
from repro.core.lifecycle import (
    LifecycleError,
    LifecycleService,
    LifecycleStateMachine,
    TREState,
)
from repro.core.policies import ResourceManagementPolicy
from repro.core.tre import RuntimeEnvironmentSpec
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from tests.conftest import make_job


class TestStateMachine:
    def test_full_walk(self):
        machine = LifecycleStateMachine()
        for state in (TREState.PLANNING, TREState.CREATED, TREState.RUNNING,
                      TREState.INEXISTENT):
            machine.transition(state, 0.0)
        assert machine.state is TREState.INEXISTENT
        assert [s for s, _ in machine.history] == [
            TREState.PLANNING,
            TREState.CREATED,
            TREState.RUNNING,
            TREState.INEXISTENT,
        ]

    def test_illegal_transition_rejected(self):
        machine = LifecycleStateMachine()
        with pytest.raises(LifecycleError):
            machine.transition(TREState.RUNNING, 0.0)

    def test_cannot_destroy_before_running(self):
        machine = LifecycleStateMachine()
        machine.transition(TREState.PLANNING, 0.0)
        with pytest.raises(LifecycleError):
            machine.transition(TREState.INEXISTENT, 0.0)


class TestLifecycleService:
    def test_deploy_and_start_latencies(self, engine):
        svc = LifecycleService(engine, deploy_latency_s=10.0, start_latency_s=5.0)
        machine = LifecycleStateMachine()
        running_at = []
        svc.create(machine, on_running=lambda: running_at.append(engine.now))
        engine.run()
        assert running_at == [15.0]
        assert machine.state is TREState.RUNNING

    def test_destroy_requires_running(self, engine):
        svc = LifecycleService(engine)
        machine = LifecycleStateMachine()
        with pytest.raises(LifecycleError):
            svc.destroy(machine)

    def test_destroy_callback(self, engine):
        svc = LifecycleService(engine)
        machine = LifecycleStateMachine()
        svc.create(machine)
        engine.run()
        destroyed = []
        svc.destroy(machine, on_destroyed=lambda: destroyed.append(True))
        assert destroyed == [True]
        assert machine.state is TREState.INEXISTENT


class TestSpec:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            RuntimeEnvironmentSpec(
                provider="x", kind="web", policy=ResourceManagementPolicy.for_htc()
            )

    def test_default_scheduler_per_kind(self):
        htc = RuntimeEnvironmentSpec(
            provider="a", kind="htc", policy=ResourceManagementPolicy.for_htc()
        )
        mtc = RuntimeEnvironmentSpec(
            provider="b", kind="mtc", policy=ResourceManagementPolicy.for_mtc()
        )
        assert isinstance(htc.default_scheduler(), FirstFitScheduler)
        assert isinstance(mtc.default_scheduler(), FcfsScheduler)


class TestCsf:
    def _csf(self, engine, capacity=100):
        return CommonServiceFramework(engine, ResourceProvisionService(capacity))

    def test_create_tre_acquires_initial_resources(self, engine):
        csf = self._csf(engine)
        spec = RuntimeEnvironmentSpec(
            provider="a", kind="htc", policy=ResourceManagementPolicy.for_htc(8, 1.5)
        )
        tre = csf.create_tre(spec)
        engine.run(until=1.0)
        assert tre.lifecycle.state is TREState.RUNNING
        assert tre.server.owned == 8

    def test_duplicate_provider_rejected(self, engine):
        csf = self._csf(engine)
        spec = RuntimeEnvironmentSpec(
            provider="a", kind="htc", policy=ResourceManagementPolicy.for_htc(8, 1.5)
        )
        csf.create_tre(spec)
        with pytest.raises(ValueError):
            csf.create_tre(spec)

    def test_destroy_returns_resources(self, engine):
        csf = self._csf(engine)
        spec = RuntimeEnvironmentSpec(
            provider="a", kind="htc", policy=ResourceManagementPolicy.for_htc(8, 1.5)
        )
        csf.create_tre(spec)
        engine.run(until=1.0)
        csf.destroy_tre("a")
        assert csf.provision.allocated_nodes("a") == 0
        with pytest.raises(KeyError):
            csf.destroy_tre("a")

    def test_fixed_tre_never_resizes(self, engine):
        csf = self._csf(engine)
        spec = RuntimeEnvironmentSpec(
            provider="a", kind="htc", policy=ResourceManagementPolicy.for_htc(4, 1.0)
        )
        tre = csf.create_tre(spec, dynamic=False)
        engine.run(until=1.0)
        for i in range(6):
            tre.server.submit_job(make_job(i + 1, size=2, runtime=7200.0))
        engine.run(until=600.0)
        assert tre.server.owned == 4  # demand 12, ratio 3 > 1, still fixed

    def test_mtc_tre_has_trigger_monitor(self, engine):
        csf = self._csf(engine)
        spec = RuntimeEnvironmentSpec(
            provider="m", kind="mtc", policy=ResourceManagementPolicy.for_mtc(2, 8.0)
        )
        tre = csf.create_tre(spec)
        assert tre.trigger_monitor is not None

    def test_running_tres_listing(self, engine):
        csf = self._csf(engine)
        for name in ("a", "b"):
            csf.create_tre(
                RuntimeEnvironmentSpec(
                    provider=name,
                    kind="htc",
                    policy=ResourceManagementPolicy.for_htc(4, 1.5),
                )
            )
        engine.run(until=1.0)
        assert {t.name for t in csf.running_tres()} == {"a", "b"}
