"""Tests for CSF deploy/start latencies and the VM provisioning layer.

The paper's emulation strips the deployment/VM services out (§4.1), so the
main evaluation runs with zero latencies — but the CSF still implements
§3.1.3's full walk, and these tests pin the timed paths.
"""

import pytest

from repro.cluster.provision import ResourceProvisionService
from repro.cluster.vm import VMProvisionService, VMState, VirtualMachine
from repro.core.csf import CommonServiceFramework
from repro.core.lifecycle import TREState
from repro.core.policies import ResourceManagementPolicy
from repro.core.tre import RuntimeEnvironmentSpec
from repro.simkit.engine import SimulationEngine


def _spec(name="lab", kind="htc"):
    return RuntimeEnvironmentSpec(
        provider=name, kind=kind, policy=ResourceManagementPolicy.for_htc(8, 1.5)
    )


class TestCsfLatencies:
    def test_tre_reaches_running_after_deploy_plus_start(self):
        engine = SimulationEngine()
        csf = CommonServiceFramework(
            engine,
            ResourceProvisionService(64),
            deploy_latency_s=120.0,
            start_latency_s=30.0,
        )
        tre = csf.create_tre(_spec())
        assert tre.lifecycle.state is TREState.PLANNING
        engine.run(until=119.0)
        assert tre.lifecycle.state is TREState.PLANNING
        engine.run(until=121.0)
        assert tre.lifecycle.state is TREState.CREATED
        engine.run(until=151.0)
        assert tre.lifecycle.state is TREState.RUNNING

    def test_initial_resources_granted_only_at_running(self):
        engine = SimulationEngine()
        provision = ResourceProvisionService(64)
        csf = CommonServiceFramework(
            engine, provision, deploy_latency_s=60.0, start_latency_s=60.0
        )
        csf.create_tre(_spec())
        engine.run(until=100.0)
        assert provision.allocated_nodes("lab") == 0  # still starting
        engine.run(until=121.0)
        assert provision.allocated_nodes("lab") == 8  # B granted at RUNNING

    def test_running_tres_listing(self):
        engine = SimulationEngine()
        csf = CommonServiceFramework(
            engine, ResourceProvisionService(64), deploy_latency_s=50.0
        )
        csf.create_tre(_spec("a"))
        assert csf.running_tres() == []
        engine.run(until=60.0)
        assert [t.name for t in csf.running_tres()] == ["a"]

    def test_latency_validation(self):
        engine = SimulationEngine()
        from repro.core.lifecycle import LifecycleService

        with pytest.raises(ValueError):
            LifecycleService(engine, deploy_latency_s=-1.0)


class TestVmService:
    def test_boot_sequence_and_callback(self):
        engine = SimulationEngine()
        svc = VMProvisionService(engine, boot_latency_s=30.0)
        up = []
        vm = svc.create(node_id=7, image="htc-tre", on_running=up.append)
        assert vm.state is VMState.BOOTING
        engine.run(until=29.0)
        assert not up
        engine.run(until=31.0)
        assert up == [vm]
        assert vm.state is VMState.RUNNING
        assert vm.boot_time == 30.0
        assert svc.running_count() == 1

    def test_destroy_mid_boot_suppresses_callback(self):
        engine = SimulationEngine()
        svc = VMProvisionService(engine, boot_latency_s=30.0)
        up = []
        vm = svc.create(node_id=1, on_running=up.append)
        svc.destroy(vm)
        engine.run(until=60.0)
        assert vm.state is VMState.DESTROYED
        assert not up
        assert svc.running_count() == 0

    def test_illegal_transitions_rejected(self):
        vm = VirtualMachine(node_id=1)
        vm._transition(VMState.BOOTING)
        vm._transition(VMState.RUNNING)
        vm._transition(VMState.DESTROYED)
        with pytest.raises(RuntimeError, match="illegal transition"):
            vm._transition(VMState.RUNNING)

    def test_negative_boot_latency_rejected(self):
        with pytest.raises(ValueError):
            VMProvisionService(SimulationEngine(), boot_latency_s=-1.0)

    def test_zero_latency_boot_is_still_asynchronous(self):
        """Even at zero latency the VM is RUNNING only after an event."""
        engine = SimulationEngine()
        svc = VMProvisionService(engine, boot_latency_s=0.0)
        vm = svc.create(node_id=1)
        assert vm.state is VMState.BOOTING
        engine.run()
        assert vm.state is VMState.RUNNING
