"""Tests for the workload archive catalog (workloads.archive)."""

import pytest

from repro.workloads.archive import (
    ARCHIVE,
    ARCHIVE_MAX_UTILIZATION,
    ARCHIVE_MIN_UTILIZATION,
    archive_names,
    generate_archive_trace,
    spec_with_utilization,
    utilization_family,
)
from repro.workloads.stats import summarize
from repro.workloads.store import paper_trace
from repro.workloads.traces import NASA_IPSC


class TestCatalog:
    def test_contains_the_papers_traces(self):
        assert "nasa-ipsc" in ARCHIVE
        assert "sdsc-blue" in ARCHIVE

    def test_names_sorted_by_load(self):
        names = archive_names()
        utils = [ARCHIVE[n].target_utilization for n in names]
        assert utils == sorted(utils)
        assert names[0] == "low-load-dept"
        assert names[-1] == "high-load-prod"

    def test_every_spec_validates(self):
        for spec in ARCHIVE.values():
            spec.validate()

    def test_catalog_spans_the_archives_range(self):
        utils = [s.target_utilization for s in ARCHIVE.values()]
        assert min(utils) == ARCHIVE_MIN_UTILIZATION == 0.244
        assert max(utils) == ARCHIVE_MAX_UTILIZATION == 0.865

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown trace"):
            paper_trace("bigred")

    def test_legacy_generator_deprecated_but_working(self):
        with pytest.warns(DeprecationWarning, match="paper_trace"):
            trace = generate_archive_trace("nasa-ipsc", seed=3)
        assert [j.runtime for j in trace] == [
            j.runtime for j in paper_trace("nasa-ipsc", seed=3)
        ]

    def test_legacy_generator_unknown_name_raises(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown archive trace"):
                generate_archive_trace("bigred")


@pytest.mark.parametrize("name", sorted(ARCHIVE))
class TestGeneration:
    def test_utilization_calibrated(self, name):
        trace = paper_trace(name, seed=3)
        spec = ARCHIVE[name]
        s = summarize(trace)
        assert s.utilization == pytest.approx(spec.target_utilization, rel=0.02)

    def test_sizes_bounded_and_machine_filling_job_exists(self, name):
        trace = paper_trace(name, seed=3)
        spec = ARCHIVE[name]
        sizes = [j.size for j in trace]
        assert max(sizes) == spec.machine_nodes
        assert all(1 <= s <= spec.machine_nodes for s in sizes)

    def test_deterministic_in_seed(self, name):
        a = paper_trace(name, seed=11)
        b = paper_trace(name, seed=11)
        assert [(j.submit_time, j.size, j.runtime) for j in a] == [
            (j.submit_time, j.size, j.runtime) for j in b
        ]

    def test_different_seeds_differ(self, name):
        a = paper_trace(name, seed=1)
        b = paper_trace(name, seed=2)
        assert [j.runtime for j in a] != [j.runtime for j in b]

    def test_all_jobs_finish_inside_window(self, name):
        trace = paper_trace(name, seed=3)
        assert all(j.submit_time + j.runtime <= trace.duration for j in trace)


class TestLanlPartitions:
    def test_cm5_widths_are_partition_multiples(self):
        trace = paper_trace("lanl-cm5", seed=0)
        assert all(j.size >= 32 and (j.size & (j.size - 1)) == 0 for j in trace)


class TestUtilizationFamily:
    def test_family_varies_only_load(self):
        family = utilization_family(NASA_IPSC, (0.3, 0.5, 0.7))
        for spec, u in zip(family, (0.3, 0.5, 0.7)):
            assert spec.target_utilization == u
            assert spec.size_pmf == NASA_IPSC.size_pmf
            assert spec.runtime_mixture == NASA_IPSC.runtime_mixture
            assert spec.arrival_profile == NASA_IPSC.arrival_profile

    def test_default_grid_includes_papers_point_and_extremes(self):
        utils = [s.target_utilization for s in utilization_family()]
        assert ARCHIVE_MIN_UTILIZATION in utils
        assert ARCHIVE_MAX_UTILIZATION in utils
        assert 0.466 in utils

    def test_family_traces_monotone_in_work(self):
        family = utilization_family(NASA_IPSC, (0.3, 0.6, 0.85))
        works = []
        for spec in family:
            from repro.workloads.traces import generate_htc_trace

            t = generate_htc_trace(spec, seed=5)
            works.append(sum(j.work for j in t))
        assert works == sorted(works)

    def test_names_are_distinct(self):
        names = [s.name for s in utilization_family()]
        assert len(names) == len(set(names))

    def test_utilization_bounds_checked(self):
        with pytest.raises(ValueError):
            spec_with_utilization(NASA_IPSC, 0.0)
        with pytest.raises(ValueError):
            spec_with_utilization(NASA_IPSC, 1.0)
