"""Tests for the component registry (repro.api.registry)."""

import pytest

from repro.api.registry import (
    KINDS,
    ComponentRegistry,
    Param,
    default_components,
    params_from_signature,
)


@pytest.fixture(scope="module")
def registry():
    return default_components()


class TestCatalog:
    def test_every_kind_populated(self, registry):
        assert registry.kinds() == list(KINDS)

    @pytest.mark.parametrize("kind,name", [
        ("scheduler", "first-fit"),
        ("scheduler", "easy-backfill"),
        ("provisioning-policy", "per-job"),
        ("provisioning-policy", "consolidated"),
        ("billing-meter", "per-hour"),
        ("billing-meter", "reserved-spot"),
        ("policy", "paper-htc"),
        ("policy", "ewma-predictive"),
        ("workload", "nasa-ipsc"),
        ("workload", "montage"),
        ("workload", "htc-trace"),
        ("workload", "swf"),
        ("system", "dcs"),
        ("system", "dawningcloud"),
        ("system", "pooled-queue"),
        ("analysis", "table1"),
        ("analysis", "consolidated-figures"),
        ("analysis", "drp-pooling-ablation"),
        ("analysis", "workflow-zoo"),
    ])
    def test_builtin_components_registered(self, registry, kind, name):
        component = registry.get(kind, name)
        assert component.name == name
        assert component.description  # every builtin carries a one-liner

    def test_rows_are_flat_and_ordered(self, registry):
        rows = [c.to_row() for c in registry.components()]
        kinds = [r["kind"] for r in rows]
        # grouped by kind in KINDS order
        assert kinds == sorted(kinds, key=KINDS.index)
        assert all(set(r) == {"kind", "name", "params", "description"}
                   for r in rows)

    def test_json_rows_carry_param_schema(self, registry):
        row = registry.get("policy", "paper-htc").to_json()
        by_name = {p["name"]: p for p in row["params"]}
        assert by_name["initial_nodes"]["required"] is True
        assert by_name["threshold_ratio"] == {
            "name": "threshold_ratio", "required": False, "default": 1.5,
        }


class TestErrors:
    def test_unknown_name_lists_known(self, registry):
        with pytest.raises(KeyError, match="unknown system component 'ec2'"):
            registry.get("system", "ec2")
        with pytest.raises(KeyError, match="dcs"):
            registry.get("system", "ec2")

    def test_unknown_kind_named(self, registry):
        with pytest.raises(KeyError, match="unknown kind 'middleware'"):
            registry.get("middleware", "x")

    def test_unknown_param_lists_known(self, registry):
        with pytest.raises(ValueError, match="no parameter"):
            registry.create("billing-meter", "per-second", granularity=1)
        with pytest.raises(ValueError, match="min_charge_s"):
            registry.create("billing-meter", "per-second", granularity=1)

    def test_duplicate_registration_rejected(self):
        fresh = ComponentRegistry()
        fresh.register("scheduler", "x", lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            fresh.register("scheduler", "x", lambda: None)

    def test_bad_kind_rejected_at_registration(self):
        fresh = ComponentRegistry()
        with pytest.raises(ValueError, match="unknown component kind"):
            fresh.register("frobnicator", "x", lambda: None)


class TestCreation:
    def test_scheduler_instances(self, registry):
        from repro.scheduling.sjf import SjfScheduler

        assert isinstance(registry.create("scheduler", "sjf"), SjfScheduler)

    def test_meter_instances_use_make_meter_semantics(self, registry):
        from repro.provisioning.billing import PerSecondMeter

        meter = registry.create("billing-meter", "per-second", min_charge_s=0.0)
        assert isinstance(meter, PerSecondMeter)
        assert meter.min_charge_s == 0.0
        # reserved-spot keeps make_meter's loud zero-reservation error
        with pytest.raises(ValueError, match="reserved_nodes"):
            registry.create("billing-meter", "reserved-spot")

    def test_policy_defaults_match_paper(self, registry):
        from repro.core.policies import ResourceManagementPolicy

        policy = registry.create("policy", "paper-htc", initial_nodes=40,
                                 threshold_ratio=1.2)
        assert policy == ResourceManagementPolicy.for_htc(40, 1.2)
        mtc = registry.create("policy", "paper-mtc", initial_nodes=10)
        assert mtc == ResourceManagementPolicy.for_mtc(10, 8.0)


class TestIntrospection:
    def test_params_from_signature_skips_collaborators(self):
        def factory(bundle, seed=0, capacity=420, meter=None):
            pass

        params = params_from_signature(factory, skip=("bundle", "seed"))
        assert [p.name for p in params] == ["capacity", "meter"]
        assert params[0].default == 420
        assert not params[0].required

    def test_required_marker(self):
        def factory(nodes, scale=2.0):
            pass

        params = params_from_signature(factory)
        assert params[0].required and not params[1].required
        assert params[0].describe() == "nodes (required)"
        assert Param("x").required
