"""Tests for random streams and generator-based processes."""

import numpy as np
import pytest

from repro.simkit.process import SimProcess
from repro.simkit.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("x").random(5)
        b = RandomStreams(7).stream("x").random(5)
        assert np.array_equal(a, b)

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert not np.array_equal(a, b)

    def test_stream_is_memoized(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_fresh_replays_from_start(self):
        streams = RandomStreams(0)
        first = streams.stream("x").random(3)
        replay = streams.fresh("x").random(3)
        assert np.array_equal(first, replay)

    def test_adding_consumer_does_not_perturb_existing(self):
        s1 = RandomStreams(5)
        a_only = s1.stream("a").random(4)
        s2 = RandomStreams(5)
        s2.stream("b").random(10)  # extra consumer first
        a_after = s2.stream("a").random(4)
        assert np.array_equal(a_only, a_after)


class TestSimProcess:
    def test_yields_advance_time(self, engine):
        log = []

        def proc():
            log.append(engine.now)
            yield 5.0
            log.append(engine.now)
            yield 10.0
            log.append(engine.now)

        SimProcess(engine, proc())
        engine.run()
        assert log == [0.0, 5.0, 15.0]

    def test_start_delay(self, engine):
        log = []

        def proc():
            log.append(engine.now)
            yield 1.0

        SimProcess(engine, proc(), start_delay=3.0)
        engine.run()
        assert log == [3.0]

    def test_finished_flag(self, engine):
        def proc():
            yield 1.0

        p = SimProcess(engine, proc())
        assert not p.finished
        engine.run()
        assert p.finished

    def test_interrupt_stops_process(self, engine):
        log = []

        def proc():
            yield 5.0
            log.append("never")

        p = SimProcess(engine, proc())
        engine.schedule(1.0, p.interrupt)
        engine.run()
        assert log == []
        assert p.finished

    def test_negative_yield_raises(self, engine):
        def proc():
            yield -1.0

        SimProcess(engine, proc())
        with pytest.raises(ValueError):
            engine.run()
