"""Tests for the own-vs-lease break-even analysis (costmodel.breakeven)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.breakeven import (
    breakeven_price,
    breakeven_utilization,
    leasing_cost_at_utilization,
    reserved_crossover_hours,
    sensitivity_table,
    utilization_cost_curve,
)
from repro.costmodel.pricing import (
    EC2_2009_SMALL,
    EC2_2009_SMALL_RESERVED,
    HOURS_PER_MONTH,
    InstancePricing,
    ReservedInstancePricing,
)
from repro.costmodel.tco import BJUT_DCS_CASE, BJUT_SSP_CASE, DCSCostModel, SSPCostModel


class TestLeasingCurve:
    def test_zero_utilization_pays_only_transfer(self):
        assert leasing_cost_at_utilization(BJUT_SSP_CASE, 0.0) == pytest.approx(
            BJUT_SSP_CASE.transfer_cost_per_month
        )

    def test_full_utilization_matches_paper_tco(self):
        assert leasing_cost_at_utilization(BJUT_SSP_CASE, 1.0) == pytest.approx(
            BJUT_SSP_CASE.tco_per_month()
        )
        assert BJUT_SSP_CASE.tco_per_month() == pytest.approx(2260.0)

    def test_linear_in_utilization(self):
        lo = leasing_cost_at_utilization(BJUT_SSP_CASE, 0.25)
        hi = leasing_cost_at_utilization(BJUT_SSP_CASE, 0.75)
        mid = leasing_cost_at_utilization(BJUT_SSP_CASE, 0.50)
        assert mid == pytest.approx((lo + hi) / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            leasing_cost_at_utilization(BJUT_SSP_CASE, 1.5)


class TestBreakevenUtilization:
    def test_paper_case_has_no_breakeven(self):
        """BJUT: leasing is cheaper even always-on -> always lease."""
        assert breakeven_utilization(BJUT_DCS_CASE, BJUT_SSP_CASE) is None

    def test_expensive_cloud_has_breakeven(self):
        pricey = SSPCostModel(
            pricing=InstancePricing("x", usd_per_instance_hour=0.20,
                                    usd_per_gb_inbound=0.10),
            n_instances=30,
            inbound_gb_per_month=1000.0,
        )
        u = breakeven_utilization(BJUT_DCS_CASE, pricey)
        assert u is not None and 0.0 < u < 1.0
        # at the break-even the two costs agree
        assert leasing_cost_at_utilization(pricey, u) == pytest.approx(
            BJUT_DCS_CASE.tco_per_month()
        )

    def test_breakeven_price_of_the_paper_case(self):
        p = breakeven_price(BJUT_DCS_CASE, BJUT_SSP_CASE)
        # $3,160 - $100 transfer over 30 instances × 720 h = $0.1417/h
        assert p == pytest.approx(0.1417, abs=1e-4)
        assert p > EC2_2009_SMALL.usd_per_instance_hour  # hence: lease


class TestReservedCrossover:
    def test_ec2_2009_reserved_pays_off_within_a_month(self):
        h = reserved_crossover_hours(EC2_2009_SMALL, EC2_2009_SMALL_RESERVED)
        assert h is not None
        # $227.50/12 months = $18.96/mo upfront; discount $0.07/h -> ~271 h
        assert h == pytest.approx(270.8, abs=0.5)
        assert h < HOURS_PER_MONTH

    def test_no_discount_never_crosses(self):
        bad = ReservedInstancePricing("bad", 100.0, 1.0, 0.10)
        assert reserved_crossover_hours(EC2_2009_SMALL, bad) is None

    def test_crossover_is_exact(self):
        h = reserved_crossover_hours(EC2_2009_SMALL, EC2_2009_SMALL_RESERVED)
        od = EC2_2009_SMALL.instance_cost(1, h)
        res = EC2_2009_SMALL_RESERVED.monthly_cost(1, h)
        assert od == pytest.approx(res)


class TestSensitivity:
    def test_one_at_a_time_rows(self):
        rows = sensitivity_table(BJUT_DCS_CASE, BJUT_SSP_CASE)
        params = {r.parameter for r in rows}
        assert params == {"ec2_price_factor", "depreciation_years",
                          "energy_factor"}

    def test_base_case_reproduces_paper_ratio(self):
        rows = sensitivity_table(BJUT_DCS_CASE, BJUT_SSP_CASE)
        base = [r for r in rows
                if r.parameter == "ec2_price_factor" and r.value == 1.0][0]
        assert base.ssp_over_dcs == pytest.approx(0.715, abs=0.001)

    def test_price_monotone(self):
        rows = [r for r in sensitivity_table(BJUT_DCS_CASE, BJUT_SSP_CASE)
                if r.parameter == "ec2_price_factor"]
        ratios = [r.ssp_over_dcs for r in sorted(rows, key=lambda r: r.value)]
        assert ratios == sorted(ratios)

    def test_tripled_price_flips_the_decision(self):
        rows = sensitivity_table(BJUT_DCS_CASE, BJUT_SSP_CASE,
                                 price_factors=(3.0,))
        assert rows[0].ssp_over_dcs > 1.0  # owning wins at 3x the price

    def test_to_row_shape(self):
        row = sensitivity_table(BJUT_DCS_CASE, BJUT_SSP_CASE)[0].to_row()
        assert set(row) == {"parameter", "value", "dcs_tco_per_month",
                            "ssp_tco_per_month", "ssp_over_dcs"}

    def test_degenerate_dcs_clamps_to_sentinel_row(self):
        # a co-lo credit big enough to zero out the owning side: the
        # ratio is undefined there, not an inf/ZeroDivisionError
        free = DCSCostModel(
            capex_usd=0.0,
            depreciation_years=8.0,
            maintenance_total_usd=0.0,
            energy_and_space_usd_per_month=0.0,
        )
        rows = sensitivity_table(free, BJUT_SSP_CASE,
                                 price_factors=(1.0,),
                                 depreciation_years=(),
                                 energy_factors=(2.0,))
        for point in rows:
            assert point.degenerate
            row = point.to_row()
            assert row["ssp_over_dcs"] is None
            assert "ratio undefined" in row["note"]

    def test_default_grid_rows_have_no_sentinel(self):
        rows = sensitivity_table(BJUT_DCS_CASE, BJUT_SSP_CASE)
        assert all(not p.degenerate for p in rows)
        assert all("note" not in p.to_row() for p in rows)


@settings(max_examples=60, deadline=None)
@given(
    capex=st.floats(min_value=0.0, max_value=1e6),
    years=st.floats(min_value=0.5, max_value=20.0),
    maintenance=st.floats(min_value=0.0, max_value=1e5),
    energy=st.floats(min_value=-5_000.0, max_value=10_000.0),
    price=st.floats(min_value=0.0, max_value=2.0),
)
def test_sensitivity_table_total_over_grid_bounds(
    capex, years, maintenance, energy, price
):
    """No grid point raises; every row is a finite ratio or the sentinel.

    ``energy_and_space_usd_per_month`` is signed (a credit is legal), so
    the energy-factor sweep can push the DCS TCO through zero — the
    knife-edge this pins down.
    """
    dcs = DCSCostModel(
        capex_usd=capex,
        depreciation_years=years,
        maintenance_total_usd=maintenance,
        energy_and_space_usd_per_month=energy,
    )
    ssp = SSPCostModel(
        pricing=InstancePricing("x", price, 0.10),
        n_instances=30,
        inbound_gb_per_month=1000.0,
    )
    for point in sensitivity_table(dcs, ssp):
        row = point.to_row()  # must never raise
        if point.dcs_tco > 0:
            assert row["ssp_over_dcs"] == pytest.approx(
                point.ssp_tco / point.dcs_tco, abs=5e-4
            )
            assert "note" not in row
        else:
            assert row["ssp_over_dcs"] is None
            assert "note" in row


class TestUtilizationCurve:
    def test_default_grid_contains_paper_loads(self):
        rows = utilization_cost_curve(BJUT_DCS_CASE, BJUT_SSP_CASE)
        utils = [r["utilization"] for r in rows]
        assert 0.466 in utils and 0.762 in utils

    def test_paper_case_always_lease(self):
        rows = utilization_cost_curve(BJUT_DCS_CASE, BJUT_SSP_CASE)
        assert all(r["winner"] == "lease" for r in rows)

    def test_winner_flips_with_expensive_cloud(self):
        pricey = SSPCostModel(
            pricing=InstancePricing("x", 0.25, 0.10),
            n_instances=30,
            inbound_gb_per_month=1000.0,
        )
        rows = utilization_cost_curve(BJUT_DCS_CASE, pricey)
        winners = [r["winner"] for r in rows]
        assert "lease" in winners and "own" in winners
        # monotone: once owning wins it keeps winning at higher load
        first_own = winners.index("own")
        assert all(w == "own" for w in winners[first_own:])


@settings(max_examples=40, deadline=None)
@given(
    price=st.floats(min_value=0.01, max_value=1.0),
    capex=st.floats(min_value=1e4, max_value=1e6),
    energy=st.floats(min_value=100.0, max_value=10_000.0),
)
def test_breakeven_consistency_property(price, capex, energy):
    """Whenever a break-even exists, costs really do cross there."""
    dcs = DCSCostModel(
        capex_usd=capex,
        depreciation_years=8.0,
        maintenance_total_usd=capex * 0.25,
        energy_and_space_usd_per_month=energy,
    )
    ssp = SSPCostModel(
        pricing=InstancePricing("x", price, 0.10),
        n_instances=30,
        inbound_gb_per_month=1000.0,
    )
    u = breakeven_utilization(dcs, ssp)
    if u is None:
        assert leasing_cost_at_utilization(ssp, 1.0) <= dcs.tco_per_month() + 1e-6
    elif u <= 1.0:
        assert leasing_cost_at_utilization(ssp, min(u, 1.0)) == pytest.approx(
            dcs.tco_per_month(), rel=1e-9
        )
