"""Tests for the discrete-event engine."""

import pytest

from repro.simkit.engine import SimulationEngine, SimulationError
from repro.simkit.events import Event, EventCancelled


class TestScheduling:
    def test_events_fire_in_time_order(self, engine):
        order = []
        engine.schedule(5.0, order.append, "b")
        engine.schedule(1.0, order.append, "a")
        engine.schedule(9.0, order.append, "c")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self, engine):
        order = []
        for tag in "abcde":
            engine.schedule(3.0, order.append, tag)
        engine.run()
        assert order == list("abcde")

    def test_priority_breaks_ties_before_sequence(self, engine):
        order = []
        engine.schedule(1.0, order.append, "late", priority=1)
        engine.schedule(1.0, order.append, "early", priority=-1)
        engine.schedule(1.0, order.append, "mid", priority=0)
        engine.run()
        assert order == ["early", "mid", "late"]

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.schedule(42.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42.5]
        assert engine.now == 42.5

    def test_schedule_at_absolute_time(self, engine):
        seen = []
        engine.schedule_at(10.0, seen.append, 1)
        engine.run()
        assert seen == [1]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_are_executed(self, engine):
        order = []

        def first():
            order.append("first")
            engine.schedule(1.0, order.append, "second")

        engine.schedule(1.0, first)
        engine.run()
        assert order == ["first", "second"]


class TestHorizon:
    def test_run_until_stops_before_later_events(self, engine):
        seen = []
        engine.schedule(1.0, seen.append, "a")
        engine.schedule(10.0, seen.append, "b")
        engine.run(until=5.0)
        assert seen == ["a"]
        assert engine.now == 5.0
        assert engine.pending_events == 1

    def test_event_exactly_at_horizon_fires(self, engine):
        seen = []
        engine.schedule(5.0, seen.append, "x")
        engine.run(until=5.0)
        assert seen == ["x"]

    def test_run_is_resumable(self, engine):
        seen = []
        engine.schedule(1.0, seen.append, 1)
        engine.schedule(10.0, seen.append, 2)
        engine.run(until=5.0)
        engine.run()
        assert seen == [1, 2]

    def test_clock_advances_to_horizon_when_no_events(self, engine):
        engine.run(until=100.0)
        assert engine.now == 100.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        seen = []
        event = engine.schedule(1.0, seen.append, "x")
        engine.cancel(event)
        engine.run()
        assert seen == []

    def test_cancel_is_idempotent(self, engine):
        event = engine.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        engine.run()

    def test_firing_a_cancelled_event_raises(self):
        event = Event(0.0, 0, 0, lambda: None)
        event.cancel()
        with pytest.raises(EventCancelled):
            event.fire()

    def test_peek_time_skips_cancelled(self, engine):
        e1 = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        e1.cancel()
        assert engine.peek_time() == 2.0


class TestSafety:
    def test_max_events_guard(self):
        engine = SimulationEngine(max_events=10)

        def rearm():
            engine.schedule(1.0, rearm)

        engine.schedule(1.0, rearm)
        with pytest.raises(SimulationError):
            engine.run()

    def test_executed_event_count(self, engine):
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.executed_events == 5

    def test_step_returns_false_when_empty(self, engine):
        assert engine.step() is False

    def test_reentrant_run_rejected(self, engine):
        def nested():
            engine.run()

        engine.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            engine.run()


class TestDeterminism:
    def test_two_identical_runs_produce_identical_traces(self):
        def run_once():
            engine = SimulationEngine()
            log = []
            for i in range(100):
                engine.schedule((i * 7919) % 13 + 0.5, log.append, i)
            engine.run()
            return log

        assert run_once() == run_once()


class TestHeapCompaction:
    """Lazily-cancelled events must not accumulate without bound."""

    def test_cancel_heavy_timer_churn_keeps_heap_bounded(self):
        from repro.simkit.engine import COMPACT_MIN_HEAP, SimulationEngine
        from repro.simkit.timers import PeriodicTimer

        engine = SimulationEngine()
        churn = 20_000
        # Start and immediately stop timers whose next tick is far in the
        # future: every stop leaves one cancelled entry deep in the heap,
        # which lazy pop-time discarding alone would never reach.
        for _ in range(churn):
            timer = PeriodicTimer(engine, 1e6, lambda: None)
            timer.start()
            timer.stop()
        assert engine.compactions > 0
        # Bounded: compaction caps slack at the ratio threshold instead of
        # letting all `churn` cancelled entries pile up.
        assert engine.pending_events < churn / 2
        assert engine.pending_events <= 2 * COMPACT_MIN_HEAP + 2

    def test_compaction_preserves_execution_order(self):
        from repro.simkit.engine import SimulationEngine

        engine = SimulationEngine()
        fired = []
        events = [
            engine.schedule_at(float(t), fired.append, t) for t in range(3000)
        ]
        for e in events[::2]:  # cancel every other one -> ratio > 0.5
            engine.cancel(e)
        for e in events[1::4]:
            engine.cancel(e)
        assert engine.compactions > 0
        engine.run()
        expected = [t for t in range(3000) if t % 2 and (t - 1) % 4]
        assert fired == expected

    def test_direct_cancel_pops_do_not_drain_the_slack_counter(self):
        """PR 6: events cancelled via Event.cancel() directly are invisible
        to the slack counter; popping them must not *decrement* it either,
        or near-term direct cancellations eat the decrements belonging to
        engine-counted entries deep in the heap and compaction never fires.
        """
        from repro.simkit.engine import COMPACT_MIN_HEAP, SimulationEngine

        engine = SimulationEngine()
        # counted slack far in the future, just under the compaction ratio;
        # a live guard event at 1e8 keeps the cancelled block off the heap
        # top so lazy pop-time discovery cannot legitimately reach it
        engine.schedule_at(1e8, lambda: None)
        n_far = COMPACT_MIN_HEAP + 200
        far = [engine.schedule_at(1e9, lambda: None) for _ in range(n_far)]
        for e in far[: n_far // 2]:
            engine.cancel(e)
        assert engine.compactions == 0
        # near-term events cancelled *directly*: the run loop discovers
        # them lazily; with the drift bug each pop decremented the counter
        near = [engine.schedule_at(float(t), lambda: None) for t in range(600)]
        for e in near:
            e.cancel()
        engine.run(until=700.0)
        assert engine._cancelled_pending == n_far // 2
        # one more counted cancellation crosses the ratio -> compaction
        for e in far[n_far // 2 : n_far // 2 + 2]:
            engine.cancel(e)
        assert engine.compactions > 0
        # only cancellations issued *after* the compaction remain counted
        assert engine._cancelled_pending <= 1

    def test_thresholds_are_constructor_configurable(self):
        """PR 7: per-engine compaction thresholds, no module monkeypatching."""
        from repro.simkit.engine import SimulationEngine

        # tiny thresholds: even a 10-event heap with 2 cancellations
        # (ratio 0.2 > 0.1) compacts immediately
        engine = SimulationEngine(compact_min_heap=4, compact_slack_ratio=0.1)
        events = [engine.schedule_at(float(t), lambda: None) for t in range(10)]
        engine.cancel(events[0])
        engine.cancel(events[1])
        assert engine.compactions == 1
        assert engine.pending_events == 8

        # a huge min-heap threshold suppresses compaction entirely
        lazy = SimulationEngine(compact_min_heap=10**9)
        events = [lazy.schedule_at(float(t), lambda: None) for t in range(10)]
        for e in events:
            lazy.cancel(e)
        assert lazy.compactions == 0
        assert lazy.pending_events == 10

    def test_threshold_validation(self):
        import pytest

        from repro.simkit.engine import SimulationEngine

        with pytest.raises(ValueError):
            SimulationEngine(compact_min_heap=-1)
        with pytest.raises(ValueError):
            SimulationEngine(compact_slack_ratio=0.0)
        with pytest.raises(ValueError):
            SimulationEngine(compact_slack_ratio=1.5)

    def test_default_thresholds_still_fire_compaction(self):
        """The defaults must keep compacting (the satellite's regression pin):
        churn past COMPACT_MIN_HEAP with >50% cancelled entries compacts."""
        from repro.simkit.engine import COMPACT_MIN_HEAP, SimulationEngine

        engine = SimulationEngine()
        n = 2 * COMPACT_MIN_HEAP + 10
        events = [engine.schedule_at(1e9 + t, lambda: None) for t in range(n)]
        for e in events[: n // 2 + 5]:
            engine.cancel(e)
        assert engine.compactions > 0


class TestFastForward:
    """The fluid tier's clock jump: safe only over provably empty windows."""

    def test_moves_clock_without_executing(self, engine):
        fired = []
        engine.schedule_at(100.0, fired.append, 1)
        engine.fast_forward(50.0)
        assert engine.now == 50.0
        assert fired == []
        assert engine.executed_events == 0
        engine.run(until=150.0)
        assert fired == [1]

    def test_refuses_to_jump_over_live_event(self, engine):
        import pytest

        from repro.simkit.engine import SimulationError

        engine.schedule_at(10.0, lambda: None)
        with pytest.raises(SimulationError):
            engine.fast_forward(10.0)  # at the event: run() would fire it
        with pytest.raises(SimulationError):
            engine.fast_forward(20.0)  # past it

    def test_jump_over_cancelled_event_is_fine(self, engine):
        event = engine.schedule_at(10.0, lambda: None)
        engine.cancel(event)
        engine.fast_forward(20.0)
        assert engine.now == 20.0

    def test_refuses_backwards_jump(self, engine):
        import pytest

        from repro.simkit.engine import SimulationError

        engine.schedule_at(5.0, lambda: None)
        engine.run()
        assert engine.now == 5.0
        with pytest.raises(SimulationError):
            engine.fast_forward(1.0)

    def test_scheduling_resumes_from_jumped_clock(self, engine):
        import pytest

        from repro.simkit.engine import SimulationError

        engine.fast_forward(100.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(50.0, lambda: None)
        event = engine.schedule(10.0, lambda: None)
        assert event.time == 110.0
