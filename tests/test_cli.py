"""Tests for the command-line entry point (fast commands only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DSP" in out and "flexible" in out

    def test_tco(self, capsys):
        assert main(["tco"]) == 0
        out = capsys.readouterr().out
        assert "$3,162" in out or "$3,160" in out
        assert "71.5%" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_seed_flag_parsed(self, capsys):
        assert main(["table1", "--seed", "3"]) == 0

    def test_breakeven(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        assert "Break-even EC2 price" in out
        assert "lease" in out

    def test_extension_commands_registered(self):
        from repro.cli import _COMMANDS

        expected = {
            "ablation-lease-unit",
            "ablation-scan-interval",
            "ablation-scheduler",
            "ablation-policy",
            "ablation-utilization",
            "breakeven",
            "zoo",
            "federation",
        }
        assert expected <= set(_COMMANDS)


TINY_SPEC_TOML = """
name = "cli-tiny"
description = "tiny spec for CLI tests"

[[workloads]]
generator = "htc-trace"

[workloads.params]
name = "cli-tiny-trace"
machine_nodes = 4
duration = 43200.0
n_jobs = 12
target_utilization = 0.3
size_pmf = [[1, 0.7], [2, 0.2], [4, 0.1]]
runtime_mixture = [[1.0, 600.0, 0.6]]

[[systems]]
runner = "dcs"
"""


class TestListComponents:
    def test_table_output(self, capsys):
        assert main(["list-components", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "registered components" in out
        for name in ("first-fit", "per-hour", "nasa-ipsc", "dawningcloud",
                     "paper-htc", "consolidated-figures"):
            assert name in out

    def test_kind_filter(self, capsys):
        assert main(["list-components", "--kind", "system", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "dcs" in out and "first-fit" not in out

    def test_unknown_kind_fails(self, capsys):
        assert main(["list-components", "--kind", "nope", "--no-cache"]) == 1

    def test_json_output(self, capsys):
        import json

        assert main(["list-components", "--json", "--kind", "billing-meter",
                     "--no-cache"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in rows}
        assert set(by_name) == {"per-hour", "per-second", "reserved-spot"}
        params = {p["name"] for p in by_name["reserved-spot"]["params"]}
        assert "reserved_nodes" in params


class TestRunSpec:
    def test_spec_file_runs_and_hits_cache(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text(TINY_SPEC_TOML)
        cache = tmp_path / "cache"
        assert main(["run-spec", str(spec), "--cache-dir", str(cache)]) == 0
        first = capsys.readouterr()
        assert '"cli-tiny"' in first.out
        assert "ran in" in first.err
        assert main(["run-spec", str(spec), "--cache-dir", str(cache)]) == 0
        second = capsys.readouterr()
        assert "cached" in second.err
        assert second.out == first.out

    def test_missing_paths_fail(self, capsys):
        assert main(["run-spec", "--no-cache"]) == 1
        assert "at least one spec file" in capsys.readouterr().err

    def test_invalid_spec_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('name = "x"\n')
        assert main(["run-spec", str(bad), "--no-cache"]) == 1
        assert "bad.toml" in capsys.readouterr().err

    def test_paths_rejected_for_other_commands(self):
        with pytest.raises(SystemExit):
            main(["table1", "spec.toml"])


class TestSpecDir:
    def test_spec_dir_scenarios_appear_and_run(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "tiny.toml").write_text(TINY_SPEC_TOML)
        assert main(["list-scenarios", "--spec-dir", str(specs),
                     "--no-cache"]) == 0
        assert "cli-tiny" in capsys.readouterr().out
        assert main(["run", "--scenario", "cli-tiny",
                     "--spec-dir", str(specs), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert '"experiment":"cli-tiny"' in out

    def test_missing_explicit_spec_dir_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["list-scenarios", "--spec-dir", str(tmp_path / "nope"),
                  "--no-cache"])

    def test_colliding_spec_name_warns_and_continues(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "clash.json").write_text(
            '{"name": "table1-models", "workloads": ["w"], "systems": ["s"]}'
        )
        assert main(["list-scenarios", "--spec-dir", str(specs),
                     "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "table1-models" in captured.out
