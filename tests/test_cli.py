"""Tests for the command-line entry point (fast commands only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DSP" in out and "flexible" in out

    def test_tco(self, capsys):
        assert main(["tco"]) == 0
        out = capsys.readouterr().out
        assert "$3,162" in out or "$3,160" in out
        assert "71.5%" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_seed_flag_parsed(self, capsys):
        assert main(["table1", "--seed", "3"]) == 0

    def test_breakeven(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        assert "Break-even EC2 price" in out
        assert "lease" in out

    def test_extension_commands_registered(self):
        from repro.cli import _COMMANDS

        expected = {
            "ablation-lease-unit",
            "ablation-scan-interval",
            "ablation-scheduler",
            "ablation-policy",
            "ablation-utilization",
            "breakeven",
            "zoo",
            "federation",
        }
        assert expected <= set(_COMMANDS)


TINY_SPEC_TOML = """
name = "cli-tiny"
description = "tiny spec for CLI tests"

[[workloads]]
generator = "htc-trace"

[workloads.params]
name = "cli-tiny-trace"
machine_nodes = 4
duration = 43200.0
n_jobs = 12
target_utilization = 0.3
size_pmf = [[1, 0.7], [2, 0.2], [4, 0.1]]
runtime_mixture = [[1.0, 600.0, 0.6]]

[[systems]]
runner = "dcs"
"""


class TestListComponents:
    def test_table_output(self, capsys):
        assert main(["list-components", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "registered components" in out
        for name in ("first-fit", "per-hour", "nasa-ipsc", "dawningcloud",
                     "paper-htc", "consolidated-figures"):
            assert name in out

    def test_kind_filter(self, capsys):
        assert main(["list-components", "--kind", "system", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "dcs" in out and "first-fit" not in out

    def test_unknown_kind_fails(self, capsys):
        assert main(["list-components", "--kind", "nope", "--no-cache"]) == 1

    def test_json_output(self, capsys):
        import json

        assert main(["list-components", "--json", "--kind", "billing-meter",
                     "--no-cache"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {r["name"]: r for r in rows}
        assert set(by_name) == {"per-hour", "per-second", "reserved-spot"}
        params = {p["name"] for p in by_name["reserved-spot"]["params"]}
        assert "reserved_nodes" in params


class TestRunSpec:
    def test_spec_file_runs_and_hits_cache(self, tmp_path, capsys):
        spec = tmp_path / "tiny.toml"
        spec.write_text(TINY_SPEC_TOML)
        cache = tmp_path / "cache"
        assert main(["run-spec", str(spec), "--cache-dir", str(cache)]) == 0
        first = capsys.readouterr()
        assert '"cli-tiny"' in first.out
        assert "ran in" in first.err
        assert main(["run-spec", str(spec), "--cache-dir", str(cache)]) == 0
        second = capsys.readouterr()
        assert "cached" in second.err
        assert second.out == first.out

    def test_missing_paths_fail(self, capsys):
        assert main(["run-spec", "--no-cache"]) == 1
        assert "at least one spec file" in capsys.readouterr().err

    def test_invalid_spec_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.toml"
        bad.write_text('name = "x"\n')
        assert main(["run-spec", str(bad), "--no-cache"]) == 1
        assert "bad.toml" in capsys.readouterr().err

    def test_paths_rejected_for_other_commands(self):
        with pytest.raises(SystemExit):
            main(["table1", "spec.toml"])


class TestSpecDir:
    def test_spec_dir_scenarios_appear_and_run(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "tiny.toml").write_text(TINY_SPEC_TOML)
        assert main(["list-scenarios", "--spec-dir", str(specs),
                     "--no-cache"]) == 0
        assert "cli-tiny" in capsys.readouterr().out
        assert main(["run", "--scenario", "cli-tiny",
                     "--spec-dir", str(specs), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert '"experiment":"cli-tiny"' in out

    def test_missing_explicit_spec_dir_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["list-scenarios", "--spec-dir", str(tmp_path / "nope"),
                  "--no-cache"])

    def test_colliding_spec_name_warns_and_continues(self, tmp_path, capsys):
        specs = tmp_path / "specs"
        specs.mkdir()
        (specs / "clash.json").write_text(
            '{"name": "table1-models", "workloads": ["w"], "systems": ["s"]}'
        )
        assert main(["list-scenarios", "--spec-dir", str(specs),
                     "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "table1-models" in captured.out


class TestResilienceCli:
    """Supervised-run plumbing: exit codes, summaries, resume, verify."""

    def test_failed_scenario_exits_nonzero_keeping_siblings(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            '[{"action": "kill", "scenario": "tco-case", "attempts": []}]',
        )
        code = main(["run", "--scenario", "tco-case,table1-models",
                     "--no-cache", "--retries", "0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAILED" in captured.err
        assert "scenario(s) failed" in captured.err
        # the completed sibling's payload is still on stdout
        assert '"table1-models"' in captured.out
        assert '"tco-case"' not in captured.out

    def test_transient_failure_recovers_via_retry(self, capsys, monkeypatch):
        monkeypatch.setenv(
            "REPRO_CHAOS",
            '[{"action": "kill", "scenario": "tco-case", "attempts": [1]}]',
        )
        code = main(["run", "--scenario", "tco-case", "--no-cache"])
        captured = capsys.readouterr()
        assert code == 0
        assert "attempt 2" in captured.err
        assert '"tco-case"' in captured.out

    def test_resume_reports_journaled_successes(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["run", "--scenario", "tco-case",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["run", "--scenario", "tco-case", "--resume",
                     "--cache-dir", cache]) == 0
        assert "(resumed)" in capsys.readouterr().err

    def test_cache_info_shows_journal(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["run", "--scenario", "tco-case",
                     "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["cache-info", "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "journal" in out and "records" in out

    def test_cache_info_verify_finds_and_quarantines(self, tmp_path, capsys):
        from repro.experiments.cache import ResultCache

        cache_dir = tmp_path / "cache"
        ResultCache(cache_dir).put("s", "not-the-right-key", 1,
                                   params={}, seed=0)
        assert main(["cache-info", "--verify",
                     "--cache-dir", str(cache_dir)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "0/1 entries ok" in out
        assert main(["cache-info", "--verify", "--quarantine",
                     "--cache-dir", str(cache_dir)]) == 1
        capsys.readouterr()
        # quarantined entries are out of the live tree: now clean
        assert main(["cache-info", "--verify",
                     "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "0/0 entries ok" in out
        assert "quarantined entries: 1" in out

    def test_flag_validation(self):
        with pytest.raises(SystemExit):
            main(["run", "--quarantine", "--no-cache"])
        with pytest.raises(SystemExit):
            main(["run", "--verify", "--no-cache"])
        with pytest.raises(SystemExit):
            main(["run", "--retries", "-1", "--no-cache"])
        with pytest.raises(SystemExit):
            main(["run", "--timeout", "0", "--no-cache"])
        with pytest.raises(SystemExit):
            main(["run", "--fail-fast", "--keep-going", "--no-cache"])


class TestAblateVerbs:
    def test_bad_pattern_exits_one_with_failure_table(self, capsys):
        assert main(["ablate", "--scenario", "fig09-*", "--no-cache"]) == 1
        err = capsys.readouterr().err
        assert "not ablatable" in err
        assert "fig09-sweep-blue" in err

    def test_no_match_exits_one(self, capsys):
        assert main(["ablate", "--scenario", "zzz*", "--no-cache"]) == 1
        assert "no scenarios match" in capsys.readouterr().err

    def test_step_must_be_positive(self):
        with pytest.raises(SystemExit):
            main(["sensitivity", "--scenario", "table2-*", "--step", "0"])

    def test_ablate_writes_ranked_section_and_json(self, tmp_path, capsys):
        md = tmp_path / "report.md"
        md.write_text("# My notes\n\nkeep me\n")
        args = ["ablate", "--scenario", "table2-nasa",
                "--cache-dir", str(tmp_path / "cache"), "--md", str(md)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "### Ablation & sensitivity: ablate:table2-nasa" in out
        assert '"axis_importance"' in out
        text = md.read_text()
        assert text.startswith("# My notes\n\nkeep me\n")
        assert "## Ablation & sensitivity" in text
        # warm re-run: all cache hits, ranked table byte-identical,
        # marker block replaced in place
        assert main(args) == 0
        rerun = capsys.readouterr().out

        def table(s):
            return [line for line in s.splitlines()
                    if line.startswith("|")]

        assert table(rerun) == table(out)
        assert "0 executed" in rerun and "cache hits" in rerun
        assert md.read_text().count("repro:ablation:begin") == 1
        assert md.read_text().startswith("# My notes\n\nkeep me\n")
