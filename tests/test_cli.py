"""Tests for the command-line entry point (fast commands only)."""

import pytest

from repro.cli import main


class TestCli:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "DSP" in out and "flexible" in out

    def test_tco(self, capsys):
        assert main(["tco"]) == 0
        out = capsys.readouterr().out
        assert "$3,162" in out or "$3,160" in out
        assert "71.5%" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_seed_flag_parsed(self, capsys):
        assert main(["table1", "--seed", "3"]) == 0

    def test_breakeven(self, capsys):
        assert main(["breakeven"]) == 0
        out = capsys.readouterr().out
        assert "Break-even EC2 price" in out
        assert "lease" in out

    def test_extension_commands_registered(self):
        from repro.cli import _COMMANDS

        expected = {
            "ablation-lease-unit",
            "ablation-scan-interval",
            "ablation-scheduler",
            "ablation-policy",
            "ablation-utilization",
            "breakeven",
            "zoo",
            "federation",
        }
        assert expected <= set(_COMMANDS)
