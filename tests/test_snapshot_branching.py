"""Snapshot/restore/fork byte-identity (the PR 6 tentpole).

Three layers of guarantees, mirroring ``test_differential_emulator.py``'s
differential style:

* **property**: ``restore(snapshot(live))`` then ``run()`` is
  byte-identical — per-job completion times, billed consumption and the
  reliability payload — to an uninterrupted run, across every runner
  family, with and without a failure model, snapshotting at arbitrary
  hypothesis-chosen instants;
* **differential**: prefix-shared sweeps (`share_prefix=True`) equal cold
  sweeps point for point, at the sweep, run_experiment and
  ``Simulation.fork()`` levels;
* **alias guard**: closures in the heap are rejected at snapshot time.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import make_job, make_trace
from repro.api.run import (
    RETARGETABLE_SWEEP_PATHS,
    Simulation,
    fork_experiment_branches,
    run_experiment,
    sweep_prefix_shareable,
)
from repro.api.spec import ExperimentSpec
from repro.core.policies import ResourceManagementPolicy
from repro.experiments.cache import NullCache
from repro.experiments.sweep import (
    SHARED_PREFIX_MIN_FRACTION,
    _resolve_share,
    branch_instant,
    sweep_htc_parameters,
    sweep_mtc_parameters,
)
from repro.provisioning.runner import PooledQueueLiveRun
from repro.reliability.failures import ExponentialFailures
from repro.scheduling.firstfit import FirstFitScheduler
from repro.simkit.snapshot import SnapshotAliasError
from repro.systems.base import WorkloadBundle
from repro.systems.drp import DrpHtcLiveRun, DrpMtcLiveRun, DrpPooledLiveRun
from repro.systems.dsp_runner import (
    DawningCloudHtcLiveRun,
    DawningCloudMtcLiveRun,
)
from repro.systems.fixed import FixedLiveRun
from repro.workloads.workflowgen import fork_join

HOUR = 3600.0

#: whole-simulation tests: excluded from the fast tier
pytestmark = pytest.mark.slow


def _htc_bundle() -> WorkloadBundle:
    jobs = [
        make_job(1, submit=0.0, size=4, runtime=1800),
        make_job(2, submit=60.0, size=2, runtime=600),
        make_job(3, submit=120.0, size=8, runtime=3600),
        make_job(4, submit=900.0, size=16, runtime=1200),
        make_job(5, submit=1800.0, size=4, runtime=2400),
        make_job(6, submit=4000.0, size=6, runtime=1800),
        make_job(7, submit=5400.0, size=3, runtime=900),
    ]
    return WorkloadBundle.from_trace("t", make_trace(jobs))


def _mtc_bundle() -> WorkloadBundle:
    return WorkloadBundle.from_workflow(
        "wf", fork_join(width=6, mean_runtime=40.0, seed=2)
    )


def _failures() -> ExponentialFailures:
    return ExponentialFailures(mtbf_s=2 * HOUR, mttr_s=600.0)


# one builder per runner family: (name, kind, accepts_failures, build)
BUILDERS = [
    ("dcs", "htc", True,
     lambda b, f: FixedLiveRun(b, "DCS", failures=f, seed=3)),
    ("ssp", "htc", True,
     lambda b, f: FixedLiveRun(b, "SSP", failures=f, seed=3)),
    ("drp-htc", "htc", True,
     lambda b, f: DrpHtcLiveRun(b, failures=f, seed=3)),
    ("drp-pooled", "htc", False,
     lambda b, f: DrpPooledLiveRun(b)),
    ("dawningcloud-htc", "htc", True,
     lambda b, f: DawningCloudHtcLiveRun(
         b, ResourceManagementPolicy.for_htc(8, 1.5), capacity=64,
         failures=f, seed=3)),
    ("pooled-queue", "htc", True,
     lambda b, f: PooledQueueLiveRun(
         b, FirstFitScheduler(), failures=f, seed=3)),
    ("dawningcloud-mtc", "mtc", True,
     lambda b, f: DawningCloudMtcLiveRun(
         b, ResourceManagementPolicy.for_mtc(4, 8.0), capacity=64,
         failures=f, seed=3)),
    ("drp-mtc", "mtc", False,
     lambda b, f: DrpMtcLiveRun(b)),
]

CASES = [
    (name, kind, build, with_failures)
    for name, kind, accepts, build in BUILDERS
    for with_failures in ([False, True] if accepts else [False])
]


def _job_finish_times(live) -> list[tuple[int, float]]:
    """Per-job completion instants, however the runner stores them."""
    if hasattr(live, "cloud"):
        completed = live.cloud.tre(live.name).server.completed
    elif hasattr(live, "server"):
        completed = live.server.completed
    elif hasattr(live, "state"):
        completed = live.state.completed
    else:
        completed = live.pool.completed
    return sorted((j.job_id, j.finish_time) for j in completed)


def _finalize(live) -> tuple:
    live.complete()
    times = _job_finish_times(live)
    payload = live.finish().to_payload()
    return payload, times, live.engine.now


@pytest.mark.parametrize(
    "name,kind,build,with_failures",
    CASES,
    ids=[f"{n}{'-failures' if w else ''}" for n, _, _, w in CASES],
)
@settings(max_examples=5, deadline=None)
@given(fraction=st.floats(min_value=0.05, max_value=0.95))
def test_restore_then_run_is_byte_identical(name, kind, build, with_failures,
                                            fraction):
    bundle = _htc_bundle() if kind == "htc" else _mtc_bundle()
    failures = _failures() if with_failures else None

    cold = _finalize(build(bundle, failures))
    # MTC runs end at workflow completion, not the horizon guard, so the
    # snapshot instant is chosen inside the *observed* run span.
    span = cold[2] if kind == "mtc" else float(bundle.horizon)

    live = build(bundle, failures)
    live.advance_before(fraction * span)
    snapshot = live.snapshot(label=name)
    restored = snapshot.restore()

    # the interrupted original and the restored branch both finish
    # exactly like the run that was never touched
    assert _finalize(live) == cold
    assert _finalize(restored) == cold


def test_fork_branches_are_disjoint():
    bundle = _htc_bundle()
    live = DawningCloudHtcLiveRun(
        bundle, ResourceManagementPolicy.for_htc(8, 1.5), capacity=64
    )
    live.advance_before(900.0)
    branch = live.fork()
    # running the branch first must not perturb the original
    branch_result = _finalize(branch)
    original_result = _finalize(live)
    assert branch_result == original_result


def test_snapshot_rejects_closures_in_heap():
    bundle = _htc_bundle()
    live = DawningCloudHtcLiveRun(
        bundle, ResourceManagementPolicy.for_htc(8, 1.5), capacity=64
    )
    leak = []
    live.engine.schedule(60.0, lambda: leak.append(1))
    with pytest.raises(SnapshotAliasError):
        live.snapshot()


# --------------------------------------------------------------------- #
# differential: prefix-shared sweeps == cold sweeps
# --------------------------------------------------------------------- #
def test_htc_sweep_branched_equals_cold():
    bundle = _htc_bundle()
    grid = dict(initial_nodes=(4, 8), threshold_ratios=(1.0, 1.5, 2.0),
                capacity=64)
    cold = sweep_htc_parameters(bundle, share_prefix=False, **grid)
    warm = sweep_htc_parameters(bundle, share_prefix=True, **grid)
    assert warm == cold


def test_mtc_sweep_branched_equals_cold():
    bundle = _mtc_bundle()
    grid = dict(initial_nodes=(2, 4), threshold_ratios=(4.0, 8.0),
                capacity=64)
    cold = sweep_mtc_parameters(bundle, share_prefix=False, **grid)
    warm = sweep_mtc_parameters(bundle, share_prefix=True, **grid)
    assert warm == cold


def _sweep_spec() -> dict:
    return {
        "name": "branch-diff",
        "workloads": [{"generator": "fork-join",
                       "params": {"width": 5, "mean_runtime": 30.0}}],
        "systems": [{"runner": "dawningcloud",
                     "policy": {"name": "paper-mtc",
                                "params": {"initial_nodes": 3}},
                     "params": {"capacity": 64}}],
        "seeds": [0, 1],
        "sweep": {"policy.params.threshold_ratio": [4.0, 8.0, 12.0]},
    }


def test_run_experiment_branched_equals_cold():
    spec = ExperimentSpec.from_dict(_sweep_spec())
    cold = [r.to_dict() for r in run_experiment(spec, 0, share_prefix=False)]
    warm = [r.to_dict() for r in run_experiment(spec, 0, share_prefix=True)]
    assert warm == cold


def test_simulation_fork_branches_equal_cold_points():
    spec = _sweep_spec()
    cold = run_experiment(
        ExperimentSpec.from_dict(spec), 0, share_prefix=False
    )
    sim = Simulation(spec, seed=0, cache=NullCache())
    branches = sim.fork()
    assert [b.point for b in branches] == [
        r.point for r in cold if r.seed == 0
    ]
    forked = [b.run().to_payload() for b in branches]
    assert forked == [dict(r.metrics) for r in cold if r.seed == 0]


# --------------------------------------------------------------------- #
# detection and the profitability guard
# --------------------------------------------------------------------- #
def test_generator_touching_sweeps_are_not_shareable():
    spec = _sweep_spec()
    spec["sweep"]["workload.params.width"] = [3, 5]
    es = ExperimentSpec.from_dict(spec)
    assert not sweep_prefix_shareable(es)
    with pytest.raises(ValueError, match="workload.params.width"):
        fork_experiment_branches(es)


def test_build_shaping_sweeps_are_not_shareable():
    spec = _sweep_spec()
    spec["sweep"] = {"policy.params.initial_nodes": [2, 4]}
    assert "policy.params.initial_nodes" not in RETARGETABLE_SWEEP_PATHS
    assert not sweep_prefix_shareable(ExperimentSpec.from_dict(spec))


def test_auto_guard_shares_only_long_prefixes():
    early = _htc_bundle()  # first submission at t=0
    assert _resolve_share("auto", early) is False

    late_jobs = [
        make_job(1, submit=2 * HOUR, size=4, runtime=1800),
        make_job(2, submit=2 * HOUR + 60, size=2, runtime=600),
    ]
    late = WorkloadBundle.from_trace("late", make_trace(late_jobs))
    assert branch_instant(late) / late.horizon >= SHARED_PREFIX_MIN_FRACTION
    assert _resolve_share("auto", late) is True
    # and the forced modes ignore the guard entirely
    assert _resolve_share(True, early) is True
    assert _resolve_share(False, late) is False
