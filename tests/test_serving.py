"""The online serving facade (PR 9): ingest, rolling metrics, what-ifs.

Pins the acceptance contract end to end:

* admission control — monotonic timestamps, horizon bound, duplicate
  ids, back-pressure, and atomic batches;
* ingest fidelity — a service fed job-by-job finishes byte-identical to
  the cold batch run over the same trace;
* rolling metrics — exact values on a hand-computable workload;
* what-if queries — an *empty* delta reproduces the baseline
  byte-identically, and three concurrent queries (load, MTBF, policy)
  answered from one DawningCloud instant leave the live clock unmoved;
* the spec layer (`ServiceSpec`), the JSONL session driver, the CLI
  ``serve`` verb, and the reusable `supervised_call` pool entry.
"""

from __future__ import annotations

import json

import pytest

from repro.api.spec import ServiceSpec, load_service_file, spec_digest
from repro.experiments.orchestrator import supervised_call
from repro.experiments.supervision import RetryPolicy, TransientError
from repro.serving import (
    AdmissionError,
    BackPressureError,
    ScenarioDelta,
    ServeSession,
    ServiceClosedError,
    SimulationService,
    WhatIfEngine,
    WhatIfError,
    build_service,
)
from repro.systems.base import WorkloadBundle
from repro.systems.fixed import FixedLiveRun
from repro.workloads.job import Job, Trace

#: long-lived-service suite: bounded wall clock when pytest-timeout is
#: installed (the CI tier), inert locally.
pytestmark = pytest.mark.timeout(120)

DAY = 86400.0


def make_jobs(
    n: int = 12,
    start: float = 100.0,
    gap: float = 200.0,
    size: int = 2,
    runtime: float = 1800.0,
) -> list[Job]:
    return [
        Job(
            job_id=i,
            submit_time=start + i * gap,
            size=size,
            runtime=runtime,
            user_id=0,
            task_type="htc",
        )
        for i in range(n)
    ]


def dcs_spec(**over) -> ServiceSpec:
    data = {
        "name": "svc",
        "system": "dcs",
        "machine_nodes": 8,
        "horizon_s": DAY,
    }
    data.update(over)
    return ServiceSpec.from_dict(data)


def dc_spec(**over) -> ServiceSpec:
    data = {
        "name": "svc-dc",
        "system": {
            "runner": "dawningcloud",
            "policy": {"name": "paper-htc", "params": {"initial_nodes": 4}},
        },
        "machine_nodes": 16,
        "horizon_s": DAY,
    }
    data.update(over)
    return ServiceSpec.from_dict(data)


class TestAdmission:
    def test_stale_timestamp_rejected(self):
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(3))
        service.advance_to(1000.0)
        with pytest.raises(AdmissionError, match="monotonic"):
            service.submit(Job(99, 500.0, 1, 60.0, 0, "htc"))
        assert service.rejected == 1

    def test_past_horizon_rejected(self):
        service = build_service(dcs_spec())
        with pytest.raises(AdmissionError, match="past the service horizon"):
            service.submit(Job(1, DAY + 1.0, 1, 60.0, 0, "htc"))

    def test_duplicate_pending_id_rejected(self):
        service = build_service(dcs_spec())
        service.submit(Job(7, 100.0, 1, 60.0, 0, "htc"))
        with pytest.raises(AdmissionError, match="already pending"):
            service.submit(Job(7, 200.0, 1, 60.0, 0, "htc"))
        # ...but once the arrival has fired, the id is free again
        service.advance_to(150.0)
        service.submit(Job(7, 200.0, 1, 60.0, 0, "htc"))
        assert service.ingested == 2

    def test_back_pressure_on_submit(self):
        service = build_service(dcs_spec(max_pending=2))
        service.submit_batch(make_jobs(2))
        with pytest.raises(BackPressureError, match="advance the service"):
            service.submit(Job(50, 5000.0, 1, 60.0, 0, "htc"))
        # draining the arrivals frees ingest capacity
        service.advance_to(600.0)
        service.submit(Job(50, 5000.0, 1, 60.0, 0, "htc"))

    def test_batch_is_atomic(self):
        service = build_service(dcs_spec())
        boot_events = service.engine.pending_events  # the server's scan timer
        jobs = make_jobs(4)
        jobs[2] = Job(2, DAY + 5.0, 1, 60.0, 0, "htc")  # bad: past horizon
        with pytest.raises(AdmissionError):
            service.submit_batch(jobs)
        assert service.pending_arrivals == 0
        assert service.ingested == 0
        # nothing was scheduled: the heap holds only the boot events
        assert service.engine.pending_events == boot_events

    def test_batch_rejects_intra_batch_duplicate(self):
        service = build_service(dcs_spec())
        jobs = make_jobs(3)
        jobs[2] = Job(0, 900.0, 1, 60.0, 0, "htc")  # id 0 twice
        with pytest.raises(AdmissionError, match="twice"):
            service.submit_batch(jobs)
        assert service.pending_arrivals == 0

    def test_batch_overflow_rejected_whole(self):
        service = build_service(dcs_spec(max_pending=3))
        with pytest.raises(BackPressureError):
            service.submit_batch(make_jobs(4))
        assert service.pending_arrivals == 0
        assert service.rejected == 4

    def test_empty_batch_is_noop(self):
        service = build_service(dcs_spec())
        assert service.submit_batch([]) == 0

    def test_trace_batch_accepted(self):
        jobs = make_jobs(5)
        trace = Trace("svc", jobs, machine_nodes=8, duration=DAY)
        service = build_service(dcs_spec())
        assert service.submit_batch(trace) == 5
        assert service.pending_arrivals == 5

    def test_cancel_pending(self):
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(3))
        assert service.cancel_pending(1)
        assert not service.cancel_pending(1)
        assert service.cancelled == 1
        service.advance_to(DAY - 1.0)
        assert len(service.server.completed) == 2


class TestLifecycle:
    def test_service_matches_cold_batch_run(self):
        """Ingest fidelity: streamed jobs == the same trace run cold."""
        jobs = make_jobs(12, size=3, runtime=7200.0)  # queueing occurs
        trace = Trace("svc", jobs, machine_nodes=8, duration=DAY)
        cold = FixedLiveRun(WorkloadBundle.from_trace("svc", trace), "DCS")
        cold_payload = cold.run().to_payload()

        service = build_service(dcs_spec())
        # interleave ingest with advances: fidelity must survive streaming
        service.submit_batch(jobs[:5])
        service.advance_to(400.0)
        for job in jobs[5:]:
            service.submit(job)
        payload = service.shutdown(drain=True)
        assert payload == cold_payload

    def test_advance_bounds(self):
        service = build_service(dcs_spec())
        service.advance_to(1000.0)
        with pytest.raises(ValueError, match="already at"):
            service.advance_to(500.0)
        with pytest.raises(ValueError, match="past the service horizon"):
            service.advance_to(DAY + 1.0)

    def test_shutdown_no_drain_clamps_at_now(self):
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(6, runtime=40000.0))
        service.advance_to(2000.0)
        payload = service.shutdown(drain=False)
        assert service.closed
        # horizon clamped to the stop instant: the §4.3 closed form bills
        # 8 nodes x ceil(2000 s) = 1 started hour, not the full day the
        # spec's horizon would have charged (8 x 24 = 192)
        assert payload["resource_consumption"] == pytest.approx(8.0)
        assert payload["completed_jobs"] == 0

    def test_closed_service_refuses_everything(self):
        service = build_service(dcs_spec())
        service.shutdown()
        for call in (
            lambda: service.submit(Job(1, 10.0, 1, 60.0, 0, "htc")),
            lambda: service.advance_to(10.0),
            service.metrics,
            service.fork,
            service.shutdown,
        ):
            with pytest.raises(ServiceClosedError):
                call()

    def test_mtc_live_run_refused(self):
        from repro.workloads.workflowgen import fork_join

        bundle = WorkloadBundle.from_workflow(
            "mtc", fork_join(width=4, seed=1), fixed_nodes=8
        )
        live = FixedLiveRun(bundle, "DCS")
        with pytest.raises(ValueError, match="MTC"):
            SimulationService(live)


class TestRollingMetrics:
    def test_exact_values_on_hand_computable_run(self):
        service = build_service(dcs_spec())
        # 4 uncontended jobs arrive at 100..400; the DCS server starts
        # work on its 60 s scan tick, so starts land at 120..420 and the
        # 600 s runtimes finish at 720, 840, 960, 1020.
        service.submit_batch(make_jobs(4, start=100.0, gap=100.0,
                                       size=2, runtime=600.0))
        service.advance_to(1100.0)
        m = service.metrics()
        assert m["time"] == 1100.0
        assert m["window_start"] == 0.0  # first window closes over [0, now]
        assert m["ingested"] == 4
        assert m["queue_depth"] == 0
        assert m["running_jobs"] == 0
        assert m["owned_nodes"] == 8
        assert m["completed_total"] == 4
        assert m["completed_in_window"] == 4
        assert m["throughput_jobs_per_s"] == pytest.approx(4 / 1100.0)
        # 4 jobs x 2 nodes x 600 s = 4800 node-s done in 1100 s
        assert m["goodput_node_hours_per_h"] == pytest.approx(4800.0 / 1100.0)
        assert m["avg_owned_nodes"] == pytest.approx(8.0)
        # an owned DCS machine burns its full size continuously
        assert m["cost_burn_node_hours_per_h"] == pytest.approx(8.0)
        assert m["slo_attainment"] == 1.0

    def test_window_excludes_old_completions(self):
        service = build_service(dcs_spec(window_s=1000.0))
        service.submit_batch(make_jobs(4, start=100.0, gap=100.0,
                                       size=2, runtime=600.0))
        service.advance_to(2500.0)  # window (1500, 2500]: nothing completes
        # (all four completions landed at 720..1020, before the window)
        m = service.metrics()
        assert m["completed_total"] == 4
        assert m["completed_in_window"] == 0
        assert m["throughput_jobs_per_s"] == 0.0
        assert m["slo_attainment"] is None  # no claim from zero observations

    def test_queue_depth_and_slo_miss_under_contention(self):
        service = build_service(dcs_spec(slo_wait_s=100.0))
        # 8-wide jobs serialize on an 8-node machine: starts at scan
        # ticks 60, 660, 1260, 1860, so only the first job's wait (60 s)
        # meets a 100 s wait SLO
        service.submit_batch(make_jobs(4, start=0.0, gap=1.0,
                                       size=8, runtime=600.0))
        service.advance_to(10.0)
        m = service.metrics()
        assert m["queue_depth"] == 4  # arrived, first scan not yet ticked
        assert m["running_jobs"] == 0
        service.advance_to(2500.0)
        m = service.metrics()
        assert m["completed_in_window"] == 4
        assert m["slo_attainment"] == pytest.approx(0.25)

    def test_metrics_read_does_not_perturb_world(self):
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(6))
        service.advance_to(1500.0)
        service.metrics()
        payload_a = service.fork().shutdown(drain=True)
        service.metrics()
        payload_b = service.fork().shutdown(drain=True)
        assert payload_a == payload_b

    def test_ssp_cost_burn_lands_at_lease_close(self):
        spec = dcs_spec(system="ssp", window_s=DAY)
        service = build_service(spec)
        service.submit_batch(make_jobs(2, start=100.0, gap=100.0,
                                       size=2, runtime=600.0))
        service.advance_to(1000.0)
        # SSP holds its block lease until finalization, so nothing is
        # charged mid-run: the windowed burn is honestly zero...
        assert service.metrics()["cost_burn_node_hours_per_h"] == 0.0
        ledger = service.live.provision.ledger
        assert ledger.charge_log == []
        payload = service.shutdown(drain=True)
        # ...and the whole charge lands in the log at lease close, equal
        # to the billed consumption the final payload reports
        assert len(ledger.charge_log) == 1
        _t, client, units = ledger.charge_log[0]
        assert client == service.live.name
        assert units == pytest.approx(payload["resource_consumption"])


class TestWhatIf:
    def test_empty_delta_is_byte_identical(self):
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(10))
        service.advance_to(900.0)
        result = WhatIfEngine(service).what_if(None, 3 * 3600.0)
        assert result.scenario == result.baseline
        assert result.diff == {}
        assert result.at == 900.0
        assert result.fork_wall_s >= 0.0
        # the live service never moved
        assert service.now == 900.0
        assert not service.closed

    def test_load_clone_and_shed(self):
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(10))
        service.advance_to(150.0)  # one arrival fired, 9 still pending
        engine = WhatIfEngine(service)
        double = engine.what_if({"load_multiplier": 2.0}, DAY)
        assert double.cloned_jobs == 9
        assert (
            double.scenario["completed_jobs"]
            == double.baseline["completed_jobs"] + 9
        )
        half = engine.what_if({"load_multiplier": 0.5}, DAY)
        assert half.shed_jobs == 5  # 9 pending -> keep int(9 * 0.5) = 4
        assert (
            half.scenario["completed_jobs"]
            == half.baseline["completed_jobs"] - 5
        )

    def test_mtbf_delta_introduces_reliability(self):
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(10))
        service.advance_to(500.0)
        result = WhatIfEngine(service).what_if({"mtbf_hours": 2.0}, DAY)
        assert "reliability" not in result.baseline
        assert "reliability" in result.scenario
        assert "only_in_scenario" in result.diff
        assert "reliability" in result.diff["only_in_scenario"]

    def test_billing_delta_on_ssp(self):
        service = build_service(dcs_spec(system="ssp"))
        # short jobs on a per-hour meter: per-second billing must be cheaper
        service.submit_batch(make_jobs(6, runtime=900.0))
        service.advance_to(300.0)
        result = WhatIfEngine(service).what_if({"billing": "per-second"}, DAY)
        key = "resource_consumption"
        assert result.scenario[key] < result.baseline[key]
        assert result.diff[key]["delta"] == pytest.approx(
            result.scenario[key] - result.baseline[key]
        )

    def test_policy_delta_on_fixed_system_fails_permanently(self):
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(4))
        engine = WhatIfEngine(service)
        with pytest.raises(WhatIfError, match="DawningCloud") as exc_info:
            engine.what_if(
                {"policy": {"name": "paper-htc",
                            "params": {"initial_nodes": 4}}},
                3600.0,
            )
        # permanent: one attempt, structured error chain attached
        assert exc_info.value.error["type"] == "WhatIfError"

    def test_billing_delta_on_dcs_fails(self):
        service = build_service(dcs_spec())
        with pytest.raises(WhatIfError, match="owned, not metered"):
            WhatIfEngine(service).what_if({"billing": "per-second"}, 3600.0)

    def test_mtbf_delta_refused_when_model_armed(self):
        spec = dcs_spec(
            system={"runner": "dcs",
                    "failures": {"name": "exponential",
                                 "params": {"mtbf_hours": 1000.0}}},
        )
        service = build_service(spec)
        with pytest.raises(WhatIfError, match="already has a failure model"):
            WhatIfEngine(service).what_if({"mtbf_hours": 2.0}, 3600.0)

    def test_three_concurrent_whatifs_from_one_instant(self):
        """The acceptance scenario: load, MTBF and policy queries answered
        against one DawningCloud service, all forked from the same clock."""
        service = build_service(dc_spec())
        service.submit_batch(make_jobs(12, size=3, runtime=5400.0))
        service.advance_to(700.0)
        engine = WhatIfEngine(service)
        queries = [
            ({"load_multiplier": 1.5}, "surge"),
            ({"mtbf_hours": 6.0}, "flaky-nodes"),
            ({"policy": {"name": "paper-htc",
                         "params": {"initial_nodes": 4,
                                    "threshold_ratio": 3.0}}}, "lazier"),
        ]
        results = engine.run_many(
            [engine._query(delta, 6 * 3600.0, label)
             for delta, label in queries]
        )
        assert [r.label for r in results] == ["surge", "flaky-nodes", "lazier"]
        assert all(r.at == 700.0 for r in results)
        assert all(r.attempts == 1 for r in results)
        assert results[0].cloned_jobs > 0
        assert "reliability" in results[1].scenario
        # the shared baseline continuation is identical across queries:
        # every fork observed the same world
        assert results[0].baseline == results[1].baseline
        assert results[1].baseline == results[2].baseline
        # and the live service is untouched and still serving
        assert service.now == 700.0
        service.advance_to(900.0)

    def test_whatif_retry_refork_is_transparent(self):
        """A transient failure inside a query body is retried, and the
        retry re-forks the unmoved service — same answer, attempts > 1."""
        service = build_service(dcs_spec())
        service.submit_batch(make_jobs(8))
        service.advance_to(400.0)
        clean = WhatIfEngine(service).what_if(None, 3600.0)

        flaky = WhatIfEngine(
            service,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.0,
                              sleep=lambda s: None),
        )
        real_answer = flaky._answer
        calls = {"n": 0}

        def chaotic(query):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientError("worker lost")
            return real_answer(query)

        flaky._answer = chaotic
        result = flaky.what_if(None, 3600.0)
        assert result.attempts == 2
        assert result.baseline == clean.baseline
        assert result.scenario == clean.scenario

    def test_delta_validation(self):
        with pytest.raises(ValueError, match="load_multiplier"):
            ScenarioDelta(load_multiplier=-0.5)
        with pytest.raises(ValueError, match="mtbf_hours"):
            ScenarioDelta(mtbf_hours=0.0)
        with pytest.raises(ValueError, match="unknown key"):
            ScenarioDelta.from_dict({"mtbf": 3.0})
        assert ScenarioDelta().empty
        assert not ScenarioDelta(load_multiplier=2.0).empty
        # dict form round-trips
        delta = ScenarioDelta.from_dict(
            {"load_multiplier": 1.5, "billing": "per-second"}
        )
        assert ScenarioDelta.from_dict(delta.to_dict()) == delta


class TestServiceSpec:
    def test_round_trip_and_digest(self):
        spec = dc_spec(window_s=1800.0)
        again = ServiceSpec.from_dict(spec.to_dict())
        assert again == spec
        assert spec_digest(again) == spec_digest(spec)

    def test_defaults_omitted_from_dict(self):
        data = dcs_spec().to_dict()
        assert "window_s" not in data
        assert "max_pending" not in data
        assert set(data) == {"name", "system", "machine_nodes", "horizon_s"}

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ServiceSpec.from_dict(
                {"name": "x", "system": "dcs", "machine_nodes": 4,
                 "horizon_s": 100.0, "widow_s": 60.0}
            )

    def test_validation(self):
        with pytest.raises(ValueError, match="machine_nodes"):
            dcs_spec(machine_nodes=0)
        with pytest.raises(ValueError, match="horizon_s"):
            dcs_spec(horizon_s=-1.0)
        with pytest.raises(ValueError, match="window_s"):
            dcs_spec(window_s=0.0)

    def test_load_service_file(self, tmp_path):
        path = tmp_path / "svc.json"
        path.write_text(json.dumps(
            {"name": "filed", "system": "dcs", "machine_nodes": 4,
             "horizon_s": 3600.0}
        ))
        spec = load_service_file(path)
        assert spec.name == "filed"
        assert spec.machine_nodes == 4
        service = build_service(spec)
        assert service.horizon == 3600.0


class TestServeSession:
    def script(self):
        return [
            '# a comment line',
            '',
            '{"op": "submit", "job": {"job_id": 1, "submit_time": 100.0, '
            '"size": 2, "runtime": 600.0}}',
            '{"op": "submit-batch", "jobs": ['
            '{"job_id": 2, "submit_time": 200.0, "size": 2, "runtime": 600.0},'
            '{"job_id": 3, "submit_time": 300.0, "size": 2, "runtime": 600.0}'
            ']}',
            '{"op": "advance", "to": 1000.0}',
            '{"op": "metrics"}',
            '{"op": "what-if", "horizon_s": 3600.0, "label": "noop"}',
            '{"op": "shutdown"}',
        ]

    def test_full_session(self):
        session = ServeSession(build_service(dcs_spec()))
        results = session.run_script(self.script())
        assert [r["ok"] for r in results] == [True] * 6
        assert results[0]["pending_arrivals"] == 1
        assert results[1]["admitted"] == 2
        assert results[2]["time"] == 1000.0
        assert results[3]["metrics"]["completed_total"] == 3
        whatif = results[4]["result"]
        assert whatif["baseline"] == whatif["scenario"]
        assert results[5]["final"]["completed_jobs"] == 3
        assert session.finished

    def test_errors_are_data_not_exceptions(self):
        session = ServeSession(build_service(dcs_spec()))
        results = session.run_script([
            'not json at all',
            '{"op": "frobnicate"}',
            '{"op": "advance"}',
            '{"op": "submit", "job": {"job_id": 1}}',
            '{"op": "what-if", "horizon_s": 60.0, '
            '"delta": {"billing": "per-second"}}',  # DCS: not metered
            '{"op": "metrics"}',
        ])
        assert [r["ok"] for r in results] == [
            False, False, False, False, False, True,
        ]
        assert results[1]["error"]["type"] == "ValueError"
        assert results[4]["error"]["type"] == "WhatIfError"
        assert not session.finished

    def test_session_stops_after_shutdown(self):
        session = ServeSession(build_service(dcs_spec()))
        results = session.run_script([
            '{"op": "shutdown"}',
            '{"op": "metrics"}',  # never reached
        ])
        assert len(results) == 1

    def test_what_if_batch(self):
        session = ServeSession(build_service(dcs_spec()))
        session.execute({"op": "submit-batch", "jobs": [
            {"job_id": i, "submit_time": 100.0 * (i + 1), "size": 2,
             "runtime": 600.0} for i in range(6)
        ]})
        out = session.execute({"op": "what-if-batch", "queries": [
            {"delta": {"load_multiplier": 2.0}, "horizon_s": DAY,
             "label": "surge"},
            {"delta": None, "horizon_s": DAY, "label": "noop"},
        ]})
        assert out["ok"]
        surge, noop = out["results"]
        assert surge["cloned_jobs"] == 6
        assert noop["baseline"] == noop["scenario"]


class TestServeCli:
    def test_serve_script_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "session.jsonl"
        script.write_text("\n".join([
            '{"op": "submit", "job": {"job_id": 1, "submit_time": 60.0, '
            '"size": 2, "runtime": 600.0}}',
            '{"op": "advance", "to": 800.0}',
            '{"op": "metrics"}',
            '{"op": "shutdown"}',
        ]) + "\n")
        assert main(["serve", "--script", str(script)]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line
        ]
        assert len(lines) == 4
        assert all(line["ok"] for line in lines)
        assert lines[2]["metrics"]["completed_total"] == 1
        assert lines[3]["final"]["completed_jobs"] == 1

    def test_serve_with_service_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "svc.json"
        spec.write_text(json.dumps(
            {"name": "cli-svc", "system": "ssp", "machine_nodes": 4,
             "horizon_s": 7200.0}
        ))
        script = tmp_path / "session.jsonl"
        script.write_text('{"op": "metrics"}\n{"op": "shutdown"}\n')
        assert main(["serve", "--service", str(spec),
                     "--script", str(script)]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line
        ]
        assert lines[0]["metrics"]["service"] == "cli-svc"

    def test_failed_op_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        script = tmp_path / "session.jsonl"
        script.write_text('{"op": "frobnicate"}\n{"op": "shutdown"}\n')
        assert main(["serve", "--script", str(script)]) == 1

    def test_bad_service_file_reports_error(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "svc.json"
        spec.write_text(json.dumps({"name": "x", "system": "dcs"}))
        assert main(["serve", "--service", str(spec)]) == 1
        assert "error:" in capsys.readouterr().err.lower()

    def test_serve_flags_rejected_elsewhere(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["table1", "--script", str(tmp_path / "s.jsonl")])


class FakeClock:
    def __init__(self):
        self.t = 0.0
        self.sleeps = []

    def monotonic(self):
        return self.t

    def sleep(self, s):
        self.sleeps.append(s)
        self.t += s


class TestSupervisedCall:
    def policy(self, clock, **over):
        defaults = dict(max_attempts=3, backoff_base_s=0.05,
                        sleep=clock.sleep, monotonic=clock.monotonic)
        defaults.update(over)
        return RetryPolicy(**defaults)

    def test_transient_failures_retry_with_backoff(self):
        clock = FakeClock()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("blip")
            return 42

        outcome = supervised_call(flaky, name="flaky",
                                  retry=self.policy(clock))
        assert outcome.ok
        assert outcome.result == 42
        assert outcome.attempts == 3
        assert clock.sleeps == [0.05, 0.1]

    def test_permanent_failure_stops_immediately(self):
        clock = FakeClock()

        def broken():
            raise ValueError("bad input")

        outcome = supervised_call(broken, retry=self.policy(clock))
        assert not outcome.ok
        assert outcome.attempts == 1
        assert outcome.error["type"] == "ValueError"
        assert clock.sleeps == []

    def test_exhausted_transients_fail_with_chain(self):
        clock = FakeClock()

        def always():
            raise TransientError("never works")

        outcome = supervised_call(always, retry=self.policy(clock))
        assert outcome.status == "failed"
        assert outcome.attempts == 3
        assert outcome.error["type"] == "TransientError"

    def test_late_result_discarded_as_timeout(self):
        clock = FakeClock()
        calls = {"n": 0}

        def slow_then_fast():
            calls["n"] += 1
            if calls["n"] == 1:
                clock.t += 10.0  # blows the 1 s deadline
            return "done"

        outcome = supervised_call(
            slow_then_fast, name="slow",
            retry=self.policy(clock, timeout_s=1.0),
        )
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.result == "done"

    def test_always_late_fails_as_timeout(self):
        clock = FakeClock()

        def molasses():
            clock.t += 10.0
            return "too late"

        outcome = supervised_call(
            molasses, retry=self.policy(clock, timeout_s=1.0)
        )
        assert not outcome.ok
        assert outcome.error["type"] == "ScenarioTimeout"
