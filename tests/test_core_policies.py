"""Tests for the resource management policy rules (§3.2.2)."""

import pytest

from repro.core.policies import (
    HTC_SCAN_INTERVAL_S,
    MTC_SCAN_INTERVAL_S,
    ResourceManagementPolicy,
    ResourceProvisionPolicy,
)


class TestConstruction:
    def test_htc_default_scan_interval_is_one_minute(self):
        assert ResourceManagementPolicy.for_htc().scan_interval_s == 60.0
        assert HTC_SCAN_INTERVAL_S == 60.0

    def test_mtc_default_scan_interval_is_three_seconds(self):
        assert ResourceManagementPolicy.for_mtc().scan_interval_s == 3.0
        assert MTC_SCAN_INTERVAL_S == 3.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ResourceManagementPolicy(0, 1.5, 60.0)
        with pytest.raises(ValueError):
            ResourceManagementPolicy(10, 0.0, 60.0)
        with pytest.raises(ValueError):
            ResourceManagementPolicy(10, 1.5, 0.0)
        with pytest.raises(ValueError):
            ResourceManagementPolicy(10, 1.5, 60.0, release_check_interval_s=0)

    def test_frozen(self):
        policy = ResourceManagementPolicy.for_htc()
        with pytest.raises(AttributeError):
            policy.initial_nodes = 99  # type: ignore[misc]


class TestObtainRatio:
    def test_basic_ratio(self):
        policy = ResourceManagementPolicy.for_htc(40, 1.5)
        assert policy.obtain_ratio(60, 40) == pytest.approx(1.5)

    def test_zero_owned_with_demand_is_infinite(self):
        policy = ResourceManagementPolicy.for_htc()
        assert policy.obtain_ratio(10, 0) == float("inf")

    def test_zero_owned_zero_demand(self):
        policy = ResourceManagementPolicy.for_htc()
        assert policy.obtain_ratio(0, 0) == 0.0


class TestDynamicRequestSize:
    """The DR1/DR2 rules from §3.2.2.1."""

    def test_dr1_fires_above_threshold(self):
        policy = ResourceManagementPolicy.for_htc(40, 1.5)
        # demand 100 on owned 40: ratio 2.5 > 1.5 -> DR1 = 100 - 40
        assert policy.dynamic_request_size(100, 30, 40) == 60

    def test_no_request_at_or_below_threshold(self):
        policy = ResourceManagementPolicy.for_htc(40, 1.5)
        # ratio exactly 1.5 does not exceed the threshold
        assert policy.dynamic_request_size(60, 30, 40) == 0

    def test_dr2_fires_for_oversized_job_below_threshold(self):
        policy = ResourceManagementPolicy.for_htc(40, 1.5)
        # demand 50 (ratio 1.25 <= R) but the biggest job needs 48 > 40
        assert policy.dynamic_request_size(50, 48, 40) == 8

    def test_dr1_wins_over_dr2_above_threshold(self):
        policy = ResourceManagementPolicy.for_htc(40, 1.5)
        # ratio 2.5: rule 2 applies, not rule 3
        assert policy.dynamic_request_size(100, 90, 40) == 60

    def test_empty_queue_requests_nothing(self):
        policy = ResourceManagementPolicy.for_htc(40, 1.5)
        assert policy.dynamic_request_size(0, 0, 40) == 0

    def test_montage_first_scan_reaches_166(self):
        """§4.5.2: B=10, R=8, 166 ready projections -> owned becomes 166."""
        policy = ResourceManagementPolicy.for_mtc(10, 8.0)
        assert policy.dynamic_request_size(166, 1, 10) == 156

    def test_montage_diff_level_does_not_expand(self):
        """662 ready diffs on 166 owned: ratio 3.99 < 8 and tasks are
        single-node, so the TRE stays at 166 (the R=8 choice's purpose)."""
        policy = ResourceManagementPolicy.for_mtc(10, 8.0)
        assert policy.dynamic_request_size(662, 1, 166) == 0

    def test_low_mtc_threshold_would_expand_on_diff_level(self):
        policy = ResourceManagementPolicy.for_mtc(10, 2.0)
        assert policy.dynamic_request_size(662, 1, 166) == 496


class TestProvisionPolicy:
    def test_defaults_match_paper(self):
        policy = ResourceProvisionPolicy()
        assert policy.all_or_nothing
        assert policy.passive_reclaim
