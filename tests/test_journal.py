"""Tests for the write-ahead run journal (JSONL manifest + resume set)."""

from __future__ import annotations

import json
import os

from repro.experiments.cache import NullCache, ResultCache
from repro.experiments.journal import JOURNAL_NAME, RunJournal


def make_journal(tmp_path) -> RunJournal:
    return RunJournal(tmp_path / JOURNAL_NAME)


class TestRecording:
    def test_records_round_trip_in_order(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record("started", scenario="s", key="k1", seed=0, attempt=1)
        journal.record("finished", scenario="s", key="k1", seed=0,
                       attempt=1, duration_s=0.5)
        events = journal.events()
        assert [e["event"] for e in events] == ["started", "finished"]
        assert events[1]["duration_s"] == 0.5
        assert events[0]["attempt"] == 1
        assert all(e["scenario"] == "s" and e["key"] == "k1" for e in events)

    def test_error_chain_is_stored(self, tmp_path):
        journal = make_journal(tmp_path)
        error = {"type": "WorkerCrash", "message": "died",
                 "cause": {"type": "OSError", "message": "sig 9"}}
        journal.record("failed", scenario="s", key="k", seed=0, error=error)
        (event,) = journal.events()
        assert event["error"]["cause"]["type"] == "OSError"

    def test_each_line_is_standalone_json(self, tmp_path):
        journal = make_journal(tmp_path)
        for i in range(3):
            journal.record("started", scenario="s", key=f"k{i}", seed=0)
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["event"] == "started" for line in lines)

    def test_append_only_across_instances(self, tmp_path):
        make_journal(tmp_path).record("started", scenario="s", key="k", seed=0)
        make_journal(tmp_path).record("finished", scenario="s", key="k", seed=0)
        assert len(make_journal(tmp_path)) == 2

    def test_io_errors_never_raise(self, tmp_path):
        journal = RunJournal(tmp_path)  # a directory: open() for append fails
        journal.record("started", scenario="s", key="k", seed=0)
        assert journal.events() == []


class TestReplay:
    def test_torn_line_is_skipped(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record("finished", scenario="s", key="k1", seed=0)
        with open(journal.path, "a") as fh:
            fh.write('{"event": "finis')  # crash mid-append
        journal.record("finished", scenario="s", key="k2", seed=0)
        assert [e["key"] for e in journal.events()] == ["k1", "k2"]

    def test_missing_file_is_empty(self, tmp_path):
        assert make_journal(tmp_path).events() == []
        assert make_journal(tmp_path).successful_keys() == set()

    def test_latest_terminal_record_wins(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record("finished", scenario="s", key="k", seed=0)
        journal.record("failed", scenario="s", key="k", seed=0,
                       error={"type": "E", "message": "m"})
        assert journal.latest_by_key()["k"]["event"] == "failed"
        assert journal.successful_keys() == set()
        # ...and a later success flips it back
        journal.record("finished", scenario="s", key="k", seed=0)
        assert journal.successful_keys() == {"k"}

    def test_non_terminal_events_do_not_settle(self, tmp_path):
        journal = make_journal(tmp_path)
        journal.record("started", scenario="s", key="k", seed=0)
        journal.record("retried", scenario="s", key="k", seed=0)
        assert journal.latest_by_key() == {}

    def test_failure_records_sorted_by_scenario(self, tmp_path):
        journal = make_journal(tmp_path)
        for name, key in (("zeta", "k2"), ("alpha", "k1")):
            journal.record("failed", scenario=name, key=key, seed=0,
                           error={"type": "E", "message": "m"})
        assert [r["scenario"] for r in journal.failure_records()] == [
            "alpha", "zeta",
        ]


class TestForCache:
    def test_disk_cache_gets_journal_alongside_entries(self, tmp_path):
        journal = RunJournal.for_cache(ResultCache(tmp_path))
        assert journal is not None
        assert journal.path == tmp_path / JOURNAL_NAME

    def test_null_cache_gets_no_journal(self):
        assert RunJournal.for_cache(NullCache()) is None

    def test_cache_without_directory_gets_no_journal(self):
        class Bare:
            directory = None

        assert RunJournal.for_cache(Bare()) is None
        assert os.devnull  # the NullCache sentinel the check keys on
