"""Golden-value regression tests for the registry scenarios.

Every headline metric the reproduction reports is pinned here at seed 0,
next to the qualitative shape checks from
:mod:`repro.experiments.paperdata`.  The shape checks guard the paper's
conclusions; the golden values guard the *reproduction itself* — a
refactor that silently shifts a reproduced number (even in a direction
that still satisfies the shapes) fails these tests and must either be
fixed or consciously re-pin the goldens (and regenerate EXPERIMENTS.md,
which is rendered from the same scenario payloads).

The simulations are deterministic in (seed, params), so the comparisons
are exact for integers and tight (1e-9 relative) for floats.
"""

from __future__ import annotations

import pytest

from repro.experiments.orchestrator import Orchestrator
from repro.experiments.paperdata import (
    check_headline_shapes,
    check_table_shapes,
)

pytestmark = pytest.mark.slow

GOLDEN_SCENARIOS = (
    "table2-nasa",
    "table3-blue",
    "table4-montage",
    "fig12-14-consolidated",
    "tco-case",
    "breakeven",
)

#: node-hours per system, standalone runs at seed 0, capacity 420
GOLDEN_CONSUMPTION = {
    "table2-nasa": {
        "DCS": 43008, "SSP": 43008, "DRP": 46702.0, "DawningCloud": 33899.0,
    },
    "table3-blue": {
        "DCS": 48384, "SSP": 48384, "DRP": 36948.0, "DawningCloud": 38922.0,
    },
    "table4-montage": {
        "DCS": 166, "SSP": 166, "DRP": 611.0, "DawningCloud": 166.0,
    },
}

#: completed jobs (HTC) / completed tasks (MTC) per system
GOLDEN_COMPLETED = {
    "table2-nasa": {
        "DCS": 2597, "SSP": 2597, "DRP": 2603, "DawningCloud": 2603,
    },
    "table3-blue": {
        "DCS": 2656, "SSP": 2656, "DRP": 2657, "DawningCloud": 2657,
    },
    "table4-montage": {
        "DCS": 1000, "SSP": 1000, "DRP": 1000, "DawningCloud": 1000,
    },
}

#: Montage tasks/s per system
GOLDEN_TASKS_PER_SECOND = {
    "DCS": 2.108984494332287,
    "SSP": 2.108984494332287,
    "DRP": 2.3400519422232855,
    "DawningCloud": 2.108984494332287,
}

#: consolidated run: total node-hours / concurrent peak / capacity peak /
#: accumulated adjustments, per system
GOLDEN_CONSOLIDATED = {
    "DCS": (91558, 438.0, 438.0, 0),
    "SSP": (91558, 438.0, 438.0, 876),
    "DRP": (84261.0, 794.0, 1486.0, 99546),
    "DawningCloud": (70133.0, 408.0, 758.0, 23594),
}

GOLDEN_TCO = {
    "dcs_tco_per_month": 3162.5,
    "ssp_tco_per_month": 2260.0,
    "ssp_over_dcs": 0.7146245059288537,
}

GOLDEN_BREAKEVEN_PRICE = 0.1417824074074074


@pytest.fixture(scope="module")
def golden_runs(tmp_path_factory):
    """All pinned scenarios at seed 0, computed fresh for this run.

    A per-run cache directory (not the shared ``./.repro-cache``)
    guarantees the goldens are recomputed rather than replayed from
    payloads cached before e.g. a dependency upgrade — the code-version
    digest only covers ``src/repro``.
    """
    from repro.experiments.cache import ResultCache

    cache = ResultCache(tmp_path_factory.mktemp("golden-cache"))
    orch = Orchestrator(cache=cache, seed=0)
    return orch.run(names=GOLDEN_SCENARIOS)


@pytest.mark.parametrize("scenario", sorted(GOLDEN_CONSUMPTION))
def test_table_consumption_and_throughput_pinned(golden_runs, scenario):
    systems = golden_runs[scenario].payload["systems"]
    for system, expected in GOLDEN_CONSUMPTION[scenario].items():
        measured = systems[system]["resource_consumption"]
        assert measured == pytest.approx(expected, rel=1e-9), (
            f"{scenario}/{system} consumption drifted: "
            f"{measured} != golden {expected}"
        )
    for system, expected in GOLDEN_COMPLETED[scenario].items():
        assert systems[system]["completed_jobs"] == expected
    if scenario == "table4-montage":
        for system, expected in GOLDEN_TASKS_PER_SECOND.items():
            assert systems[system]["tasks_per_second"] == pytest.approx(
                expected, rel=1e-9
            )


@pytest.mark.parametrize("tid,scenario", [
    ("table2", "table2-nasa"),
    ("table3", "table3-blue"),
    ("table4", "table4-montage"),
])
def test_table_shapes_hold(golden_runs, tid, scenario):
    systems = golden_runs[scenario].payload["systems"]
    measured = {s: m["resource_consumption"] for s, m in systems.items()}
    assert check_table_shapes(tid, measured) == []


def test_consolidated_figures_pinned(golden_runs):
    payload = golden_runs["fig12-14-consolidated"].payload
    assert payload["horizon_s"] == 1209600.0
    by = {s["system"]: s for s in payload["series"]}
    for system, (total, peak, cap_peak, adjusted) in GOLDEN_CONSOLIDATED.items():
        s = by[system]
        assert s["total_consumption_node_hours"] == pytest.approx(
            total, rel=1e-9
        ), f"{system} total drifted"
        assert s["concurrent_peak_nodes"] == pytest.approx(peak, rel=1e-9)
        assert s["capacity_peak_nodes"] == pytest.approx(cap_peak, rel=1e-9)
        assert s["adjusted_nodes"] == adjusted


def test_consolidated_shapes_hold(golden_runs):
    payload = golden_runs["fig12-14-consolidated"].payload
    totals = {
        s["system"]: s["total_consumption_node_hours"]
        for s in payload["series"]
    }
    peaks = {s["system"]: s["concurrent_peak_nodes"] for s in payload["series"]}
    adjustments = {
        s["system"]: s["adjusted_nodes"] for s in payload["series"]
    }
    assert check_headline_shapes(totals, peaks, adjustments) == []


def test_tco_and_breakeven_pinned(golden_runs):
    tco = golden_runs["tco-case"].payload
    for key, expected in GOLDEN_TCO.items():
        assert tco[key] == pytest.approx(expected, rel=1e-12)
    be = golden_runs["breakeven"].payload
    assert be["breakeven_utilization"] is None  # leasing always wins
    assert be["breakeven_price"] == pytest.approx(
        GOLDEN_BREAKEVEN_PRICE, rel=1e-12
    )
