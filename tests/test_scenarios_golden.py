"""Golden-value regression tests for the registry scenarios.

Every headline metric the reproduction reports is pinned here at seed 0,
next to the qualitative shape checks from
:mod:`repro.experiments.paperdata`.  The shape checks guard the paper's
conclusions; the golden values guard the *reproduction itself* — a
refactor that silently shifts a reproduced number (even in a direction
that still satisfies the shapes) fails these tests and must either be
fixed or consciously re-pin the goldens (and regenerate EXPERIMENTS.md,
which is rendered from the same scenario payloads).

The simulations are deterministic in (seed, params), so the comparisons
are exact for integers and tight (1e-9 relative) for floats.
"""

from __future__ import annotations

import pytest

from repro.experiments.orchestrator import Orchestrator
from repro.experiments.paperdata import (
    check_headline_shapes,
    check_table_shapes,
)

pytestmark = pytest.mark.slow

GOLDEN_SCENARIOS = (
    "table2-nasa",
    "table3-blue",
    "table4-montage",
    "fig12-14-consolidated",
    "tco-case",
    "breakeven",
    "reliability-mtbf-sweep",
    "checkpoint-interval-ablation",
    "drp-vs-fixed-under-failures",
    "spot-preemption-as-failure",
)

#: node-hours per system, standalone runs at seed 0, capacity 420
GOLDEN_CONSUMPTION = {
    "table2-nasa": {
        "DCS": 43008, "SSP": 43008, "DRP": 46702.0, "DawningCloud": 33899.0,
    },
    "table3-blue": {
        "DCS": 48384, "SSP": 48384, "DRP": 36948.0, "DawningCloud": 38922.0,
    },
    "table4-montage": {
        "DCS": 166, "SSP": 166, "DRP": 611.0, "DawningCloud": 166.0,
    },
}

#: completed jobs (HTC) / completed tasks (MTC) per system
GOLDEN_COMPLETED = {
    "table2-nasa": {
        "DCS": 2597, "SSP": 2597, "DRP": 2603, "DawningCloud": 2603,
    },
    "table3-blue": {
        "DCS": 2656, "SSP": 2656, "DRP": 2657, "DawningCloud": 2657,
    },
    "table4-montage": {
        "DCS": 1000, "SSP": 1000, "DRP": 1000, "DawningCloud": 1000,
    },
}

#: Montage tasks/s per system
GOLDEN_TASKS_PER_SECOND = {
    "DCS": 2.108984494332287,
    "SSP": 2.108984494332287,
    "DRP": 2.3400519422232855,
    "DawningCloud": 2.108984494332287,
}

#: consolidated run: total node-hours / concurrent peak / capacity peak /
#: accumulated adjustments, per system
GOLDEN_CONSOLIDATED = {
    "DCS": (91558, 438.0, 438.0, 0),
    "SSP": (91558, 438.0, 438.0, 876),
    "DRP": (84261.0, 794.0, 1486.0, 99546),
    "DawningCloud": (70133.0, 408.0, 758.0, 23594),
}

GOLDEN_TCO = {
    "dcs_tco_per_month": 3162.5,
    "ssp_tco_per_month": 2260.0,
    "ssp_over_dcs": 0.7146245059288537,
}

GOLDEN_BREAKEVEN_PRICE = 0.1417824074074074

#: reliability-mtbf-sweep rows at seed 0, keyed (mtbf_hours, system):
#: (resource_consumption, completed_jobs, requeues)
GOLDEN_MTBF_SWEEP = {
    (None, "DCS"): (43008, 2597, 0),
    (None, "DawningCloud"): (33899.0, 2603, 0),
    (48.0, "DCS"): (43008, 2569, 462),
    (48.0, "DawningCloud"): (39744.0, 2603, 538),
    (96.0, "DCS"): (43008, 2569, 227),
    (96.0, "DawningCloud"): (38982.0, 2603, 268),
    (192.0, "DCS"): (43008, 2571, 109),
    (192.0, "DawningCloud"): (38806.0, 2603, 124),
    (384.0, "DCS"): (43008, 2574, 59),
    (384.0, "DawningCloud"): (36941.0, 2603, 75),
}

#: checkpoint-interval-ablation at seed 0, keyed by interval:
#: (completed_jobs, requeues, checkpoint_restores, goodput_per_billed_hour)
GOLDEN_CHECKPOINT_ABLATION = {
    None: (2362, 1554, 0, 0.2388),
    900.0: (2569, 972, 539, 0.4229),
    1800.0: (2569, 1122, 400, 0.4229),
    3600.0: (2562, 1412, 248, 0.3756),
    7200.0: (2548, 1457, 114, 0.3465),
}

#: drp-vs-fixed-under-failures at seed 0 (MTBF 48 h, ckpt 1800 s):
#: (resource_consumption, completed_jobs, cost_per_job, saving_vs_dcs)
GOLDEN_FOUR_SYSTEMS_FAILURES = {
    "DCS": (43008, 2569, 16.741, 0.0),
    "SSP": (41832.0, 2569, 16.283, 0.027),
    "DRP": (69725.0, 2603, 26.786, -0.621),
    "DawningCloud": (39744.0, 2603, 15.269, 0.076),
}

#: spot-preemption-as-failure at seed 0, keyed (mtbf, checkpointing):
#: (billed_node_hours, completed_jobs, saving_vs_on_demand)
GOLDEN_SPOT_PREEMPTION = {
    (None, False): (46702.0, 2603, 0.0),
    (24.0, False): (916447.0, 2574, -5.868),
    (24.0, True): (120942.0, 2603, 0.094),
    (48.0, False): (407374.0, 2592, -2.053),
    (48.0, True): (69725.0, 2603, 0.477),
    (96.0, False): (185801.0, 2602, -0.392),
    (96.0, True): (55510.0, 2603, 0.584),
}


@pytest.fixture(scope="module")
def golden_runs(tmp_path_factory):
    """All pinned scenarios at seed 0, computed fresh for this run.

    A per-run cache directory (not the shared ``./.repro-cache``)
    guarantees the goldens are recomputed rather than replayed from
    payloads cached before e.g. a dependency upgrade — the code-version
    digest only covers ``src/repro``.
    """
    from repro.experiments.cache import ResultCache

    cache = ResultCache(tmp_path_factory.mktemp("golden-cache"))
    orch = Orchestrator(cache=cache, seed=0)
    return orch.run(names=GOLDEN_SCENARIOS)


@pytest.mark.parametrize("scenario", sorted(GOLDEN_CONSUMPTION))
def test_table_consumption_and_throughput_pinned(golden_runs, scenario):
    systems = golden_runs[scenario].payload["systems"]
    for system, expected in GOLDEN_CONSUMPTION[scenario].items():
        measured = systems[system]["resource_consumption"]
        assert measured == pytest.approx(expected, rel=1e-9), (
            f"{scenario}/{system} consumption drifted: "
            f"{measured} != golden {expected}"
        )
    for system, expected in GOLDEN_COMPLETED[scenario].items():
        assert systems[system]["completed_jobs"] == expected
    if scenario == "table4-montage":
        for system, expected in GOLDEN_TASKS_PER_SECOND.items():
            assert systems[system]["tasks_per_second"] == pytest.approx(
                expected, rel=1e-9
            )


@pytest.mark.parametrize("tid,scenario", [
    ("table2", "table2-nasa"),
    ("table3", "table3-blue"),
    ("table4", "table4-montage"),
])
def test_table_shapes_hold(golden_runs, tid, scenario):
    systems = golden_runs[scenario].payload["systems"]
    measured = {s: m["resource_consumption"] for s, m in systems.items()}
    assert check_table_shapes(tid, measured) == []


def test_consolidated_figures_pinned(golden_runs):
    payload = golden_runs["fig12-14-consolidated"].payload
    assert payload["horizon_s"] == 1209600.0
    by = {s["system"]: s for s in payload["series"]}
    for system, (total, peak, cap_peak, adjusted) in GOLDEN_CONSOLIDATED.items():
        s = by[system]
        assert s["total_consumption_node_hours"] == pytest.approx(
            total, rel=1e-9
        ), f"{system} total drifted"
        assert s["concurrent_peak_nodes"] == pytest.approx(peak, rel=1e-9)
        assert s["capacity_peak_nodes"] == pytest.approx(cap_peak, rel=1e-9)
        assert s["adjusted_nodes"] == adjusted


def test_consolidated_shapes_hold(golden_runs):
    payload = golden_runs["fig12-14-consolidated"].payload
    totals = {
        s["system"]: s["total_consumption_node_hours"]
        for s in payload["series"]
    }
    peaks = {s["system"]: s["concurrent_peak_nodes"] for s in payload["series"]}
    adjustments = {
        s["system"]: s["adjusted_nodes"] for s in payload["series"]
    }
    assert check_headline_shapes(totals, peaks, adjustments) == []


def test_reliability_mtbf_sweep_pinned(golden_runs):
    rows = golden_runs["reliability-mtbf-sweep"].payload
    measured = {
        (r["mtbf_hours"], r["system"]):
            (r["resource_consumption"], r["completed_jobs"], r["requeues"])
        for r in rows
    }
    assert set(measured) == set(GOLDEN_MTBF_SWEEP)
    for key, (consumption, completed, requeues) in GOLDEN_MTBF_SWEEP.items():
        got = measured[key]
        assert got[0] == pytest.approx(consumption, rel=1e-9), (
            f"{key} consumption drifted: {got[0]} != {consumption}"
        )
        assert got[1] == completed, f"{key} completed drifted"
        assert got[2] == requeues, f"{key} requeues drifted"


def test_checkpoint_interval_ablation_pinned(golden_runs):
    rows = golden_runs["checkpoint-interval-ablation"].payload
    measured = {
        r["checkpoint_interval_s"]:
            (r["completed_jobs"], r["requeues"], r["checkpoint_restores"],
             r["goodput_per_billed_hour"])
        for r in rows
    }
    assert measured == GOLDEN_CHECKPOINT_ABLATION
    # the qualitative shape: some checkpointing beats none, and the
    # goodput-per-billed-hour curve is unimodal over the interval grid
    efficiencies = [r["goodput_per_billed_hour"] for r in rows]
    assert max(efficiencies[1:]) > efficiencies[0]


def test_failures_four_systems_pinned(golden_runs):
    rows = {r["system"]: r
            for r in golden_runs["drp-vs-fixed-under-failures"].payload}
    for system, (consumption, completed, cost, saving) in (
        GOLDEN_FOUR_SYSTEMS_FAILURES.items()
    ):
        r = rows[system]
        assert r["resource_consumption"] == pytest.approx(consumption,
                                                          rel=1e-9)
        assert r["completed_jobs"] == completed
        assert r["cost_per_job"] == pytest.approx(cost, rel=1e-9)
        assert r["saving_vs_dcs"] == pytest.approx(saving, rel=1e-9)
    # the paper's ordering survives failures: DawningCloud cheapest per
    # job, DRP's hour-rounding penalty widens
    assert rows["DawningCloud"]["cost_per_job"] < rows["DCS"]["cost_per_job"]
    assert rows["DRP"]["cost_per_job"] > rows["DCS"]["cost_per_job"]


def test_spot_preemption_pinned(golden_runs):
    rows = {
        (r["preemption_mtbf_hours"], r["checkpointing"]):
            (r["billed_node_hours"], r["completed_jobs"],
             r["saving_vs_on_demand"])
        for r in golden_runs["spot-preemption-as-failure"].payload
    }
    assert rows == GOLDEN_SPOT_PREEMPTION
    # shape: without checkpointing spot never wins; with it the saving
    # grows monotonically as preemptions get milder
    for (mtbf, ckpt), (_, _, saving) in GOLDEN_SPOT_PREEMPTION.items():
        if mtbf is not None and not ckpt:
            assert saving < 0
    ckpt_savings = [GOLDEN_SPOT_PREEMPTION[(m, True)][2]
                    for m in (24.0, 48.0, 96.0)]
    assert ckpt_savings == sorted(ckpt_savings)


def test_reliability_sweep_parallel_matches_serial(tmp_path):
    """Same spec + seed ⇒ byte-identical payload with failures enabled.

    The determinism argument for per-slot RNG streams (docs/reliability
    .md) must survive the process pool: a 4-worker run and an in-process
    run of the reliability scenarios produce identical canonical JSON.
    """
    from repro.experiments.cache import ResultCache, canonical_json
    from repro.experiments.orchestrator import payloads

    names = ("reliability-mtbf-sweep", "drp-vs-fixed-under-failures")
    serial = Orchestrator(
        cache=ResultCache(tmp_path / "serial"), workers=1, seed=0
    ).run(names=names)
    parallel = Orchestrator(
        cache=ResultCache(tmp_path / "parallel"), workers=4, seed=0
    ).run(names=names)
    assert canonical_json(payloads(serial)) == canonical_json(
        payloads(parallel)
    )
    assert not any(run.cached for run in serial.values())
    assert not any(run.cached for run in parallel.values())


def test_tco_and_breakeven_pinned(golden_runs):
    tco = golden_runs["tco-case"].payload
    for key, expected in GOLDEN_TCO.items():
        assert tco[key] == pytest.approx(expected, rel=1e-12)
    be = golden_runs["breakeven"].payload
    assert be["breakeven_utilization"] is None  # leasing always wins
    assert be["breakeven_price"] == pytest.approx(
        GOLDEN_BREAKEVEN_PRICE, rel=1e-12
    )
