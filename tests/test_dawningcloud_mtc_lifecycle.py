"""DawningCloud MTC lifecycle paths: on-demand creation, multi-workflow
providers, auto-destroy timing and billing consequences (§2.2 steps 1-8)."""

import pytest

from repro.core.dawningcloud import DawningCloud
from repro.core.lifecycle import TREState
from repro.core.policies import ResourceManagementPolicy
from repro.workloads.workflowgen import chain, fork_join

HOUR = 3600.0


def _wf(width=8, submit=0.0, wf_id=1, seed=0):
    wf = fork_join(width=width, mean_runtime=20.0, seed=seed, workflow_id=wf_id)
    wf.submit_time = submit
    for t in wf.tasks:
        t.submit_time = submit
    return wf


class TestOnDemandCreation:
    def test_tre_does_not_exist_before_create_at(self):
        cloud = DawningCloud(capacity=64)
        wf = _wf(submit=2 * HOUR)
        cloud.add_mtc_provider("astro", ResourceManagementPolicy.for_mtc(4, 4.0),
                               create_at=wf.submit_time)
        cloud.submit_workflow("astro", wf)
        cloud.run(until=HOUR)
        with pytest.raises(KeyError):
            cloud.tre("astro")
        # no lease billed while the TRE does not exist
        assert cloud.provision.consumption_node_hours("astro") == 0.0
        assert cloud.provision.allocated_nodes("astro") == 0

    def test_on_demand_tre_bills_only_its_lifetime(self):
        cloud = DawningCloud(capacity=64)
        wf = _wf(submit=10 * HOUR)
        cloud.add_mtc_provider("astro", ResourceManagementPolicy.for_mtc(4, 4.0),
                               create_at=wf.submit_time)
        cloud.submit_workflow("astro", wf)
        cloud.run(until=14 * HOUR)
        cloud.shutdown()
        # the workflow finishes within one lease unit of its creation: the
        # bill must not include the 10 idle hours before the TRE existed
        consumed = cloud.provision.consumption_node_hours("astro")
        assert 0 < consumed <= 2 * 8 + 4  # at most ~peak nodes × 1-2 hours


class TestAutoDestroy:
    def test_tre_destroyed_when_last_workflow_completes(self):
        cloud = DawningCloud(capacity=64)
        wf = _wf()
        cloud.add_mtc_provider("astro", ResourceManagementPolicy.for_mtc(4, 4.0))
        cloud.submit_workflow("astro", wf)
        cloud.run(until=2 * HOUR)
        assert wf.completed()
        assert cloud.tre("astro").lifecycle.state is TREState.INEXISTENT
        assert cloud.provision.allocated_nodes("astro") == 0

    def test_two_workflows_keep_tre_alive_until_both_finish(self):
        cloud = DawningCloud(capacity=64)
        first = _wf(submit=0.0, wf_id=1, seed=1)
        second = _wf(submit=0.25 * HOUR, wf_id=2, seed=2)
        cloud.add_mtc_provider("astro", ResourceManagementPolicy.for_mtc(4, 4.0))
        cloud.submit_workflow("astro", first)
        cloud.submit_workflow("astro", second)
        cloud.run(until=4 * HOUR)
        assert first.completed() and second.completed()
        server = cloud.tre("astro").server
        assert server.completed_count == len(first.tasks) + len(second.tasks)
        # destroyed exactly once, after the second workflow
        assert cloud.tre("astro").lifecycle.state is TREState.INEXISTENT

    def test_auto_destroy_disabled_keeps_tre_running(self):
        cloud = DawningCloud(capacity=64)
        wf = _wf()
        cloud.add_mtc_provider("astro", ResourceManagementPolicy.for_mtc(4, 4.0),
                               auto_destroy=False)
        cloud.submit_workflow("astro", wf)
        cloud.run(until=2 * HOUR)
        assert wf.completed()
        assert cloud.tre("astro").lifecycle.state is TREState.RUNNING
        cloud.shutdown()
        assert cloud.tre("astro").lifecycle.state is TREState.INEXISTENT


class TestTriggerMonitor:
    def test_trigger_monitor_notified_per_workflow(self):
        cloud = DawningCloud(capacity=64)
        wf = _wf()
        cloud.add_mtc_provider("astro", ResourceManagementPolicy.for_mtc(4, 4.0),
                               auto_destroy=False)
        cloud.submit_workflow("astro", wf)
        cloud.run(until=0.1)  # let the TRE come up
        monitor = cloud.tre("astro").trigger_monitor
        seen = []
        monitor.subscribe(seen.append)
        cloud.run(until=2 * HOUR)
        assert seen == [wf]
        assert monitor.notifications == 1


class TestChainWorkflows:
    def test_deep_chain_runs_sequentially_on_one_node(self):
        cloud = DawningCloud(capacity=16)
        wf = chain(length=12, mean_runtime=5.0, seed=0)
        cloud.add_mtc_provider("deep", ResourceManagementPolicy.for_mtc(1, 4.0))
        cloud.submit_workflow("deep", wf)
        cloud.run(until=HOUR)
        server_done = sum(
            1 for t in wf.tasks if t.finish_time is not None
        )
        assert server_done == 12
        # a pure chain never needs more than the single initial node
        metrics = cloud.provider_metrics("deep")
        assert metrics.peak_nodes == 1
