"""Tests for hour-granular lease accounting."""

import pytest

from repro.cluster.lease import HOUR, Lease, LeaseLedger


class TestLease:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Lease("c", 0, 0.0)

    def test_held_seconds_open_needs_now(self):
        lease = Lease("c", 2, 10.0)
        with pytest.raises(ValueError):
            lease.held_seconds()
        assert lease.held_seconds(now=70.0) == 60.0

    def test_charged_units_rounds_up(self):
        lease = Lease("c", 3, 0.0)
        lease.t_close = 3601.0
        assert lease.charged_units() == 6  # 3 nodes × 2 hours

    def test_minimum_one_unit_per_node(self):
        lease = Lease("c", 4, 100.0)
        lease.t_close = 100.0
        assert lease.charged_units() == 4


class TestLedger:
    def test_open_close_charges(self):
        ledger = LeaseLedger()
        lease = ledger.open_lease("a", 5, 0.0)
        charged = ledger.close_lease(lease, 2 * HOUR)
        assert charged == 10
        assert ledger.charged_units_total("a") == 10

    def test_exact_hour_boundary_not_inflated(self):
        ledger = LeaseLedger()
        lease = ledger.open_lease("a", 2, 0.0)
        assert ledger.close_lease(lease, HOUR) == 2

    def test_double_close_rejected(self):
        ledger = LeaseLedger()
        lease = ledger.open_lease("a", 1, 0.0)
        ledger.close_lease(lease, 10.0)
        with pytest.raises(ValueError):
            ledger.close_lease(lease, 20.0)

    def test_close_before_open_rejected(self):
        ledger = LeaseLedger()
        lease = ledger.open_lease("a", 1, 100.0)
        with pytest.raises(ValueError):
            ledger.close_lease(lease, 50.0)

    def test_open_nodes_by_client(self):
        ledger = LeaseLedger()
        ledger.open_lease("a", 3, 0.0)
        ledger.open_lease("b", 7, 0.0)
        assert ledger.open_nodes("a") == 3
        assert ledger.open_nodes() == 10

    def test_close_all_for_client(self):
        ledger = LeaseLedger()
        ledger.open_lease("a", 3, 0.0)
        ledger.open_lease("a", 2, 0.0)
        ledger.open_lease("b", 1, 0.0)
        charged = ledger.close_all(HOUR, client="a")
        assert charged == 5
        assert ledger.open_nodes("b") == 1

    def test_events_are_signed_deltas(self):
        ledger = LeaseLedger()
        lease = ledger.open_lease("a", 4, 10.0)
        ledger.close_lease(lease, 20.0)
        assert ledger.events("a") == [(10.0, 4), (20.0, -4)]

    def test_charged_is_at_least_exact_integral(self):
        """Billing property: charge >= held node-seconds / unit."""
        ledger = LeaseLedger()
        spans = [(0.0, 1800.0, 4), (100.0, 9000.0, 2), (50.0, 50.0, 7)]
        exact = 0.0
        for t0, t1, n in spans:
            lease = ledger.open_lease("a", n, t0)
            ledger.close_lease(lease, t1)
            exact += n * (t1 - t0) / HOUR
        assert ledger.charged_units_total("a") >= exact

    def test_custom_unit(self):
        ledger = LeaseLedger(unit=60.0)
        lease = ledger.open_lease("a", 1, 0.0)
        assert ledger.close_lease(lease, 61.0) == 2

    def test_initial_lease_full_period_charge(self):
        """The paper's B×336 figure: an initial lease over two weeks."""
        ledger = LeaseLedger()
        lease = ledger.open_lease("htc", 40, 0.0, kind="initial")
        charged = ledger.close_lease(lease, 336 * HOUR)
        assert charged == 40 * 336
