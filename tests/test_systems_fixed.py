"""Tests for the DCS/SSP fixed-resource systems."""

import pytest

from repro.systems.base import WorkloadBundle
from repro.systems.fixed import run_dcs, run_ssp
from repro.workloads.workflow import Workflow
from tests.conftest import make_job, make_trace

HOUR = 3600.0


@pytest.fixture
def htc_bundle(small_trace):
    return WorkloadBundle.from_trace("small", small_trace)


@pytest.fixture
def mtc_bundle():
    tasks = [
        make_job(1, runtime=60, workflow_id=1),
        make_job(2, runtime=60, workflow_id=1),
        make_job(3, runtime=60, deps=(1, 2), workflow_id=1),
    ]
    wf = Workflow(1, tasks, name="mini")
    return WorkloadBundle.from_workflow("mini", wf, fixed_nodes=2)


class TestHtc:
    def test_dcs_consumption_is_size_times_period(self, htc_bundle):
        result = run_dcs(htc_bundle)
        assert result.resource_consumption == 16 * 4  # 16 nodes × 4 h

    def test_all_jobs_complete(self, htc_bundle):
        result = run_dcs(htc_bundle)
        assert result.completed_jobs == 10
        assert result.submitted_jobs == 10

    def test_ssp_matches_dcs_performance(self, htc_bundle):
        """§4.5.2: DCS and SSP have identical configurations and metrics."""
        dcs, ssp = run_dcs(htc_bundle), run_ssp(htc_bundle)
        assert dcs.resource_consumption == ssp.resource_consumption
        assert dcs.completed_jobs == ssp.completed_jobs
        assert dcs.peak_nodes == ssp.peak_nodes

    def test_adjustments_zero_for_dcs_two_size_for_ssp(self, htc_bundle):
        assert run_dcs(htc_bundle).adjusted_nodes == 0
        assert run_ssp(htc_bundle).adjusted_nodes == 2 * 16

    def test_peak_is_fixed_size(self, htc_bundle):
        assert run_dcs(htc_bundle).peak_nodes == 16

    def test_unfinished_jobs_at_horizon_not_counted(self):
        trace = make_trace(
            [make_job(1, size=16, runtime=2 * HOUR),
             make_job(2, submit=1.0, size=16, runtime=10 * HOUR)],
            nodes=16,
            duration=4 * HOUR,
        )
        result = run_dcs(WorkloadBundle.from_trace("t", trace))
        assert result.completed_jobs == 1

    def test_system_labels(self, htc_bundle):
        assert run_dcs(htc_bundle).system == "DCS"
        assert run_ssp(htc_bundle).system == "SSP"


class TestMtc:
    def test_consumption_rounds_makespan_to_hour(self, mtc_bundle):
        result = run_dcs(mtc_bundle)
        # makespan of a few minutes rounds up to 1 hour × 2 nodes
        assert result.resource_consumption == 2

    def test_tasks_per_second(self, mtc_bundle):
        result = run_dcs(mtc_bundle)
        assert result.tasks_per_second == pytest.approx(
            3 / result.makespan_s, rel=1e-9
        )

    def test_dependencies_respected(self, mtc_bundle):
        run_dcs(mtc_bundle)  # raises inside REServer if capacity violated

    def test_fixed_nodes_default_is_first_level_width(self):
        tasks = [
            make_job(1, runtime=10, workflow_id=1),
            make_job(2, runtime=10, workflow_id=1),
            make_job(3, runtime=10, deps=(1, 2), workflow_id=1),
        ]
        bundle = WorkloadBundle.from_workflow("w", Workflow(1, tasks))
        assert bundle.fixed_nodes == 2


class TestBundleValidation:
    def test_htc_needs_trace(self):
        with pytest.raises(ValueError):
            WorkloadBundle(name="x", kind="htc")

    def test_mtc_needs_workflow(self):
        with pytest.raises(ValueError):
            WorkloadBundle(name="x", kind="mtc")

    def test_unknown_kind(self, small_trace):
        with pytest.raises(ValueError):
            WorkloadBundle(name="x", kind="web", trace=small_trace)

    def test_materialize_returns_fresh_copies(self, htc_bundle):
        a = htc_bundle.materialize_trace()
        b = htc_bundle.materialize_trace()
        a.jobs[0].mark_queued(0.0)
        assert b.jobs[0].state.value == "pending"

    def test_replay_same_bundle_through_both_systems(self, htc_bundle):
        first = run_dcs(htc_bundle)
        second = run_dcs(htc_bundle)
        assert first.completed_jobs == second.completed_jobs
        assert first.resource_consumption == second.resource_consumption


class TestHorizonClamp:
    """Regression: the period DCS bills, the completion cutoff and the
    peak window must all clamp to the *configured* horizon.

    Surfaced while wiring requeue into the usage integrals: a job killed
    near the end of the trace and requeued can finish after
    ``trace.duration``; with the old ``period = trace.duration`` a
    caller extending ``bundle.horizon`` to cover the repair tail counted
    the late completion but billed the machine for the shorter trace
    period — completions and consumption disagreed about when the run
    ended.
    """

    def test_requeued_job_finishing_past_duration_is_billed_and_counted(self):
        from repro.reliability import TraceDrivenFailures
        from repro.workloads.job import hour_ceil

        trace = make_trace(
            [make_job(1, submit=6000.0, size=2, runtime=1500.0)],
            nodes=4, duration=2 * HOUR,
        )
        bundle = WorkloadBundle.from_trace("tail", trace)
        bundle.horizon = 4 * HOUR  # cover the repair tail
        # kill the job mid-flight so the requeued attempt ends past the
        # 2 h trace duration (dispatch 6060, kill 7000, node down till
        # 7300, redispatch 7320, finish 8820 > 7200)
        model = TraceDrivenFailures(events=((0, 7000.0, 7300.0),))
        metrics = run_dcs(bundle, failures=model, seed=0)
        assert metrics.completed_jobs == 1          # counted at 4 h horizon
        # ... and the machine is billed for the same 4 h window
        assert metrics.resource_consumption == 4 * hour_ceil(4 * HOUR)
        assert metrics.reliability["requeues"] == 1

    def test_default_horizon_still_bills_the_trace_duration(self, htc_bundle):
        from repro.workloads.job import hour_ceil

        metrics = run_dcs(htc_bundle)
        nodes = htc_bundle.fixed_nodes
        assert metrics.resource_consumption == nodes * hour_ceil(
            htc_bundle.trace.duration
        )

    def test_late_finish_without_horizon_extension_is_not_counted(self):
        from repro.reliability import TraceDrivenFailures

        trace = make_trace(
            [make_job(1, submit=6000.0, size=2, runtime=1500.0)],
            nodes=4, duration=2 * HOUR,
        )
        bundle = WorkloadBundle.from_trace("tail", trace)  # horizon = 2 h
        model = TraceDrivenFailures(events=((0, 7000.0, 7300.0),))
        metrics = run_dcs(bundle, failures=model, seed=0)
        # the requeued attempt would finish at 8820 s > 7200 s: with the
        # default horizon the run ends first, consistently on both sides
        assert metrics.completed_jobs == 0
        assert metrics.resource_consumption == 4 * 2
