"""Unit tests for the provisioning kernel: ClusterState + BillingMeter."""

from __future__ import annotations

import pytest

from repro.provisioning.billing import (
    PerSecondMeter,
    PerStartedUnitMeter,
    TwoTierMeter,
    make_meter,
)
from repro.provisioning.state import ClusterState, ClusterStateError

HOUR = 3600.0


class TestClusterState:
    def test_initial_inventory_is_one_range(self):
        state = ClusterState(1_000_000)
        assert state.capacity == 1_000_000
        assert state.free_count == 1_000_000
        assert state.allocated_count == 0

    def test_assign_and_reclaim_roundtrip(self):
        state = ClusterState(100)
        state.assign("a", 30)
        state.assign("b", 20)
        assert state.free_count == 50
        assert state.owned_count("a") == 30
        assert state.owned_count("b") == 20
        state.reclaim("a", 10)
        assert state.owned_count("a") == 20
        assert state.free_count == 60
        state.reclaim("a", 20)
        state.reclaim("b", 20)
        assert state.free_count == 100
        # free index merges back into one contiguous block
        assert state._free == [(0, 100)]

    def test_overdraw_rejected(self):
        state = ClusterState(10)
        with pytest.raises(ClusterStateError):
            state.assign("a", 11)
        state.assign("a", 4)
        with pytest.raises(ClusterStateError):
            state.reclaim("a", 5)
        with pytest.raises(ClusterStateError):
            state.assign("a", 0)

    def test_adjustment_counter_accumulates(self):
        state = ClusterState(10)
        state.assign("a", 4)
        state.reclaim("a", 4)
        state.assign("b", 2)
        assert state.total_adjustments() == 10

    def test_fragmentation_and_partial_reclaim(self):
        state = ClusterState(10)
        state.assign("a", 4)
        state.assign("b", 4)
        state.reclaim("a", 4)  # hole in the middle of the id space
        assert state.free_count == 6
        got = state.assign("c", 6)  # must span the fragments
        assert sum(stop - start for start, stop in got) == 6
        assert state.free_count == 0

    def test_incremental_busy_integral(self):
        state = ClusterState(10)
        state.assign("a", 4, t=0.0)
        state.assign("b", 2, t=10.0)  # 4 busy for 10 s
        state.reclaim("a", 4, t=20.0)  # 6 busy for 10 s
        assert state.busy_node_seconds(30.0) == 4 * 10 + 6 * 10 + 2 * 10
        with pytest.raises(ClusterStateError):
            state.assign("c", 1, t=5.0)  # time cannot go backwards

    def test_reclaim_is_lifo_per_owner(self):
        state = ClusterState(10)
        first = state.assign("a", 3)
        second = state.assign("a", 3)
        freed = state.reclaim("a", 3)
        assert freed == second
        assert state.owned_ranges("a") == first


class TestBillingMeters:
    def test_per_started_unit_matches_paper_rule(self):
        meter = PerStartedUnitMeter()
        assert meter.charge(4, 0.0) == 4  # min one unit per lease
        assert meter.charge(4, 3600.0) == 4
        assert meter.charge(4, 3600.1) == 8
        assert meter.charge(1, 2 * HOUR) == 2

    def test_per_second_is_exact_above_the_floor(self):
        meter = PerSecondMeter(min_charge_s=60.0)
        assert meter.charge(2, 1800.0) == 2 * 1800.0 / HOUR
        assert meter.charge(2, 10.0) == 2 * 60.0 / HOUR  # floor
        assert PerSecondMeter(min_charge_s=0.0).charge(2, 10.0) == (
            2 * 10.0 / HOUR
        )

    def test_two_tier_splits_at_open_time_footprint(self):
        meter = TwoTierMeter(reserved_nodes=10, reserved_rate=0.5,
                             spot_rate=1.0)
        # whole lease inside the reserved pool
        assert meter.charge(4, HOUR, open_nodes_at_open=0) == 4 * 0.5
        # straddles the boundary: 2 reserved + 2 spot
        assert meter.charge(4, HOUR, open_nodes_at_open=8) == 2 * 0.5 + 2
        # fully beyond the reservation
        assert meter.charge(4, HOUR, open_nodes_at_open=10) == 4.0
        # per-started-unit rounding still applies
        assert meter.charge(4, HOUR + 1, open_nodes_at_open=10) == 8.0

    def test_make_meter_registry(self):
        assert isinstance(make_meter("per-hour"), PerStartedUnitMeter)
        assert isinstance(make_meter("per-second"), PerSecondMeter)
        spot = make_meter("reserved-spot", reserved_nodes=128)
        assert isinstance(spot, TwoTierMeter)
        assert spot.reserved_nodes == 128
        with pytest.raises(KeyError):
            make_meter("per-fortnight")

    def test_ledger_threads_the_meter(self):
        from repro.cluster.lease import LeaseLedger

        ledger = LeaseLedger(meter=PerSecondMeter(min_charge_s=0.0))
        lease = ledger.open_lease("a", 2, 0.0)
        assert ledger.close_lease(lease, 1800.0) == pytest.approx(1.0)
        assert ledger.charged_units_total("a") == pytest.approx(1.0)

    def test_ledger_records_open_footprint_for_tiering(self):
        from repro.cluster.lease import LeaseLedger

        ledger = LeaseLedger(
            meter=TwoTierMeter(reserved_nodes=3, reserved_rate=0.0,
                               spot_rate=1.0)
        )
        base = ledger.open_lease("a", 3, 0.0)  # fills the reservation
        burst = ledger.open_lease("a", 2, 0.0)  # all spot
        assert burst.open_nodes_at_open == 3
        assert ledger.close_lease(burst, HOUR) == 2.0
        assert ledger.close_lease(base, HOUR) == 0.0

    def test_reserved_spot_requires_a_reservation(self):
        with pytest.raises(ValueError, match="reserved_nodes"):
            make_meter("reserved-spot")
        with pytest.raises(ValueError, match="reserved_nodes"):
            make_meter("reserved-spot", reserved_nodes=0)
