"""Tests for the n×m federation framework (the paper's future work)."""

import pytest

from repro.core.policies import ResourceManagementPolicy
from repro.federation.model import (
    FederatedResourceProvider,
    Federation,
    least_loaded_placement,
    round_robin_placement,
)
from repro.systems.base import WorkloadBundle
from repro.workloads.workflow import Workflow
from tests.conftest import make_job, make_trace

HOUR = 3600.0


def bundle_with_work(name, n_jobs, size=2, runtime=900.0):
    jobs = [
        make_job(i, submit=(i - 1) * 120.0, size=size, runtime=runtime)
        for i in range(1, n_jobs + 1)
    ]
    return WorkloadBundle.from_trace(
        name, make_trace(jobs, nodes=16, duration=3 * HOUR, name=name)
    )


PROVIDERS = [
    FederatedResourceProvider("cloud-a", 64),
    FederatedResourceProvider("cloud-b", 64),
]
POLICY = ResourceManagementPolicy.for_htc(2, 1.5)


class TestProviders:
    def test_positive_capacity_required(self):
        with pytest.raises(ValueError):
            FederatedResourceProvider("x", 0)

    def test_unique_names_required(self):
        with pytest.raises(ValueError):
            Federation(
                [FederatedResourceProvider("a", 8), FederatedResourceProvider("a", 8)],
                {},
            )

    def test_at_least_one_provider(self):
        with pytest.raises(ValueError):
            Federation([], {})


class TestPlacementStrategies:
    def test_round_robin_cycles(self):
        bundles = [bundle_with_work(f"w{i}", 2) for i in range(5)]
        placement = round_robin_placement(bundles, PROVIDERS)
        assert [placement[f"w{i}"] for i in range(5)] == [
            "cloud-a",
            "cloud-b",
            "cloud-a",
            "cloud-b",
            "cloud-a",
        ]

    def test_least_loaded_balances_work(self):
        bundles = [
            bundle_with_work("big", 20),
            bundle_with_work("small1", 2),
            bundle_with_work("small2", 2),
        ]
        placement = least_loaded_placement(bundles, PROVIDERS)
        # the big bundle lands alone; the small ones go to the other cloud
        assert placement["small1"] == placement["small2"]
        assert placement["big"] != placement["small1"]

    def test_least_loaded_respects_capacity_ratio(self):
        providers = [
            FederatedResourceProvider("big-cloud", 128),
            FederatedResourceProvider("small-cloud", 16),
        ]
        bundles = [bundle_with_work(f"w{i}", 4) for i in range(6)]
        placement = least_loaded_placement(bundles, providers)
        big_share = sum(1 for t in placement.values() if t == "big-cloud")
        assert big_share >= 4  # the 8× larger cloud takes most of the work

    def test_empty_provider_list_rejected(self):
        with pytest.raises(ValueError):
            round_robin_placement([bundle_with_work("w", 1)], [])


class TestFederationRun:
    def _federation(self, bundles):
        return Federation(PROVIDERS, {b.name: POLICY for b in bundles})

    def test_placement_validation(self):
        bundles = [bundle_with_work("w0", 2)]
        fed = self._federation(bundles)
        with pytest.raises(ValueError):
            fed.place(bundles, strategy=lambda b, p: {"w0": "nope"})
        with pytest.raises(ValueError):
            fed.place(bundles, strategy=lambda b, p: {})

    def test_run_completes_all_jobs(self):
        bundles = [bundle_with_work("w0", 6), bundle_with_work("w1", 6)]
        fed = self._federation(bundles)
        result = fed.run(bundles)
        assert result.completed_jobs() == 12
        assert set(result.placement) == {"w0", "w1"}

    def test_total_consumption_sums_providers(self):
        bundles = [bundle_with_work("w0", 6), bundle_with_work("w1", 6)]
        result = self._federation(bundles).run(bundles)
        assert result.total_consumption == pytest.approx(
            sum(m.total_consumption for m in result.per_provider.values())
        )

    def test_unused_provider_not_reported(self):
        bundles = [bundle_with_work("w0", 4)]
        fed = self._federation(bundles)
        result = fed.run(bundles, placement={"w0": "cloud-a"})
        assert list(result.per_provider) == ["cloud-a"]

    def test_mtc_bundle_supported(self):
        tasks = [make_job(1, runtime=30, workflow_id=1)] + [
            make_job(i, runtime=30, deps=(1,), workflow_id=1) for i in range(2, 6)
        ]
        wf_bundle = WorkloadBundle.from_workflow(
            "wf", Workflow(1, tasks, name="wf"), fixed_nodes=2
        )
        htc = bundle_with_work("w0", 4)
        fed = Federation(
            PROVIDERS,
            {"w0": POLICY, "wf": ResourceManagementPolicy.for_mtc(2, 8.0)},
        )
        result = fed.run([htc, wf_bundle])
        assert result.completed_jobs() == 4 + 5
