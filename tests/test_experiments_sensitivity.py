"""Tests for the automated ablation & sensitivity engine (PR 10).

The pinned invariants:

* **Plans expand deterministically** — baseline first, digest run IDs,
  baseline markers aliasing the baseline run, unexpressible swaps
  recorded (never silently dropped), retargetable single-path grids
  collapsing into one prefix-shared swept spec.
* **The baseline runs once** — N one-off ablations over one baseline
  perform exactly one baseline execution; a second plan over the same
  baseline gets it back as a cache hit (the duplicate-baseline bug the
  hand-rolled sweeps used to have).
* **Run IDs are digest-stable across processes** and parallel execution
  is byte-identical to serial execution.
* **Deltas are antisymmetric** — swapping A→B measured from baseline A
  is the negated B→A delta on the shared metrics.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.spec import ExperimentSpec, spec_digest
from repro.experiments.cache import ResultCache, canonical_json
from repro.experiments.sensitivity import (
    AblationPlan,
    Alternative,
    ComponentAxis,
    PathGrid,
    baseline_from_scenario,
    execute_plan,
    generate_variants,
    markdown_table,
    perturbation_grids,
    plan_from_spec,
    render_report,
    run_ablation,
    scenario_plans,
    score_execution,
)

pytestmark = pytest.mark.timeout(300)

# a deliberately tiny trace so every engine test simulates in milliseconds
_JOBS = [
    [0, 0.0, 2, 300.0, 0, "htc"],
    [1, 60.0, 4, 600.0, 0, "htc"],
    [2, 120.0, 1, 900.0, 1, "htc"],
    [3, 600.0, 8, 300.0, 1, "htc"],
    [4, 1800.0, 2, 1200.0, 0, "htc"],
    [5, 3000.0, 4, 600.0, 1, "htc"],
]

_WORKLOAD = {
    "generator": "inline-trace",
    "params": {
        "name": "tiny",
        "machine_nodes": 16,
        "duration": 7200.0,
        "jobs": _JOBS,
    },
}

_POLICY = {"name": "paper-htc", "params": {"initial_nodes": 4}}
_ALT_POLICY = Alternative(
    "demand-tracking", {"initial_nodes": 4, "scan_interval_s": 60.0}
)


def _baseline(name: str = "tiny-base") -> ExperimentSpec:
    return ExperimentSpec(
        name=name,
        workloads=(_WORKLOAD,),
        systems=(
            {"runner": "dawningcloud", "params": {"capacity": 64},
             "policy": _POLICY},
        ),
    )


class TestPlanGeneration:
    def test_baseline_variant_comes_first(self):
        plan = AblationPlan(name="p", baseline=_baseline())
        variants, skipped = generate_variants(plan)
        assert len(variants) == 1 and not skipped
        assert variants[0].is_baseline
        assert variants[0].run_id == spec_digest(plan.baseline)

    def test_axis_baseline_marker_aliases_the_baseline_run(self):
        plan = AblationPlan(
            name="p",
            baseline=_baseline(),
            axes=(
                ComponentAxis(
                    kind="policy",
                    alternatives=(
                        Alternative("paper-htc", {"initial_nodes": 4}),
                        _ALT_POLICY,
                    ),
                    baseline="paper-htc",
                ),
            ),
        )
        variants, _ = generate_variants(plan)
        base, marker, swap = variants
        assert marker.run_id == base.run_id  # shares the execution
        assert marker.value == "paper-htc" and not marker.is_baseline
        assert swap.run_id != base.run_id

    def test_unexpressible_swaps_are_recorded_not_dropped(self):
        # eager-pool requires a 'cap' the baseline does not provide
        plan = AblationPlan(
            name="p",
            baseline=_baseline(),
            axes=(ComponentAxis(kind="policy", baseline="paper-htc"),),
        )
        variants, skipped = generate_variants(plan)
        assert any(s.value == "eager-pool" for s in skipped)
        assert all("requires parameter" in s.reason for s in skipped)
        assert all(v.value != "eager-pool" for v in variants)

    def test_unknown_axis_kind_raises(self):
        plan = AblationPlan(
            name="p",
            baseline=_baseline(),
            axes=(ComponentAxis(kind="frobnicator"),),
        )
        with pytest.raises(ValueError, match="frobnicator"):
            generate_variants(plan)

    def test_retargetable_grid_collapses_to_one_swept_variant(self):
        plan = AblationPlan(
            name="p",
            baseline=_baseline(),
            grids=(
                PathGrid(
                    label="cadence",
                    paths=("policy.params.release_check_interval_s",),
                    values=((1800.0,), (3600.0,), (7200.0,)),
                    baseline=(3600.0,),
                ),
            ),
        )
        variants, _ = generate_variants(plan)
        sweeps = [v for v in variants if v.sweep]
        assert len(sweeps) == 1
        (sweep,) = sweeps
        assert sweep.point == {
            "policy.params.release_check_interval_s": [1800.0, 7200.0]
        }
        # the marker point aliases the baseline instead of re-running
        markers = [
            v for v in variants
            if v.run_id == variants[0].run_id and not v.is_baseline
        ]
        assert len(markers) == 1

    def test_non_retargetable_grid_stays_per_point(self):
        plan = AblationPlan(
            name="p",
            baseline=_baseline(),
            grids=(
                PathGrid(
                    label="capacity",
                    paths=("params.capacity",),
                    values=((32,), (64,), (128,)),
                    baseline=(64,),
                ),
            ),
        )
        variants, _ = generate_variants(plan)
        assert not any(v.sweep for v in variants)
        off_baseline = [
            v for v in variants
            if v.point and v.run_id != variants[0].run_id
        ]
        assert len(off_baseline) == 2

    def test_grid_point_arity_is_validated(self):
        with pytest.raises(ValueError, match="does not match"):
            PathGrid(label="bad", paths=("a", "b"), values=((1.0,),))


class TestPlanFromSpec:
    def test_markers_inferred_from_the_spec(self):
        plan = plan_from_spec(_baseline())
        markers = {axis.kind: axis.baseline for axis in plan.axes}
        assert markers["policy"] == "paper-htc"
        # absent refs mean the paper defaults: per-started-hour billing,
        # first-fit dispatch on a DawningCloud-only baseline
        assert markers["billing-meter"] == "per-hour"
        assert markers["scheduler"] == "first-fit"
        assert markers["provisioning-policy"] == "consolidated"

    def test_perturbation_grids_bracket_the_baseline(self):
        grids = perturbation_grids(
            _baseline(), ("policy.params.threshold_ratio",), step=0.5
        )
        (grid,) = grids
        # paper-htc default threshold_ratio is 1.5
        assert grid.values == ((0.75,), (1.5,), (2.25,))
        assert grid.baseline == (1.5,)

    def test_perturbation_rejects_non_numeric_paths(self):
        with pytest.raises(ValueError, match="does not resolve"):
            perturbation_grids(_baseline(), ("policy.params.nope",))

    def test_step_must_be_positive(self):
        with pytest.raises(ValueError, match="step"):
            perturbation_grids(
                _baseline(), ("policy.params.threshold_ratio",), step=0.0
            )


class TestSingleBaselineExecution:
    """Satellite: N one-off ablations -> exactly one baseline run."""

    def _plan(self, axis_kind: str, **kwargs) -> AblationPlan:
        return AblationPlan(
            name=f"p-{axis_kind}",
            baseline=_baseline(),
            axes=(ComponentAxis(kind=axis_kind, **kwargs),),
        )

    def test_marker_variants_share_the_baseline_execution(self):
        plan = AblationPlan(
            name="p",
            baseline=_baseline(),
            axes=(
                ComponentAxis(
                    kind="policy",
                    alternatives=(
                        Alternative("paper-htc", {"initial_nodes": 4}),
                        _ALT_POLICY,
                    ),
                    baseline="paper-htc",
                ),
            ),
        )
        execution = execute_plan(plan)
        # three variants, two distinct configurations, two executions
        assert len(execution.variants) == 3
        assert len(execution.payloads) == 2
        assert sum(1 for c in execution.cached.values() if not c) == 2

    def test_two_plans_share_one_baseline_run_through_the_cache(
        self, tmp_path
    ):
        cache = ResultCache(tmp_path / "cache")
        sched = self._plan(
            "scheduler",
            alternatives=(Alternative("fcfs", params={}),),
        )
        pol = self._plan(
            "policy",
            alternatives=(_ALT_POLICY,),
        )
        first = execute_plan(sched, cache=cache)
        second = execute_plan(pol, cache=cache)
        base_id = spec_digest(_baseline())
        assert first.cached[base_id] is False  # the one real execution
        assert second.cached[base_id] is True  # shared, not re-run
        assert (
            canonical_json(first.payloads[base_id])
            == canonical_json(second.payloads[base_id])
        )


class TestDifferential:
    """Satellite: digest stability, parallel==serial, delta antisymmetry."""

    def _plan(self) -> AblationPlan:
        return AblationPlan(
            name="diff",
            baseline=_baseline(),
            axes=(
                ComponentAxis(
                    kind="scheduler",
                    alternatives=(
                        Alternative("fcfs", params={}),
                        Alternative("sjf", params={}),
                    ),
                ),
            ),
        )

    def test_run_ids_are_digest_stable_across_processes(self):
        variants, _ = generate_variants(self._plan())
        here = [v.run_id for v in variants]
        code = (
            "import json, sys\n"
            "sys.path.insert(0, 'tests')\n"
            "from test_experiments_sensitivity import TestDifferential\n"
            "from repro.experiments.sensitivity import generate_variants\n"
            "variants, _ = generate_variants(TestDifferential()._plan())\n"
            "print(json.dumps([v.run_id for v in variants]))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            cwd=str(Path(__file__).resolve().parent.parent),
        )
        assert json.loads(out.stdout) == here

    def test_parallel_execution_matches_serial_byte_for_byte(self):
        plan = self._plan()
        serial = execute_plan(plan, workers=0)
        parallel = execute_plan(plan, workers=2)
        assert canonical_json(serial.payloads) == canonical_json(
            parallel.payloads
        )

    def test_swap_delta_is_antisymmetric(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base_a = _baseline("base-a")
        base_b = ExperimentSpec(
            name="base-b",
            workloads=base_a.workloads,
            systems=(
                {
                    "runner": "dawningcloud",
                    "params": {"capacity": 64},
                    "policy": {
                        "name": "demand-tracking",
                        "params": {
                            "initial_nodes": 4, "scan_interval_s": 60.0
                        },
                    },
                },
            ),
        )
        a_to_b = run_ablation(
            AblationPlan(
                name="a->b", baseline=base_a,
                axes=(ComponentAxis("policy", (_ALT_POLICY,)),),
            ),
            cache=cache,
        )
        b_to_a = run_ablation(
            AblationPlan(
                name="b->a", baseline=base_b,
                axes=(
                    ComponentAxis(
                        "policy",
                        (Alternative("paper-htc", {"initial_nodes": 4}),),
                    ),
                ),
            ),
            cache=cache,
        )
        (ab,) = a_to_b.outcomes
        (ba,) = b_to_a.outcomes
        for key in ("cost_node_hours", "throughput_jobs"):
            delta_ab = ab.deltas[key]
            delta_ba = ba.deltas[key]
            assert delta_ab is not None and delta_ba is not None
            assert delta_ab == pytest.approx(-delta_ba)


class TestScoring:
    def test_failed_variant_becomes_a_recorded_skip(self):
        plan = AblationPlan(
            name="p",
            baseline=_baseline(),
            axes=(
                ComponentAxis(
                    kind="scheduler",
                    alternatives=(Alternative("fcfs", params={}),),
                ),
            ),
        )
        execution = execute_plan(plan)
        swap_id = execution.variants[1].run_id
        execution.payloads[swap_id] = None  # simulate a dead run
        report = score_execution(execution)
        assert not report.outcomes
        assert any(s.reason == "execution failed" for s in report.skipped)

    def test_report_payload_shape(self):
        plan = AblationPlan(
            name="p",
            baseline=_baseline(),
            axes=(
                ComponentAxis(
                    kind="scheduler",
                    alternatives=(Alternative("fcfs", params={}),),
                ),
            ),
        )
        payload = run_ablation(plan).to_payload()
        assert payload["plan"] == "p"
        assert payload["executed"] == 2 and payload["cache_hits"] == 0
        assert set(payload["baseline"]) >= {"run_id", "cost_node_hours",
                                            "throughput_jobs"}
        (row,) = payload["rows"]
        assert row["axis"] == "scheduler" and row["component"] == "fcfs"
        assert "importance" in row and "harmful" in row


class TestScenarioPlans:
    def test_sweep_scenarios_are_rejected_with_reasons(self):
        plans, rejected = scenario_plans("fig09-*")
        assert not plans
        assert rejected
        assert all("no single baseline" in r for r in rejected.values())

    def test_table2_reduces_to_a_dawningcloud_baseline(self):
        spec = baseline_from_scenario("table2-nasa")
        assert [s.runner for s in spec.systems] == ["dawningcloud"]
        (plan,), rejected = scenario_plans("table2-nasa")
        assert not rejected
        assert plan.name == "ablate:table2-nasa"

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            baseline_from_scenario("no-such-scenario")


class TestRendering:
    def test_markdown_table_formats_and_orders_columns(self):
        table = markdown_table(
            [
                {"a": 1.23456, "b": None, "c": True},
                {"a": 2.0, "d": "x"},
            ]
        )
        lines = table.splitlines()
        assert lines[0] == "| a | b | c | d |"
        assert "1.235" in lines[2] and "—" in lines[2] and "yes" in lines[2]

    def test_render_report_marks_harmful_and_lists_skips(self):
        plan = plan_from_spec(_baseline(), kinds=("policy",))
        text = render_report(run_ablation(plan))
        assert text.startswith("### Ablation & sensitivity: ")
        assert "ranked by importance" in text
        assert "Not expressible from this baseline:" in text
        assert "`policy`/`eager-pool`" in text
