"""Tests for the job/trace data model."""

import pytest

from repro.workloads.job import JobState, hour_ceil, validate_dependencies
from tests.conftest import make_job, make_trace


class TestJob:
    def test_work_is_size_times_runtime(self):
        assert make_job(1, size=4, runtime=100).work == 400

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            make_job(1, size=0)

    def test_negative_runtime_rejected(self):
        with pytest.raises(ValueError):
            make_job(1, runtime=-1)

    def test_negative_submit_rejected(self):
        with pytest.raises(ValueError):
            make_job(1, submit=-5)

    def test_lifecycle_happy_path(self):
        job = make_job(1, submit=10, runtime=50)
        job.mark_queued(10)
        job.mark_running(30)
        job.mark_completed(80)
        assert job.state is JobState.COMPLETED
        assert job.wait_time == 20
        assert job.finish_time == 80

    def test_cannot_run_before_queued(self):
        job = make_job(1)
        with pytest.raises(RuntimeError):
            job.mark_running(0)

    def test_cannot_complete_before_running(self):
        job = make_job(1)
        job.mark_queued(0)
        with pytest.raises(RuntimeError):
            job.mark_completed(1)

    def test_reset_clears_execution_state(self):
        job = make_job(1)
        job.mark_queued(0)
        job.mark_running(1)
        job.mark_completed(2)
        job.reset()
        assert job.state is JobState.PENDING
        assert job.start_time is None and job.finish_time is None

    def test_workflow_task_flag(self):
        assert make_job(1, workflow_id=3).is_workflow_task
        assert not make_job(1).is_workflow_task


class TestHourCeil:
    def test_rounds_up(self):
        assert hour_ceil(3601) == 2

    def test_exact_hours_not_inflated(self):
        assert hour_ceil(7200) == 2

    def test_minimum_one_unit(self):
        assert hour_ceil(0) == 1
        assert hour_ceil(1) == 1

    def test_custom_unit(self):
        assert hour_ceil(90, unit=60) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            hour_ceil(-1)


class TestTrace:
    def test_jobs_sorted_by_submit_time(self):
        jobs = [make_job(1, submit=100), make_job(2, submit=50)]
        trace = make_trace(jobs)
        assert [j.job_id for j in trace] == [2, 1]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            make_trace([make_job(1), make_job(1)])

    def test_oversized_job_rejected(self):
        with pytest.raises(ValueError):
            make_trace([make_job(1, size=32)], nodes=16)

    def test_utilization(self):
        trace = make_trace([make_job(1, size=8, runtime=3600)], nodes=16,
                           duration=3600)
        assert trace.utilization == pytest.approx(0.5)

    def test_total_work(self, small_trace):
        assert small_trace.total_work == sum(j.work for j in small_trace)

    def test_reset_resets_all_jobs(self, small_trace):
        small_trace.jobs[0].mark_queued(0)
        small_trace.reset()
        assert all(j.state is JobState.PENDING for j in small_trace)

    def test_copy_is_independent(self, small_trace):
        clone = small_trace.copy()
        clone.jobs[0].mark_queued(0)
        assert small_trace.jobs[0].state is JobState.PENDING

    def test_subset_rebases_times(self, small_trace):
        sub = small_trace.subset(1000, 5000)
        assert all(0 <= j.submit_time < 4000 for j in sub)

    def test_job_by_id(self, small_trace):
        assert small_trace.job_by_id(5).job_id == 5
        with pytest.raises(KeyError):
            small_trace.job_by_id(999)

    def test_max_size(self, small_trace):
        assert small_trace.max_size == 16


class TestValidateDependencies:
    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_dependencies([make_job(1, deps=(99,))])

    def test_cycle_rejected(self):
        jobs = [make_job(1, deps=(2,)), make_job(2, deps=(1,))]
        with pytest.raises(ValueError, match="cycle"):
            validate_dependencies(jobs)

    def test_valid_dag_accepted(self):
        jobs = [make_job(1), make_job(2, deps=(1,)), make_job(3, deps=(1, 2))]
        validate_dependencies(jobs)

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            validate_dependencies([make_job(1, deps=(1,))])
