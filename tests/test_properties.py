"""Property-based tests (hypothesis) on core data structures and invariants."""


import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.lease import HOUR, LeaseLedger
from repro.metrics.timeseries import UsageRecorder
from repro.scheduling.backfill import EasyBackfillScheduler
from repro.scheduling.base import RunningJob
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from repro.workloads.job import hour_ceil
from repro.workloads.swf import parse_swf, write_swf
from repro.workloads.workflowgen import layered_random
from tests.conftest import make_job, make_trace

# ---------------------------------------------------------------------- #
# strategies
# ---------------------------------------------------------------------- #
job_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=32),  # size
        st.floats(min_value=1.0, max_value=50_000.0, allow_nan=False),  # runtime
    ),
    min_size=1,
    max_size=30,
).map(
    lambda specs: [
        make_job(i + 1, submit=0.0, size=s, runtime=r)
        for i, (s, r) in enumerate(specs)
    ]
)


class TestHourCeilProperties:
    @given(st.floats(min_value=0.0, max_value=1e7, allow_nan=False))
    def test_bounds(self, seconds):
        units = hour_ceil(seconds)
        assert units >= 1
        assert units * HOUR >= seconds
        assert (units - 1) * HOUR < seconds or units == 1

    @given(st.integers(min_value=1, max_value=10_000))
    def test_exact_hours_not_inflated(self, hours):
        assert hour_ceil(hours * HOUR) == hours


class TestLeaseProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=100),  # nodes
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),  # open
                st.floats(min_value=0.0, max_value=1e6, allow_nan=False),  # length
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_charge_bounds(self, spans):
        """charge is >= exact usage and < exact + one unit per node."""
        ledger = LeaseLedger()
        exact_units = 0.0
        slack_units = 0
        for n, t0, length in spans:
            lease = ledger.open_lease("c", n, t0)
            ledger.close_lease(lease, t0 + length)
            exact_units += n * length / HOUR
            slack_units += n
        charged = ledger.charged_units_total("c")
        assert charged >= exact_units - 1e-6
        assert charged < exact_units + slack_units + 1e-6

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50),
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_open_nodes_matches_sum(self, opens):
        ledger = LeaseLedger()
        for n, t in opens:
            ledger.open_lease("c", n, t)
        assert ledger.open_nodes("c") == sum(n for n, _ in opens)


class TestSchedulerProperties:
    @given(job_lists, st.integers(min_value=0, max_value=64))
    def test_firstfit_never_overcommits(self, jobs, free):
        picked = FirstFitScheduler().select(0.0, jobs, free)
        assert sum(j.size for j in picked) <= free

    @given(job_lists, st.integers(min_value=0, max_value=64))
    def test_fcfs_picks_a_prefix_of_fitting_jobs(self, jobs, free):
        picked = FcfsScheduler().select(0.0, jobs, free)
        assert picked == jobs[: len(picked)]
        assert sum(j.size for j in picked) <= free

    @given(job_lists, st.integers(min_value=0, max_value=64))
    def test_fcfs_subset_of_firstfit(self, jobs, free):
        ff = {j.job_id for j in FirstFitScheduler().select(0.0, jobs, free)}
        fc = {j.job_id for j in FcfsScheduler().select(0.0, jobs, free)}
        assert fc <= ff

    @given(job_lists, st.integers(min_value=0, max_value=64))
    def test_firstfit_no_duplicates(self, jobs, free):
        picked = FirstFitScheduler().select(0.0, jobs, free)
        ids = [j.job_id for j in picked]
        assert len(ids) == len(set(ids))

    @given(
        job_lists,
        st.integers(min_value=0, max_value=64),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=16),
                st.floats(min_value=1.0, max_value=1e5, allow_nan=False),
            ),
            max_size=10,
        ),
    )
    def test_backfill_never_overcommits(self, jobs, free, running_specs):
        running = [
            RunningJob(make_job(1000 + i, size=s, runtime=1.0), finish_time=f)
            for i, (s, f) in enumerate(running_specs)
        ]
        picked = EasyBackfillScheduler().select(0.0, jobs, free, running)
        assert sum(j.size for j in picked) <= free


class TestUsageRecorderProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10 * HOUR, allow_nan=False),
                st.integers(min_value=1, max_value=50),
                st.floats(min_value=1.0, max_value=5 * HOUR, allow_nan=False),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_peak_bounds_integral(self, spans):
        """integral <= peak × horizon; peak <= sum of all deltas."""
        rec = UsageRecorder()
        horizon = 16 * HOUR
        for start, n, length in spans:
            rec.record(start, n)
            rec.record(min(start + length, horizon), -n)
        integral = rec.integral_node_seconds(horizon)
        peak = rec.peak(horizon)
        assert integral <= peak * horizon + 1e-6
        assert peak <= sum(n for _, n, _ in spans)


class TestWorkflowGenProperties:
    @given(
        st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_layered_random_always_valid_dag(self, widths, seed):
        wf = layered_random(widths, seed=seed)
        assert nx.is_directed_acyclic_graph(wf.graph)
        assert wf.level_widths() == widths
        assert wf.critical_path_length() <= wf.total_work() + 1e-9


class TestSwfRoundTripProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=16),  # size
                st.integers(min_value=1, max_value=100_000),  # runtime s
                st.integers(min_value=0, max_value=1_000_000),  # submit s
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_preserves_schedule_fields(self, specs):
        jobs = [
            make_job(i + 1, submit=float(sub), size=s, runtime=float(r))
            for i, (s, r, sub) in enumerate(specs)
        ]
        trace = make_trace(jobs, nodes=16, duration=2_000_000.0)
        parsed = parse_swf(write_swf(trace))
        assert len(parsed) == len(trace)
        for a, b in zip(trace, parsed):
            assert (a.job_id, a.size) == (b.job_id, b.size)
            assert b.runtime == pytest.approx(a.runtime, abs=0.5)
            assert b.submit_time == pytest.approx(a.submit_time, abs=0.5)
