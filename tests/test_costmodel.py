"""Tests for the TCO cost models (§4.5.5)."""

import pytest

from repro.costmodel.compare import compare_dcs_vs_ssp, paper_case_study
from repro.costmodel.pricing import EC2_2009_SMALL, HOURS_PER_MONTH, InstancePricing
from repro.costmodel.tco import (
    BJUT_DCS_CASE,
    BJUT_SSP_CASE,
    DCSCostModel,
    SSPCostModel,
)


class TestPricing:
    def test_paper_ec2_rates(self):
        assert EC2_2009_SMALL.usd_per_instance_hour == 0.10
        assert EC2_2009_SMALL.usd_per_gb_inbound == 0.10

    def test_monthly_instance_cost(self):
        # 30 instances × 30 days × 24 hours × $0.1 = $2160 (the paper's sum)
        assert EC2_2009_SMALL.monthly_instance_cost(30) == pytest.approx(2160)

    def test_transfer_cost(self):
        assert EC2_2009_SMALL.transfer_cost(1000) == pytest.approx(100)

    def test_hours_per_month_is_30_days(self):
        assert HOURS_PER_MONTH == 720

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            InstancePricing("x", -0.1, 0.0)

    def test_negative_usage_rejected(self):
        with pytest.raises(ValueError):
            EC2_2009_SMALL.instance_cost(-1, 10)
        with pytest.raises(ValueError):
            EC2_2009_SMALL.transfer_cost(-1)


class TestDcsModel:
    def test_paper_case_monthly_tco(self):
        # $120,000/96 + $30,000/96 + $1,600 = $3,162.50 (the paper's $3,160)
        assert BJUT_DCS_CASE.tco_per_month() == pytest.approx(3162.5)

    def test_components(self):
        assert BJUT_DCS_CASE.capex_per_month == pytest.approx(1250.0)
        assert BJUT_DCS_CASE.maintenance_per_month == pytest.approx(312.5)
        assert BJUT_DCS_CASE.opex_per_month == pytest.approx(1912.5)

    def test_depreciation_cycle_validation(self):
        with pytest.raises(ValueError):
            DCSCostModel(1000, 0, 0, 0)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            DCSCostModel(-1, 8, 0, 0)


class TestSspModel:
    def test_paper_case_monthly_tco(self):
        # $2,160 instances + $100 inbound = $2,260
        assert BJUT_SSP_CASE.tco_per_month() == pytest.approx(2260.0)

    def test_components(self):
        assert BJUT_SSP_CASE.instance_cost_per_month == pytest.approx(2160.0)
        assert BJUT_SSP_CASE.transfer_cost_per_month == pytest.approx(100.0)

    def test_negative_instances_rejected(self):
        with pytest.raises(ValueError):
            SSPCostModel(EC2_2009_SMALL, -1, 0)


class TestComparison:
    def test_paper_ratio(self):
        """§4.5.5: the SSP TCO is 71.5% of the DCS TCO."""
        comparison = paper_case_study()
        assert comparison.ssp_over_dcs == pytest.approx(0.715, abs=0.002)
        assert comparison.ssp_cheaper

    def test_monthly_saving(self):
        comparison = paper_case_study()
        assert comparison.monthly_saving() == pytest.approx(902.5)

    def test_custom_comparison(self):
        dcs = DCSCostModel(96_000, 8, 0, 1000)
        ssp = SSPCostModel(EC2_2009_SMALL, 10, 0)
        comparison = compare_dcs_vs_ssp(dcs, ssp)
        assert comparison.dcs_tco_per_month == pytest.approx(2000)
        assert comparison.ssp_tco_per_month == pytest.approx(720)

    def test_str_rendering(self):
        text = str(paper_case_study())
        assert "71.5%" in text
