"""Tests for periodic and one-shot timers."""

import pytest

from repro.simkit.timers import OneShotTimer, PeriodicTimer


class TestPeriodicTimer:
    def test_fires_every_interval(self, engine):
        ticks = []
        PeriodicTimer(engine, 60.0, lambda: ticks.append(engine.now)).start()
        engine.run(until=300.0)
        assert ticks == [60.0, 120.0, 180.0, 240.0, 300.0]

    def test_first_fire_is_one_interval_after_start(self, engine):
        ticks = []
        PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now)).start()
        engine.run(until=9.0)
        assert ticks == []

    def test_stop_prevents_future_fires(self, engine):
        ticks = []
        timer = PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.schedule(25.0, timer.stop)
        engine.run(until=100.0)
        assert ticks == [10.0, 20.0]

    def test_callback_may_stop_its_own_timer(self, engine):
        timer = PeriodicTimer(engine, 5.0, lambda: timer.stop())
        timer.start()
        engine.run(until=100.0)
        assert timer.fire_count == 1
        assert not timer.active

    def test_fire_count(self, engine):
        timer = PeriodicTimer(engine, 1.0, lambda: None)
        timer.start()
        engine.run(until=7.5)
        assert timer.fire_count == 7

    def test_double_start_rejected(self, engine):
        timer = PeriodicTimer(engine, 1.0, lambda: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_nonpositive_interval_rejected(self, engine):
        with pytest.raises(ValueError):
            PeriodicTimer(engine, 0.0, lambda: None)

    def test_args_are_passed(self, engine):
        seen = []
        PeriodicTimer(engine, 1.0, seen.append, "payload").start()
        engine.run(until=2.0)
        assert seen == ["payload", "payload"]


class TestOneShotTimer:
    def test_fires_once(self, engine):
        seen = []
        OneShotTimer(engine, 5.0, seen.append, "x")
        engine.run(until=100.0)
        assert seen == ["x"]

    def test_cancel_before_fire(self, engine):
        seen = []
        timer = OneShotTimer(engine, 5.0, seen.append, "x")
        timer.cancel()
        engine.run(until=100.0)
        assert seen == []
        assert not timer.active

    def test_fired_flag(self, engine):
        timer = OneShotTimer(engine, 1.0, lambda: None)
        assert not timer.fired
        engine.run(until=2.0)
        assert timer.fired


class TestGridTicksAndDrift:
    """PR 3: the n-th tick is epoch + n*interval, never an accumulated sum."""

    def test_no_float_drift_over_1e5_ticks(self, engine):
        # 0.1 is not exactly representable: accumulating t += 0.1 drifts by
        # ~1e-7 per 1e5 ticks, while the grid form stays exact to 1 ulp.
        interval = 0.1
        times = []
        timer = PeriodicTimer(engine, interval, lambda: times.append(engine.now))
        timer.start()
        n = 100_000
        engine.run(until=n * interval)
        assert timer.fire_count == n
        for k in (1, 10, 9_999, 50_000, n - 1):
            expected = (k + 1) * interval
            assert abs(times[k] - expected) <= abs(expected) * 1e-15, (
                f"tick {k}: {times[k]!r} drifted from {expected!r}"
            )

    def test_epoch_anchors_to_start_time(self, engine):
        ticks = []
        engine.schedule_at(
            7.0, lambda: PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now)).start()
        )
        engine.run(until=40.0)
        assert ticks == [17.0, 27.0, 37.0]


class TestSuspendResume:
    """PR 3: idle-gap fast-forward — suspended timers skip quiet stretches
    but every tick that fires lands on the original grid instants."""

    def test_suspend_stops_firing(self, engine):
        ticks = []
        timer = PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.schedule_at(25.0, timer.suspend)
        engine.run(until=100.0)
        assert ticks == [10.0, 20.0]
        assert timer.suspended and not timer.active

    def test_resume_rejoins_the_original_grid(self, engine):
        ticks = []
        timer = PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.schedule_at(25.0, timer.suspend)
        engine.schedule_at(73.5, timer.resume)
        engine.run(until=100.0)
        # ticks at 30..70 skipped; resumption continues on the 10 s grid
        assert ticks == [10.0, 20.0, 80.0, 90.0, 100.0]

    def test_resume_within_same_interval_loses_nothing(self, engine):
        ticks = []
        timer = PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.schedule_at(20.5, timer.suspend)
        engine.schedule_at(24.0, timer.resume)  # before the armed tick at 30
        engine.run(until=50.0)
        assert ticks == [10.0, 20.0, 30.0, 40.0, 50.0]

    def test_resume_on_grid_instant_fires_that_tick_by_default(self, engine):
        ticks = []
        timer = PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.schedule_at(15.0, timer.suspend)
        engine.schedule_at(40.0, timer.resume)  # exactly a lapsed grid slot
        engine.run(until=60.0)
        assert ticks == [10.0, 40.0, 50.0, 60.0]

    def test_resume_on_grid_instant_exclusive_variant(self, engine):
        ticks = []
        timer = PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.schedule_at(15.0, timer.suspend)
        engine.schedule_at(40.0, lambda: timer.resume(include_now=False))
        engine.run(until=60.0)
        assert ticks == [10.0, 50.0, 60.0]

    def test_fire_count_excludes_suspended_stretch(self, engine):
        timer = PeriodicTimer(engine, 1.0, lambda: None)
        timer.start()
        engine.schedule_at(3.5, timer.suspend)
        engine.schedule_at(97.2, timer.resume)
        engine.run(until=100.0)
        assert timer.fire_count == 3 + 3  # t=1..3 then t=98..100

    def test_suspend_resume_is_idempotent(self, engine):
        timer = PeriodicTimer(engine, 5.0, lambda: None)
        timer.start()
        timer.suspend()
        timer.suspend()
        timer.resume()
        timer.resume()
        engine.run(until=10.0)
        assert timer.fire_count == 2

    def test_stop_while_suspended(self, engine):
        timer = PeriodicTimer(engine, 5.0, lambda: None)
        timer.start()
        engine.schedule_at(7.0, timer.suspend)
        engine.schedule_at(8.0, timer.stop)
        engine.run(until=50.0)
        assert timer.fire_count == 1
        assert not timer.active and not timer.suspended


class TestResumeFloatKnifeEdge:
    """PR 6: the resume() boundary must survive float error in either
    direction.  ``(now - epoch) / interval`` can land just above the true
    tick index when the waker sits exactly on an unfired grid instant; the
    old ``ceil`` then skipped the tick that must still fire at ``now``.
    The grid instants themselves are always the *product* form
    ``epoch + n*interval`` (what ``_arm`` schedules), so the tests build
    ``now`` the same way.
    """

    # concrete (epoch, interval, m) triples where the quotient floats just
    # above the integer m although epoch + m*interval == now exactly
    KNIFE_EDGES = [
        (134364.2441124012, 0.3, 33434),
        (117918.70367106106, 0.7, 61900),
        (651592.972722763, 7.7, 12304),
        (22322.111021323864, 0.025, 1208),
        (939167.0189485865, 0.025, 30552),
    ]

    def _resume_at_grid_instant(self, epoch, interval, m, include_now):
        from repro.simkit.engine import SimulationEngine

        engine = SimulationEngine(start_time=epoch)
        fires = []
        timer = PeriodicTimer(engine, interval, lambda: fires.append(engine.now))
        timer.start()
        timer.suspend()
        target = epoch + m * interval
        engine.schedule_at(target, timer.resume, include_now)
        engine.run(until=target)
        return fires, target, timer

    @pytest.mark.parametrize("epoch,interval,m", KNIFE_EDGES)
    def test_waker_on_unfired_grid_instant_fires_that_tick(
        self, epoch, interval, m
    ):
        fires, target, _ = self._resume_at_grid_instant(
            epoch, interval, m, include_now=True
        )
        assert fires == [target]

    @pytest.mark.parametrize("epoch,interval,m", KNIFE_EDGES)
    def test_exclusive_waker_on_grid_instant_stays_strictly_after(
        self, epoch, interval, m
    ):
        fires, target, timer = self._resume_at_grid_instant(
            epoch, interval, m, include_now=False
        )
        assert fires == []
        assert timer._epoch + timer._n * timer.interval > target

    def test_resume_grid_boundary_hypothesis(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=300, deadline=None)
        @given(
            epoch=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            interval=st.sampled_from(
                [0.025, 0.1, 0.3, 1 / 3, 0.7, 2.5, 3.0, 7.7, 60.0, 3600.0]
            ),
            m=st.integers(min_value=2, max_value=100_000),
            include_now=st.booleans(),
        )
        def check(epoch, interval, m, include_now):
            fires, target, timer = self._resume_at_grid_instant(
                epoch, interval, m, include_now
            )
            if include_now:
                # the boundary tick at `now` must fire, and nothing earlier
                assert fires == [target]
            else:
                # strictly after: nothing fires by `target`, and the armed
                # tick is the first grid instant past it
                assert fires == []
                next_t = timer._epoch + timer._n * timer.interval
                assert next_t > target
                assert timer._epoch + (timer._n - 1) * timer.interval <= target

        check()
