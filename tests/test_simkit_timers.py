"""Tests for periodic and one-shot timers."""

import pytest

from repro.simkit.timers import OneShotTimer, PeriodicTimer


class TestPeriodicTimer:
    def test_fires_every_interval(self, engine):
        ticks = []
        PeriodicTimer(engine, 60.0, lambda: ticks.append(engine.now)).start()
        engine.run(until=300.0)
        assert ticks == [60.0, 120.0, 180.0, 240.0, 300.0]

    def test_first_fire_is_one_interval_after_start(self, engine):
        ticks = []
        PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now)).start()
        engine.run(until=9.0)
        assert ticks == []

    def test_stop_prevents_future_fires(self, engine):
        ticks = []
        timer = PeriodicTimer(engine, 10.0, lambda: ticks.append(engine.now))
        timer.start()
        engine.schedule(25.0, timer.stop)
        engine.run(until=100.0)
        assert ticks == [10.0, 20.0]

    def test_callback_may_stop_its_own_timer(self, engine):
        timer = PeriodicTimer(engine, 5.0, lambda: timer.stop())
        timer.start()
        engine.run(until=100.0)
        assert timer.fire_count == 1
        assert not timer.active

    def test_fire_count(self, engine):
        timer = PeriodicTimer(engine, 1.0, lambda: None)
        timer.start()
        engine.run(until=7.5)
        assert timer.fire_count == 7

    def test_double_start_rejected(self, engine):
        timer = PeriodicTimer(engine, 1.0, lambda: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_nonpositive_interval_rejected(self, engine):
        with pytest.raises(ValueError):
            PeriodicTimer(engine, 0.0, lambda: None)

    def test_args_are_passed(self, engine):
        seen = []
        PeriodicTimer(engine, 1.0, seen.append, "payload").start()
        engine.run(until=2.0)
        assert seen == ["payload", "payload"]


class TestOneShotTimer:
    def test_fires_once(self, engine):
        seen = []
        OneShotTimer(engine, 5.0, seen.append, "x")
        engine.run(until=100.0)
        assert seen == ["x"]

    def test_cancel_before_fire(self, engine):
        seen = []
        timer = OneShotTimer(engine, 5.0, seen.append, "x")
        timer.cancel()
        engine.run(until=100.0)
        assert seen == []
        assert not timer.active

    def test_fired_flag(self, engine):
        timer = OneShotTimer(engine, 1.0, lambda: None)
        assert not timer.fired
        engine.run(until=2.0)
        assert timer.fired
