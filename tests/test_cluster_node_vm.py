"""Tests for the node pool and VM provisioning state machines."""

import pytest

from repro.cluster.node import Node, NodePool, NodeState
from repro.cluster.vm import VMProvisionService, VMState
from repro.simkit.engine import SimulationEngine


class TestNode:
    def test_assign_reclaim_cycle(self):
        node = Node(0)
        node.begin_assign("tre-a")
        node.finish_assign()
        assert node.state is NodeState.ASSIGNED
        assert node.owner == "tre-a"
        node.begin_reclaim()
        node.finish_reclaim()
        assert node.state is NodeState.FREE
        assert node.owner is None
        assert node.adjust_count == 2

    def test_illegal_transition_rejected(self):
        node = Node(0)
        with pytest.raises(RuntimeError):
            node.finish_assign()  # FREE -> ASSIGNED skips ASSIGNING

    def test_cannot_reclaim_free_node(self):
        node = Node(0)
        with pytest.raises(RuntimeError):
            node.begin_reclaim()


class TestNodePool:
    def test_capacity_accounting(self):
        pool = NodePool(10)
        pool.assign("a", 4)
        assert pool.free_count == 6
        assert pool.owned_count("a") == 4

    def test_over_assignment_rejected(self):
        pool = NodePool(4)
        with pytest.raises(ValueError):
            pool.assign("a", 5)

    def test_reclaim_returns_to_free(self):
        pool = NodePool(8)
        pool.assign("a", 5)
        pool.reclaim("a", 3)
        assert pool.free_count == 6
        assert pool.owned_count("a") == 2

    def test_cannot_reclaim_more_than_owned(self):
        pool = NodePool(8)
        pool.assign("a", 2)
        with pytest.raises(ValueError):
            pool.reclaim("a", 3)

    def test_total_adjustments(self):
        pool = NodePool(8)
        pool.assign("a", 4)
        pool.reclaim("a", 4)
        assert pool.total_adjustments() == 8

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            NodePool(0)

    def test_two_owners_disjoint(self):
        pool = NodePool(10)
        a = {n.node_id for n in pool.assign("a", 4)}
        b = {n.node_id for n in pool.assign("b", 4)}
        assert not (a & b)


class TestVMProvision:
    def test_boot_latency(self):
        engine = SimulationEngine()
        svc = VMProvisionService(engine, boot_latency_s=30.0)
        booted = []
        vm = svc.create(node_id=1, on_running=lambda v: booted.append(engine.now))
        assert vm.state is VMState.BOOTING
        engine.run()
        assert vm.state is VMState.RUNNING
        assert booted == [30.0]
        assert vm.boot_time == 30.0

    def test_destroy_mid_boot_suppresses_running(self):
        engine = SimulationEngine()
        svc = VMProvisionService(engine, boot_latency_s=30.0)
        booted = []
        vm = svc.create(node_id=1, on_running=lambda v: booted.append(1))
        engine.schedule(10.0, svc.destroy, vm)
        engine.run()
        assert vm.state is VMState.DESTROYED
        assert booted == []

    def test_running_count(self):
        engine = SimulationEngine()
        svc = VMProvisionService(engine, boot_latency_s=1.0)
        svc.create(1)
        svc.create(2)
        engine.run()
        assert svc.running_count() == 2

    def test_cannot_destroy_twice(self):
        engine = SimulationEngine()
        svc = VMProvisionService(engine, boot_latency_s=0.0)
        vm = svc.create(1)
        engine.run()
        svc.destroy(vm)
        with pytest.raises(RuntimeError):
            svc.destroy(vm)
