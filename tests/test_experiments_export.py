"""Tests for the machine-readable export layer (experiments.export)."""

import csv
import json

import pytest

from repro.experiments.export import (
    export_all,
    rows_to_csv,
    rows_to_json,
    write_rows,
)

ROWS = [
    {"system": "DCS", "cost": 43008, "saving": None},
    {"system": "DawningCloud", "cost": 29014, "saving": 0.325},
]


class TestSerializers:
    def test_csv_round_trip(self):
        text = rows_to_csv(ROWS)
        back = list(csv.DictReader(text.splitlines()))
        assert back[0]["system"] == "DCS"
        assert back[1]["cost"] == "29014"

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_json_round_trip(self):
        back = json.loads(rows_to_json(ROWS))
        assert back == ROWS

    def test_column_order_preserved(self):
        header = rows_to_csv(ROWS).splitlines()[0]
        assert header == "system,cost,saving"


class TestWriteRows:
    def test_csv_file(self, tmp_path):
        p = write_rows(ROWS, tmp_path / "t.csv")
        assert p.exists()
        assert "DawningCloud" in p.read_text()

    def test_json_file(self, tmp_path):
        p = write_rows(ROWS, tmp_path / "t.json")
        assert json.loads(p.read_text())[1]["saving"] == 0.325

    def test_unknown_suffix(self, tmp_path):
        with pytest.raises(ValueError, match="suffix"):
            write_rows(ROWS, tmp_path / "t.xlsx")


@pytest.mark.slow  # full evaluation: every table, sweep and figure
class TestExportAll:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        from repro.experiments.config import EvaluationSetup

        outdir = tmp_path_factory.mktemp("export")
        paths = export_all(outdir, EvaluationSetup(seed=0))
        return outdir, paths

    def test_one_file_per_artifact(self, exported):
        outdir, paths = exported
        names = {p.stem for p in paths}
        assert {
            "table1_usage_models",
            "table2_nasa",
            "table3_blue",
            "table4_montage",
            "fig09_sweep_blue",
            "fig10_sweep_nasa",
            "fig11_sweep_montage",
            "fig12_fig13_fig14_consolidated",
            "tco_case_study",
        } == names
        assert all(p.exists() and p.stat().st_size > 0 for p in paths)

    def test_table2_contents(self, exported):
        outdir, _ = exported
        rows = list(csv.DictReader(
            (outdir / "table2_nasa.csv").read_text().splitlines()
        ))
        assert [r["configuration"] for r in rows] == [
            "DCS system", "SSP system", "DRP system", "DawningCloud",
        ]

    def test_consolidated_has_four_systems(self, exported):
        outdir, _ = exported
        rows = list(csv.DictReader(
            (outdir / "fig12_fig13_fig14_consolidated.csv").read_text()
            .splitlines()
        ))
        assert {r["system"] for r in rows} == {
            "DCS", "SSP", "DRP", "DawningCloud",
        }

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fmt"):
            export_all(tmp_path, fmt="xml")
