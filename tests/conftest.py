"""Shared fixtures and builders for the test suite."""

from __future__ import annotations

import pytest

from repro.simkit.engine import SimulationEngine
from repro.workloads.job import Job, Trace
from repro.workloads.workflow import Workflow

HOUR = 3600.0


def make_job(
    job_id: int,
    submit: float = 0.0,
    size: int = 1,
    runtime: float = 60.0,
    deps: tuple[int, ...] = (),
    workflow_id: int | None = None,
    user_id: int = 0,
    task_type: str = "batch",
) -> Job:
    """Terse job builder used across the suite."""
    return Job(
        job_id=job_id,
        submit_time=submit,
        size=size,
        runtime=runtime,
        user_id=user_id,
        task_type=task_type,
        workflow_id=workflow_id,
        dependencies=deps,
    )


def make_trace(
    jobs: list[Job], nodes: int = 16, duration: float = 4 * HOUR, name: str = "t"
) -> Trace:
    return Trace(name, jobs, machine_nodes=nodes, duration=duration)


@pytest.fixture
def engine() -> SimulationEngine:
    return SimulationEngine()


@pytest.fixture
def small_trace() -> Trace:
    """Ten mixed jobs over two hours on a 16-node machine."""
    jobs = [
        make_job(1, submit=0.0, size=4, runtime=1800),
        make_job(2, submit=60.0, size=2, runtime=600),
        make_job(3, submit=120.0, size=8, runtime=3600),
        make_job(4, submit=300.0, size=1, runtime=120),
        make_job(5, submit=900.0, size=16, runtime=1200),
        make_job(6, submit=1800.0, size=4, runtime=2400),
        make_job(7, submit=3600.0, size=2, runtime=300),
        make_job(8, submit=4000.0, size=6, runtime=1800),
        make_job(9, submit=5400.0, size=3, runtime=900),
        make_job(10, submit=6000.0, size=1, runtime=60),
    ]
    return make_trace(jobs)


@pytest.fixture
def diamond_workflow() -> Workflow:
    """A 4-task diamond: 1 -> (2, 3) -> 4."""
    tasks = [
        make_job(1, runtime=100, workflow_id=7),
        make_job(2, runtime=200, deps=(1,), workflow_id=7),
        make_job(3, runtime=50, deps=(1,), workflow_id=7),
        make_job(4, runtime=100, deps=(2, 3), workflow_id=7),
    ]
    return Workflow(7, tasks, name="diamond")
