"""The chaos harness: deterministic disturbance of supervised runs.

The load-bearing pins live here: a parallel sweep with an injected
worker kill (and a corrupted cache entry) must converge — via retries
and quarantine — to payloads byte-identical to an undisturbed serial
run.  That is the property that makes the supervision machinery safe to
leave on by default.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.cache import ResultCache, canonical_json
from repro.experiments.chaos import (
    CHAOS_ENV,
    KILL_EXIT_CODE,
    ChaosDirective,
    ChaosInjected,
    ChaosPlan,
    corrupt_entry,
)
from repro.experiments.journal import RunJournal
from repro.experiments.orchestrator import Orchestrator, payloads
from repro.experiments.registry import ScenarioRegistry
from repro.experiments.supervision import RetryPolicy, is_transient
from repro.simkit.rng import RandomStreams


# --------------------------------------------------------------------- #
# module-level scenario functions (picklable into pool workers)
# --------------------------------------------------------------------- #
def draw_scenario(seed: int, n: int = 6) -> dict:
    rng = RandomStreams(seed).stream("chaos-draws")
    return {"seed": seed, "draws": [float(x) for x in rng.random(n)]}


def quick_scenario(seed: int, x: int = 5) -> dict:
    return {"seed": seed, "x": x, "x_squared": x * x}


def make_registry() -> ScenarioRegistry:
    reg = ScenarioRegistry()
    reg.scenario("draws", n=6)(draw_scenario)
    reg.scenario("quick", x=5)(quick_scenario)
    return reg


def fast_retry(**kwargs) -> RetryPolicy:
    """Zero-backoff policy so chaos tests never sleep for real."""
    kwargs.setdefault("backoff_base_s", 0.0)
    kwargs.setdefault("backoff_max_s", 0.0)
    return RetryPolicy(**kwargs)


def kill_plan(scenario: str = "*", attempts=(1,)) -> ChaosPlan:
    return ChaosPlan((ChaosDirective("kill", scenario, tuple(attempts)),))


# --------------------------------------------------------------------- #
# directive parsing and matching
# --------------------------------------------------------------------- #
class TestDirectives:
    def test_from_dict_defaults(self):
        d = ChaosDirective.from_dict({"action": "kill"})
        assert d.scenario == "*" and d.attempts == (1,)

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosDirective.from_dict({"action": "explode"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown key"):
            ChaosDirective.from_dict({"action": "kill", "scnario": "x"})

    def test_missing_action_rejected(self):
        with pytest.raises(ValueError, match="needs an 'action'"):
            ChaosDirective.from_dict({"scenario": "x"})

    def test_matching_glob_and_attempts(self):
        d = ChaosDirective("kill", "table*", (1, 3))
        assert d.matches("table1-models", 1)
        assert d.matches("table1-models", 3)
        assert not d.matches("table1-models", 2)
        assert not d.matches("tco-case", 1)

    def test_empty_attempts_matches_every_attempt(self):
        d = ChaosDirective("kill", "*", ())
        assert all(d.matches("s", a) for a in (1, 2, 7))

    def test_plan_from_env(self):
        text = json.dumps([{"action": "slow", "scenario": "draws",
                            "delay_s": 0.01}])
        plan = ChaosPlan.from_env({CHAOS_ENV: text})
        assert plan is not None and len(plan.directives) == 1
        assert ChaosPlan.from_env({}) is None
        assert ChaosPlan.from_env({CHAOS_ENV: "[]"}) is None

    def test_plan_from_bad_json_rejected(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            ChaosPlan.from_json("{nope")
        with pytest.raises(ValueError, match="JSON list"):
            ChaosPlan.from_json('{"action": "kill"}')

    def test_injected_failure_is_transient(self):
        assert is_transient(ChaosInjected("chaos"))
        assert KILL_EXIT_CODE == 86


# --------------------------------------------------------------------- #
# serial convergence (in-process kill stand-in)
# --------------------------------------------------------------------- #
class TestSerialChaos:
    def test_kill_once_retries_to_identical_payload(self):
        clean = Orchestrator(registry=make_registry(), seed=3).run()
        disturbed = Orchestrator(
            registry=make_registry(), seed=3, retry=fast_retry(),
            chaos=kill_plan("draws", attempts=[1]),
        ).run()
        assert canonical_json(payloads(disturbed)) == canonical_json(
            payloads(clean)
        )
        assert disturbed["draws"].attempts == 2
        assert disturbed["quick"].attempts == 1

    def test_kill_every_attempt_fails_but_spares_siblings(self):
        orch = Orchestrator(
            registry=make_registry(), seed=0,
            retry=fast_retry(max_attempts=2),
            chaos=kill_plan("draws", attempts=[]),
        )
        runs = orch.run(on_error="return")
        assert runs["draws"].status == "failed"
        assert runs["draws"].attempts == 2
        assert runs["draws"].error["type"] == "ChaosInjected"
        assert runs["quick"].ok and runs["quick"].payload["x_squared"] == 25

    def test_slow_start_changes_nothing_but_time(self):
        plan = ChaosPlan(
            (ChaosDirective("slow", "quick", (1,), delay_s=0.01),)
        )
        clean = Orchestrator(registry=make_registry(), seed=1).run()
        slowed = Orchestrator(
            registry=make_registry(), seed=1, chaos=plan
        ).run()
        assert canonical_json(payloads(slowed)) == canonical_json(
            payloads(clean)
        )
        assert slowed["quick"].attempts == 1


# --------------------------------------------------------------------- #
# parallel convergence (real worker kills => BrokenProcessPool salvage)
# --------------------------------------------------------------------- #
class TestParallelChaos:
    def test_worker_kill_salvages_and_converges(self):
        """The acceptance pin: disturbed parallel == undisturbed serial."""
        clean = Orchestrator(registry=make_registry(), seed=7).run()
        disturbed = Orchestrator(
            registry=make_registry(), seed=7, workers=2,
            retry=fast_retry(),
            chaos=kill_plan("draws", attempts=[1]),
        ).run()
        assert canonical_json(payloads(disturbed)) == canonical_json(
            payloads(clean)
        )
        assert disturbed["draws"].attempts >= 2  # the killed one retried

    def test_worker_kill_exhausted_is_structured_failure(self):
        runs = Orchestrator(
            registry=make_registry(), seed=0, workers=2,
            retry=fast_retry(max_attempts=2),
            chaos=kill_plan("draws", attempts=[]),
        ).run(on_error="return")
        assert runs["draws"].status == "failed"
        assert runs["draws"].error["type"] in ("WorkerCrash", "ChaosInjected")
        assert runs["quick"].ok

    @pytest.mark.slow
    def test_hang_trips_deadline_then_converges(self):
        clean = Orchestrator(registry=make_registry(), seed=5).run()
        plan = ChaosPlan(
            (ChaosDirective("hang", "draws", (1,), delay_s=30.0),)
        )
        disturbed = Orchestrator(
            registry=make_registry(), seed=5, workers=2,
            retry=fast_retry(timeout_s=0.4),
            chaos=plan,
        ).run()
        assert canonical_json(payloads(disturbed)) == canonical_json(
            payloads(clean)
        )
        assert disturbed["draws"].attempts >= 2
        assert disturbed["draws"].error is None


# --------------------------------------------------------------------- #
# cache corruption chaos
# --------------------------------------------------------------------- #
class TestCacheChaos:
    def test_corrupt_entry_helper_breaks_parse(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_text('{"payload": 1}')
        corrupt_entry(path)
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())

    def test_corrupted_entry_quarantined_and_recomputed(self, tmp_path):
        plan = ChaosPlan((ChaosDirective("corrupt-cache", "quick"),))
        first = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path), seed=2,
            chaos=plan,
        ).run()
        report = ResultCache(tmp_path).verify()
        assert report["checked"] == 2
        assert [c["path"] for c in report["corrupt"]] == [
            f"quick/{first['quick'].key}.json"
        ]
        # a clean orchestrator detects, quarantines, recomputes: payloads
        # end up byte-identical and the cache heals itself
        cache = ResultCache(tmp_path)
        healed = Orchestrator(
            registry=make_registry(), cache=cache, seed=2
        ).run()
        assert canonical_json(payloads(healed)) == canonical_json(
            payloads(first)
        )
        assert healed["draws"].cached and not healed["quick"].cached
        assert cache.quarantined == 1
        assert len(cache.quarantined_entries()) == 1
        assert ResultCache(tmp_path).verify()["corrupt"] == []

    def test_corruption_directive_fires_once(self, tmp_path):
        plan = ChaosPlan((ChaosDirective("corrupt-cache", "quick"),))
        cache = ResultCache(tmp_path)
        orch = Orchestrator(
            registry=make_registry(), cache=cache, seed=0, chaos=plan,
            retry=fast_retry(),
        )
        orch.run(names=["quick"])
        # second run: the (quarantine -> recompute -> rewrite) pass is NOT
        # corrupted again, so the cache converges to a valid entry
        orch2 = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path), seed=0,
            chaos=plan,
        )
        orch2.run(names=["quick"])
        assert ResultCache(tmp_path).verify()["corrupt"] == []

    def test_combined_kill_and_corruption_pin(self, tmp_path):
        """Worker kill + corrupted entry + parallel still == clean serial."""
        clean = Orchestrator(registry=make_registry(), seed=11).run()
        plan = ChaosPlan((
            ChaosDirective("kill", "draws", (1,)),
            ChaosDirective("corrupt-cache", "quick"),
        ))
        cache_dir = tmp_path / "cache"
        disturbed = Orchestrator(
            registry=make_registry(), cache=ResultCache(cache_dir),
            seed=11, workers=2, retry=fast_retry(), chaos=plan,
        ).run()
        assert canonical_json(payloads(disturbed)) == canonical_json(
            payloads(clean)
        )
        # the poisoned entry is found (and healed) by the next reader
        cache = ResultCache(cache_dir)
        rerun = Orchestrator(
            registry=make_registry(), cache=cache, seed=11
        ).run()
        assert canonical_json(payloads(rerun)) == canonical_json(
            payloads(clean)
        )
        assert cache.quarantined == 1

    def test_journal_records_the_whole_story(self, tmp_path):
        plan = kill_plan("draws", attempts=[1])
        Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path), seed=4,
            retry=fast_retry(), chaos=plan,
        ).run()
        journal = RunJournal.for_cache(ResultCache(tmp_path))
        events = [e["event"] for e in journal.events()
                  if e["scenario"] == "draws"]
        assert events == ["started", "retried", "started", "finished"]
