"""Tests for the runtime-environment server (queue + dispatch)."""

import pytest

from repro.core.servers import REServer
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from repro.workloads.job import JobState
from repro.workloads.workflow import Workflow
from tests.conftest import make_job


def make_server(engine, nodes=8, scheduler=None, scan=60.0, name="tre"):
    server = REServer(engine, name, scheduler or FirstFitScheduler(), scan)
    if nodes:
        server.add_nodes(nodes)
    return server


class TestResourceAccounting:
    def test_add_remove_nodes(self, engine):
        server = make_server(engine, nodes=8)
        assert server.owned == 8 and server.idle == 8
        server.remove_nodes(3)
        assert server.owned == 5

    def test_cannot_remove_busy_nodes(self, engine):
        server = make_server(engine, nodes=4)
        server.submit_job(make_job(1, size=4, runtime=600))
        engine.run(until=60.0)  # first scan dispatches
        assert server.used == 4
        with pytest.raises(ValueError):
            server.remove_nodes(1)

    def test_usage_recorder_tracks_owned(self, engine):
        server = make_server(engine, nodes=8)
        engine.run(until=10.0)
        server.remove_nodes(8)
        assert server.usage.current_level() == 0


class TestHtcExecution:
    def test_job_runs_and_completes(self, engine):
        server = make_server(engine, nodes=8)
        job = make_job(1, size=4, runtime=100)
        server.submit_job(job)
        engine.run(until=300.0)
        assert job.state is JobState.COMPLETED
        # dispatched at the first scan (60s), so finish = 160
        assert job.finish_time == pytest.approx(160.0)

    def test_dispatch_happens_at_scan_granularity(self, engine):
        server = make_server(engine, nodes=8, scan=60.0)
        job = make_job(1, submit=61.0, size=1, runtime=10)
        engine.schedule_at(job.submit_time, server.submit_job, job)
        engine.run(until=300.0)
        assert job.start_time == pytest.approx(120.0)

    def test_capacity_respected(self, engine):
        server = make_server(engine, nodes=4)
        a = make_job(1, size=3, runtime=600)
        b = make_job(2, size=3, runtime=600)
        server.submit_job(a)
        server.submit_job(b)
        engine.run(until=120.0)
        assert a.state is JobState.RUNNING
        assert b.state is JobState.QUEUED

    def test_queued_job_starts_after_capacity_frees(self, engine):
        server = make_server(engine, nodes=4)
        a = make_job(1, size=3, runtime=100)
        b = make_job(2, size=3, runtime=100)
        server.submit_job(a)
        server.submit_job(b)
        engine.run(until=600.0)
        assert b.state is JobState.COMPLETED
        assert b.start_time >= a.finish_time

    def test_completed_by_horizon(self, engine):
        server = make_server(engine, nodes=8)
        server.submit_job(make_job(1, size=1, runtime=100))
        server.submit_job(make_job(2, size=1, runtime=9000))
        engine.run(until=3600.0)
        assert server.completed_count == 1
        assert server.completed_by(3600.0) == 1

    def test_first_fit_lets_small_job_pass_wide_head(self, engine):
        server = make_server(engine, nodes=4)
        wide = make_job(1, size=8, runtime=100)  # wider than owned
        narrow = make_job(2, size=2, runtime=100)
        server.submit_job(wide)
        server.submit_job(narrow)
        engine.run(until=300.0)
        assert narrow.state is JobState.COMPLETED
        assert wide.state is JobState.QUEUED


class TestMtcExecution:
    def _diamond(self):
        tasks = [
            make_job(1, runtime=30, workflow_id=1),
            make_job(2, runtime=30, deps=(1,), workflow_id=1),
            make_job(3, runtime=30, deps=(1,), workflow_id=1),
            make_job(4, runtime=30, deps=(2, 3), workflow_id=1),
        ]
        return Workflow(1, tasks)

    def test_workflow_runs_in_dependency_order(self, engine):
        server = make_server(engine, nodes=4, scheduler=FcfsScheduler(), scan=3.0)
        wf = self._diamond()
        server.submit_workflow(wf)
        engine.run(until=600.0)
        assert wf.completed()
        t = {i: wf.task(i) for i in (1, 2, 3, 4)}
        assert t[2].start_time >= t[1].finish_time
        assert t[4].start_time >= max(t[2].finish_time, t[3].finish_time)

    def test_only_ready_tasks_enter_queue(self, engine):
        server = make_server(engine, nodes=4, scheduler=FcfsScheduler(), scan=3.0)
        wf = self._diamond()
        server.submit_workflow(wf)
        assert server.queue.total_demand == 1  # only the entry task

    def test_workflow_complete_hook_fires_once(self, engine):
        server = make_server(engine, nodes=4, scheduler=FcfsScheduler(), scan=3.0)
        done = []
        server.on_workflow_complete.append(lambda wf: done.append(wf.workflow_id))
        server.submit_workflow(self._diamond())
        engine.run(until=600.0)
        assert done == [1]

    def test_makespan(self, engine):
        server = make_server(engine, nodes=4, scheduler=FcfsScheduler(), scan=3.0)
        wf = self._diamond()
        server.submit_workflow(wf)
        engine.run(until=600.0)
        assert server.makespan() == pytest.approx(
            max(t.finish_time for t in wf.tasks), abs=1e-6
        )


class TestStop:
    def test_stop_halts_scanning_and_releases_usage(self, engine):
        server = make_server(engine, nodes=8)
        job = make_job(1, size=2, runtime=600)
        server.submit_job(job)
        engine.run(until=60.0)
        server.stop()
        engine.run(until=7200.0)
        assert job.state is JobState.RUNNING  # finish event suppressed
        assert server.usage.current_level() == 0

    def test_submissions_after_stop_ignored(self, engine):
        server = make_server(engine, nodes=8)
        server.stop()
        server.submit_job(make_job(1))
        assert server.submitted_jobs == 0
