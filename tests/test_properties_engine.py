"""Property-based tests for the simulation-engine invariants.

Hypothesis drives :class:`repro.simkit.engine.SimulationEngine` with
arbitrary schedules and checks the contracts the whole reproduction leans
on: the clock never runs backwards, events fire in exact
``(time, priority, seq)`` order, cancelled events never fire (and are
lazily dropped), and ``run`` is resumable across arbitrary horizon splits.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simkit.engine import SimulationEngine

# (delay, priority) pairs; delays are coarse-grained floats so ties (the
# interesting ordering case) actually happen.
schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0).map(lambda d: round(d, 1)),
        st.integers(min_value=-3, max_value=3),
    ),
    min_size=1,
    max_size=40,
)


@given(schedules)
def test_clock_is_monotonic_and_order_is_stable(items):
    engine = SimulationEngine()
    fired: list[tuple[float, int, int]] = []
    expected = []
    for seq, (delay, priority) in enumerate(items):
        engine.schedule(
            delay,
            lambda d=delay, p=priority, s=seq: fired.append((d, p, s)),
            priority=priority,
        )
        expected.append((delay, priority, seq))
    engine.run()
    # every event fired exactly once, in (time, priority, seq) order
    assert fired == sorted(expected)
    # the clock ended at the last event's time and never exceeded it
    assert engine.now == max(d for d, _, _ in expected)
    assert engine.executed_events == len(items)


@given(schedules, st.data())
def test_cancelled_events_never_fire(items, data):
    engine = SimulationEngine()
    fired: list[int] = []
    events = [
        engine.schedule(delay, lambda s=seq: fired.append(s), priority=priority)
        for seq, (delay, priority) in enumerate(items)
    ]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1))
    )
    for idx in to_cancel:
        engine.cancel(events[idx])
    engine.run()
    assert set(fired) == set(range(len(events))) - to_cancel
    # lazy removal: every heap entry (live or cancelled) has been drained
    assert engine.pending_events == 0
    assert engine.executed_events == len(events) - len(to_cancel)


@given(schedules, st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=60)
def test_run_is_resumable_across_any_horizon_split(items, split):
    """Running to ``split`` then to the end equals one uninterrupted run."""
    whole = SimulationEngine()
    parts = SimulationEngine()
    fired_whole: list[tuple[float, int, int]] = []
    fired_parts: list[tuple[float, int, int]] = []
    for engine, sink in ((whole, fired_whole), (parts, fired_parts)):
        for seq, (delay, priority) in enumerate(items):
            engine.schedule(
                delay,
                lambda d=delay, p=priority, s=seq, out=sink: out.append((d, p, s)),
                priority=priority,
            )
    whole.run()
    parts.run(until=split)
    assert parts.now >= split or not items
    parts.run()
    assert fired_parts == fired_whole
    assert parts.now == whole.now or parts.now == split  # split past the end
    assert parts.executed_events == whole.executed_events


@given(schedules)
@settings(max_examples=40)
def test_horizon_run_executes_exactly_the_due_events(items):
    """run(until=h) fires events at t <= h (inclusive) and parks at h."""
    horizon = 50.0
    engine = SimulationEngine()
    fired: list[float] = []
    for delay, priority in items:
        engine.schedule(delay, lambda d=delay: fired.append(d), priority=priority)
    engine.run(until=horizon)
    # the engine parks the clock exactly at the horizon
    assert engine.now == horizon
    due = sorted(d for d, _ in items if d <= horizon)
    assert sorted(fired) == due
    assert all(d <= horizon for d in fired)
