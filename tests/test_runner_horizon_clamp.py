"""The horizon-clamp invariant, audited across every HTC runner.

PR 5 fixed ``_run_fixed`` counting completions past the billing horizon
(late requeued completions under failures disagreed with the billing
window).  This is the shared audit for the remaining runners: for every
HTC system, ``completed_jobs`` must count exactly the completions at or
before the horizon the billing/peak figures use — jobs still running at
the horizon (including failure-requeued stragglers) are excluded even
though the simulation records their eventual completion.
"""

from __future__ import annotations

import pytest

from conftest import make_job, make_trace
from repro.core.policies import ResourceManagementPolicy
from repro.provisioning.runner import PooledQueueLiveRun
from repro.reliability.failures import ExponentialFailures
from repro.scheduling.firstfit import FirstFitScheduler
from repro.systems.base import WorkloadBundle
from repro.systems.drp import DrpHtcLiveRun, DrpPooledLiveRun
from repro.systems.dsp_runner import DawningCloudHtcLiveRun
from repro.systems.fixed import FixedLiveRun

HOUR = 3600.0


def _straggler_bundle() -> WorkloadBundle:
    """Two on-time jobs plus one whose completion lands past the horizon."""
    jobs = [
        make_job(1, submit=0.0, size=2, runtime=600),
        make_job(2, submit=120.0, size=4, runtime=900),
        # submitted inside the window, finishes hours after it
        make_job(3, submit=5400.0, size=2, runtime=6 * HOUR),
    ]
    return WorkloadBundle.from_trace(
        "straggle", make_trace(jobs, nodes=16, duration=2 * HOUR)
    )


RUNNERS = [
    ("dcs", lambda b, f: FixedLiveRun(b, "DCS", failures=f, seed=5)),
    ("ssp", lambda b, f: FixedLiveRun(b, "SSP", failures=f, seed=5)),
    ("drp", lambda b, f: DrpHtcLiveRun(b, failures=f, seed=5)),
    ("drp-pooled", lambda b, f: DrpPooledLiveRun(b)),
    ("dawningcloud", lambda b, f: DawningCloudHtcLiveRun(
        b, ResourceManagementPolicy.for_htc(8, 1.5), capacity=64,
        failures=f, seed=5)),
    ("pooled-queue", lambda b, f: PooledQueueLiveRun(
        b, FirstFitScheduler(), failures=f, seed=5)),
]


def _completed_jobs(live) -> list:
    if hasattr(live, "cloud"):
        return live.cloud.tre(live.name).server.completed
    if hasattr(live, "server"):
        return live.server.completed
    return live.state.completed


@pytest.mark.parametrize(
    "with_failures", [False, True], ids=["clean", "failures"]
)
@pytest.mark.parametrize("name,build", RUNNERS, ids=[n for n, _ in RUNNERS])
def test_completions_clamp_to_billing_horizon(name, build, with_failures):
    if with_failures and name == "drp-pooled":
        pytest.skip("pooled DRP has no failure path")
    bundle = _straggler_bundle()
    failures = (
        ExponentialFailures(mtbf_s=3 * HOUR, mttr_s=900.0)
        if with_failures
        else None
    )
    live = build(bundle, failures)
    horizon = live.horizon
    live.complete()

    # run the engine past the horizon so the straggler's completion event
    # actually fires — exactly the state that tripped _run_fixed in PR 5
    live.engine.run(until=horizon + 12 * HOUR)
    completed = _completed_jobs(live)
    metrics = live.finish()

    in_window = sum(
        1 for j in completed if (j.finish_time or 0.0) <= horizon
    )
    assert metrics.completed_jobs == in_window
    # the straggler really did complete late (the clamp had work to do)
    # in at least the clean configuration
    if not with_failures:
        assert len(completed) > in_window
        assert metrics.completed_jobs == 2
    assert metrics.submitted_jobs == 3
