"""Tests for the resource provision service and setup cost model."""

import pytest

from repro.cluster.provision import ProvisionError, ResourceProvisionService
from repro.cluster.setup import DEFAULT_ADJUST_COST_S, SetupCostModel, SetupPolicy

HOUR = 3600.0


class TestProvisionService:
    def test_grant_when_available(self):
        svc = ResourceProvisionService(100)
        lease = svc.request("a", 40, 0.0)
        assert lease is not None
        assert svc.free_nodes == 60
        assert svc.allocated_nodes("a") == 40

    def test_all_or_nothing_reject(self):
        """§3.2.2.3: assign enough or reject — no partial grants."""
        svc = ResourceProvisionService(100)
        svc.request("a", 80, 0.0)
        assert svc.request("b", 30, 1.0) is None
        assert svc.rejected_requests == 1
        assert svc.free_nodes == 20  # untouched by the rejection

    def test_release_reclaims_and_bills(self):
        svc = ResourceProvisionService(100)
        lease = svc.request("a", 10, 0.0)
        charged = svc.release(lease, HOUR + 1)
        assert charged == 20  # 10 nodes × 2 started hours
        assert svc.free_nodes == 100
        assert svc.consumption_node_hours("a") == 20

    def test_double_release_rejected(self):
        svc = ResourceProvisionService(100)
        lease = svc.request("a", 10, 0.0)
        svc.release(lease, 10.0)
        with pytest.raises(ProvisionError):
            svc.release(lease, 20.0)

    def test_nonpositive_request_rejected(self):
        svc = ResourceProvisionService(10)
        with pytest.raises(ProvisionError):
            svc.request("a", 0, 0.0)

    def test_shutdown_client_closes_everything(self):
        svc = ResourceProvisionService(100)
        svc.request("a", 10, 0.0, kind="initial")
        svc.request("a", 5, 0.0)
        svc.request("b", 7, 0.0)
        svc.shutdown_client("a", HOUR)
        assert svc.allocated_nodes("a") == 0
        assert svc.allocated_nodes("b") == 7
        assert svc.consumption_node_hours("a") == 15

    def test_adjustment_accounting(self):
        svc = ResourceProvisionService(100)
        lease = svc.request("a", 10, 0.0)
        svc.release(lease, 60.0)
        assert svc.adjusted_node_count("a") == 20  # 10 out + 10 back
        assert svc.setup.adjusted_nodes == 20

    def test_usage_events(self):
        svc = ResourceProvisionService(100)
        lease = svc.request("a", 4, 5.0)
        svc.release(lease, 50.0)
        assert svc.usage_events("a") == [(5.0, 4), (50.0, -4)]

    def test_grant_after_release_reuses_capacity(self):
        svc = ResourceProvisionService(50)
        lease = svc.request("a", 50, 0.0)
        assert svc.request("b", 1, 1.0) is None
        svc.release(lease, 2.0)
        assert svc.request("b", 50, 3.0) is not None


class TestSetupCost:
    def test_paper_per_node_cost(self):
        assert SetupPolicy().per_node_cost_s == pytest.approx(15.743)

    def test_wipe_os_adds_cost(self):
        policy = SetupPolicy(wipe_os=True, os_wipe_cost_s=100.0)
        assert policy.per_node_cost_s == pytest.approx(115.743)

    def test_overhead_accumulates(self):
        model = SetupCostModel()
        model.record_adjustment(10)
        model.record_adjustment(5)
        assert model.adjusted_nodes == 15
        assert model.total_overhead_s == pytest.approx(15 * DEFAULT_ADJUST_COST_S)

    def test_overhead_per_hour(self):
        model = SetupCostModel()
        model.record_adjustment(100)
        # 100 × 15.743 s over 10 hours
        assert model.overhead_per_hour(10 * HOUR) == pytest.approx(157.43)

    def test_negative_adjustment_rejected(self):
        with pytest.raises(ValueError):
            SetupCostModel().record_adjustment(-1)
