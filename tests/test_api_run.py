"""Tests for the Simulation facade and the generic artifact interpreter.

Everything here runs tiny synthetic workloads (a 4-wide fork-join, a
two-hour 8-node trace) so the whole file stays in the fast tier.
"""

import pytest

from repro.api.run import (
    Simulation,
    load_spec_scenarios,
    materialize_workload,
    resolve_meter,
    run_artifact,
    run_experiment,
    run_system,
)
from repro.api.spec import ExperimentSpec, SystemSpec

HOUR = 3600.0

#: a deliberately tiny HTC trace: 40 jobs, 8 nodes, two days
TINY_TRACE = {
    "generator": "htc-trace",
    "params": {
        "name": "tiny",
        "machine_nodes": 8,
        "duration": 2 * 24 * HOUR,
        "n_jobs": 40,
        "target_utilization": 0.4,
        "size_pmf": [[1, 0.6], [2, 0.25], [4, 0.1], [8, 0.05]],
        "runtime_mixture": [[0.8, 900.0, 0.7], [0.2, 3600.0, 0.5]],
    },
}

TINY_SPEC = {
    "name": "tiny-exp",
    "workloads": [TINY_TRACE],
    "systems": [
        "dcs",
        {"runner": "dawningcloud",
         "params": {"capacity": 32},
         "policy": {"name": "paper-htc", "params": {"initial_nodes": 2}}},
    ],
}


class TestMaterialization:
    def test_workload_components_build_bundles(self):
        bundle = materialize_workload(TINY_TRACE, seed=0)
        assert bundle.kind == "htc"
        assert bundle.name == "tiny"
        assert bundle.n_jobs == 40
        wf = materialize_workload(
            {"generator": "fork-join",
             "params": {"width": 4, "mean_runtime": 30.0}}, seed=0
        )
        assert wf.kind == "mtc"
        assert wf.n_jobs == 6  # entry + 4 workers + exit

    def test_materialization_is_deterministic(self):
        a = materialize_workload(TINY_TRACE, seed=7)
        b = materialize_workload(TINY_TRACE, seed=7)
        assert [j.runtime for j in a.trace] == [j.runtime for j in b.trace]

    def test_unknown_generator_is_loud(self):
        with pytest.raises(KeyError, match="unknown workload component"):
            materialize_workload("no-such-trace", seed=0)

    def test_unknown_generator_params_are_loud(self):
        with pytest.raises(ValueError, match="no parameter"):
            materialize_workload(
                {"generator": "montage", "params": {"n_imags": 10}}, seed=0
            )


class TestMeterResolution:
    def test_per_hour_keeps_the_default_path(self):
        bundle = materialize_workload(TINY_TRACE, seed=0)
        assert resolve_meter(None, bundle) is None
        assert resolve_meter("per-hour", bundle) is None

    def test_explicit_per_hour_params_build_a_meter(self):
        from repro.provisioning.billing import PerStartedUnitMeter

        bundle = materialize_workload(TINY_TRACE, seed=0)
        meter = resolve_meter(
            {"name": "per-hour", "params": {"unit_s": 60.0}}, bundle
        )
        assert meter == PerStartedUnitMeter(unit_s=60.0)

    def test_reserved_spot_defaults_to_fixed_nodes(self):
        bundle = materialize_workload(TINY_TRACE, seed=0)
        meter = resolve_meter("reserved-spot", bundle)
        assert meter.reserved_nodes == bundle.fixed_nodes == 8

    def test_explicit_zero_reservation_is_not_overridden(self):
        # an author's explicit reserved_nodes=0 must not be silently
        # replaced by the fixed-system size; make_meter rejects it loudly
        bundle = materialize_workload(TINY_TRACE, seed=0)
        with pytest.raises(ValueError, match="reserved_nodes > 0"):
            resolve_meter(
                {"name": "reserved-spot", "params": {"reserved_nodes": 0}},
                bundle,
            )


class TestRunSystem:
    def test_dcs_consumption_is_the_closed_form(self):
        bundle = materialize_workload(TINY_TRACE, seed=0)
        metrics = run_system("dcs", bundle)
        assert metrics.system == "DCS"
        assert metrics.resource_consumption == pytest.approx(8 * 48.0)

    def test_scheduler_ref_threads_through(self):
        bundle = materialize_workload(TINY_TRACE, seed=0)
        metrics = run_system(
            SystemSpec("pooled-queue", scheduler="sjf"), bundle
        )
        assert "sjf" in metrics.system

    def test_unknown_runner_param_is_loud(self):
        bundle = materialize_workload(TINY_TRACE, seed=0)
        with pytest.raises(ValueError, match="no parameter"):
            run_system({"runner": "dcs", "params": {"nodes": 3}}, bundle)


class TestRunExperiment:
    def test_cross_product_and_order(self):
        spec = ExperimentSpec.from_dict({
            "name": "tiny-cross",
            "workloads": [TINY_TRACE],
            "systems": [
                "drp",
                {"runner": "dawningcloud",
                 "policy": {"name": "paper-htc",
                            "params": {"initial_nodes": 2}}},
            ],
            "seeds": [0, 1],
            "sweep": {"params.capacity": [64, 128]},
        })
        results = run_experiment(spec, seed=0)
        # 1 workload x 2 systems x 2 sweep points x 2 seeds
        assert len(results) == 8
        assert [r.seed for r in results[:4]] == [0, 1, 0, 1]
        assert results[0].workload == "tiny"
        assert {r.system for r in results} == {"drp", "dawningcloud"}
        assert results[0].point == {"params.capacity": 64}

    def test_sweeping_a_param_a_system_lacks_is_loud(self):
        spec = ExperimentSpec.from_dict({
            **TINY_SPEC, "sweep": {"params.capacity": [16]},
        })
        with pytest.raises(ValueError, match="'dcs' has no parameter"):
            run_experiment(spec, seed=0)

    def test_seed_offsets_shift_the_base_seed(self):
        spec = ExperimentSpec.from_dict({**TINY_SPEC, "seeds": [5]})
        (result,) = [r for r in run_experiment(spec, seed=2)
                     if r.system == "dcs"]
        assert result.seed == 7


class TestSimulation:
    def test_run_returns_structured_results(self):
        from repro.experiments.cache import NullCache

        sim = Simulation(TINY_SPEC, seed=0, cache=NullCache())
        results = sim.run()
        assert [r.system for r in results] == ["dcs", "dawningcloud"]
        assert results[0].metrics["completed_jobs"] == 40
        assert sim.payload["experiment"] == "tiny-exp"
        assert sim.payload["digest"] == sim.digest

    def test_results_before_run_is_an_error(self):
        with pytest.raises(RuntimeError, match="has not run"):
            Simulation(TINY_SPEC).payload

    def test_cache_hit_on_rerun(self, tmp_path):
        from repro.experiments.cache import ResultCache

        first = Simulation(TINY_SPEC, cache=ResultCache(tmp_path))
        first.run()
        assert not first.cached
        second = Simulation(TINY_SPEC, cache=ResultCache(tmp_path))
        second.run()
        assert second.cached
        assert second.payload == first.payload

    def test_digest_is_the_spec_digest(self):
        from repro.api.spec import spec_digest

        sim = Simulation(TINY_SPEC)
        assert sim.digest == spec_digest(ExperimentSpec.from_dict(TINY_SPEC))

    def test_default_cache_is_the_shared_on_disk_cache(self, tmp_path,
                                                       monkeypatch):
        # no explicit cache -> ResultCache.default() ($REPRO_CACHE_DIR)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        first = Simulation(TINY_SPEC)
        first.run()
        assert not first.cached
        second = Simulation(TINY_SPEC)
        second.run()
        assert second.cached

    def test_component_typos_fail_at_construction(self):
        with pytest.raises(KeyError, match="unknown workload component"):
            Simulation({**TINY_SPEC, "workloads": ["nope"]})
        with pytest.raises(KeyError, match="unknown system component"):
            Simulation({**TINY_SPEC, "systems": ["ec2"]})
        with pytest.raises(ValueError, match="missing required"):
            Simulation({
                **TINY_SPEC,
                "systems": [{"runner": "dawningcloud",
                             "policy": {"name": "paper-htc"}}],
            })
        bad_sweep = {
            **TINY_SPEC,
            "systems": ["drp"],
            "sweep": {"scheduler.name": ["nope-sched"]},
        }
        with pytest.raises(KeyError, match="unknown scheduler component"):
            Simulation(bad_sweep)


class TestArtifacts:
    def test_unknown_kind_is_loud(self):
        with pytest.raises(ValueError, match="unknown artifact kind"):
            run_artifact({"kind": "tables"}, seed=0)

    def test_unknown_analysis_is_loud(self):
        with pytest.raises(KeyError, match="unknown analysis component"):
            run_artifact({"kind": "analysis", "analysis": "nope"}, seed=0)

    def test_analysis_artifact_runs(self):
        payload = run_artifact({"kind": "analysis", "analysis": "table1"})
        assert payload[0]["model"] == "DCS"

    def test_four_systems_artifact_payload_shape(self):
        payload = run_artifact({
            "kind": "four-systems",
            "workload": TINY_TRACE,
            "policy": {"name": "paper-htc", "params": {"initial_nodes": 2}},
            "capacity": 32,
            "billing": "per-hour",
        })
        assert payload["kind"] == "htc"
        assert payload["billing"] == "per-hour"
        assert set(payload["systems"]) == {"DCS", "SSP", "DRP", "DawningCloud"}

    def test_experiment_artifact_matches_run_spec(self):
        from repro.api.run import run_spec_scenario

        via_artifact = run_artifact({"kind": "experiment", **TINY_SPEC}, seed=0)
        assert via_artifact == run_spec_scenario(0, TINY_SPEC)


class TestSpecScenarioLoading:
    def test_directory_registration(self, tmp_path):
        from repro.experiments.registry import ScenarioRegistry

        (tmp_path / "a.json").write_text(
            '{"name": "spec-a", "workloads": ["nasa-ipsc"], "systems": ["dcs"]}'
        )
        registry = ScenarioRegistry()
        names = load_spec_scenarios(tmp_path, registry)
        assert names == ["spec-a"]
        assert "spec" in registry.get("spec-a").tags
        assert registry.get("spec-a").defaults["spec"]["name"] == "spec-a"

    def test_collision_with_builtin_is_loud(self, tmp_path):
        from repro.experiments.registry import default_registry

        (tmp_path / "clash.json").write_text(
            '{"name": "table2-nasa", "workloads": ["nasa-ipsc"], '
            '"systems": ["dcs"]}'
        )
        with pytest.raises(ValueError, match="already a registered scenario"):
            load_spec_scenarios(tmp_path, default_registry())

    def test_loading_is_all_or_nothing_and_names_every_problem(self, tmp_path):
        from repro.experiments.registry import ScenarioRegistry

        (tmp_path / "aaa.json").write_text(
            '{"name": "good-spec", "workloads": ["nasa-ipsc"], '
            '"systems": ["dcs"]}'
        )
        (tmp_path / "bad.json").write_text(
            '{"name": "bad-spec", "workloads": ["no-such-workload"], '
            '"systems": ["dcs"]}'
        )
        (tmp_path / "dup.json").write_text(
            '{"name": "good-spec", "workloads": ["nasa-ipsc"], '
            '"systems": ["dcs"]}'
        )
        registry = ScenarioRegistry()
        with pytest.raises(ValueError) as err:
            load_spec_scenarios(tmp_path, registry)
        message = str(err.value)
        assert "bad.json" in message and "dup.json" in message
        # nothing registered, including the valid file
        assert len(registry) == 0
