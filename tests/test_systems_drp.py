"""Tests for the DRP system."""

import pytest

from repro.metrics.accounting import drp_htc_consumption_node_hours
from repro.systems.base import WorkloadBundle
from repro.systems.drp import run_drp
from repro.workloads.workflow import Workflow
from tests.conftest import make_job, make_trace

HOUR = 3600.0


@pytest.mark.slow  # full-trace DRP runs
class TestHtc:
    def test_consumption_matches_closed_form(self, small_trace):
        """The simulated DRP must agree with the Σ size×ceil(rt) oracle."""
        bundle = WorkloadBundle.from_trace("t", small_trace)
        result = run_drp(bundle)
        assert result.resource_consumption == pytest.approx(
            drp_htc_consumption_node_hours(small_trace)
        )

    def test_no_queueing_jobs_start_at_submit(self):
        # two machine-filling jobs at the same instant both run immediately
        trace = make_trace(
            [make_job(1, size=16, runtime=600), make_job(2, size=16, runtime=600)],
            nodes=16,
            duration=HOUR,
        )
        result = run_drp(WorkloadBundle.from_trace("t", trace))
        assert result.completed_jobs == 2
        assert result.peak_nodes == 32  # exceeds the DCS machine: no queue

    def test_hour_rounding_penalty_for_short_jobs(self):
        trace = make_trace(
            [make_job(i, size=4, runtime=300) for i in range(1, 5)],
            nodes=16,
            duration=HOUR,
        )
        result = run_drp(WorkloadBundle.from_trace("t", trace))
        # 4 jobs × 4 nodes × 1 started hour despite 5-minute runtimes
        assert result.resource_consumption == 16

    def test_adjustments_are_two_size_per_job(self, small_trace):
        bundle = WorkloadBundle.from_trace("t", small_trace)
        result = run_drp(bundle)
        assert result.adjusted_nodes == 2 * sum(j.size for j in small_trace)

    def test_straggler_billed_at_horizon(self):
        trace = make_trace(
            [make_job(1, size=2, runtime=10 * HOUR)], nodes=16, duration=2 * HOUR
        )
        result = run_drp(WorkloadBundle.from_trace("t", trace))
        assert result.completed_jobs == 0
        assert result.resource_consumption == 2 * 2  # billed for the window


@pytest.mark.slow  # full-workflow DRP runs
class TestMtc:
    def _fork_join(self, width):
        tasks = [make_job(1, runtime=60, workflow_id=1)]
        for i in range(width):
            tasks.append(make_job(2 + i, runtime=60, deps=(1,), workflow_id=1))
        tasks.append(
            make_job(
                width + 2,
                runtime=60,
                deps=tuple(range(2, width + 2)),
                workflow_id=1,
            )
        )
        return Workflow(1, tasks, name=f"fj{width}")

    def test_pool_cost_equals_peak_width(self):
        """Leases are reused across levels within the hour, so the billed
        cost equals the widest ready level (the paper's 662 for Montage)."""
        wf = self._fork_join(8)
        result = run_drp(WorkloadBundle.from_workflow("fj", wf, fixed_nodes=4))
        assert result.resource_consumption == 8
        assert result.peak_nodes == 8

    def test_all_tasks_complete(self):
        wf = self._fork_join(5)
        result = run_drp(WorkloadBundle.from_workflow("fj", wf, fixed_nodes=4))
        assert result.completed_jobs == 7

    def test_makespan_is_critical_path(self):
        wf = self._fork_join(5)
        cp = wf.critical_path_length()
        result = run_drp(WorkloadBundle.from_workflow("fj", wf, fixed_nodes=4))
        assert result.makespan_s == pytest.approx(cp, rel=1e-9)

    def test_tasks_per_second_beats_queued_systems(self):
        from repro.systems.fixed import run_dcs

        wf = self._fork_join(12)
        bundle = WorkloadBundle.from_workflow("fj", wf, fixed_nodes=4)
        drp = run_drp(bundle)
        dcs = run_dcs(bundle)
        assert drp.tasks_per_second >= dcs.tasks_per_second
