"""System-level invariants checked over randomized small workloads.

These run whole simulations per example, so example counts are kept low;
the invariants are the accounting identities every system must satisfy
regardless of workload:

* billed node-hours can never undercut the executed work (hourly billing
  only rounds *up*);
* the DRP bill is exactly ``Σ size × ceil(runtime/1h)`` (§4.3's
  accumulated end-user consumption);
* DCS consumption is ``machine × period`` by definition;
* with ample capacity and horizon, DawningCloud completes everything.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import ResourceManagementPolicy
from repro.systems.base import WorkloadBundle
from repro.systems.dsp_runner import run_dawningcloud_htc
from repro.systems.drp import run_drp
from repro.systems.fixed import run_dcs
from repro.workloads.job import Job, Trace

HOUR = 3600.0

#: whole-simulation tests: excluded from the fast tier
pytestmark = pytest.mark.slow


job_specs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),          # size
        st.floats(min_value=30.0, max_value=5400.0),    # runtime
        st.floats(min_value=0.0, max_value=4 * HOUR),   # submit
    ),
    min_size=1,
    max_size=15,
)


def _bundle(specs) -> WorkloadBundle:
    jobs = [
        Job(job_id=i + 1, submit_time=submit, size=size, runtime=runtime,
            user_id=i % 3)
        for i, (size, runtime, submit) in enumerate(specs)
    ]
    trace = Trace("prop", jobs, machine_nodes=8, duration=12 * HOUR)
    return WorkloadBundle.from_trace("prop", trace)


@settings(max_examples=15, deadline=None)
@given(specs=job_specs)
def test_drp_bill_is_exact_hour_ceiling(specs):
    bundle = _bundle(specs)
    metrics = run_drp(bundle)
    expected = sum(
        size * math.ceil(max(runtime, 1e-9) / HOUR)
        for size, runtime, _ in specs
    )
    assert metrics.resource_consumption == expected


@settings(max_examples=15, deadline=None)
@given(specs=job_specs)
def test_dcs_consumption_is_machine_times_period(specs):
    bundle = _bundle(specs)
    metrics = run_dcs(bundle)
    assert metrics.resource_consumption == 8 * 12  # nodes × hours


@settings(max_examples=10, deadline=None)
@given(specs=job_specs)
def test_dawningcloud_completes_and_never_bills_below_work(specs):
    bundle = _bundle(specs)
    policy = ResourceManagementPolicy.for_htc(initial_nodes=4,
                                              threshold_ratio=1.2)
    metrics = run_dawningcloud_htc(bundle, policy, capacity=64)
    work_node_hours = sum(size * runtime for size, runtime, _ in specs) / HOUR
    assert metrics.resource_consumption >= work_node_hours - 1e-9
    assert metrics.completed_jobs == len(specs)


@settings(max_examples=10, deadline=None)
@given(specs=job_specs)
def test_elastic_systems_never_bill_below_executed_work(specs):
    """DRP and DawningCloud run everything (ample capacity), so their
    bills must cover the full work; DCS is excluded — an overloaded fixed
    machine legitimately bills machine×period while leaving work undone."""
    bundle = _bundle(specs)
    work = sum(size * runtime for size, runtime, _ in specs) / HOUR
    for metrics in (
        run_drp(bundle),
        run_dawningcloud_htc(
            bundle, ResourceManagementPolicy.for_htc(4, 1.5), capacity=64
        ),
    ):
        assert metrics.completed_jobs == len(specs)
        assert metrics.resource_consumption >= work - 1e-9
