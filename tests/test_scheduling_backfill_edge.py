"""Edge-case tests for EASY and conservative backfilling.

Three families the main scheduling suite does not pin down:

* determinism when several running jobs complete at the same instant;
* a backfill candidate that *exactly* fills the window in front of the
  head's reservation (boundary of the "may not delay" rule);
* zero-queue scans must be cheap no-ops.
"""

from __future__ import annotations

import pytest

from repro.scheduling.backfill import EasyBackfillScheduler
from repro.scheduling.base import RunningJob
from repro.scheduling.conservative import ConservativeBackfillScheduler
from repro.workloads.job import Job


def _job(job_id: int, size: int, runtime: float, submit: float = 0.0) -> Job:
    return Job(job_id=job_id, submit_time=submit, size=size, runtime=runtime)


SCHEDULERS = (EasyBackfillScheduler, ConservativeBackfillScheduler)


class TestSimultaneousCompletions:
    """Several running jobs finishing at one instant: order must not matter."""

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_selection_is_independent_of_running_order(self, scheduler_cls):
        queued = [_job(1, 8, 100.0), _job(2, 2, 40.0), _job(3, 2, 50.0)]
        running = [
            RunningJob(_job(10, 3, 60.0), finish_time=60.0),
            RunningJob(_job(11, 3, 60.0), finish_time=60.0),
            RunningJob(_job(12, 2, 60.0), finish_time=60.0),
        ]
        sched = scheduler_cls()
        baseline = [
            j.job_id for j in sched.select(0.0, list(queued), 0, list(running))
        ]
        for perm in (
            [running[1], running[2], running[0]],
            [running[2], running[0], running[1]],
            list(reversed(running)),
        ):
            sched = scheduler_cls()
            picked = [j.job_id for j in sched.select(0.0, list(queued), 0, perm)]
            assert picked == baseline

    def test_easy_shadow_time_accumulates_simultaneous_finishes(self):
        # Head needs 6; two jobs of 3 finish together at t=60 — the shadow
        # time is 60, not "after the second event".  A 30 s backfill job
        # fits before it; a 70 s one (same width) must not start.
        queued = [_job(1, 6, 100.0), _job(2, 2, 30.0), _job(3, 2, 70.0)]
        running = [
            RunningJob(_job(10, 3, 60.0), finish_time=60.0),
            RunningJob(_job(11, 3, 60.0), finish_time=60.0),
        ]
        picked = EasyBackfillScheduler().select(0.0, queued, 2, running)
        assert [j.job_id for j in picked] == [2]


class TestExactWindowFill:
    """Backfill jobs on the exact boundary of the head's reservation."""

    def test_easy_job_ending_exactly_at_shadow_time_backfills(self):
        # Head needs 5, free again at t=100.  A backfill job running
        # exactly 100 s ends *at* the shadow instant: allowed (<=).
        queued = [_job(1, 5, 10.0), _job(2, 2, 100.0)]
        running = [RunningJob(_job(10, 5, 100.0), finish_time=100.0)]
        picked = EasyBackfillScheduler().select(0.0, queued, 2, running)
        assert [j.job_id for j in picked] == [2]

    def test_easy_job_spilling_past_shadow_needs_spare_width(self):
        # Head needs all 7 nodes at the shadow (2 free + 5 released), so
        # the spare width there is 0: a candidate running 100.1 s would
        # still occupy nodes the head needs — it must stay queued, while
        # the exact-fit 100.0 s variant starts.
        running = [RunningJob(_job(10, 5, 100.0), finish_time=100.0)]
        spilling = EasyBackfillScheduler().select(
            0.0, [_job(1, 7, 10.0), _job(2, 2, 100.1)], 2, running
        )
        assert spilling == []
        exact = EasyBackfillScheduler().select(
            0.0, [_job(1, 7, 10.0), _job(2, 2, 100.0)], 2, running
        )
        assert [j.job_id for j in exact] == [2]

    def test_easy_spare_width_at_shadow_admits_long_narrow_job(self):
        # Head needs 6 of the 9 available at t=100: spare width 3 admits
        # one long job of width 2, but not a second (2 > 3 - 2).
        queued = [_job(1, 6, 10.0), _job(2, 2, 500.0), _job(3, 2, 500.0)]
        running = [RunningJob(_job(10, 5, 100.0), finish_time=100.0)]
        picked = EasyBackfillScheduler().select(0.0, queued, 4, running)
        assert [j.job_id for j in picked] == [2]

    def test_conservative_exact_fill_keeps_every_reservation(self):
        # 4 free now; head takes them for 50 s.  Next job (width 4) is
        # reserved at t=50; a width-4 filler running exactly 50 s would
        # collide with the head *now* — conservative places it at t=50
        # behind the head's reservation... so only the head starts.
        queued = [_job(1, 4, 50.0), _job(2, 4, 50.0), _job(3, 4, 10.0)]
        picked = ConservativeBackfillScheduler().select(0.0, queued, 4, [])
        assert [j.job_id for j in picked] == [1]

    def test_conservative_window_exact_runtime_backfills(self):
        # 2 free now; 4 more at t=100.  Head (width 6) reserved at t=100.
        # A width-2 job running exactly 100 s fills [0, 100) precisely and
        # must start; stretching it to 100.5 s would delay the head, so
        # that variant must not.
        running = [RunningJob(_job(10, 4, 100.0), finish_time=100.0)]
        exact = ConservativeBackfillScheduler().select(
            0.0, [_job(1, 6, 20.0), _job(2, 2, 100.0)], 2, running
        )
        assert [j.job_id for j in exact] == [2]
        spilling = ConservativeBackfillScheduler().select(
            0.0, [_job(1, 6, 20.0), _job(2, 2, 100.5)], 2, running
        )
        assert spilling == []


class TestZeroQueueScan:
    """Empty-queue scans: no work, no selection, no crash."""

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_empty_queue_returns_nothing(self, scheduler_cls):
        running = [RunningJob(_job(10, 2, 60.0), finish_time=60.0)]
        assert scheduler_cls().select(0.0, [], 5, running) == []
        assert scheduler_cls().select(0.0, [], 0, []) == []

    @pytest.mark.parametrize("scheduler_cls", SCHEDULERS)
    def test_no_free_nodes_is_a_no_op_for_conservative(self, scheduler_cls):
        queued = [_job(1, 1, 10.0)]
        picked = scheduler_cls().select(0.0, queued, 0, [])
        assert picked == []
