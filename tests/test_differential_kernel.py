"""Differential pins for the hybrid fluid/vectorized core (PR 7).

The exact pure-Python engine is canonical; the hybrid core is an opt-in
accelerator that must be **byte-identical** wherever it engages and must
**fall back** byte-identically wherever it cannot.  This suite pins both
directions:

* uncontended fixed-machine runs (DCS and SSP) under every kernel
  backend — payloads, per-job completion times, usage events and the SSP
  lease ledger all equal the exact engine's, bit for bit;
* contended runs, in-horizon failures, hooks and partial advances — the
  fluid gates refuse, and the deferred-trace fallback reproduces the
  exact run byte for byte;
* the built-in golden scenarios re-run under an ambient kernel
  (``REPRO_KERNEL``-style configuration) — canonical payloads unchanged,
  which is the "golden pins survive the flag being ON" guarantee;
* the kernel column operations agree across backends on random inputs
  (``numba`` degrades to ``numpy`` when the wheel is absent — asserted,
  not assumed, so CI without numba still exercises the selection path).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simkit import kernel as kernelmod
from repro.simkit import fluid as fluidmod
from repro.simkit.kernel import (
    KernelConfigError,
    KernelSpec,
    configured,
    grid_starts,
    numba_available,
    peak_concurrency,
    resolve_backend,
    resolve_kernel_spec,
)
from repro.systems.base import WorkloadBundle
from repro.systems.fixed import FixedLiveRun
from repro.workloads.job import Trace, TraceArrays

BACKENDS = ("python", "numpy", "numba")


def uncontended_bundle(
    seed: int = 11, n: int = 3000, nodes: int = 4096
) -> WorkloadBundle:
    """A synthetic HTC bundle whose peak demand stays far below ``nodes``."""
    rng = np.random.default_rng(seed)
    submit = np.sort(rng.uniform(0.0, 5 * 86400.0, n))
    size = rng.integers(1, 8, n).astype(np.int64)
    runtime = rng.uniform(60.0, 7200.0, n)
    arrays = TraceArrays(np.arange(n, dtype=np.int64), submit, size, runtime)
    trace = Trace.from_arrays(
        "synth", arrays, machine_nodes=nodes, duration=6 * 86400.0
    )
    return WorkloadBundle.from_trace("synth", trace)


def contended_bundle(n: int = 400) -> WorkloadBundle:
    """Wide simultaneous jobs on a small machine: real queueing occurs."""
    rng = np.random.default_rng(3)
    submit = np.sort(rng.uniform(0.0, 86400.0, n))
    size = rng.integers(4, 16, n).astype(np.int64)
    runtime = rng.uniform(3600.0, 14400.0, n)
    arrays = TraceArrays(np.arange(n, dtype=np.int64), submit, size, runtime)
    trace = Trace.from_arrays(
        "contended", arrays, machine_nodes=32, duration=2 * 86400.0
    )
    return WorkloadBundle.from_trace("contended", trace)


def world_fingerprint(run: FixedLiveRun) -> dict:
    """Every observable the exact engine produces, for deep comparison."""
    server = run.server
    return {
        "completed": [
            (j.job_id, j.start_time, j.finish_time)
            for j in server.completed
        ],
        "queued": [j.job_id for j in server.queue],
        "running": {
            job_id: (r.job.start_time, r.finish_time)
            for job_id, r in server.running.items()
        },
        "submitted": server.submitted_jobs,
        "used": server.used,
        "usage_events": server.usage.events,
        "now": run.engine.now,
    }


class TestUncontendedBackends:
    @pytest.mark.parametrize("system", ["DCS", "SSP"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fluid_world_equals_exact_world(self, system, backend):
        bundle = uncontended_bundle()
        exact = FixedLiveRun(bundle, system, kernel="off")
        exact.complete()
        hybrid = FixedLiveRun(bundle, system, kernel=backend)
        hybrid.complete()
        assert hybrid.fluid_applied
        assert world_fingerprint(hybrid) == world_fingerprint(exact)
        pe, ph = exact.finish(), hybrid.finish()
        assert ph.to_payload() == pe.to_payload()
        if system == "SSP":
            assert hybrid.provision.consumption_node_hours(
                "synth"
            ) == exact.provision.consumption_node_hours("synth")
            assert hybrid.provision.usage_events() == (
                exact.provision.usage_events()
            )

    def test_columnar_payload_equals_materialized(self):
        bundle = uncontended_bundle()
        mat = FixedLiveRun(bundle, "SSP", kernel="numpy")
        col = FixedLiveRun(
            bundle, "SSP", kernel={"kernel": "numpy", "materialize": False}
        )
        pm, pc = mat.run(), col.run()
        assert mat.fluid_applied and col.fluid_applied
        assert pc.to_payload() == pm.to_payload()
        # the scale path really skipped job materialization
        assert not col.server.completed
        assert col._fluid_summary is not None


class TestFallbackIdentity:
    def test_contended_trace_falls_back_byte_identically(self):
        bundle = contended_bundle()
        exact = FixedLiveRun(bundle, "DCS", kernel="off")
        exact.complete()
        hybrid = FixedLiveRun(bundle, "DCS", kernel="numpy")
        hybrid.complete()
        assert not hybrid.fluid_applied
        assert world_fingerprint(hybrid) == world_fingerprint(exact)
        assert hybrid.finish().to_payload() == exact.finish().to_payload()

    def test_failures_beyond_horizon_keep_fluid_on(self):
        from repro.reliability.failures import ExponentialFailures

        bundle = uncontended_bundle()
        model = ExponentialFailures(mtbf_s=1e12, mttr_s=3600.0)
        exact = FixedLiveRun(bundle, "DCS", failures=model, seed=5, kernel="off")
        hybrid = FixedLiveRun(
            bundle, "DCS", failures=model, seed=5, kernel="numpy"
        )
        pe, ph = exact.run(), hybrid.run()
        assert hybrid.fluid_applied
        assert ph.to_payload() == pe.to_payload()
        assert "reliability" in ph.to_payload()

    def test_failures_within_horizon_fall_back_byte_identically(self):
        from repro.reliability.failures import ExponentialFailures

        bundle = uncontended_bundle()
        model = ExponentialFailures(mtbf_s=200 * 3600.0, mttr_s=1800.0)
        exact = FixedLiveRun(bundle, "SSP", failures=model, seed=5, kernel="off")
        hybrid = FixedLiveRun(
            bundle, "SSP", failures=model, seed=5, kernel="numpy"
        )
        pe, ph = exact.run(), hybrid.run()
        assert not hybrid.fluid_applied
        assert ph.to_payload() == pe.to_payload()
        assert ph.to_payload()["reliability"]["failures"] > 0

    def test_checkpoint_policy_forces_exact_mode(self):
        from repro.reliability.checkpoint import CheckpointPolicy
        from repro.reliability.failures import ExponentialFailures

        bundle = uncontended_bundle()
        model = ExponentialFailures(
            mtbf_s=1e12, mttr_s=3600.0,
            checkpoint=CheckpointPolicy(interval_s=1800.0),
        )
        hybrid = FixedLiveRun(
            bundle, "DCS", failures=model, seed=5, kernel="numpy"
        )
        exact = FixedLiveRun(
            bundle, "DCS", failures=model, seed=5, kernel="off"
        )
        pe, ph = exact.run(), hybrid.run()
        assert not hybrid.fluid_applied
        assert ph.to_payload() == pe.to_payload()

    def test_partial_advance_injects_and_stays_exact(self):
        bundle = uncontended_bundle()
        exact = FixedLiveRun(bundle, "DCS", kernel="off")
        hybrid = FixedLiveRun(bundle, "DCS", kernel="numpy")
        for run in (exact, hybrid):
            run.advance_before(2 * 86400.0)
            run.complete()
        assert not hybrid.fluid_applied
        assert hybrid.finish().to_payload() == exact.finish().to_payload()

    def test_snapshot_restore_of_hybrid_run_matches_exact(self):
        bundle = uncontended_bundle(n=500)
        exact = FixedLiveRun(bundle, "DCS", kernel="off")
        hybrid = FixedLiveRun(bundle, "DCS", kernel="numpy")
        snap = hybrid.snapshot()  # forces deferred injection first
        branch = snap.restore()
        pe = exact.run().to_payload()
        assert hybrid.run().to_payload() == pe
        assert branch.run().to_payload() == pe

    def test_mtc_runs_always_exact(self):
        from repro.workloads.workflowgen import fork_join

        workflow = fork_join(width=40, seed=1)
        bundle = WorkloadBundle.from_workflow("mtc", workflow, fixed_nodes=16)
        hybrid = FixedLiveRun(bundle, "DCS", kernel="numpy")
        exact = FixedLiveRun(bundle, "DCS", kernel="off")
        assert hybrid.run().to_payload() == exact.run().to_payload()
        assert not hybrid.fluid_applied


class TestKernelOps:
    def test_grid_starts_backends_agree_bitwise(self):
        rng = np.random.default_rng(0)
        submit = np.concatenate([
            rng.uniform(0.0, 1e6, 5000),
            np.arange(0.0, 600.0, 60.0),      # exactly on the grid
            np.arange(0.0, 600.0, 60.0) + 1e-9,  # barely past a tick
            np.arange(60.0, 660.0, 60.0) - 1e-9,  # barely before one
            [0.0],
        ])
        for interval, epoch in ((60.0, 0.0), (3.3, 17.7), (0.1, 1e6)):
            reference = grid_starts(submit, interval, epoch, "python")
            for backend in ("numpy", "numba"):
                got = grid_starts(submit, interval, epoch, backend)
                assert np.array_equal(got, reference), (interval, backend)
            # the product-form contract: each start is a tick >= submit,
            # and the previous tick (if any) is < submit
            n = np.rint((reference - epoch) / interval).astype(np.int64)
            assert (reference >= submit).all()
            assert (n >= 1).all()
            prev = epoch + (n - 1) * interval
            assert ((n == 1) | (prev < submit)).all()

    def test_grid_starts_matches_live_timer(self):
        """The closed form against the actual PeriodicTimer, instant by
        instant: dispatch ticks the timer fires equal the kernel's grid."""
        from repro.simkit.engine import SimulationEngine
        from repro.simkit.timers import PeriodicTimer

        rng = np.random.default_rng(1)
        submits = np.sort(rng.uniform(0.0, 4000.0, 64))
        interval = 60.0
        starts = grid_starts(submits, interval, 0.0, "python")
        ticks: list[float] = []
        engine = SimulationEngine()
        timer = PeriodicTimer(engine, interval, lambda: ticks.append(engine.now))
        timer.start()
        engine.run(until=5000.0)
        tickset = ticks  # every grid instant the timer actually fired at
        for s, expected in zip(submits.tolist(), starts.tolist()):
            live = next(t for t in tickset if t >= s)
            assert live == expected

    def test_peak_concurrency_backends_agree(self):
        rng = np.random.default_rng(2)
        for trial in range(20):
            n = int(rng.integers(1, 200))
            starts = rng.uniform(0.0, 1000.0, n)
            finishes = starts + rng.uniform(0.0, 500.0, n)
            sizes = rng.integers(1, 32, n).astype(np.int64)
            reference = peak_concurrency(starts, finishes, sizes, "python")
            assert peak_concurrency(starts, finishes, sizes, "numpy") == reference
            assert peak_concurrency(starts, finishes, sizes, "numba") == reference

    def test_peak_concurrency_counts_touching_jobs_conservatively(self):
        # job B starts exactly when job A finishes: both counted (adds
        # sort before removes), so the gate overestimates, never under
        starts = np.array([0.0, 10.0])
        finishes = np.array([10.0, 20.0])
        sizes = np.array([4, 4], dtype=np.int64)
        assert peak_concurrency(starts, finishes, sizes, "python") == 8
        assert peak_concurrency(starts, finishes, sizes, "numpy") == 8
        assert peak_concurrency(np.array([]), np.array([]), np.array([]),
                                "numpy") == 0


class TestConfiguration:
    def test_numba_degrades_to_numpy_when_absent(self):
        if numba_available():  # pragma: no cover - wheel present
            assert resolve_backend("numba") == "numba"
        else:
            assert resolve_backend("numba") == "numpy"

    def test_unknown_backend_is_loud(self):
        with pytest.raises(KernelConfigError):
            resolve_backend("fortran")
        with pytest.raises(KernelConfigError):
            resolve_kernel_spec({"kernel": "numpy", "materialise": True})
        with pytest.raises(KernelConfigError):
            resolve_kernel_spec(3.14)

    def test_off_values_disable(self):
        assert resolve_kernel_spec("off") is None
        assert resolve_kernel_spec("exact") is None
        assert resolve_kernel_spec({"kernel": "off"}) is None

    def test_configured_scopes_the_ambient_kernel(self, monkeypatch):
        monkeypatch.delenv(kernelmod.KERNEL_ENV_VAR, raising=False)
        assert resolve_kernel_spec(None) is None  # suite default: off
        with configured("numpy"):
            spec = resolve_kernel_spec(None)
            assert spec == KernelSpec("numpy")
            with configured("off"):
                assert resolve_kernel_spec(None) is None
        assert resolve_kernel_spec(None) is None

    def test_env_var_respected_and_beaten_by_configure(self, monkeypatch):
        monkeypatch.setenv(kernelmod.KERNEL_ENV_VAR, "python")
        assert kernelmod.active_kernel() == "python"
        with configured("off"):
            assert kernelmod.active_kernel() is None
        monkeypatch.setenv(kernelmod.KERNEL_ENV_VAR, "bogus")
        with pytest.raises(KernelConfigError):
            kernelmod.active_kernel()

    def test_explicit_off_beats_ambient_kernel(self):
        bundle = uncontended_bundle(n=50)
        with configured("numpy"):
            run = FixedLiveRun(bundle, "DCS", kernel="off")
            assert run._kernel is None
            ambient = FixedLiveRun(bundle, "DCS")
            assert ambient._kernel == KernelSpec("numpy")


class TestSpecLayer:
    def test_engine_ref_resolves_and_stays_digest_compatible(self):
        from repro.api.run import resolve_engine_kernel
        from repro.api.spec import SystemSpec

        plain = SystemSpec.from_value("dcs")
        assert "engine" not in plain.to_dict()  # old digests unchanged
        hybrid = SystemSpec.from_value(
            {"runner": "dcs", "engine": {"name": "hybrid",
                                         "params": {"kernel": "python"}}}
        )
        assert resolve_engine_kernel(hybrid.engine) == {
            "kernel": "python", "materialize": True,
        }
        assert resolve_engine_kernel(None) is None
        exact = SystemSpec.from_value({"runner": "dcs", "engine": "exact"})
        assert resolve_engine_kernel(exact.engine) == "off"
        roundtrip = SystemSpec.from_value(hybrid.to_dict())
        assert roundtrip == hybrid

    def test_engine_ref_validation_is_loud(self):
        from repro.api.run import resolve_engine_kernel
        from repro.api.spec import ComponentRef

        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine_kernel(ComponentRef("warp"))
        with pytest.raises(ValueError, match="takes no params"):
            resolve_engine_kernel(
                ComponentRef("exact", {"kernel": "numpy"})
            )
        with pytest.raises(ValueError, match="unknown param"):
            resolve_engine_kernel(
                ComponentRef("hybrid", {"backend": "numpy"})
            )
        with pytest.raises(ValueError, match="kernel must be"):
            resolve_engine_kernel(ComponentRef("hybrid", {"kernel": "x"}))

    def test_run_system_with_engine_ref_matches_exact(self):
        import repro.api.components  # noqa: F401 - registrations
        from repro.api.run import run_system

        bundle = uncontended_bundle(n=400)
        fluidmod.STATS["applied"] = 0
        # `engine: exact` pins the canonical engine even under an ambient
        # REPRO_KERNEL — a spec is a complete description of its run
        exact = run_system({"runner": "ssp", "engine": "exact"}, bundle, seed=0)
        assert fluidmod.STATS["applied"] == 0
        hybrid = run_system(
            {"runner": "ssp", "engine": {"name": "hybrid"}}, bundle, seed=0
        )
        assert hybrid.to_payload() == exact.to_payload()
        assert fluidmod.STATS["applied"] == 1

    def test_validate_spec_accepts_engine_ref(self):
        import repro.api.components  # noqa: F401 - registrations
        from repro.api.run import validate_spec
        from repro.api.spec import ExperimentSpec

        spec = ExperimentSpec(
            name="t",
            workloads=({"generator": "nasa-ipsc"},),
            systems=(
                {"runner": "dcs", "engine": "exact"},
                {"runner": "ssp", "engine": {"name": "hybrid",
                                             "params": {"materialize": False}}},
            ),
        )
        validate_spec(spec)  # must not raise
        bad = ExperimentSpec(
            name="t2",
            workloads=({"generator": "nasa-ipsc"},),
            systems=({"runner": "dcs", "engine": "warp-drive"},),
        )
        with pytest.raises(ValueError, match="unknown engine"):
            validate_spec(bad)


@pytest.mark.slow
class TestGoldenScenariosUnderAmbientKernel:
    """The built-in scenarios with the hybrid core switched ON ambiently.

    Fixed runs that qualify go fluid, everything else falls back — and
    every canonical payload must equal the exact engine's byte for byte.
    This is the strongest statement of the PR's contract: turning the
    flag on changes wall time, never results.
    """

    SCENARIOS = (
        "table2-nasa",
        "table3-blue",
        "table4-montage",
        "fig10-sweep-nasa",
        "tco-case",
        "drp-vs-fixed-under-failures",
    )

    # scenarios whose runs include fixed HTC systems: the ambient kernel
    # must at least *attempt* the fluid tier there (the real traces are
    # contended, so it declines and falls back — byte-identically)
    ATTEMPTING = ("table2-nasa", "table3-blue", "drp-vs-fixed-under-failures")

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_payload_identical_with_kernel_on(self, scenario):
        from repro.experiments.cache import canonical_json
        from repro.experiments.registry import default_registry

        spec = default_registry().get(scenario)
        with configured("off"):  # pin exact even under ambient REPRO_KERNEL
            exact = spec.run(0)
        fluidmod.STATS["applied"] = fluidmod.STATS["fallbacks"] = 0
        with configured("numpy"):
            hybrid = spec.run(0)
        assert canonical_json(hybrid) == canonical_json(exact)
        if scenario in self.ATTEMPTING:
            attempts = fluidmod.STATS["applied"] + fluidmod.STATS["fallbacks"]
            assert attempts > 0  # the flag really reached the fixed runs

    def test_million_node_year_smoke(self):
        """The scale scenario at a testing-friendly size: fluid engages,
        and the exact engine agrees at the same (small) size."""
        from repro.experiments.perfscale import million_node_year

        small = dict(nodes=20_000, n_jobs=5_000, years=0.05)
        hybrid = million_node_year(seed=0, kernel="numpy", **small)
        exact = million_node_year(seed=0, kernel="off", **small)
        assert hybrid["systems"] == exact["systems"]


class TestServiceForkUnderHybridKernel:
    """PR 9 stress: the serving layer's forks against the fluid fast path.

    A hybrid run holds its boot trace columnar until first event-granular
    use.  Wrapping such a run in a :class:`SimulationService` and forking
    it must (a) force the deferred trace onto the heap first — a fork of
    a half-deferred world would silently lose arrivals — and (b) leave
    both the original and every branch byte-identical to the exact
    engine's evolution.
    """

    def test_service_fork_forces_exact_injection(self):
        from repro.serving import SimulationService

        bundle = uncontended_bundle(n=400)
        hybrid = FixedLiveRun(bundle, "DCS", kernel="numpy")
        service = SimulationService(hybrid)
        assert hybrid._deferred_trace is not None  # fluid option still open
        branch = service.fork()
        assert hybrid._deferred_trace is None  # _ensure_exact_mode fired
        assert branch.live._deferred_trace is None
        assert not hybrid.fluid_applied

        exact = FixedLiveRun(bundle, "DCS", kernel="off")
        expected = exact.run().to_payload()
        assert service.shutdown(drain=True) == expected
        assert branch.shutdown(drain=True) == expected

    def test_ingest_into_hybrid_run_forces_exact_injection(self):
        from repro.serving import SimulationService
        from repro.workloads.job import Job

        bundle = uncontended_bundle(n=300)
        hybrid = FixedLiveRun(bundle, "DCS", kernel="numpy")
        service = SimulationService(hybrid)
        assert hybrid._deferred_trace is not None
        extra = Job(10**6, 86400.0, 2, 900.0, 0, "htc")
        service.submit(extra)
        assert hybrid._deferred_trace is None  # ingest is event-granular

        # the exact engine over trace + extra job agrees byte for byte
        exact = FixedLiveRun(bundle, "DCS", kernel="off")
        exact_service = SimulationService(exact)
        exact_service.submit(
            Job(10**6, 86400.0, 2, 900.0, 0, "htc")
        )
        assert service.shutdown(drain=True) == exact_service.shutdown(
            drain=True
        )

    def test_mid_run_service_fork_continues_byte_identically(self):
        from repro.serving import SimulationService

        bundle = uncontended_bundle(n=400)
        exact = FixedLiveRun(bundle, "DCS", kernel="off")
        expected = exact.run()
        exact_fp = world_fingerprint(exact)

        hybrid = FixedLiveRun(bundle, "DCS", kernel="numpy")
        service = SimulationService(hybrid)
        service.advance_to(2 * 86400.0)  # partial advance: exact mode forced
        branch = service.fork()
        assert branch.now == service.now
        payload = service.shutdown(drain=True)
        assert payload == expected.to_payload()
        assert world_fingerprint(hybrid) == exact_fp
        assert branch.shutdown(drain=True) == payload
        assert world_fingerprint(branch.live) == exact_fp
