"""Unit tests for the fault-tolerance subsystem.

Covers the pure pieces (checkpoint math, failure models, the failed-node
range index, lease shrinking) and the wired-together behaviour (the
injector killing/requeueing jobs on a live server, billing stopping on
dead nodes, spec-level ``failures=`` blocks, the CLI ``--mtbf`` flag).
Deterministic throughout: stochastic paths run on fixed seeds, exact
timelines use the trace-driven model.
"""

from __future__ import annotations

import pytest

from repro.cluster.lease import HOUR, LeaseLedger
from repro.cluster.node import NodePool, NodeState
from repro.cluster.provision import ResourceProvisionService
from repro.core.servers import REServer
from repro.provisioning.billing import PerSecondMeter
from repro.provisioning.state import ClusterState, ClusterStateError
from repro.reliability import (
    CheckpointPolicy,
    ExponentialFailures,
    NodeFailureInjector,
    TraceDrivenFailures,
    WeibullFailures,
    resume_work,
)
from repro.scheduling.firstfit import FirstFitScheduler
from repro.simkit.engine import SimulationEngine
from repro.simkit.rng import RandomStreams
from repro.workloads.job import Job, JobState, Trace


def make_job(job_id, submit=0.0, size=1, runtime=60.0):
    return Job(job_id=job_id, submit_time=submit, size=size, runtime=runtime)


# --------------------------------------------------------------------- #
# checkpoint math
# --------------------------------------------------------------------- #
class TestCheckpointPolicy:
    def test_writes_exclude_completion_boundary(self):
        p = CheckpointPolicy(interval_s=100.0, overhead_s=5.0)
        assert p.writes_for(0.0) == 0
        assert p.writes_for(99.0) == 0
        assert p.writes_for(100.0) == 0  # a write at completion is pointless
        assert p.writes_for(101.0) == 1
        assert p.writes_for(250.0) == 2
        assert p.writes_for(300.0) == 2

    def test_segment_wall_adds_write_overhead(self):
        p = CheckpointPolicy(interval_s=100.0, overhead_s=5.0)
        assert p.segment_wall(250.0) == 250.0 + 2 * 5.0
        assert p.segment_wall(50.0) == 50.0

    def test_recovered_work_counts_finished_writes_only(self):
        p = CheckpointPolicy(interval_s=100.0, overhead_s=5.0)
        # first write finishes at wall 105
        assert p.recovered_work(104.9) == 0.0
        assert p.recovered_work(105.0) == 100.0
        assert p.recovered_work(209.9) == 100.0
        assert p.recovered_work(210.0) == 200.0

    def test_resume_work_without_policy_restarts_from_scratch(self):
        assert resume_work(None, 500.0, 499.0) == 500.0

    def test_resume_work_clamps_to_remaining(self):
        p = CheckpointPolicy(interval_s=10.0, overhead_s=0.0)
        assert resume_work(p, 25.0, 24.0) == 5.0
        # elapsed beyond the remaining work cannot recover more than owed
        assert resume_work(p, 25.0, 1000.0) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_s=0.0)
        with pytest.raises(ValueError):
            CheckpointPolicy(interval_s=10.0, overhead_s=-1.0)


# --------------------------------------------------------------------- #
# failure models
# --------------------------------------------------------------------- #
class TestFailureModels:
    def test_exponential_draws_positive_and_deterministic(self):
        model = ExponentialFailures(mtbf_s=100.0, mttr_s=10.0)
        a = RandomStreams(7).stream("x")
        b = RandomStreams(7).stream("x")
        ttfs = [model.draw_ttf(a) for _ in range(50)]
        assert ttfs == [model.draw_ttf(b) for _ in range(50)]
        assert all(t >= 0 for t in ttfs)

    def test_weibull_mean_matches_mtbf(self):
        model = WeibullFailures(mtbf_s=1000.0, shape=0.7)
        rng = RandomStreams(0).stream("w")
        draws = [model.draw_ttf(rng) for _ in range(20000)]
        assert sum(draws) / len(draws) == pytest.approx(1000.0, rel=0.05)

    def test_trace_model_validates_windows(self):
        with pytest.raises(ValueError, match="fail_t < repair_t"):
            TraceDrivenFailures(events=((0, 50.0, 50.0),))
        with pytest.raises(ValueError, match="overlapping"):
            TraceDrivenFailures(events=((1, 0.0, 100.0), (1, 50.0, 150.0)))
        model = TraceDrivenFailures(events=((1, 200.0, 300.0), (1, 0.0, 100.0)))
        assert model.windows_for(1) == [(0.0, 100.0), (200.0, 300.0)]

    def test_registry_builds_models_with_checkpoint(self):
        from repro.api.registry import default_components

        model = default_components().create(
            "failure-model", "exponential",
            mtbf_hours=48.0, checkpoint_interval_s=1800.0,
        )
        assert model.mtbf_s == 48.0 * HOUR
        assert model.checkpoint == CheckpointPolicy(1800.0, 60.0)
        plain = default_components().create(
            "failure-model", "weibull", mtbf_hours=1.0, shape=1.3,
        )
        assert plain.checkpoint is None


# --------------------------------------------------------------------- #
# cluster state: the failed-node range index
# --------------------------------------------------------------------- #
class TestClusterStateFailures:
    def test_fail_free_and_repair_roundtrip(self):
        state = ClusterState(10)
        state.fail_free(3, t=0.0)
        assert (state.free_count, state.failed_count) == (7, 3)
        assert state.allocated_count == 0
        state.repair(3, t=5.0)
        assert (state.free_count, state.failed_count) == (10, 0)
        # ranges merged back into one block
        assert state._free == [(0, 10)]

    def test_fail_owned_leaves_holdings(self):
        state = ClusterState(10)
        state.assign("a", 6, t=0.0)
        state.fail_owned("a", 2, t=1.0)
        assert state.owned_count("a") == 4
        assert state.failed_count == 2
        assert state.allocated_count == 4
        state.repair(2, t=2.0)
        assert state.free_count == 6  # repaired nodes go free, not back to a

    def test_conservation_under_mixed_operations(self):
        state = ClusterState(20)
        state.assign("a", 8, t=0.0)
        state.fail_owned("a", 3, t=1.0)
        state.fail_free(2, t=2.0)
        state.assign("b", 5, t=3.0)
        state.repair(4, t=4.0)
        total = state.free_count + state.allocated_count + state.failed_count
        assert total == 20

    def test_busy_integral_excludes_failed_nodes(self):
        state = ClusterState(10)
        state.assign("a", 4, t=0.0)
        state.fail_owned("a", 2, t=10.0)  # 4 busy for 10 s
        state.repair(2, t=20.0)           # 2 busy for 10 s
        assert state.busy_node_seconds(30.0) == 4 * 10 + 2 * 10 + 2 * 10

    def test_invalid_operations_rejected(self):
        state = ClusterState(4)
        with pytest.raises(ClusterStateError):
            state.fail_free(5, t=0.0)
        with pytest.raises(ClusterStateError):
            state.fail_owned("nobody", 1, t=0.0)
        with pytest.raises(ClusterStateError):
            state.repair(1, t=0.0)


class TestNodePoolFailures:
    def test_node_state_machine_fail_repair(self):
        pool = NodePool(4)
        pool.assign("a", 2)
        node = pool.fail(owner="a")
        assert node.state is NodeState.FAILED
        assert node.owner is None
        assert pool.owned_count("a") == 1
        assert pool.failed_count == 1
        pool.repair(node)
        assert node.state is NodeState.FREE
        assert pool.free_count == 3

    def test_free_node_failure(self):
        pool = NodePool(2)
        node = pool.fail()
        assert pool.free_count == 1
        assert pool.failed_count == 1
        pool.repair(node)
        assert pool.free_count == 2

    def test_illegal_transitions_guarded(self):
        pool = NodePool(1)
        node = pool.fail()
        with pytest.raises(RuntimeError, match="illegal transition"):
            node.fail()


# --------------------------------------------------------------------- #
# lease shrinking: billing stops on dead nodes
# --------------------------------------------------------------------- #
class TestLeaseShrink:
    def test_failed_slice_billed_at_failure_instant(self):
        ledger = LeaseLedger(meter=PerSecondMeter(min_charge_s=0.0))
        lease = ledger.open_lease("a", 4, t=0.0)
        charged = ledger.shrink_lease(lease, 1, t=HOUR)
        assert charged == pytest.approx(1.0)  # 1 node-hour, per-second exact
        assert lease.n_nodes == 3
        assert ledger.open_nodes("a") == 3
        total = charged + ledger.close_lease(lease, t=2 * HOUR)
        # 1 node × 1 h + 3 nodes × 2 h: the dead node stopped metering
        assert total == pytest.approx(1.0 + 6.0)
        assert ledger.charged_units_total("a") == pytest.approx(7.0)

    def test_full_shrink_closes_the_lease(self):
        ledger = LeaseLedger()
        lease = ledger.open_lease("a", 2, t=0.0)
        ledger.shrink_lease(lease, 2, t=10.0)
        assert not lease.open
        assert ledger.open_nodes("a") == 0

    def test_shrink_validation(self):
        ledger = LeaseLedger()
        lease = ledger.open_lease("a", 2, t=100.0)
        with pytest.raises(ValueError):
            ledger.shrink_lease(lease, 3, t=200.0)
        with pytest.raises(ValueError):
            ledger.shrink_lease(lease, 1, t=50.0)
        ledger.close_lease(lease, 200.0)
        with pytest.raises(ValueError):
            ledger.shrink_lease(lease, 1, t=300.0)

    def test_provision_service_fail_and_repair(self):
        svc = ResourceProvisionService(10, meter=PerSecondMeter(min_charge_s=0.0))
        svc.request("a", 4, 0.0)
        svc.fail_node(HOUR, client="a")
        assert svc.allocated_nodes("a") == 3
        assert svc.failed_nodes == 1
        assert svc.consumption_node_hours("a") == pytest.approx(1.0)
        svc.repair_node(2 * HOUR)
        assert svc.failed_nodes == 0
        assert svc.free_nodes == 7
        # the failure shows up in the adjustment records
        kinds = [rec.kind for rec in svc.adjustments]
        assert kinds == ["dynamic", "failure"]


# --------------------------------------------------------------------- #
# server: kill, requeue, checkpoint resume
# --------------------------------------------------------------------- #
class TestServerKillRequeue:
    def _server(self, nodes=4):
        engine = SimulationEngine()
        server = REServer(engine, "s", FirstFitScheduler(), 60.0)
        server.add_nodes(nodes)
        return engine, server

    def test_kill_requeues_and_restarts_from_scratch(self):
        engine, server = self._server()
        server.enable_fault_tolerance()
        job = make_job(1, runtime=500.0)
        server.submit_job(job)
        engine.run(until=60.0)  # first scan dispatches at t=60
        assert job.state is JobState.RUNNING
        engine.schedule(40.0, lambda: server.kill_running(job))
        engine.schedule(40.0, lambda: server.fail_nodes(1))
        engine.run(until=100.0)
        assert job.state is JobState.QUEUED
        assert job in server.queue
        assert server.fault.stats.requeues == 1
        assert server.fault.remaining[1] == 500.0  # no checkpoint: full redo
        engine.run(until=3600.0)
        assert job.state is JobState.COMPLETED
        # redispatched at the t=120 scan, full 500 s again
        assert job.finish_time == pytest.approx(120.0 + 500.0)

    def test_checkpoint_resume_shortens_the_retry(self):
        engine, server = self._server()
        server.enable_fault_tolerance(CheckpointPolicy(100.0, overhead_s=0.0))
        job = make_job(1, runtime=500.0)
        server.submit_job(job)
        engine.run(until=60.0)
        # kill 250 s in: two checkpoints (t=100, 200 of work) survived
        engine.schedule(250.0, lambda: server.kill_running(job))
        engine.run(until=60.0 + 250.0)
        assert server.fault.remaining[1] == 300.0
        assert server.fault.stats.checkpoint_restores == 1
        engine.run(until=7200.0)
        assert job.state is JobState.COMPLETED
        # restarted at t=360 (next scan) with 300 s of work left
        assert job.finish_time == pytest.approx(360.0 + 300.0)

    def test_wasted_accounting(self):
        engine, server = self._server()
        server.enable_fault_tolerance()
        job = make_job(1, size=3, runtime=1000.0)
        server.submit_job(job)
        engine.run(until=60.0)
        engine.schedule(100.0, lambda: server.kill_running(job))
        engine.run(until=200.0)
        assert server.fault.stats.wasted_node_seconds == pytest.approx(3 * 100.0)

    def test_kill_without_fault_tolerance_is_an_error(self):
        engine, server = self._server()
        job = make_job(1, runtime=500.0)
        server.submit_job(job)
        engine.run(until=60.0)
        with pytest.raises(RuntimeError, match="fault tolerance not enabled"):
            server.kill_running(job)

    def test_fast_path_has_no_fault_state(self):
        engine, server = self._server()
        server.submit_job(make_job(1, runtime=30.0))
        engine.run(until=200.0)
        assert server.fault is None
        assert server.completed_count == 1


# --------------------------------------------------------------------- #
# injector end to end (trace-driven: exact timelines)
# --------------------------------------------------------------------- #
class TestInjectorTimeline:
    def test_trace_driven_failure_kills_and_repairs_on_schedule(self):
        engine = SimulationEngine()
        server = REServer(engine, "s", FirstFitScheduler(), 60.0)
        server.add_nodes(2)
        model = TraceDrivenFailures(events=((0, 200.0, 500.0),))
        injector = NodeFailureInjector(
            engine, server, model, RandomStreams(0), n_slots=2,
            restore="server",
        ).start()
        job = make_job(1, size=2, runtime=1000.0)
        server.submit_job(job)
        engine.run(until=4000.0)
        # job started at 60 (size 2 on 2 nodes); the failure at 200 must
        # kill it (both nodes busy); one node down until 500
        assert injector.stats.failures == 1
        assert injector.stats.killed_jobs == 1
        assert injector.stats.repairs == 1
        assert injector.stats.downtime_node_seconds == pytest.approx(300.0)
        assert job.state is JobState.COMPLETED
        # requeued at 200 with one node: cannot fit (size 2) until the
        # repair at 500 restores the second node; next scan at 540
        assert job.start_time == pytest.approx(540.0)
        assert job.finish_time == pytest.approx(540.0 + 1000.0)
        payload = injector.finalize(4000.0)
        assert payload["requeues"] == 1
        assert payload["goodput_node_hours"] == pytest.approx(
            2 * 1000.0 / 3600.0
        )
        assert payload["wasted_node_hours"] == pytest.approx(
            2 * 140.0 / 3600.0
        )

    def test_restore_provider_returns_node_to_pool_not_server(self):
        engine = SimulationEngine()
        provision = ResourceProvisionService(8)
        server = REServer(engine, "s", FirstFitScheduler(), 60.0)
        lease = provision.request("s", 4, 0.0)
        assert lease is not None
        server.add_nodes(4)
        model = TraceDrivenFailures(events=((0, 100.0, 300.0),))
        NodeFailureInjector(
            engine, server, model, RandomStreams(0), n_slots=4,
            provision=provision, restore="provider",
        ).start()
        engine.run(until=1000.0)
        assert server.owned == 3           # the server never got it back
        assert provision.free_nodes == 5   # ... the provider's pool did
        assert provision.allocated_nodes("s") == 3

    def test_injector_validation(self):
        engine = SimulationEngine()
        server = REServer(engine, "s", FirstFitScheduler(), 60.0)
        model = ExponentialFailures(mtbf_s=100.0)
        with pytest.raises(ValueError, match="n_slots"):
            NodeFailureInjector(engine, server, model, RandomStreams(0), 0)
        with pytest.raises(ValueError, match="restore"):
            NodeFailureInjector(
                engine, server, model, RandomStreams(0), 1, restore="nope"
            )
        with pytest.raises(ValueError, match="provision"):
            NodeFailureInjector(
                engine, server, model, RandomStreams(0), 1, restore="provider"
            )


# --------------------------------------------------------------------- #
# spec / API integration
# --------------------------------------------------------------------- #
class TestSpecIntegration:
    def test_system_spec_failures_roundtrip_and_digest(self):
        from repro.api.spec import ExperimentSpec, spec_digest

        data = {
            "name": "rel",
            "workloads": [{"generator": "fork-join", "params": {"width": 8}}],
            "systems": [{"runner": "dcs",
                         "failures": {"name": "exponential",
                                      "params": {"mtbf_hours": 48.0}}}],
        }
        spec = ExperimentSpec.from_dict(data)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert spec.systems[0].failures.name == "exponential"
        # a spec without failures digests identically to the pre-reliability
        # schema (no new key leaks into the canonical form)
        plain = ExperimentSpec.from_dict({
            "name": "rel", "workloads": data["workloads"], "systems": ["dcs"],
        })
        assert "failures" not in plain.to_dict()["systems"][0]
        assert spec_digest(spec) != spec_digest(plain)

    def test_validate_spec_rejects_unknown_failure_model(self):
        from repro.api.run import validate_spec
        from repro.api.spec import ExperimentSpec

        spec = ExperimentSpec.from_dict({
            "name": "bad",
            "workloads": ["nasa-ipsc"],
            "systems": [{"runner": "dcs", "failures": "solar-flare"}],
        })
        with pytest.raises(KeyError, match="failure-model"):
            validate_spec(spec)

    def test_run_system_attaches_reliability_payload(self):
        from repro.api.run import materialize_workload, run_system

        bundle = materialize_workload(
            {"generator": "fork-join", "params": {"width": 8}}, 0
        )
        metrics = run_system(
            {"runner": "dcs",
             "failures": {"name": "exponential",
                          "params": {"mtbf_hours": 0.2, "mttr_hours": 0.1}}},
            bundle, seed=0,
        )
        assert metrics.reliability is not None
        assert metrics.reliability["failures"] > 0
        assert "reliability" in metrics.to_payload()

    def test_mtbf_sweep_paths_expand(self):
        from repro.api.spec import ExperimentSpec

        spec = ExperimentSpec.from_dict({
            "name": "grid",
            "workloads": ["nasa-ipsc"],
            "systems": [{"runner": "dawningcloud",
                         "failures": {"name": "exponential",
                                      "params": {"mtbf_hours": 48.0}}}],
            "sweep": {"failures.params.mtbf_hours": [24.0, 48.0, 96.0]},
        })
        expanded = spec.expand_systems()
        assert [s.failures.params["mtbf_hours"] for s, _ in expanded] == [
            24.0, 48.0, 96.0,
        ]

    def test_drp_mtc_failures_rejected(self):
        from repro.api.run import materialize_workload
        from repro.systems.drp import run_drp

        bundle = materialize_workload("montage", 0)
        with pytest.raises(ValueError, match="HTC-only"):
            run_drp(bundle, failures=ExponentialFailures(mtbf_s=HOUR))

    def test_drp_trace_driven_failures_rejected_cleanly(self):
        from repro.systems.base import WorkloadBundle
        from repro.systems.drp import run_drp

        trace = Trace("t", [make_job(1, runtime=100.0)], machine_nodes=4,
                      duration=HOUR)
        bundle = WorkloadBundle.from_trace("t", trace)
        model = TraceDrivenFailures(events=((0, 50.0, 60.0),))
        with pytest.raises(ValueError, match="cannot replay"):
            run_drp(bundle, failures=model)


class TestCliMtbf:
    def test_run_with_mtbf_override(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.cli import main

        monkeypatch.chdir(tmp_path)  # no ./specs, fresh cache dir
        rc = main([
            "run", "--scenario", "drp-vs-fixed-under-failures",
            "--mtbf", "96", "--no-cache", "--seed", "0",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["drp-vs-fixed-under-failures"]
        assert {r["system"] for r in rows} == {
            "DCS", "SSP", "DRP", "DawningCloud"
        }

    def test_mtbf_flag_ignores_non_reliability_scenarios(self, capsys,
                                                         tmp_path,
                                                         monkeypatch):
        import json

        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        rc = main(["run", "--scenario", "table1-models", "--mtbf", "96",
                   "--no-cache"])
        assert rc == 0
        assert "table1-models" in json.loads(capsys.readouterr().out)


def test_small_trace_full_pipeline_with_failures():
    """A tiny end-to-end: trace → DCS under failures → sane accounting."""
    from repro.systems.base import WorkloadBundle
    from repro.systems.fixed import run_dcs

    jobs = [make_job(i, submit=120.0 * i, size=2, runtime=900.0)
            for i in range(1, 13)]
    trace = Trace("tiny", jobs, machine_nodes=8, duration=4 * HOUR)
    bundle = WorkloadBundle.from_trace("tiny", trace)
    model = ExponentialFailures(
        mtbf_s=2 * HOUR, mttr_s=0.5 * HOUR,
        checkpoint=CheckpointPolicy(300.0, overhead_s=10.0),
    )
    metrics = run_dcs(bundle, failures=model, seed=1)
    rel = metrics.reliability
    assert rel is not None
    assert rel["failures"] >= rel["repairs"]
    assert 0.0 <= rel["wasted_fraction"] <= 1.0
    assert metrics.completed_jobs <= metrics.submitted_jobs
    # goodput equals the work of the completed jobs
    assert rel["goodput_node_hours"] == pytest.approx(
        metrics.completed_jobs * 2 * 900.0 / 3600.0
    )
