"""Unit tests for the supervision policy layer (fake clock, no pools).

Everything here is pure-policy: classification, backoff arithmetic and
the retry loop's clock interactions are pinned with an injected fake
clock, so these tests run in microseconds and never sleep for real.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.experiments.supervision import (
    ErrorInfo,
    OrchestrationError,
    RetryPolicy,
    ScenarioTimeout,
    TransientError,
    WorkerCrash,
    is_transient,
)


class FakeClock:
    """Injectable sleep/monotonic pair recording every sleep."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def monotonic(self) -> float:
        return self.now


def fake_policy(**kwargs) -> tuple[RetryPolicy, FakeClock]:
    clock = FakeClock()
    policy = RetryPolicy(
        sleep=clock.sleep, monotonic=clock.monotonic, **kwargs
    )
    return policy, clock


# --------------------------------------------------------------------- #
# classification
# --------------------------------------------------------------------- #
class TestClassification:
    def test_supervisor_exceptions_are_transient(self):
        assert is_transient(ScenarioTimeout("deadline"))
        assert is_transient(WorkerCrash("died"))
        assert is_transient(TransientError("generic"))
        assert is_transient(BrokenProcessPool("pool gone"))

    def test_scenario_exceptions_are_permanent(self):
        assert not is_transient(ValueError("bad input"))
        assert not is_transient(RuntimeError("scenario 'x' failed"))
        assert not is_transient(KeyError("missing"))

    def test_should_retry_combines_type_and_budget(self):
        policy, _ = fake_policy(max_attempts=3)
        assert policy.should_retry(WorkerCrash("x"), attempt=1)
        assert policy.should_retry(WorkerCrash("x"), attempt=2)
        assert not policy.should_retry(WorkerCrash("x"), attempt=3)
        assert not policy.should_retry(ValueError("x"), attempt=1)


# --------------------------------------------------------------------- #
# backoff arithmetic
# --------------------------------------------------------------------- #
class TestBackoff:
    def test_exponential_sequence_with_cap(self):
        policy, _ = fake_policy(
            max_attempts=6, backoff_base_s=0.1, backoff_factor=2.0,
            backoff_max_s=0.5,
        )
        assert [policy.backoff_s(a) for a in range(1, 6)] == [
            0.1, 0.2, 0.4, 0.5, 0.5,
        ]

    def test_backoff_is_deterministic_no_jitter(self):
        policy, _ = fake_policy()
        assert policy.backoff_s(2) == policy.backoff_s(2)

    def test_attempt_is_one_based(self):
        policy, _ = fake_policy()
        with pytest.raises(ValueError, match="1-based"):
            policy.backoff_s(0)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout_s"):
            RetryPolicy(timeout_s=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(backoff_base_s=-1)

    def test_fake_clock_is_excluded_from_equality(self):
        a, _ = fake_policy(max_attempts=4)
        b, _ = fake_policy(max_attempts=4)
        assert a == b  # different clock objects, same policy


# --------------------------------------------------------------------- #
# error snapshots
# --------------------------------------------------------------------- #
class TestErrorInfo:
    def test_snapshot_captures_type_message_traceback(self):
        try:
            raise ValueError("bad value")
        except ValueError as exc:
            info = ErrorInfo.from_exception(exc)
        assert info.type == "ValueError"
        assert info.message == "bad value"
        assert "ValueError: bad value" in info.traceback
        assert info.summary() == "ValueError: bad value"

    def test_cause_chain_is_preserved(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError as inner:
                raise RuntimeError("outer") from inner
        except RuntimeError as exc:
            info = ErrorInfo.from_exception(exc)
        assert info.type == "RuntimeError"
        assert info.cause is not None
        assert info.cause.type == "KeyError"

    def test_cause_chain_depth_is_bounded(self):
        exc: BaseException = ValueError("level 0")
        for level in range(1, 10):
            try:
                raise RuntimeError(f"level {level}") from exc
            except RuntimeError as wrapped:
                exc = wrapped
        info = ErrorInfo.from_exception(exc, depth=3)
        depth = 1
        node = info
        while node.cause is not None:
            node = node.cause
            depth += 1
        assert depth == 3

    def test_to_dict_is_json_shaped(self):
        try:
            raise WorkerCrash("pool worker died")
        except WorkerCrash as exc:
            payload = ErrorInfo.from_exception(exc).to_dict()
        assert payload["type"] == "WorkerCrash"
        assert payload["message"] == "pool worker died"
        assert "traceback" in payload


# --------------------------------------------------------------------- #
# the aggregate failure
# --------------------------------------------------------------------- #
class TestOrchestrationError:
    def test_message_names_each_failed_scenario(self):
        class Run:
            error = {"type": "ValueError",
                     "message": "scenario 'boom' failed: intentional"}

        exc = OrchestrationError({"boom": Run()}, {"boom": Run()})
        assert "scenario 'boom' failed" in str(exc)
        assert isinstance(exc, RuntimeError)

    def test_carries_full_outcome_maps(self):
        failures = {"a": object()}
        runs = {"a": failures["a"], "b": object()}
        exc = OrchestrationError(failures, runs)
        assert set(exc.failures) == {"a"}
        assert set(exc.runs) == {"a", "b"}
