"""Tests for the ablation experiment harness (experiments.ablations).

The sweeps run on a small synthetic bundle so the suite stays fast; the
benchmarks run them on the paper's real workloads.
"""

import pytest

from repro.core.policies import ResourceManagementPolicy
from repro.experiments.ablations import (
    lease_unit_ablation,
    policy_ablation,
    scan_interval_ablation,
    scheduler_ablation,
    setup_cost_ablation,
    utilization_sweep,
)
from repro.systems.base import WorkloadBundle
from repro.workloads.job import Job, Trace
from repro.workloads.traces import NASA_IPSC, HTCTraceSpec

HOUR = 3600.0


@pytest.fixture(scope="module")
def bundle() -> WorkloadBundle:
    """A 6-hour, 80-job bundle with mixed widths and sub-hour runtimes."""
    jobs = []
    for i in range(80):
        jobs.append(
            Job(
                job_id=i + 1,
                submit_time=240.0 * i,
                size=2 + 6 * (i % 3),
                runtime=600.0 + 120.0 * (i % 5),
                user_id=i % 4,
            )
        )
    trace = Trace("ablate", jobs, machine_nodes=32, duration=8 * HOUR)
    return WorkloadBundle.from_trace("ablate", trace)


@pytest.fixture(scope="module")
def policy() -> ResourceManagementPolicy:
    return ResourceManagementPolicy.for_htc(initial_nodes=8, threshold_ratio=1.5)


class TestLeaseUnit:
    def test_rows_and_columns(self, bundle, policy):
        rows = lease_unit_ablation(bundle, policy, lease_units_s=(600.0, HOUR),
                                   capacity=128)
        assert len(rows) == 2
        assert {"lease_unit_s", "node_hours_equiv", "completed_jobs",
                "overhead_s_per_hour"} <= set(rows[0])

    def test_all_jobs_complete_at_every_unit(self, bundle, policy):
        rows = lease_unit_ablation(bundle, policy,
                                   lease_units_s=(600.0, HOUR, 4 * HOUR),
                                   capacity=128)
        assert all(r["completed_jobs"] == 80 for r in rows)

    def test_finer_units_bill_no_more_node_hours(self, bundle, policy):
        rows = lease_unit_ablation(bundle, policy,
                                   lease_units_s=(600.0, 24 * HOUR),
                                   capacity=128)
        fine, coarse = rows[0], rows[1]
        assert fine["node_hours_equiv"] <= coarse["node_hours_equiv"]


class TestScanInterval:
    def test_throughput_degrades_gracefully_with_cadence(self, bundle, policy):
        rows = scan_interval_ablation(bundle, policy,
                                      scan_intervals_s=(15.0, 900.0),
                                      capacity=128)
        fast, slow = rows
        assert fast["completed_jobs"] >= slow["completed_jobs"]
        assert fast["mean_wait_s"] <= slow["mean_wait_s"]

    def test_row_shape(self, bundle, policy):
        rows = scan_interval_ablation(bundle, policy, scan_intervals_s=(60.0,),
                                      capacity=128)
        assert rows[0]["scan_interval_s"] == 60.0
        assert rows[0]["resource_consumption"] > 0


class TestScheduler:
    def test_all_registered_schedulers_run(self, bundle, policy):
        rows = scheduler_ablation(bundle, policy, capacity=128)
        from repro.scheduling import SCHEDULER_REGISTRY

        assert {r["scheduler"] for r in rows} == set(SCHEDULER_REGISTRY)
        assert all(r["completed_jobs"] == 80 for r in rows)

    def test_subset_selection(self, bundle, policy):
        rows = scheduler_ablation(bundle, policy,
                                  scheduler_names=("first-fit", "sjf"),
                                  capacity=128)
        assert [r["scheduler"] for r in rows] == ["first-fit", "sjf"]


class TestPolicyAblation:
    def test_catalog_policies_all_run(self, bundle):
        rows = policy_ablation(bundle, initial_nodes=8, capacity=128)
        names = {r["policy"] for r in rows}
        assert "paper(B,R)" in names and "static" in names
        assert len(rows) == len(names)

    def test_static_policy_peaks_at_b(self, bundle):
        rows = policy_ablation(bundle, initial_nodes=8, capacity=128)
        static = [r for r in rows if r["policy"] == "static"][0]
        assert static["peak_nodes"] == 8

    def test_demand_tracking_completes_everything(self, bundle):
        rows = policy_ablation(bundle, initial_nodes=8, capacity=128)
        tracking = [r for r in rows if r["policy"] == "demand-tracking"][0]
        assert tracking["completed_jobs"] == 80


@pytest.mark.slow  # nine full-trace simulations
class TestUtilizationSweep:
    @pytest.fixture(scope="class")
    def small_spec(self) -> HTCTraceSpec:
        from dataclasses import replace

        return replace(
            NASA_IPSC,
            name="mini",
            n_jobs=250,
            duration=3 * 24 * HOUR,
            machine_nodes=64,
            size_pmf=tuple((min(s, 64), p) for s, p in NASA_IPSC.size_pmf[:6])
            + ((64, NASA_IPSC.size_pmf[6][1] + NASA_IPSC.size_pmf[7][1]),),
        )

    def test_savings_shrink_with_load(self, small_spec):
        rows = utilization_sweep(
            small_spec,
            utilizations=(0.25, 0.80),
            policy=ResourceManagementPolicy.for_htc(16, 1.5),
            capacity=256,
            seed=1,
        )
        lo, hi = rows
        assert lo["utilization"] == 0.25 and hi["utilization"] == 0.80
        assert lo["dawningcloud_saving_vs_dcs"] > hi["dawningcloud_saving_vs_dcs"]

    def test_dcs_cost_is_load_independent(self, small_spec):
        rows = utilization_sweep(
            small_spec,
            utilizations=(0.3, 0.6),
            policy=ResourceManagementPolicy.for_htc(16, 1.5),
            capacity=256,
            seed=1,
        )
        assert rows[0]["dcs_node_hours"] == rows[1]["dcs_node_hours"]


class TestSetupCost:
    def test_overhead_linear_in_cost(self, bundle, policy):
        rows = setup_cost_ablation(bundle, policy,
                                   per_node_costs_s=(0.0, 10.0, 20.0),
                                   capacity=128)
        assert rows[0]["total_overhead_s"] == 0.0
        assert rows[2]["total_overhead_s"] == pytest.approx(
            2 * rows[1]["total_overhead_s"], rel=1e-6
        )

    def test_adjustment_counts_identical_across_costs(self, bundle, policy):
        rows = setup_cost_ablation(bundle, policy,
                                   per_node_costs_s=(0.0, 300.0),
                                   capacity=128)
        assert rows[0]["adjusted_nodes"] == rows[1]["adjusted_nodes"]
