"""Failure-injection tests: capacity exhaustion, rejections, mid-run
destruction, and degenerate configurations.

The paper's provision policy (§3.2.2.3) is all-or-nothing with rejection,
but the evaluation's 420-node pool rarely rejects; these tests force the
unhappy paths and assert the system degrades gracefully instead of
deadlocking, double-billing or leaking nodes.
"""

import pytest

from repro.cluster.provision import ProvisionError, ResourceProvisionService
from repro.core.dawningcloud import DawningCloud
from repro.core.negotiation import DynamicResourceManager
from repro.core.policies import ResourceManagementPolicy
from repro.core.servers import REServer
from repro.scheduling.firstfit import FirstFitScheduler
from repro.simkit.engine import SimulationEngine
from repro.workloads.job import Job, Trace

HOUR = 3600.0


def _trace(n_jobs=20, size=8, runtime=1800.0, spacing=300.0, nodes=64):
    jobs = [
        Job(job_id=i + 1, submit_time=spacing * i, size=size, runtime=runtime)
        for i in range(n_jobs)
    ]
    return Trace("inject", jobs, machine_nodes=nodes, duration=6 * HOUR)


class TestPoolExhaustion:
    def test_dynamic_rejections_counted_and_jobs_still_finish(self):
        """A pool barely above B forces rejections; the queue drains on B."""
        cloud = DawningCloud(capacity=10)
        cloud.add_htc_provider("lab", ResourceManagementPolicy.for_htc(8, 1.0))
        cloud.submit_trace("lab", _trace(n_jobs=10, size=8))
        cloud.run(until=6 * HOUR)
        cloud.shutdown()
        manager = cloud.tre("lab").manager
        assert manager.dynamic_rejections > 0
        metrics = cloud.provider_metrics("lab", 6 * HOUR)
        assert metrics.completed_jobs == 10  # B=8 fits each 8-wide job

    def test_initial_grant_failure_raises_cleanly(self):
        """A pool smaller than B cannot even start the TRE."""
        cloud = DawningCloud(capacity=4)
        cloud.add_htc_provider("lab", ResourceManagementPolicy.for_htc(8, 1.5))
        with pytest.raises(RuntimeError, match="initial"):
            cloud.run(until=1.0)

    def test_rejection_leaves_pool_consistent(self):
        svc = ResourceProvisionService(capacity=10)
        assert svc.request("a", 8, 0.0) is not None
        assert svc.request("b", 8, 0.0) is None
        assert svc.rejected_requests == 1
        assert svc.free_nodes == 2
        assert svc.allocated_nodes("b") == 0

    def test_contention_between_two_tres(self):
        """Two TREs compete for one small pool; totals never exceed it."""
        cloud = DawningCloud(capacity=24)
        cloud.add_htc_provider("a", ResourceManagementPolicy.for_htc(8, 1.0))
        cloud.add_htc_provider("b", ResourceManagementPolicy.for_htc(8, 1.0))
        cloud.submit_trace("a", _trace(n_jobs=12, size=8, spacing=200.0))
        cloud.submit_trace("b", _trace(n_jobs=12, size=8, spacing=200.0))
        engine = cloud.engine
        max_alloc = 0
        while engine.peek_time() is not None and engine.now < 6 * HOUR:
            engine.step()
            max_alloc = max(max_alloc, cloud.provision.allocated_nodes())
        cloud.shutdown()
        assert max_alloc <= 24
        for name in ("a", "b"):
            assert cloud.provider_metrics(name, 6 * HOUR).completed_jobs == 12


class TestMidRunDestruction:
    def test_destroying_a_tre_mid_run_releases_everything(self):
        cloud = DawningCloud(capacity=64)
        cloud.add_htc_provider("lab", ResourceManagementPolicy.for_htc(16, 1.5))
        cloud.submit_trace("lab", _trace(n_jobs=20, size=8))
        cloud.run(until=1 * HOUR)
        cloud.destroy_provider("lab")
        assert cloud.provision.allocated_nodes("lab") == 0
        assert cloud.provision.free_nodes == 64
        # further submissions are ignored, not crashes
        late = Job(job_id=999, submit_time=0.0, size=1, runtime=10.0)
        cloud.tre("lab").server.submit_job(late)
        assert cloud.tre("lab").server.submitted_jobs <= 21

    def test_double_destroy_raises(self):
        cloud = DawningCloud(capacity=32)
        cloud.add_htc_provider("lab", ResourceManagementPolicy.for_htc(8, 1.5))
        cloud.run(until=1.0)
        cloud.destroy_provider("lab")
        with pytest.raises(KeyError):
            cloud.destroy_provider("lab")

    def test_billing_covers_partial_hours_at_destruction(self):
        """Destroying 30 minutes in still bills one full lease unit."""
        cloud = DawningCloud(capacity=32)
        cloud.add_htc_provider("lab", ResourceManagementPolicy.for_htc(8, 1.5))
        cloud.run(until=0.5 * HOUR)
        cloud.destroy_provider("lab")
        assert cloud.provision.consumption_node_hours("lab") == 8.0


class TestDegenerateConfigurations:
    def test_zero_capacity_pool_rejected(self):
        with pytest.raises(ValueError):
            ResourceProvisionService(capacity=0)

    def test_manager_double_start_rejected(self):
        engine = SimulationEngine()
        svc = ResourceProvisionService(capacity=32)
        server = REServer(engine, "x", FirstFitScheduler(), 60.0)
        mgr = DynamicResourceManager(
            engine, server, svc, ResourceManagementPolicy.for_htc(8, 1.5)
        )
        mgr.start()
        with pytest.raises(RuntimeError, match="already started"):
            mgr.start()

    def test_release_of_closed_lease_rejected(self):
        svc = ResourceProvisionService(capacity=16)
        lease = svc.request("a", 4, 0.0)
        svc.release(lease, 100.0)
        with pytest.raises(ProvisionError):
            svc.release(lease, 200.0)

    def test_oversized_job_never_starts_but_nothing_hangs(self):
        """A job wider than the whole cloud queues forever, others flow."""
        cloud = DawningCloud(capacity=32)
        cloud.add_htc_provider("lab", ResourceManagementPolicy.for_htc(8, 1.5))
        jobs = [
            Job(job_id=1, submit_time=0.0, size=500, runtime=100.0),
            Job(job_id=2, submit_time=10.0, size=4, runtime=100.0),
        ]
        cloud.submit_trace("lab", Trace("t", jobs, machine_nodes=500,
                                        duration=2 * HOUR))
        cloud.run(until=2 * HOUR)
        cloud.shutdown()
        server = cloud.tre("lab").server
        done = {j.job_id for j in server.completed}
        assert done == {2}

    def test_empty_trace_runs_to_horizon(self):
        cloud = DawningCloud(capacity=16)
        cloud.add_htc_provider("lab", ResourceManagementPolicy.for_htc(4, 1.5))
        cloud.submit_trace("lab", Trace("empty", [], machine_nodes=16,
                                        duration=HOUR))
        cloud.run(until=HOUR)
        cloud.shutdown()
        m = cloud.provider_metrics("lab", HOUR)
        assert m.completed_jobs == 0
        assert m.resource_consumption == 4.0  # B nodes held for the hour
