"""Tests for the SWF parser/writer."""

import io

import pytest

from repro.workloads.swf import SWFError, parse_swf, parse_swf_file, write_swf


def swf_line(
    job=1, submit=0, wait=10, run=100, used=4, req=4, status=1, user=3
) -> str:
    fields = [job, submit, wait, run, used, -1, -1, req, run, -1, status,
              user, -1, -1, -1, -1, -1, -1]
    return " ".join(str(f) for f in fields)


class TestParsing:
    def test_single_job(self):
        trace = parse_swf(swf_line(job=7, submit=50, run=300, used=8))
        assert len(trace) == 1
        job = trace[0]
        assert job.job_id == 7
        assert job.submit_time == 50
        assert job.runtime == 300
        assert job.size == 8

    def test_header_max_procs_sets_machine(self):
        text = "; MaxProcs: 128\n" + swf_line()
        trace = parse_swf(text)
        assert trace.machine_nodes == 128

    def test_machine_defaults_to_largest_job(self):
        text = swf_line(job=1, used=4) + "\n" + swf_line(job=2, used=9)
        assert parse_swf(text).machine_nodes == 9

    def test_failed_jobs_dropped_by_default(self):
        text = swf_line(job=1, status=1) + "\n" + swf_line(job=2, status=0)
        assert len(parse_swf(text)) == 1

    def test_failed_jobs_kept_on_request(self):
        text = swf_line(job=1, status=1) + "\n" + swf_line(job=2, status=0)
        assert len(parse_swf(text, include_failed=True)) == 2

    def test_cancelled_jobs_dropped(self):
        text = swf_line(job=1) + "\n" + swf_line(job=2, status=5)
        assert len(parse_swf(text)) == 1

    def test_requested_procs_used_when_used_missing(self):
        trace = parse_swf(swf_line(used=-1, req=6))
        assert trace[0].size == 6

    def test_unusable_records_skipped(self):
        text = swf_line(job=1) + "\n" + swf_line(job=2, used=-1, req=-1)
        assert len(parse_swf(text)) == 1

    def test_short_line_rejected(self):
        with pytest.raises(SWFError):
            parse_swf("1 2 3")

    def test_non_numeric_rejected(self):
        with pytest.raises(SWFError):
            parse_swf(swf_line().replace("100", "abc", 1))

    def test_duplicate_job_number_rejected_in_strict_mode(self):
        with pytest.raises(SWFError):
            parse_swf(swf_line(job=1) + "\n" + swf_line(job=1), strict=True)

    def test_duplicate_job_number_skipped_by_default(self):
        trace = parse_swf(swf_line(job=1) + "\n" + swf_line(job=1))
        assert len(trace) == 1
        assert trace.metadata["swf_skipped_lines"] == 1

    def test_malformed_lines_skipped_with_counter(self):
        text = swf_line(job=1) + "\ngarbage line\n" + swf_line(job=2) + "\n1 2 3\n"
        trace = parse_swf(text)
        assert len(trace) == 2
        assert trace.metadata["swf_skipped_lines"] == 2

    def test_malformed_line_raises_in_strict_mode(self):
        with pytest.raises(SWFError):
            parse_swf(swf_line(job=1) + "\ngarbage\n", strict=True)

    def test_empty_input_rejected(self):
        with pytest.raises(SWFError):
            parse_swf("; just a header\n")

    def test_comments_and_blank_lines_ignored(self):
        text = "\n; Comment: hi\n\n" + swf_line() + "\n\n"
        assert len(parse_swf(text)) == 1

    def test_duration_defaults_to_last_event(self):
        text = swf_line(job=1, submit=0, run=100) + "\n" + swf_line(
            job=2, submit=500, run=250
        )
        assert parse_swf(text).duration == 750

    def test_header_preserved_in_metadata(self):
        text = "; Computer: iPSC/860\n" + swf_line()
        trace = parse_swf(text)
        assert trace.metadata["swf_header"]["Computer"] == "iPSC/860"


class TestRoundTrip:
    def test_write_then_parse_preserves_jobs(self, small_trace):
        text = write_swf(small_trace)
        parsed = parse_swf(text, name=small_trace.name)
        assert len(parsed) == len(small_trace)
        for a, b in zip(small_trace, parsed):
            assert a.job_id == b.job_id
            assert a.size == b.size
            assert b.runtime == pytest.approx(a.runtime, abs=1)
            assert b.submit_time == pytest.approx(a.submit_time, abs=1)

    def test_write_to_stream(self, small_trace):
        buf = io.StringIO()
        write_swf(small_trace, buf)
        assert "MaxProcs: 16" in buf.getvalue()

    def test_parse_file(self, small_trace, tmp_path):
        path = tmp_path / "trace.swf"
        path.write_text(write_swf(small_trace))
        parsed = parse_swf_file(path)
        assert len(parsed) == len(small_trace)
        assert parsed.name == "trace.swf"


class TestCompressedAndStreamInputs:
    """The gzip / pre-opened-stream source shapes (PR 3 satellite)."""

    def _text(self):
        return "; MaxProcs: 16\n" + swf_line(job=1) + "\n" + swf_line(job=2) + "\n"

    def test_bytes_input(self):
        assert len(parse_swf(self._text().encode())) == 2

    def test_binary_stream_input(self):
        assert len(parse_swf(io.BytesIO(self._text().encode()))) == 2

    def test_gzip_binary_stream_detected_by_magic(self):
        import gzip

        blob = gzip.compress(self._text().encode())
        trace = parse_swf(io.BytesIO(blob))
        assert len(trace) == 2
        assert trace.machine_nodes == 16

    def test_gzip_file_by_extension(self, tmp_path):
        import gzip

        path = tmp_path / "log.swf.gz"
        path.write_bytes(gzip.compress(self._text().encode()))
        trace = parse_swf_file(path)
        assert len(trace) == 2
        assert trace.name == "log.swf.gz"

    def test_plain_text_stream_still_works(self, tmp_path):
        path = tmp_path / "log.swf"
        path.write_text(self._text())
        with open(path) as fh:
            assert len(parse_swf(fh)) == 2

    def test_preopened_binary_file(self, tmp_path):
        path = tmp_path / "log.swf"
        path.write_text(self._text())
        with open(path, "rb") as fh:
            assert len(parse_swf(fh)) == 2

    def test_preopened_stream_is_borrowed_not_closed(self, tmp_path):
        import gc

        path = tmp_path / "log.swf"
        path.write_text(self._text())
        with open(path, "rb") as fh:
            parse_swf(fh)
            gc.collect()  # would close fh if the decode chain owned it
            assert not fh.closed
            fh.seek(0)
            assert len(parse_swf(fh)) == 2

    def test_preopened_gzip_stream_is_borrowed_not_closed(self):
        import gc
        import gzip

        blob = io.BytesIO(gzip.compress(self._text().encode()))
        parse_swf(blob)
        gc.collect()
        assert not blob.closed
