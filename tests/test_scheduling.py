"""Tests for the job queue and scheduling policies."""

import pytest

from repro.scheduling.backfill import EasyBackfillScheduler
from repro.scheduling.base import RunningJob
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from repro.scheduling.queue import JobQueue
from tests.conftest import make_job


class TestJobQueue:
    def test_fifo_order(self):
        q = JobQueue()
        for i in (3, 1, 2):
            q.push(make_job(i))
        assert [j.job_id for j in q.jobs] == [3, 1, 2]

    def test_duplicate_push_rejected(self):
        q = JobQueue()
        job = make_job(1)
        q.push(job)
        with pytest.raises(ValueError):
            q.push(job)

    def test_remove(self):
        q = JobQueue()
        a, b = make_job(1), make_job(2)
        q.push(a)
        q.push(b)
        q.remove(a)
        assert [j.job_id for j in q.jobs] == [2]
        with pytest.raises(ValueError):
            q.remove(a)

    def test_demand_aggregates(self):
        q = JobQueue()
        q.push(make_job(1, size=4))
        q.push(make_job(2, size=9))
        assert q.total_demand == 13
        assert q.biggest_demand == 9

    def test_empty_aggregates(self):
        q = JobQueue()
        assert q.total_demand == 0
        assert q.biggest_demand == 0
        assert q.head() is None

    def test_membership(self):
        q = JobQueue()
        job = make_job(1)
        q.push(job)
        assert job in q


class TestFirstFit:
    def test_skips_wide_head(self):
        """§4.4: picks the first job whose requirement can be met."""
        sched = FirstFitScheduler()
        queued = [make_job(1, size=10), make_job(2, size=3)]
        picked = sched.select(0.0, queued, free_nodes=4)
        assert [j.job_id for j in picked] == [2]

    def test_greedy_packs_in_arrival_order(self):
        sched = FirstFitScheduler()
        queued = [make_job(i, size=s) for i, s in ((1, 2), (2, 2), (3, 2))]
        picked = sched.select(0.0, queued, free_nodes=5)
        assert [j.job_id for j in picked] == [1, 2]

    def test_never_exceeds_free_nodes(self):
        sched = FirstFitScheduler()
        queued = [make_job(i, size=3) for i in range(1, 10)]
        picked = sched.select(0.0, queued, free_nodes=7)
        assert sum(j.size for j in picked) <= 7

    def test_zero_free_nodes(self):
        sched = FirstFitScheduler()
        assert sched.select(0.0, [make_job(1)], free_nodes=0) == []


class TestFcfs:
    def test_blocks_behind_wide_head(self):
        sched = FcfsScheduler()
        queued = [make_job(1, size=10), make_job(2, size=1)]
        assert sched.select(0.0, queued, free_nodes=4) == []

    def test_starts_prefix_that_fits(self):
        sched = FcfsScheduler()
        queued = [make_job(i, size=s) for i, s in ((1, 2), (2, 3), (3, 4))]
        picked = sched.select(0.0, queued, free_nodes=5)
        assert [j.job_id for j in picked] == [1, 2]

    def test_equivalent_to_firstfit_for_unit_jobs(self):
        queued = [make_job(i, size=1) for i in range(1, 8)]
        ff = FirstFitScheduler().select(0.0, queued, free_nodes=4)
        fc = FcfsScheduler().select(0.0, queued, free_nodes=4)
        assert [j.job_id for j in ff] == [j.job_id for j in fc]


class TestEasyBackfill:
    def test_behaves_like_fcfs_when_everything_fits(self):
        sched = EasyBackfillScheduler()
        queued = [make_job(1, size=2), make_job(2, size=2)]
        picked = sched.select(0.0, queued, free_nodes=8)
        assert [j.job_id for j in picked] == [1, 2]

    def test_backfills_short_job_that_ends_before_shadow(self):
        sched = EasyBackfillScheduler()
        running = [RunningJob(make_job(99, size=6), finish_time=1000.0)]
        queued = [
            make_job(1, size=8, runtime=500),  # head, needs 8, only 4 free
            make_job(2, size=2, runtime=500),  # ends at 500 < shadow 1000
        ]
        picked = sched.select(0.0, queued, free_nodes=4, running=running)
        assert [j.job_id for j in picked] == [2]

    def test_rejects_backfill_that_would_delay_head(self):
        sched = EasyBackfillScheduler()
        running = [RunningJob(make_job(99, size=6), finish_time=1000.0)]
        queued = [
            make_job(1, size=8, runtime=500),
            # runs past the shadow AND exceeds the spare capacity (10-8=2)
            make_job(2, size=3, runtime=2000),
        ]
        picked = sched.select(0.0, queued, free_nodes=4, running=running)
        assert picked == []

    def test_allows_long_backfill_in_spare_capacity(self):
        sched = EasyBackfillScheduler()
        running = [RunningJob(make_job(99, size=6), finish_time=1000.0)]
        queued = [
            make_job(1, size=7, runtime=500),  # shadow frees 6 + 3 idle -> spare 2
            make_job(2, size=2, runtime=9999),  # fits inside the spare 2
        ]
        picked = sched.select(0.0, queued, free_nodes=3, running=running)
        assert [j.job_id for j in picked] == [2]

    def test_conservative_when_head_can_never_run(self):
        sched = EasyBackfillScheduler()
        queued = [make_job(1, size=100), make_job(2, size=1, runtime=10)]
        picked = sched.select(0.0, queued, free_nodes=4, running=[])
        assert picked == []
