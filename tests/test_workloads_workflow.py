"""Tests for the workflow DAG model."""

import pytest

from repro.workloads.job import JobState
from repro.workloads.workflow import Workflow, relabel_tasks
from tests.conftest import make_job


class TestConstruction:
    def test_empty_workflow_rejected(self):
        with pytest.raises(ValueError):
            Workflow(1, [])

    def test_mismatched_workflow_id_rejected(self):
        with pytest.raises(ValueError):
            Workflow(1, [make_job(1, workflow_id=2)])

    def test_cycle_rejected(self):
        tasks = [
            make_job(1, deps=(2,), workflow_id=1),
            make_job(2, deps=(1,), workflow_id=1),
        ]
        with pytest.raises(ValueError):
            Workflow(1, tasks)


class TestStructure:
    def test_levels_of_diamond(self, diamond_workflow):
        assert diamond_workflow.levels() == [[1], [2, 3], [4]]

    def test_level_widths_and_max_width(self, diamond_workflow):
        assert diamond_workflow.level_widths() == [1, 2, 1]
        assert diamond_workflow.max_width() == 2

    def test_critical_path_takes_longest_branch(self, diamond_workflow):
        # 100 + max(200, 50) + 100
        assert diamond_workflow.critical_path_length() == pytest.approx(400)

    def test_total_work(self, diamond_workflow):
        assert diamond_workflow.total_work() == pytest.approx(450)

    def test_mean_task_runtime(self, diamond_workflow):
        assert diamond_workflow.mean_task_runtime() == pytest.approx(450 / 4)

    def test_type_census(self, diamond_workflow):
        assert diamond_workflow.type_census() == {"batch": 4}


class TestExecutionSupport:
    def test_initial_ready_set_is_entry_tasks(self, diamond_workflow):
        assert [t.job_id for t in diamond_workflow.ready_tasks()] == [1]

    def test_ready_set_grows_as_dependencies_complete(self, diamond_workflow):
        t1 = diamond_workflow.task(1)
        t1.mark_queued(0)
        t1.mark_running(0)
        t1.mark_completed(100)
        ready = [t.job_id for t in diamond_workflow.ready_tasks()]
        assert ready == [2, 3]

    def test_join_waits_for_all_parents(self, diamond_workflow):
        for jid, t_done in ((1, 100), (2, 300)):
            t = diamond_workflow.task(jid)
            t.mark_queued(0)
            t.mark_running(0)
            t.mark_completed(t_done)
        assert [t.job_id for t in diamond_workflow.ready_tasks()] == [3]

    def test_completed_and_makespan(self, diamond_workflow):
        assert not diamond_workflow.completed()
        times = {1: 100, 2: 300, 3: 150, 4: 400}
        for jid in (1, 2, 3, 4):
            t = diamond_workflow.task(jid)
            t.mark_queued(0)
            t.mark_running(0)
            t.mark_completed(times[jid])
        assert diamond_workflow.completed()
        assert diamond_workflow.makespan() == pytest.approx(400)

    def test_makespan_none_while_incomplete(self, diamond_workflow):
        assert diamond_workflow.makespan() is None

    def test_reset(self, diamond_workflow):
        t1 = diamond_workflow.task(1)
        t1.mark_queued(0)
        diamond_workflow.reset()
        assert all(t.state is JobState.PENDING for t in diamond_workflow.tasks)


class TestRelabel:
    def test_relabel_shifts_ids_and_deps(self, diamond_workflow):
        clones = relabel_tasks(diamond_workflow.tasks, 100, 9, submit_time=50.0)
        wf = Workflow(9, clones, submit_time=50.0)
        assert wf.levels() == [[101], [102, 103], [104]]
        assert all(t.submit_time == 50.0 for t in wf.tasks)
