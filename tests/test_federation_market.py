"""Tests for the priced federation (federation.market)."""

import pytest

from repro.core.policies import ResourceManagementPolicy
from repro.federation.market import (
    ProviderRate,
    cheapest_feasible_placement,
    run_market,
    scale_economies_experiment,
)
from repro.federation.model import FederatedResourceProvider
from repro.systems.base import WorkloadBundle
from repro.workloads.job import Job, Trace

HOUR = 3600.0


def _bundle(name: str, n_jobs: int = 30, size: int = 4, nodes: int = 32,
            runtime: float = 1200.0) -> WorkloadBundle:
    jobs = [
        Job(job_id=i + 1, submit_time=300.0 * i, size=size, runtime=runtime,
            user_id=i % 3)
        for i in range(n_jobs)
    ]
    trace = Trace(name, jobs, machine_nodes=nodes, duration=6 * HOUR)
    return WorkloadBundle.from_trace(name, trace)


@pytest.fixture(scope="module")
def bundles():
    return [_bundle("alpha"), _bundle("beta", size=2), _bundle("gamma", size=8)]


@pytest.fixture(scope="module")
def policies():
    return {
        name: ResourceManagementPolicy.for_htc(8, 1.5)
        for name in ("alpha", "beta", "gamma")
    }


class TestRates:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ProviderRate("x", -0.1)


class TestCheapestPlacement:
    def test_prefers_cheapest_feasible(self, bundles):
        providers = [
            FederatedResourceProvider("budget", 64),
            FederatedResourceProvider("premium", 256),
        ]
        rates = {"budget": 0.05, "premium": 0.12}
        placement = cheapest_feasible_placement(bundles, providers, rates)
        assert set(placement.values()) == {"budget"}

    def test_feasibility_overrides_price(self, bundles):
        # budget pool is too small for the bundles' 32-node configuration
        providers = [
            FederatedResourceProvider("budget", 16),
            FederatedResourceProvider("premium", 256),
        ]
        rates = {"budget": 0.01, "premium": 0.12}
        placement = cheapest_feasible_placement(bundles, providers, rates)
        assert set(placement.values()) == {"premium"}

    def test_missing_rate_raises(self, bundles):
        providers = [FederatedResourceProvider("a", 64)]
        with pytest.raises(ValueError, match="no rate"):
            cheapest_feasible_placement(bundles, providers, {})

    def test_infeasible_bundle_raises(self, bundles):
        providers = [FederatedResourceProvider("tiny", 8)]
        with pytest.raises(ValueError, match="no provider"):
            cheapest_feasible_placement(bundles, providers, {"tiny": 0.1})


class TestRunMarket:
    def test_revenue_equals_consumption_times_rate(self, bundles, policies):
        providers = [
            FederatedResourceProvider("east", 128),
            FederatedResourceProvider("west", 128),
        ]
        rates = [ProviderRate("east", 0.10), ProviderRate("west", 0.08)]
        result = run_market(bundles, policies, providers, rates)
        for name, metrics in result.federation_result.per_provider.items():
            assert result.revenue[name] == pytest.approx(
                metrics.total_consumption * result.rates[name]
            )

    def test_bills_sum_to_revenue(self, bundles, policies):
        providers = [FederatedResourceProvider("solo", 256)]
        rates = [ProviderRate("solo", 0.10)]
        result = run_market(bundles, policies, providers, rates)
        assert sum(result.bills.values()) == pytest.approx(result.total_billed)
        assert set(result.bills) == {"alpha", "beta", "gamma"}

    def test_to_rows_shape(self, bundles, policies):
        providers = [FederatedResourceProvider("solo", 256)]
        result = run_market(bundles, policies, providers,
                            [ProviderRate("solo", 0.10)])
        rows = result.to_rows()
        assert len(rows) == 1
        assert rows[0]["service_providers"] == 3
        assert rows[0]["revenue_usd"] > 0


class TestScaleEconomies:
    def test_rows_cover_requested_splits(self, bundles, policies):
        rows = scale_economies_experiment(
            bundles, policies, total_capacity=240, splits=(1, 3)
        )
        assert [r["n_providers"] for r in rows] == [1, 3]
        assert rows[0]["capacity_each"] == 240
        assert rows[1]["capacity_each"] == 80

    def test_all_jobs_complete_when_capacity_ample(self, bundles, policies):
        rows = scale_economies_experiment(
            bundles, policies, total_capacity=300, splits=(1, 3)
        )
        expected = sum(b.n_jobs for b in bundles)
        assert all(r["completed_jobs"] == expected for r in rows)

    def test_splits_clamped_to_bundle_count(self, bundles, policies):
        rows = scale_economies_experiment(
            bundles, policies, total_capacity=300, splits=(5,)
        )
        assert rows[0]["n_providers"] == 3

    def test_validation(self, bundles, policies):
        with pytest.raises(ValueError):
            scale_economies_experiment(bundles, policies, total_capacity=0)
        with pytest.raises(ValueError):
            scale_economies_experiment(bundles, policies, total_capacity=100,
                                       splits=(0,))
