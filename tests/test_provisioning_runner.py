"""Tests for the policy-composable runner (provisioning.runner)."""

from __future__ import annotations

import pytest

from repro.provisioning.billing import PerSecondMeter
from repro.provisioning.runner import EagerPoolPolicy, run_pooled_queue_htc
from repro.scheduling.firstfit import FirstFitScheduler
from repro.systems.base import WorkloadBundle
from repro.workloads.job import Job, Trace

HOUR = 3600.0


def _bundle(jobs, machine_nodes=8, duration=6 * HOUR) -> WorkloadBundle:
    trace = Trace("t", jobs, machine_nodes=machine_nodes, duration=duration)
    return WorkloadBundle.from_trace("t", trace)


class TestEagerPoolPolicy:
    def test_tops_up_to_demand_below_cap(self):
        policy = EagerPoolPolicy(cap=100)
        assert policy.dynamic_request_size(40, 10, 15) == 25
        assert policy.dynamic_request_size(40, 10, 40) == 0

    def test_cap_bounds_the_pool(self):
        policy = EagerPoolPolicy(cap=30)
        assert policy.dynamic_request_size(500, 100, 10) == 20
        assert policy.dynamic_request_size(500, 100, 30) == 0

    def test_rejects_silly_caps(self):
        with pytest.raises(ValueError):
            EagerPoolPolicy(cap=0)


class TestPooledQueueRunner:
    def _jobs(self):
        # two width-4 jobs back to back, then a short burst
        return [
            Job(job_id=1, submit_time=10.0, size=4, runtime=600.0),
            Job(job_id=2, submit_time=20.0, size=4, runtime=600.0),
            Job(job_id=3, submit_time=5000.0, size=8, runtime=60.0),
        ]

    def test_runs_a_trace_and_bills_through_the_ledger(self):
        m = run_pooled_queue_htc(_bundle(self._jobs()), FirstFitScheduler)
        assert m.completed_jobs == 3
        assert m.submitted_jobs == 3
        # pool never exceeds the machine-size cap
        assert m.peak_nodes <= 8
        # per-started-hour billing: strictly positive, whole node-hours
        assert m.resource_consumption > 0
        assert m.resource_consumption == int(m.resource_consumption)
        assert m.system == "pooled-queue/first-fit"

    def test_is_deterministic(self):
        a = run_pooled_queue_htc(_bundle(self._jobs()), FirstFitScheduler)
        b = run_pooled_queue_htc(_bundle(self._jobs()), FirstFitScheduler)
        assert a.resource_consumption == b.resource_consumption
        assert a.adjusted_nodes == b.adjusted_nodes
        assert a.peak_nodes == b.peak_nodes

    def test_meter_changes_the_bill_not_the_schedule(self):
        # An off-boundary horizon leaves the seed lease open at shutdown:
        # per-hour bills the started hour in full, per-second does not.
        bundle = _bundle(self._jobs(), duration=5.5 * HOUR)
        hourly = run_pooled_queue_htc(bundle, FirstFitScheduler)
        per_s = run_pooled_queue_htc(
            _bundle(self._jobs(), duration=5.5 * HOUR), FirstFitScheduler,
            meter=PerSecondMeter(min_charge_s=0.0),
        )
        assert per_s.completed_jobs == hourly.completed_jobs
        assert per_s.adjusted_nodes == hourly.adjusted_nodes
        assert per_s.resource_consumption < hourly.resource_consumption

    def test_rejects_mtc_bundles(self):
        from repro.workloads.montage import generate_montage

        wf = generate_montage(seed=0)
        bundle = WorkloadBundle.from_workflow("m", wf)
        with pytest.raises(ValueError):
            run_pooled_queue_htc(bundle, FirstFitScheduler)
