"""Full-scale integration tests: the paper's headline claims.

These run the real two-week workloads, so they are the slowest tests in the
suite (a few seconds each).  They assert the *shape* of the published
results — orderings and rough factors — not exact node-hour counts (our
substrate is a synthetic-trace simulator, not the authors' testbed; see
EXPERIMENTS.md for the measured-vs-paper record).
"""

import pytest

from repro.experiments.config import (
    EvaluationSetup,
    PAPER_POLICIES,
    montage_bundle,
    nasa_bundle,
)
from repro.systems.consolidation import run_all_systems
from repro.systems.drp import run_drp
from repro.systems.dsp_runner import run_dawningcloud_mtc
from repro.systems.fixed import run_dcs

HOUR = 3600.0

#: whole-simulation tests: excluded from the fast tier
pytestmark = pytest.mark.slow



@pytest.fixture(scope="module")
def consolidated():
    setup = EvaluationSetup(seed=0)
    return run_all_systems(
        setup.bundles(consolidated=True),
        setup.policies,
        capacity=setup.capacity,
        horizon=setup.horizon,
    )


class TestFixedSystemIdentities:
    """Exact closed-form figures the paper also gets exactly."""

    def test_dcs_nasa_is_43008(self, consolidated):
        assert consolidated.provider("DCS", "nasa-ipsc").resource_consumption == 43008

    def test_dcs_blue_is_48384(self, consolidated):
        assert consolidated.provider("DCS", "sdsc-blue").resource_consumption == 48384

    def test_dcs_montage_is_166(self, consolidated):
        assert consolidated.provider("DCS", "montage").resource_consumption == 166

    def test_ssp_equals_dcs_everywhere(self, consolidated):
        for name in ("nasa-ipsc", "sdsc-blue", "montage"):
            assert (
                consolidated.provider("SSP", name).resource_consumption
                == consolidated.provider("DCS", name).resource_consumption
            )

    def test_dcs_ssp_aggregate_peak_is_438(self, consolidated):
        assert consolidated.aggregate("DCS").peak_nodes == 438
        assert consolidated.aggregate("SSP").peak_nodes == 438


class TestTable2Shape:
    """NASA: DawningCloud < DCS < DRP (the hour-rounding penalty)."""

    def test_dawningcloud_beats_dcs(self, consolidated):
        dc = consolidated.provider("DawningCloud", "nasa-ipsc")
        dcs = consolidated.provider("DCS", "nasa-ipsc")
        assert dc.resource_consumption < 0.85 * dcs.resource_consumption

    def test_drp_worse_than_dcs(self, consolidated):
        drp = consolidated.provider("DRP", "nasa-ipsc")
        dcs = consolidated.provider("DCS", "nasa-ipsc")
        assert drp.resource_consumption > dcs.resource_consumption

    def test_dawningcloud_beats_drp_substantially(self, consolidated):
        dc = consolidated.provider("DawningCloud", "nasa-ipsc")
        drp = consolidated.provider("DRP", "nasa-ipsc")
        assert dc.resource_consumption < 0.8 * drp.resource_consumption

    def test_all_systems_complete_all_nasa_jobs(self, consolidated):
        for system in ("DCS", "SSP", "DRP", "DawningCloud"):
            assert consolidated.provider(system, "nasa-ipsc").completed_jobs >= 2590


class TestTable3Shape:
    """BLUE: long jobs — DRP ≈ DawningCloud, both well below DCS."""

    def test_drp_beats_dcs(self, consolidated):
        drp = consolidated.provider("DRP", "sdsc-blue")
        dcs = consolidated.provider("DCS", "sdsc-blue")
        assert drp.resource_consumption < 0.85 * dcs.resource_consumption

    def test_dawningcloud_beats_dcs(self, consolidated):
        dc = consolidated.provider("DawningCloud", "sdsc-blue")
        dcs = consolidated.provider("DCS", "sdsc-blue")
        assert dc.resource_consumption < 0.9 * dcs.resource_consumption

    def test_dawningcloud_close_to_drp(self, consolidated):
        dc = consolidated.provider("DawningCloud", "sdsc-blue")
        drp = consolidated.provider("DRP", "sdsc-blue")
        ratio = dc.resource_consumption / drp.resource_consumption
        assert 0.8 < ratio < 1.25

    def test_fixed_systems_leave_stragglers(self, consolidated):
        dcs = consolidated.provider("DCS", "sdsc-blue")
        drp = consolidated.provider("DRP", "sdsc-blue")
        assert drp.completed_jobs >= dcs.completed_jobs


class TestTable4Shape:
    """Montage: DawningCloud == DCS (166), DRP ≈ 4× more expensive."""

    def test_dawningcloud_equals_dcs_consumption(self, consolidated):
        dc = consolidated.provider("DawningCloud", "montage")
        assert dc.resource_consumption == 166

    def test_drp_spends_several_times_more(self, consolidated):
        drp = consolidated.provider("DRP", "montage")
        dc = consolidated.provider("DawningCloud", "montage")
        saving = 1 - dc.resource_consumption / drp.resource_consumption
        assert saving > 0.6  # paper: 74.9%

    def test_drp_throughput_at_least_queued_systems(self, consolidated):
        drp = consolidated.provider("DRP", "montage")
        dcs = consolidated.provider("DCS", "montage")
        assert drp.tasks_per_second >= dcs.tasks_per_second

    def test_tasks_per_second_magnitude(self, consolidated):
        dcs = consolidated.provider("DCS", "montage")
        assert 1.5 < dcs.tasks_per_second < 3.5  # paper: 2.49

    def test_all_thousand_tasks_complete(self, consolidated):
        for system in ("DCS", "SSP", "DRP", "DawningCloud"):
            assert consolidated.provider(system, "montage").completed_jobs == 1000


class TestFigure12Shape:
    """Total resource consumption: DawningCloud lowest."""

    def test_dawningcloud_saves_vs_dcs(self, consolidated):
        assert consolidated.savings_vs("DawningCloud", "DCS") > 0.15  # paper 29.7%

    def test_dawningcloud_saves_vs_drp(self, consolidated):
        assert consolidated.savings_vs("DawningCloud", "DRP") > 0.05  # paper 29.0%

    def test_total_is_sum_of_tables(self, consolidated):
        agg = consolidated.aggregate("DawningCloud")
        assert agg.total_consumption == pytest.approx(
            sum(p.resource_consumption for p in agg.providers)
        )


class TestFigure13Shape:
    """Peak consumption: DRP towers over everything; DawningCloud modest."""

    def test_drp_peak_dominates(self, consolidated):
        assert consolidated.peak_ratio("DawningCloud", "DRP") < 0.65  # paper 0.21

    def test_dawningcloud_peak_near_dcs(self, consolidated):
        assert consolidated.peak_ratio("DawningCloud", "DCS") < 2.2  # paper 1.06


class TestFigure14Shape:
    """Adjustment counts: SSP lowest, DawningCloud well below DRP."""

    def test_ordering(self, consolidated):
        ssp = consolidated.aggregate("SSP").adjusted_nodes
        dc = consolidated.aggregate("DawningCloud").adjusted_nodes
        drp = consolidated.aggregate("DRP").adjusted_nodes
        assert ssp < dc < drp

    def test_dcs_never_adjusts(self, consolidated):
        assert consolidated.aggregate("DCS").adjusted_nodes == 0


class TestStandaloneConsistency:
    """Standalone runners agree with the closed-form/structural facts."""

    def test_montage_drp_cost_is_peak_ready_width(self):
        result = run_drp(montage_bundle(0))
        # every task is 1 node and the whole run fits in one hour, so the
        # billed pool cost equals the maximum concurrency reached
        assert result.resource_consumption == result.peak_nodes
        assert 400 <= result.resource_consumption <= 662

    def test_montage_dawningcloud_standalone_is_166(self):
        result = run_dawningcloud_mtc(montage_bundle(0), PAPER_POLICIES["montage"])
        assert result.resource_consumption == 166

    def test_nasa_dcs_standalone_matches_consolidated(self, consolidated):
        standalone = run_dcs(nasa_bundle(0))
        assert (
            standalone.resource_consumption
            == consolidated.provider("DCS", "nasa-ipsc").resource_consumption
        )


class TestPaperdataShapeChecks:
    """The structured shape checkers agree with the consolidated run."""

    def test_headline_shapes_pass(self, consolidated):
        from repro.experiments.paperdata import check_headline_shapes

        totals = {
            s: consolidated.aggregates[s].total_consumption
            for s in consolidated.aggregates
        }
        peaks = {
            s: consolidated.aggregates[s].concurrent_peak_nodes
            for s in consolidated.aggregates
        }
        adjustments = {
            s: consolidated.aggregates[s].adjusted_nodes
            for s in consolidated.aggregates
        }
        assert check_headline_shapes(totals, peaks, adjustments) == []

    def test_table_shapes_pass(self, consolidated):
        from repro.experiments.paperdata import check_table_shapes

        for tid, workload in (
            ("table2", "nasa-ipsc"),
            ("table3", "sdsc-blue"),
            ("table4", "montage"),
        ):
            measured = {
                s: consolidated.provider(s, workload).resource_consumption
                for s in ("DCS", "SSP", "DRP", "DawningCloud")
            }
            assert check_table_shapes(tid, measured) == [], (tid, measured)
