"""Tests for the Montage workflow generator."""

import networkx as nx
import pytest

from repro.workloads.montage import MontageSpec, generate_montage


@pytest.fixture(scope="module")
def montage():
    return generate_montage(seed=0)


class TestPaperShape:
    def test_exactly_1000_tasks(self, montage):
        assert len(montage.tasks) == 1000

    def test_level_structure(self, montage):
        assert montage.level_widths() == [166, 662, 1, 1, 166, 1, 1, 1, 1]

    def test_type_census(self, montage):
        census = montage.type_census()
        assert census["mProjectPP"] == 166
        assert census["mDiffFit"] == 662
        assert census["mBackground"] == 166
        for singleton in ("mConcatFit", "mBgModel", "mImgtbl", "mAdd",
                          "mShrink", "mJPEG"):
            assert census[singleton] == 1

    def test_mean_runtime_is_paper_value(self, montage):
        assert montage.mean_task_runtime() == pytest.approx(11.38, abs=1e-9)

    def test_all_tasks_single_node(self, montage):
        assert all(t.size == 1 for t in montage.tasks)

    def test_widest_ready_level_is_662(self, montage):
        assert montage.max_width() == 662

    def test_dag_is_acyclic(self, montage):
        assert nx.is_directed_acyclic_graph(montage.graph)


class TestDependencies:
    def test_diffs_depend_on_two_projections(self, montage):
        projections = {t.job_id for t in montage.tasks if t.task_type == "mProjectPP"}
        for t in montage.tasks:
            if t.task_type == "mDiffFit":
                assert len(t.dependencies) == 2
                assert set(t.dependencies) <= projections

    def test_concat_depends_on_all_diffs(self, montage):
        concat = next(t for t in montage.tasks if t.task_type == "mConcatFit")
        assert len(concat.dependencies) == 662

    def test_background_depends_on_bgmodel_and_projection(self, montage):
        bgmodel = next(t for t in montage.tasks if t.task_type == "mBgModel")
        projections = {t.job_id for t in montage.tasks if t.task_type == "mProjectPP"}
        backgrounds = [t for t in montage.tasks if t.task_type == "mBackground"]
        for t in backgrounds:
            assert bgmodel.job_id in t.dependencies
            assert len(set(t.dependencies) & projections) == 1

    def test_tail_chain(self, montage):
        by_type = {t.task_type: t for t in montage.tasks if t.task_type in
                   ("mImgtbl", "mAdd", "mShrink", "mJPEG")}
        assert by_type["mAdd"].dependencies == (by_type["mImgtbl"].job_id,)
        assert by_type["mShrink"].dependencies == (by_type["mAdd"].job_id,)
        assert by_type["mJPEG"].dependencies == (by_type["mShrink"].job_id,)


class TestParameterization:
    def test_custom_shape(self):
        spec = MontageSpec(n_images=10, n_diffs=25, mean_runtime=5.0)
        wf = generate_montage(spec, seed=1)
        assert len(wf.tasks) == 10 * 2 + 25 + 6
        assert wf.mean_task_runtime() == pytest.approx(5.0)

    def test_no_rescaling_when_mean_none(self):
        spec = MontageSpec(n_images=10, n_diffs=25, mean_runtime=None)
        wf = generate_montage(spec, seed=1)
        assert wf.mean_task_runtime() != pytest.approx(11.38, abs=0.5)

    def test_too_few_diffs_rejected(self):
        with pytest.raises(ValueError):
            MontageSpec(n_images=10, n_diffs=3).validate()

    def test_deterministic(self):
        a = generate_montage(seed=5)
        b = generate_montage(seed=5)
        assert [t.runtime for t in a.tasks] == [t.runtime for t in b.tasks]

    def test_submit_time_propagates(self):
        wf = generate_montage(seed=0, submit_time=500.0)
        assert wf.submit_time == 500.0
        assert all(t.submit_time == 500.0 for t in wf.tasks)

    def test_singleton_stages_dominate_critical_path(self, montage):
        # mBgModel and mAdd are the long poles, so the critical path is much
        # longer than 9 × mean task runtime
        assert montage.critical_path_length() > 9 * montage.mean_task_runtime()
