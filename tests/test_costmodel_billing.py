"""Tests for the simulation-to-dollars bridge (costmodel.billing)."""

import pytest

from repro.costmodel.billing import Invoice, bill, billing_table
from repro.costmodel.pricing import EC2_2009_SMALL, InstancePricing
from repro.metrics.results import ProviderMetrics

HOUR = 3600.0
TWO_WEEKS = 14 * 24 * HOUR


def _metrics(system: str, node_hours: float) -> ProviderMetrics:
    return ProviderMetrics(
        provider="lab",
        system=system,
        workload="trace",
        resource_consumption=node_hours,
        completed_jobs=100,
        submitted_jobs=100,
    )


class TestInvoice:
    def test_usage_and_total(self):
        inv = Invoice("lab", "DCS", 1000.0, TWO_WEEKS, 0.10, transfer_usd=50.0)
        assert inv.usage_usd == pytest.approx(100.0)
        assert inv.total_usd == pytest.approx(150.0)

    def test_monthly_extrapolation(self):
        # two weeks is 14/30 of a month: monthly = total * 30/14
        inv = Invoice("lab", "DCS", 1000.0, TWO_WEEKS, 0.10)
        assert inv.monthly_usd == pytest.approx(100.0 * 30 / 14)

    def test_invalid_period(self):
        inv = Invoice("lab", "DCS", 1.0, 0.0, 0.10)
        with pytest.raises(ValueError):
            _ = inv.monthly_usd


class TestBill:
    def test_bill_uses_pricing(self):
        inv = bill(_metrics("DawningCloud", 29014.0), TWO_WEEKS)
        assert inv.usd_per_node_hour == EC2_2009_SMALL.usd_per_instance_hour
        assert inv.usage_usd == pytest.approx(2901.4)

    def test_transfer_added(self):
        inv = bill(_metrics("SSP", 100.0), TWO_WEEKS, inbound_gb=500.0)
        assert inv.transfer_usd == pytest.approx(50.0)

    def test_period_validation(self):
        with pytest.raises(ValueError):
            bill(_metrics("DCS", 1.0), 0.0)


class TestBillingTable:
    def test_paper_table2_in_dollars(self):
        """Table 2 node-hours priced at EC2 rates, two-week period."""
        results = {
            "DCS": _metrics("DCS", 43008),
            "SSP": _metrics("SSP", 43008),
            "DRP": _metrics("DRP", 54118),
            "DawningCloud": _metrics("DawningCloud", 29014),
        }
        rows = billing_table(
            results, TWO_WEEKS,
            order=("DCS", "SSP", "DRP", "DawningCloud"),
        )
        assert [r["system"] for r in rows] == [
            "DCS", "SSP", "DRP", "DawningCloud",
        ]
        # the dollar ordering mirrors the node-hour ordering
        assert rows[3]["total_usd"] < rows[0]["total_usd"] < rows[2]["total_usd"]
        # DawningCloud's two weeks cost $2,901.40 at 2009 prices
        assert rows[3]["usage_usd"] == pytest.approx(2901.4)

    def test_custom_pricing(self):
        results = {"DCS": _metrics("DCS", 100.0)}
        cheap = InstancePricing("spot", 0.01, 0.0)
        rows = billing_table(results, TWO_WEEKS, pricing=cheap)
        assert rows[0]["usage_usd"] == pytest.approx(1.0)
