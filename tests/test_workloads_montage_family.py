"""Tests for the Montage scale family (workloads.montage extension)."""

import pytest

from repro.workloads.montage import (
    generate_montage,
    montage_family,
    montage_spec_for_size,
)


class TestSpecForSize:
    @pytest.mark.parametrize("n", [25, 50, 100, 500, 1000, 2000])
    def test_exact_task_count(self, n):
        spec = montage_spec_for_size(n)
        spec.validate()
        assert spec.n_tasks == n

    def test_paper_instance_recovered(self):
        spec = montage_spec_for_size(1000)
        assert spec.n_images == 166
        assert spec.n_diffs == 662

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            montage_spec_for_size(13)

    def test_smallest_valid(self):
        spec = montage_spec_for_size(14)
        spec.validate()
        assert spec.n_tasks == 14


class TestFamily:
    def test_published_sizes(self):
        fam = montage_family()
        assert set(fam) == {25, 50, 100, 1000}

    def test_generated_workflows_keep_nine_levels(self):
        for n, spec in montage_family().items():
            wf = generate_montage(spec, seed=1)
            assert len(wf) == n
            assert len(wf.levels()) == 9

    def test_diff_ratio_preserved_across_scales(self):
        """Every instance keeps the 1000-task shape's ~4:1 diff burst."""
        fam = montage_family()
        for spec in fam.values():
            assert 3.5 <= spec.n_diffs / spec.n_images <= 4.5

    def test_mean_runtime_preserved_across_scales(self):
        for spec in montage_family().values():
            wf = generate_montage(spec, seed=0)
            mean = sum(t.runtime for t in wf.tasks) / len(wf)
            assert mean == pytest.approx(11.38, rel=1e-6)
