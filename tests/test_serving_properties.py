"""Property-based pins for the serving layer (PR 9).

Two invariants hold for *every* workload and fork instant, not just the
hand-picked ones in ``test_serving``:

* **No-delta neutrality** — forking the live world at an arbitrary
  instant and running the continuation changes nothing: the what-if
  baseline and scenario are byte-identical to each other *and* to the
  undisturbed service running on to the same horizon.  This is the
  serving layer's version of the snapshot layer's non-perturbation
  guarantee, composed through ingest counters, pending-arrival events
  and rolling-metric cursors.
* **Window conservation** — trailing windows sampled every ``W`` tile
  the timeline exactly: per-window counts, sums and attainment-weighted
  counts add up to the cumulative totals, for arbitrary event times and
  window widths (the ``(now - W, now]`` boundary convention, first
  window inclusive of ``t = 0``).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.rolling import (
    attainment_in_window,
    count_in_window,
    effective_window_s,
    sum_in_window,
    window_start,
)
from repro.serving import WhatIfEngine, build_service
from repro.api.spec import ServiceSpec
from repro.workloads.job import Job

pytestmark = pytest.mark.timeout(300)

DAY = 86400.0


def _spec(nodes: int = 8) -> ServiceSpec:
    return ServiceSpec.from_dict(
        {"name": "prop", "system": "dcs", "machine_nodes": nodes,
         "horizon_s": DAY}
    )


# (submit offset, size, runtime) triples, deliberately collision-heavy:
# simultaneous arrivals and scan-tick-straddling runtimes included.
job_specs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20_000.0, allow_nan=False),
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=30.0, max_value=15_000.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


def _jobs(specs) -> list[Job]:
    return [
        Job(job_id=i, submit_time=offset, size=size, runtime=runtime,
            user_id=0, task_type="htc")
        for i, (offset, size, runtime) in enumerate(specs)
    ]


class TestNoDeltaNeutrality:
    @given(specs=job_specs, fork_frac=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_empty_whatif_reproduces_the_undisturbed_run(
        self, specs, fork_frac
    ):
        jobs = _jobs(specs)
        last_arrival = max(j.submit_time for j in jobs)
        fork_at = fork_frac * (last_arrival + 1.0)

        service = build_service(_spec())
        service.submit_batch(jobs)
        service.advance_to(fork_at)

        result = WhatIfEngine(service).what_if(
            None, DAY - service.now, label="noop"
        )
        # the two branches are byte-identical...
        assert result.scenario == result.baseline
        assert result.diff == {}
        # ...the live service did not move while being queried...
        assert service.now == fork_at
        # ...and the branch continuation equals the undisturbed service
        # run to the very same horizon
        assert service.shutdown(drain=True) == result.baseline

    @given(specs=job_specs, steps=st.integers(min_value=1, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_forks_along_the_run_never_perturb_the_final_payload(
        self, specs, steps
    ):
        # jobs are mutable simulation state: each service gets its own
        reference = build_service(_spec())
        reference.submit_batch(_jobs(specs))
        expected = reference.shutdown(drain=True)

        jobs = _jobs(specs)
        service = build_service(_spec())
        service.submit_batch(jobs)
        horizon = max(j.submit_time for j in jobs) + 1.0
        for k in range(1, steps + 1):
            service.advance_to(horizon * k / steps)
            service.metrics()  # metric reads must not perturb either
            branch = service.fork()
            assert branch.now == service.now
        assert service.shutdown(drain=True) == expected


class TestWindowConservation:
    event_streams = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5_000.0, allow_nan=False),
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
            st.booleans(),
        ),
        min_size=0,
        max_size=60,
    ).map(lambda triples: sorted(triples, key=lambda e: e[0]))

    @given(
        events=event_streams,
        window_s=st.floats(min_value=7.0, max_value=2_000.0,
                           allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_consecutive_windows_tile_the_timeline(self, events, window_s):
        times = [t for t, _v, _ok in events]
        values = [v for _t, v, _ok in events]
        flags = [ok for _t, _v, ok in events]
        end = max(times) if times else 0.0
        n_windows = max(1, math.ceil(end / window_s))
        # sampling right at k*W for every k must see each event once
        total_count = 0
        total_sum = 0.0
        total_ok = 0
        for k in range(1, n_windows + 1):
            now = k * window_s
            count = count_in_window(times, now, window_s)
            total_count += count
            total_sum += sum_in_window(times, values, now, window_s)
            attainment = attainment_in_window(times, flags, now, window_s)
            if attainment is None:
                assert count == 0
            else:
                total_ok += round(attainment * count)
        assert total_count == len(times)
        assert total_sum == pytest.approx(sum(values), abs=1e-9)
        assert total_ok == sum(flags)

    @given(
        now=st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
        window_s=st.floats(min_value=1e-3, max_value=10_000.0,
                           allow_nan=False),
    )
    def test_window_start_convention(self, now, window_s):
        start = window_start(now, window_s)
        if start is None:
            assert now - window_s <= 0
        else:
            assert start == pytest.approx(now - window_s)
            assert start > 0

    def test_window_start_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="window_s"):
            window_start(10.0, 0.0)

    @given(events=event_streams)
    @settings(max_examples=30, deadline=None)
    def test_whole_history_window_sees_everything(self, events):
        times = [t for t, _v, _ok in events]
        end = (max(times) if times else 0.0) + 1.0
        assert count_in_window(times, end, end + 1.0) == len(times)


class TestPartialFirstWindow:
    """Rates in the partial first window normalize by elapsed time.

    Before ``t = W`` the trailing window only covers ``[0, now]``;
    dividing its counts by the full width ``W`` would under-report every
    early rate by ``now / W``.  :func:`effective_window_s` is the one
    place that knows this, and the service's rolling sample must agree
    with a from-scratch recompute over the full (short) history.
    """

    @given(
        now=st.floats(min_value=1e-3, max_value=10_000.0, allow_nan=False),
        window_s=st.floats(min_value=1e-3, max_value=10_000.0,
                           allow_nan=False),
    )
    def test_effective_width_is_elapsed_capped_at_w(self, now, window_s):
        assert effective_window_s(now, window_s) == pytest.approx(
            min(now, window_s)
        )

    @given(
        events=TestWindowConservation.event_streams,
        window_s=st.floats(min_value=7.0, max_value=2_000.0,
                           allow_nan=False),
        frac=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_early_rate_matches_full_history_recompute(
        self, events, window_s, frac
    ):
        # sample strictly inside the first window: everything seen so
        # far is in scope, so rate == cumulative count / elapsed
        times = [t for t, _v, _ok in events]
        now = frac * window_s
        count = count_in_window(times, now, window_s)
        assert count == sum(1 for t in times if t <= now)
        rate = count / effective_window_s(now, window_s)
        assert rate == pytest.approx(count / now)

    def test_service_rates_use_elapsed_in_first_window(self):
        # one job done well inside the first (hour-long) window: the
        # sample's throughput must be completions/elapsed, not /W
        jobs = [Job(job_id=0, submit_time=0.0, size=1, runtime=60.0,
                    user_id=0, task_type="htc")]
        service = build_service(_spec())
        service.submit_batch(jobs)
        now = 300.0
        service.advance_to(now)
        sample = service.metrics()
        assert sample["completed_in_window"] == 1
        assert sample["throughput_jobs_per_s"] == pytest.approx(1.0 / now)
        assert sample["avg_owned_nodes"] == pytest.approx(
            sample["owned_nodes"]
        )
