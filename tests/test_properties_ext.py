"""Property-based tests for the extension modules (policies, fair share,
break-even, provision-service conservation)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.provision import ResourceProvisionService
from repro.core.adaptive import (
    ChunkedHysteresisPolicy,
    DemandTrackingPolicy,
    EwmaPredictivePolicy,
)
from repro.core.policies import ResourceManagementPolicy
from repro.metrics.jobstats import jains_fairness_index
from repro.scheduling.fairshare import WeightedFairShareScheduler
from repro.workloads.job import Job

policy_inputs = st.tuples(
    st.integers(min_value=0, max_value=2000),   # queue_demand
    st.integers(min_value=0, max_value=500),    # biggest_job
    st.integers(min_value=0, max_value=1000),   # owned
).filter(lambda t: t[1] <= t[0])  # the biggest job is part of the demand


def _policies():
    return [
        ResourceManagementPolicy.for_htc(10, 1.5),
        DemandTrackingPolicy(initial_nodes=10),
        ChunkedHysteresisPolicy(initial_nodes=10, threshold_ratio=1.5,
                                chunk_nodes=16),
        EwmaPredictivePolicy(initial_nodes=10, alpha=0.4, headroom=1.2),
    ]


class TestResizePolicyProperties:
    @settings(max_examples=150, deadline=None)
    @given(inp=policy_inputs)
    def test_requests_never_negative(self, inp):
        demand, biggest, owned = inp
        for policy in _policies():
            assert policy.dynamic_request_size(demand, biggest, owned) >= 0

    @settings(max_examples=150, deadline=None)
    @given(inp=policy_inputs)
    def test_empty_queue_never_requests(self, inp):
        _, _, owned = inp
        for policy in _policies():
            assert policy.dynamic_request_size(0, 0, owned) == 0

    @settings(max_examples=150, deadline=None)
    @given(inp=policy_inputs)
    def test_grant_covers_widest_job_when_requested(self, inp):
        """If a policy requests anything while the widest job doesn't fit,
        the post-grant pool must fit that job (no futile growth)."""
        demand, biggest, owned = inp
        for policy in _policies():
            req = policy.dynamic_request_size(demand, biggest, owned)
            if req > 0 and biggest > owned:
                assert owned + req >= biggest

    @settings(max_examples=100, deadline=None)
    @given(inp=policy_inputs)
    def test_paper_policy_request_bounded_by_demand(self, inp):
        demand, biggest, owned = inp
        policy = ResourceManagementPolicy.for_htc(10, 1.5)
        req = policy.dynamic_request_size(demand, biggest, owned)
        assert owned + req <= max(demand, owned, biggest)

    @settings(max_examples=100, deadline=None)
    @given(inp=policy_inputs, chunk=st.integers(min_value=1, max_value=64))
    def test_chunked_requests_are_chunk_multiples(self, inp, chunk):
        demand, biggest, owned = inp
        policy = ChunkedHysteresisPolicy(initial_nodes=10, threshold_ratio=1.5,
                                         chunk_nodes=chunk)
        req = policy.dynamic_request_size(demand, biggest, owned)
        assert req % chunk == 0


class TestEwmaProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        demands=st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                         max_size=60),
        alpha=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_ewma_stays_within_observed_range(self, demands, alpha):
        policy = EwmaPredictivePolicy(initial_nodes=10, alpha=alpha)
        for d in demands:
            policy.dynamic_request_size(d, min(d, 1), 10)
        assert 0.0 <= policy.smoothed_demand <= max(demands)


class TestFairShareProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        jobs=st.lists(
            st.tuples(st.integers(min_value=1, max_value=8),
                      st.integers(min_value=0, max_value=3)),
            min_size=0, max_size=20,
        ),
        free=st.integers(min_value=0, max_value=32),
    )
    def test_work_conserving(self, jobs, free):
        """If any queued job fits, the fair-share scheduler starts one."""
        queued = []
        for i, (size, user) in enumerate(jobs):
            j = Job(job_id=i, submit_time=0.0, size=size, runtime=10.0,
                    user_id=user)
            j.mark_queued(0.0)
            queued.append(j)
        picked = WeightedFairShareScheduler().select(0.0, queued, free)
        fits = [j for j in queued if j.size <= free]
        if fits:
            assert picked
        assert sum(j.size for j in picked) <= free


class TestProvisionConservation:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]),
                      st.integers(min_value=1, max_value=20)),
            min_size=1, max_size=40,
        )
    )
    def test_allocated_plus_free_is_capacity(self, ops):
        svc = ResourceProvisionService(capacity=64)
        leases = []
        t = 0.0
        for client, n in ops:
            t += 60.0
            lease = svc.request(client, n, t)
            if lease is not None:
                leases.append(lease)
            elif leases:
                svc.release(leases.pop(0), t)
            assert svc.allocated_nodes() + svc.free_nodes == 64
            assert svc.free_nodes >= 0

    @settings(max_examples=60, deadline=None)
    @given(
        spans=st.lists(
            st.tuples(st.integers(min_value=1, max_value=16),
                      st.floats(min_value=1.0, max_value=7200.0)),
            min_size=1, max_size=20,
        )
    )
    def test_billing_at_least_work_and_at_most_rounded_up(self, spans):
        svc = ResourceProvisionService(capacity=1000)
        total_expected = 0
        for i, (n, held) in enumerate(spans):
            t0 = i * 10_000.0
            lease = svc.request("u", n, t0)
            svc.release(lease, t0 + held)
            total_expected += n * math.ceil(held / 3600.0)
        assert svc.consumption_node_hours("u") == total_expected


class TestBreakevenProperties:
    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e3),
                           min_size=2, max_size=12))
    def test_fairness_index_scale_invariant(self, values):
        if sum(values) == 0:
            return
        a = jains_fairness_index(values)
        b = jains_fairness_index([v * 7.5 for v in values])
        assert a == pytest.approx(b, rel=1e-9)
