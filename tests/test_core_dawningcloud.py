"""Tests for the assembled DawningCloud system."""

import pytest

from repro.core.dawningcloud import DawningCloud
from repro.core.policies import ResourceManagementPolicy
from repro.workloads.workflow import Workflow
from tests.conftest import make_job, make_trace

HOUR = 3600.0


def small_workflow(submit=0.0):
    tasks = [
        make_job(1, submit=submit, runtime=30, workflow_id=1),
        make_job(2, submit=submit, runtime=30, deps=(1,), workflow_id=1),
        make_job(3, submit=submit, runtime=30, deps=(1,), workflow_id=1),
        make_job(4, submit=submit, runtime=30, deps=(2, 3), workflow_id=1),
    ]
    return Workflow(1, tasks, name="wf", submit_time=submit)


class TestHtcProvider:
    def test_trace_runs_to_completion(self):
        cloud = DawningCloud(capacity=64)
        cloud.add_htc_provider("org", ResourceManagementPolicy.for_htc(4, 1.5))
        trace = make_trace(
            [make_job(i, submit=i * 100.0, size=2, runtime=300.0) for i in range(1, 9)],
            nodes=16,
            duration=2 * HOUR,
        )
        cloud.submit_trace("org", trace)
        cloud.run(until=trace.duration)
        cloud.shutdown()
        metrics = cloud.provider_metrics("org", trace.duration)
        assert metrics.completed_jobs == 8
        assert metrics.submitted_jobs == 8
        assert metrics.resource_consumption >= 4 * 2  # B × 2 started hours

    def test_duplicate_provider_rejected(self):
        cloud = DawningCloud(capacity=16)
        cloud.add_htc_provider("org")
        with pytest.raises(ValueError):
            cloud.add_htc_provider("org")

    def test_consumption_includes_full_initial_lease(self):
        cloud = DawningCloud(capacity=16)
        cloud.add_htc_provider("org", ResourceManagementPolicy.for_htc(4, 1.5))
        cloud.run(until=10 * HOUR)
        cloud.shutdown()
        metrics = cloud.provider_metrics("org", 10 * HOUR)
        assert metrics.resource_consumption == pytest.approx(40)


class TestMtcProvider:
    def test_workflow_completes_and_tre_auto_destroys(self):
        cloud = DawningCloud(capacity=64)
        cloud.add_mtc_provider("mtc", ResourceManagementPolicy.for_mtc(2, 8.0))
        wf = small_workflow()
        cloud.submit_workflow("mtc", wf)
        cloud.run(until=HOUR)
        assert wf.completed()
        assert cloud.provision.allocated_nodes("mtc") == 0  # auto-destroyed

    def test_on_demand_creation_defers_initial_lease(self):
        cloud = DawningCloud(capacity=64)
        wf = small_workflow(submit=5 * HOUR)
        cloud.add_mtc_provider(
            "mtc", ResourceManagementPolicy.for_mtc(2, 8.0), create_at=wf.submit_time
        )
        cloud.submit_workflow("mtc", wf)
        cloud.run(until=6 * HOUR)
        metrics = cloud.provider_metrics("mtc", 6 * HOUR)
        # the TRE existed for well under an hour: B=2 × 1 started hour,
        # plus any dynamic lease — not B × 5 hours of idle wait
        assert metrics.resource_consumption <= 6
        assert wf.completed()

    def test_tasks_per_second_reported(self):
        cloud = DawningCloud(capacity=64)
        cloud.add_mtc_provider("mtc", ResourceManagementPolicy.for_mtc(2, 8.0))
        cloud.submit_workflow("mtc", small_workflow())
        cloud.run(until=HOUR)
        metrics = cloud.provider_metrics("mtc", HOUR)
        assert metrics.tasks_per_second == pytest.approx(
            4 / metrics.makespan_s, rel=1e-6
        )


class TestConsolidation:
    def test_two_providers_share_the_pool(self):
        cloud = DawningCloud(capacity=32)
        cloud.add_htc_provider("a", ResourceManagementPolicy.for_htc(4, 1.0))
        cloud.add_htc_provider("b", ResourceManagementPolicy.for_htc(4, 1.0))
        for name in ("a", "b"):
            trace = make_trace(
                [make_job(i, size=2, runtime=600.0) for i in range(1, 7)],
                nodes=16,
                duration=2 * HOUR,
                name=name,
            )
            cloud.submit_trace(name, trace)
        cloud.run(until=2 * HOUR)
        cloud.shutdown()
        agg = cloud.resource_provider_metrics(2 * HOUR)
        assert {p.provider for p in agg.providers} == {"a", "b"}
        assert agg.total_consumption == sum(
            p.resource_consumption for p in agg.providers
        )

    def test_pool_exhaustion_rejects_but_does_not_crash(self):
        cloud = DawningCloud(capacity=10)
        cloud.add_htc_provider("a", ResourceManagementPolicy.for_htc(8, 1.0))
        trace = make_trace(
            [make_job(i, size=4, runtime=600.0) for i in range(1, 9)],
            nodes=8,
            duration=3 * HOUR,
        )
        cloud.submit_trace("a", trace)
        cloud.run(until=3 * HOUR)
        cloud.shutdown()
        metrics = cloud.provider_metrics("a", 3 * HOUR)
        assert metrics.completed_jobs == 8  # drained on owned resources
        assert cloud.provision.rejected_requests > 0
