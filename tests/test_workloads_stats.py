"""Tests for workload statistics."""

import pytest

from repro.workloads.stats import (
    half_split_arrival_ratio,
    hourly_arrival_counts,
    no_queue_demand_series,
    summarize,
)
from tests.conftest import make_job, make_trace

HOUR = 3600.0


class TestSummarize:
    def test_basic_fields(self, small_trace):
        s = summarize(small_trace)
        assert s.n_jobs == 10
        assert s.machine_nodes == 16
        assert s.max_size == 16
        assert s.duration_hours == pytest.approx(4.0)

    def test_utilization_matches_trace(self, small_trace):
        assert summarize(small_trace).utilization == pytest.approx(
            small_trace.utilization
        )

    def test_hour_rounded_demand_at_least_breadth(self, small_trace):
        s = summarize(small_trace)
        breadth = sum(j.size for j in small_trace)
        assert s.hour_rounded_demand_node_hours >= breadth

    def test_frac_sub_hour(self):
        trace = make_trace(
            [make_job(1, runtime=100), make_job(2, runtime=7200)],
            duration=3 * HOUR,
        )
        assert summarize(trace).frac_sub_hour == pytest.approx(0.5)

    def test_str_rendering(self, small_trace):
        text = str(summarize(small_trace))
        assert "10 jobs" in text and "16 nodes" in text


class TestHourlyArrivals:
    def test_counts_per_hour(self):
        jobs = [make_job(i, submit=t) for i, t in
                enumerate([0, 100, 3700, 3800, 3900], start=1)]
        counts = hourly_arrival_counts(make_trace(jobs, duration=2 * HOUR))
        assert list(counts) == [2, 3]

    def test_total_preserved(self, small_trace):
        assert hourly_arrival_counts(small_trace).sum() == len(small_trace)


class TestNoQueueDemand:
    def test_single_job_plateau(self):
        trace = make_trace([make_job(1, submit=0, size=5, runtime=600)],
                           duration=1800)
        series = no_queue_demand_series(trace, step=60.0)
        assert series.max() == 5
        assert series[0] == 5
        assert series[-1] == 0

    def test_overlapping_jobs_stack(self):
        jobs = [
            make_job(1, submit=0, size=3, runtime=600),
            make_job(2, submit=60, size=4, runtime=600),
        ]
        series = no_queue_demand_series(make_trace(jobs, duration=1800), step=60.0)
        assert series.max() == 7

    def test_peak_bounds_drp_concurrency(self, small_trace):
        # the max of this series is exactly the no-queue concurrency peak,
        # which the DRP system's occupancy can never exceed
        series = no_queue_demand_series(small_trace, step=60.0)
        assert series.max() <= sum(j.size for j in small_trace)


class TestHalfSplit:
    def test_even_split_is_one(self):
        jobs = [make_job(i, submit=t) for i, t in
                enumerate([100, 200, 7300, 7400], start=1)]
        trace = make_trace(jobs, duration=4 * HOUR)
        assert half_split_arrival_ratio(trace) == pytest.approx(1.0)

    def test_back_loaded_above_one(self):
        jobs = [make_job(i, submit=t) for i, t in
                enumerate([100, 7300, 7400, 7500], start=1)]
        trace = make_trace(jobs, duration=4 * HOUR)
        assert half_split_arrival_ratio(trace) == pytest.approx(3.0)
