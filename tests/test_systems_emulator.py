"""Tests for the job emulator (systems.emulator) and its speedup factor.

The paper's emulation runs on real hardware and compresses time 100×
(§4.1); the simulator keeps the factor as an option.  A speedup must
compress the submission timeline uniformly and leave schedule-invariant
quantities (counts, ordering) untouched.
"""

import pytest

from repro.simkit.engine import SimulationEngine
from repro.systems.emulator import JobEmulator
from repro.workloads.job import Job, Trace
from repro.workloads.workflowgen import fork_join

HOUR = 3600.0


def _trace(n=10, spacing=600.0):
    jobs = [
        Job(job_id=i + 1, submit_time=spacing * i, size=1, runtime=60.0)
        for i in range(n)
    ]
    return Trace("emu", jobs, machine_nodes=4, duration=6 * HOUR)


class TestSubmission:
    def test_trace_jobs_arrive_at_submit_times(self):
        engine = SimulationEngine()
        emulator = JobEmulator(engine)
        seen = []
        emulator.submit_trace(_trace(), lambda j: seen.append((engine.now, j.job_id)))
        engine.run()
        assert [t for t, _ in seen] == [600.0 * i for i in range(10)]
        assert [j for _, j in seen] == list(range(1, 11))
        assert emulator.scheduled == 10

    def test_workflow_arrives_once_at_its_submit_time(self):
        engine = SimulationEngine()
        emulator = JobEmulator(engine)
        wf = fork_join(width=4, mean_runtime=10.0, seed=0)
        wf.submit_time = 500.0
        seen = []
        emulator.submit_workflow(wf, lambda w: seen.append(engine.now))
        engine.run()
        assert seen == [500.0]
        assert emulator.scheduled == 1


class TestSpeedup:
    def test_speedup_compresses_timeline_uniformly(self):
        engine = SimulationEngine()
        emulator = JobEmulator(engine, speedup=100.0)
        times = []
        emulator.submit_trace(_trace(), lambda j: times.append(engine.now))
        engine.run()
        assert times == [6.0 * i for i in range(10)]

    def test_speedup_preserves_order_and_count(self):
        engine = SimulationEngine()
        emulator = JobEmulator(engine, speedup=7.0)
        order = []
        emulator.submit_trace(_trace(), lambda j: order.append(j.job_id))
        engine.run()
        assert order == list(range(1, 11))

    def test_speedup_validation(self):
        engine = SimulationEngine()
        with pytest.raises(ValueError):
            JobEmulator(engine, speedup=0.0)
        with pytest.raises(ValueError):
            JobEmulator(engine, speedup=-1.0)

    def test_speedup_100_run_matches_realtime_metrics(self):
        """The paper's 100x emulation trick: schedule-level quantities are
        invariant because every duration scales together."""
        from repro.core.policies import HTC_SCAN_INTERVAL_S
        from repro.core.servers import REServer
        from repro.scheduling.firstfit import FirstFitScheduler

        def run(speedup):
            engine = SimulationEngine()
            trace = _trace()
            server = REServer(
                engine, "emu", FirstFitScheduler(),
                HTC_SCAN_INTERVAL_S / speedup,
            )
            server.add_nodes(4)
            emulator = JobEmulator(engine, speedup=speedup)
            # compress runtimes the same way the paper compresses the trace
            for job in trace:
                job.runtime = job.runtime / speedup
            emulator.submit_trace(trace, server.submit_job)
            engine.run(until=6 * HOUR / speedup)
            return server.completed_count

        assert run(1.0) == run(100.0) == 10
