"""Tests for the alternative resource-management policies (core.adaptive)."""


import pytest

from repro.core.adaptive import (
    ChunkedHysteresisPolicy,
    DemandTrackingPolicy,
    EwmaPredictivePolicy,
    StaticPolicy,
    policy_catalog,
)
from repro.core.dawningcloud import DawningCloud
from repro.core.policies import HTC_SCAN_INTERVAL_S, MTC_SCAN_INTERVAL_S
from repro.systems.dsp_runner import run_dawningcloud_htc
from repro.workloads.job import Job, Trace

HOUR = 3600.0


def _small_trace(n_jobs: int = 40, size: int = 4, runtime: float = 900.0) -> Trace:
    jobs = [
        Job(job_id=i, submit_time=60.0 * i, size=size, runtime=runtime)
        for i in range(n_jobs)
    ]
    return Trace(name="tiny", jobs=jobs, machine_nodes=64, duration=12 * HOUR)


# --------------------------------------------------------------------- #
# DemandTrackingPolicy
# --------------------------------------------------------------------- #
class TestDemandTracking:
    def test_requests_exact_shortfall(self):
        p = DemandTrackingPolicy(initial_nodes=10)
        assert p.dynamic_request_size(50, 8, 10) == 40

    def test_covers_widest_job_even_when_demand_small(self):
        p = DemandTrackingPolicy(initial_nodes=10)
        # one 32-wide job queued, owned 10: demand=32 -> request 22
        assert p.dynamic_request_size(32, 32, 10) == 22

    def test_no_request_when_satisfied(self):
        p = DemandTrackingPolicy(initial_nodes=10)
        assert p.dynamic_request_size(8, 8, 10) == 0

    def test_no_request_on_empty_queue(self):
        p = DemandTrackingPolicy(initial_nodes=10)
        assert p.dynamic_request_size(0, 0, 10) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DemandTrackingPolicy(initial_nodes=0)
        with pytest.raises(ValueError):
            DemandTrackingPolicy(initial_nodes=1, scan_interval_s=0)


# --------------------------------------------------------------------- #
# EwmaPredictivePolicy
# --------------------------------------------------------------------- #
class TestEwmaPredictive:
    def test_smoothing_converges_to_constant_demand(self):
        p = EwmaPredictivePolicy(initial_nodes=10, alpha=0.5)
        for _ in range(20):
            p.dynamic_request_size(100, 1, 200)
        assert p.smoothed_demand == pytest.approx(100.0, rel=1e-3)

    def test_request_follows_smoothed_not_instant_demand(self):
        p = EwmaPredictivePolicy(initial_nodes=10, alpha=0.1, headroom=1.0)
        # first scan: ewma = 0.1 * 100 = 10 -> request ceil(10) - 10 = 0
        assert p.dynamic_request_size(100, 1, 10) == 0
        assert 0 < p.smoothed_demand < 100

    def test_widest_job_never_starves(self):
        p = EwmaPredictivePolicy(initial_nodes=10, alpha=0.01)
        # smoothing would say "do nothing", but a 64-wide job is queued
        assert p.dynamic_request_size(64, 64, 10) == 54

    def test_reset_clears_state(self):
        p = EwmaPredictivePolicy(initial_nodes=10)
        p.dynamic_request_size(100, 1, 10)
        assert p.smoothed_demand > 0
        p.reset()
        assert p.smoothed_demand == 0.0

    def test_headroom_scales_target(self):
        lo = EwmaPredictivePolicy(initial_nodes=1, alpha=1.0, headroom=1.0)
        hi = EwmaPredictivePolicy(initial_nodes=1, alpha=1.0, headroom=2.0)
        assert hi.dynamic_request_size(50, 1, 1) > lo.dynamic_request_size(50, 1, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaPredictivePolicy(alpha=0.0)
        with pytest.raises(ValueError):
            EwmaPredictivePolicy(alpha=1.5)
        with pytest.raises(ValueError):
            EwmaPredictivePolicy(headroom=0.5)


# --------------------------------------------------------------------- #
# ChunkedHysteresisPolicy
# --------------------------------------------------------------------- #
class TestChunkedHysteresis:
    def test_requests_whole_chunks(self):
        p = ChunkedHysteresisPolicy(
            initial_nodes=10, threshold_ratio=1.0, chunk_nodes=16
        )
        req = p.dynamic_request_size(30, 4, 10)  # shortfall 20 -> 2 chunks
        assert req == 32
        assert req % p.chunk_nodes == 0

    def test_below_threshold_no_request(self):
        p = ChunkedHysteresisPolicy(
            initial_nodes=10, threshold_ratio=2.0, chunk_nodes=16
        )
        assert p.dynamic_request_size(15, 4, 10) == 0  # ratio 1.5 <= 2.0

    def test_widest_job_triggers_dr2_like_growth(self):
        p = ChunkedHysteresisPolicy(
            initial_nodes=10, threshold_ratio=10.0, chunk_nodes=8
        )
        # ratio small but a 20-wide job can't fit: shortfall 10 -> 2 chunks
        assert p.dynamic_request_size(20, 20, 10) == 16

    def test_zero_owned_is_infinite_ratio(self):
        p = ChunkedHysteresisPolicy(
            initial_nodes=1, threshold_ratio=1.5, chunk_nodes=4
        )
        assert p.dynamic_request_size(10, 2, 0) == 12  # ceil(10/4)*4

    def test_validation(self):
        with pytest.raises(ValueError):
            ChunkedHysteresisPolicy(chunk_nodes=0)
        with pytest.raises(ValueError):
            ChunkedHysteresisPolicy(threshold_ratio=0)


# --------------------------------------------------------------------- #
# StaticPolicy
# --------------------------------------------------------------------- #
class TestStatic:
    def test_never_requests(self):
        p = StaticPolicy(initial_nodes=32)
        assert p.dynamic_request_size(10_000, 500, 32) == 0

    def test_has_the_duck_interface(self):
        p = StaticPolicy(initial_nodes=32)
        assert p.initial_nodes == 32
        assert p.scan_interval_s > 0
        assert p.release_check_interval_s > 0


# --------------------------------------------------------------------- #
# catalog + end-to-end drop-in compatibility
# --------------------------------------------------------------------- #
class TestCatalog:
    def test_catalog_names_and_kinds(self):
        htc = policy_catalog("htc")
        mtc = policy_catalog("mtc")
        assert set(htc) == set(mtc)
        assert "paper(B,R)" in htc
        for factory in htc.values():
            assert factory(16).scan_interval_s == HTC_SCAN_INTERVAL_S
        for factory in mtc.values():
            assert factory(16).scan_interval_s == MTC_SCAN_INTERVAL_S

    def test_catalog_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            policy_catalog("web")

    def test_factories_return_fresh_stateful_policies(self):
        factory = policy_catalog("htc")["ewma-predictive"]
        a, b = factory(8), factory(8)
        assert a is not b
        a.dynamic_request_size(100, 1, 8)
        assert b.smoothed_demand == 0.0


@pytest.mark.parametrize("name", sorted(policy_catalog("htc")))
def test_every_policy_runs_end_to_end_on_dawningcloud(name):
    """Each catalog policy drops into the DawningCloud HTC runner."""
    from repro.systems.base import WorkloadBundle

    policy = policy_catalog("htc")[name](16)
    bundle = WorkloadBundle.from_trace("tiny", _small_trace())
    metrics = run_dawningcloud_htc(bundle, policy, capacity=256)
    assert metrics.completed_jobs == 40
    assert metrics.resource_consumption > 0


def test_demand_tracking_completes_no_worse_than_paper_policy():
    """Aggressive growth must never complete fewer jobs than the paper rule."""
    from repro.core.policies import ResourceManagementPolicy
    from repro.systems.base import WorkloadBundle

    bundle = WorkloadBundle.from_trace("tiny", _small_trace(n_jobs=60, size=8))
    paper = run_dawningcloud_htc(
        bundle, ResourceManagementPolicy.for_htc(8, 1.5), capacity=512
    )
    tracking = run_dawningcloud_htc(
        bundle, DemandTrackingPolicy(initial_nodes=8), capacity=512
    )
    assert tracking.completed_jobs >= paper.completed_jobs


def test_static_policy_behaves_like_fixed_b_nodes():
    """Under StaticPolicy the TRE never grows beyond B."""
    from repro.systems.base import WorkloadBundle

    bundle = WorkloadBundle.from_trace("tiny", _small_trace(n_jobs=30, size=4))
    metrics = run_dawningcloud_htc(
        bundle, StaticPolicy(initial_nodes=12), capacity=256
    )
    assert metrics.peak_nodes == 12
    # only the initial grant and the shutdown release ever adjust nodes
    assert metrics.adjusted_nodes == 24
