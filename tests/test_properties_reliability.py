"""Property-based tests for the fault-tolerance subsystem.

Four invariant families, each stated over randomly generated inputs:

* **node conservation** — ``free + allocated + failed == capacity`` on
  the range-indexed cluster state after *any* operation sequence;
* **no billing accrual on failed nodes** — once a lease shrinks, the
  failed slice's charge is frozen at the failure instant (checked
  exactly under the per-second meter, where billing is linear in time);
* **requeue never loses or duplicates a job** — under arbitrary
  trace-driven outage schedules, every submitted job completes exactly
  once when the run is given room to drain, and job states always
  partition the trace;
* **checkpoint resume never finishes earlier than the failure-free
  runtime** — checkpoints cannot invent progress, per segment (pure
  math) and end to end (a killed-and-resumed job's span covers at least
  its runtime).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.lease import HOUR, LeaseLedger
from repro.core.servers import REServer
from repro.provisioning.billing import PerSecondMeter
from repro.provisioning.state import ClusterState, ClusterStateError
from repro.reliability import (
    CheckpointPolicy,
    NodeFailureInjector,
    TraceDrivenFailures,
    resume_work,
)
from repro.scheduling.firstfit import FirstFitScheduler
from repro.simkit.engine import SimulationEngine
from repro.simkit.rng import RandomStreams
from repro.workloads.job import Job, JobState

pytestmark = pytest.mark.slow


# --------------------------------------------------------------------- #
# node conservation
# --------------------------------------------------------------------- #
op_strategy = st.tuples(
    st.sampled_from(["assign", "reclaim", "fail_free", "fail_owned", "repair"]),
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=1, max_value=8),
)


@given(
    capacity=st.integers(min_value=4, max_value=64),
    ops=st.lists(op_strategy, max_size=60),
)
@settings(max_examples=120, deadline=None)
def test_conservation_holds_after_every_operation(capacity, ops):
    state = ClusterState(capacity)
    t = 0.0
    for op, owner, n in ops:
        t += 1.0
        try:
            if op == "assign":
                state.assign(owner, n, t)
            elif op == "reclaim":
                state.reclaim(owner, n, t)
            elif op == "fail_free":
                state.fail_free(n, t)
            elif op == "fail_owned":
                state.fail_owned(owner, n, t)
            else:
                state.repair(n, t)
        except ClusterStateError:
            pass  # infeasible op (not enough nodes): state must be untouched
        assert (
            state.free_count + state.allocated_count + state.failed_count
            == capacity
        ), f"conservation broken after {op}({owner}, {n})"
        assert state.free_count >= 0
        assert state.failed_count >= 0
        assert state.allocated_count >= 0
        # the range indexes agree with the counters
        assert sum(b - a for a, b in state._free) == state.free_count
        assert sum(b - a for a, b in state._failed) == state.failed_count


# --------------------------------------------------------------------- #
# no billing accrual on failed nodes
# --------------------------------------------------------------------- #
@given(
    n_nodes=st.integers(min_value=2, max_value=32),
    n_failed=st.integers(min_value=1, max_value=31),
    t_fail=st.floats(min_value=1.0, max_value=1e6),
    dt_close=st.floats(min_value=0.0, max_value=1e6),
)
@settings(max_examples=150, deadline=None)
def test_failed_slice_charge_frozen_at_failure_instant(
    n_nodes, n_failed, t_fail, dt_close
):
    n_failed = min(n_failed, n_nodes - 1)  # keep the lease partially alive
    ledger = LeaseLedger(meter=PerSecondMeter(min_charge_s=0.0))
    lease = ledger.open_lease("a", n_nodes, t=0.0)
    ledger.shrink_lease(lease, n_failed, t=t_fail)
    ledger.close_lease(lease, t=t_fail + dt_close)
    expected = (
        n_failed * t_fail + (n_nodes - n_failed) * (t_fail + dt_close)
    ) / HOUR
    assert ledger.charged_units_total("a") == pytest.approx(expected, rel=1e-9)


@given(dt_extra=st.floats(min_value=0.0, max_value=1e6))
@settings(max_examples=50, deadline=None)
def test_dead_nodes_accrue_nothing_after_shrink(dt_extra):
    """Closing later must not change what the failed slice was billed."""
    ledger = LeaseLedger(meter=PerSecondMeter(min_charge_s=0.0))
    lease = ledger.open_lease("a", 4, t=0.0)
    charged_at_fail = ledger.shrink_lease(lease, 2, t=100.0)
    ledger.close_lease(lease, t=100.0 + dt_extra)
    survivors = ledger.charged_units_total("a") - charged_at_fail
    assert survivors == pytest.approx(2 * (100.0 + dt_extra) / HOUR, rel=1e-9)
    assert charged_at_fail == pytest.approx(2 * 100.0 / HOUR, rel=1e-9)


# --------------------------------------------------------------------- #
# requeue never loses or duplicates a job
# --------------------------------------------------------------------- #
@given(
    data=st.data(),
    n_jobs=st.integers(min_value=1, max_value=12),
    nodes=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_requeue_drains_every_job_exactly_once(data, n_jobs, nodes):
    jobs = [
        Job(
            job_id=i + 1,
            submit_time=data.draw(
                st.floats(min_value=0.0, max_value=3600.0), label="submit"
            ),
            size=data.draw(st.integers(min_value=1, max_value=nodes),
                           label="size"),
            runtime=data.draw(
                st.floats(min_value=10.0, max_value=1800.0), label="runtime"
            ),
        )
        for i in range(n_jobs)
    ]
    # outage windows all inside the first simulated day, never more than
    # nodes-1 concurrently down on one slot set, so capacity returns and
    # the queue can always drain eventually
    n_windows = data.draw(st.integers(min_value=0, max_value=6),
                          label="n_windows")
    events = []
    for k in range(n_windows):
        slot = data.draw(st.integers(min_value=0, max_value=nodes - 1),
                         label="slot")
        start = data.draw(st.floats(min_value=1.0, max_value=20_000.0),
                          label="fail_t")
        width = data.draw(st.floats(min_value=10.0, max_value=4000.0),
                          label="width")
        events.append((slot, start, start + width))
    try:
        model = TraceDrivenFailures(events=tuple(events))
    except ValueError:
        return  # overlapping windows on one slot: not a valid schedule
    engine = SimulationEngine()
    server = REServer(engine, "p", FirstFitScheduler(), 60.0)
    server.add_nodes(nodes)
    checkpoint = data.draw(
        st.sampled_from([None, CheckpointPolicy(300.0, 5.0)]), label="ckpt"
    )
    object.__setattr__(model, "checkpoint", checkpoint)
    NodeFailureInjector(
        engine, server, model, RandomStreams(0), n_slots=nodes,
        restore="server",
    ).start()
    for job in jobs:
        engine.schedule_at(job.submit_time, server.submit_job, job)
    engine.run(until=400_000.0)  # windows are finite: plenty of room
    completed_ids = [j.job_id for j in server.completed]
    assert sorted(completed_ids) == sorted(j.job_id for j in jobs), (
        "a requeued job was lost or never drained"
    )
    assert len(completed_ids) == len(set(completed_ids)), (
        "a job completed more than once"
    )
    for job in jobs:
        assert job.state is JobState.COMPLETED


# --------------------------------------------------------------------- #
# checkpoint resume never beats the failure-free runtime
# --------------------------------------------------------------------- #
@given(
    work=st.floats(min_value=1.0, max_value=1e5),
    interval=st.floats(min_value=1.0, max_value=1e4),
    overhead=st.floats(min_value=0.0, max_value=500.0),
    elapsed=st.floats(min_value=0.0, max_value=2e5),
)
@settings(max_examples=200, deadline=None)
def test_recovered_work_never_exceeds_elapsed_wall(
    work, interval, overhead, elapsed
):
    policy = CheckpointPolicy(interval_s=interval, overhead_s=overhead)
    remaining = resume_work(policy, work, elapsed)
    recovered = work - remaining
    assert 0.0 <= recovered <= min(work, elapsed) + 1e-6
    # recovered work is a whole number of checkpoint intervals (or the
    # clamp at `work`)
    if recovered < work:
        assert recovered / interval == pytest.approx(
            round(recovered / interval), abs=1e-6
        )
    # wall time of an attempt is never shorter than its useful work
    assert policy.segment_wall(work) >= work


@given(
    runtime=st.floats(min_value=100.0, max_value=5000.0),
    kill_after=st.floats(min_value=1.0, max_value=4999.0),
    interval=st.sampled_from([60.0, 300.0, 900.0]),
    overhead=st.sampled_from([0.0, 10.0]),
)
@settings(max_examples=60, deadline=None)
def test_killed_job_never_finishes_before_failure_free_span(
    runtime, kill_after, interval, overhead
):
    engine = SimulationEngine()
    server = REServer(engine, "p", FirstFitScheduler(), 60.0)
    server.add_nodes(1)
    server.enable_fault_tolerance(CheckpointPolicy(interval, overhead))
    job = Job(job_id=1, submit_time=0.0, size=1, runtime=runtime)
    server.submit_job(job)
    engine.run(until=60.0)
    assert job.state is JobState.RUNNING
    kill_at = 60.0 + min(kill_after, runtime * 0.99)
    engine.schedule_at(kill_at, lambda: (
        server.kill_running(job) if job.job_id in server.running else None
    ))
    engine.run(until=60.0 + 10 * (runtime + 3600.0))
    assert job.state is JobState.COMPLETED
    span = job.finish_time - 60.0  # first dispatch instant
    assert span >= runtime - 1e-6, (
        "a checkpointed retry finished faster than the failure-free run"
    )
