"""Tests for the experiment harness (config, tables, sweeps, report)."""

import pytest

from repro.core.policies import ResourceManagementPolicy
from repro.experiments.config import (
    EvaluationSetup,
    MONTAGE_FIXED_NODES,
    PAPER_POLICIES,
    SWEEP_B,
    SWEEP_R_HTC,
    SWEEP_R_MTC,
    montage_bundle,
)
from repro.experiments.report import (
    render_percentage_rows,
    render_sweep,
    render_table,
)
from repro.experiments.sweep import (
    SweepPoint,
    best_point,
    sweep_htc_parameters,
    sweep_mtc_parameters,
)
from repro.experiments.tables import table1, table_for_bundle
from repro.systems.base import WorkloadBundle
from repro.workloads.workflow import Workflow
from tests.conftest import make_job, make_trace

HOUR = 3600.0


class TestConfig:
    def test_paper_parameter_choices(self):
        assert PAPER_POLICIES["nasa-ipsc"].initial_nodes == 40
        assert PAPER_POLICIES["nasa-ipsc"].threshold_ratio == 1.2
        assert PAPER_POLICIES["sdsc-blue"].initial_nodes == 80
        assert PAPER_POLICIES["sdsc-blue"].threshold_ratio == 1.5
        assert PAPER_POLICIES["montage"].initial_nodes == 10
        assert PAPER_POLICIES["montage"].threshold_ratio == 8.0

    def test_sweep_grids(self):
        assert SWEEP_B == (10, 20, 40, 80)
        assert SWEEP_R_HTC == (1.0, 1.2, 1.5, 2.0)
        assert SWEEP_R_MTC == (2.0, 4.0, 8.0, 16.0)

    def test_montage_fixed_nodes(self):
        assert MONTAGE_FIXED_NODES == 166
        assert montage_bundle(0).fixed_nodes == 166

    def test_setup_bundles(self):
        setup = EvaluationSetup(seed=0)
        names = [b.name for b in setup.bundles()]
        assert names == ["nasa-ipsc", "sdsc-blue", "montage"]
        assert setup.bundle("montage").kind == "mtc"
        with pytest.raises(KeyError):
            setup.bundle("nope")

    def test_consolidated_montage_submit_time(self):
        setup = EvaluationSetup(seed=0, montage_submit_time=100 * HOUR)
        bundle = setup.bundle("montage", consolidated=True)
        assert bundle.workflow.submit_time == 100 * HOUR


class TestTable1:
    def test_four_models(self):
        rows = table1()
        assert [r["model"] for r in rows] == ["DCS", "SSP", "DRP", "DSP"]

    def test_dsp_is_flexible(self):
        dsp = table1()[-1]
        assert dsp["resources_provision"] == "flexible"
        assert dsp["runtime_environment"] == "created on the demand"

    def test_dcs_is_local(self):
        assert table1()[0]["resource_property"] == "local"


def _small_htc_bundle():
    jobs = [
        make_job(i, submit=(i - 1) * 200.0, size=2, runtime=600.0)
        for i in range(1, 9)
    ]
    return WorkloadBundle.from_trace("s", make_trace(jobs, 8, 2 * HOUR, "s"))


def _small_mtc_bundle():
    tasks = [make_job(1, runtime=20, workflow_id=1)] + [
        make_job(i, runtime=20, deps=(1,), workflow_id=1) for i in range(2, 8)
    ]
    return WorkloadBundle.from_workflow("m", Workflow(1, tasks, name="m"),
                                        fixed_nodes=3)


class TestTablesForBundles:
    def test_htc_table_rows(self):
        rows = table_for_bundle(
            _small_htc_bundle(), ResourceManagementPolicy.for_htc(2, 1.5),
            capacity=64,
        )
        assert [r["configuration"] for r in rows] == [
            "DCS system",
            "SSP system",
            "DRP system",
            "DawningCloud",
        ]
        assert rows[0]["saved_resources"] is None  # DCS is the baseline
        assert rows[1]["saved_resources"] == pytest.approx(0.0)
        assert all("number_of_completed_jobs" in r for r in rows)

    def test_mtc_table_uses_tasks_per_second(self):
        rows = table_for_bundle(
            _small_mtc_bundle(), ResourceManagementPolicy.for_mtc(2, 8.0),
            capacity=64,
        )
        assert all("tasks_per_second" in r for r in rows)


class TestSweep:
    def test_htc_sweep_grid_size(self):
        points = sweep_htc_parameters(
            _small_htc_bundle(), initial_nodes=(2, 4), threshold_ratios=(1.0, 2.0),
            capacity=64,
        )
        assert len(points) == 4
        assert {p.label for p in points} == {"B2_R1", "B2_R2", "B4_R1", "B4_R2"}

    def test_mtc_sweep_reports_tasks_per_second(self):
        points = sweep_mtc_parameters(
            _small_mtc_bundle(), initial_nodes=(2,), threshold_ratios=(2.0, 8.0),
            capacity=64,
        )
        assert all(p.tasks_per_second is not None for p in points)

    def test_larger_initial_nodes_cost_at_least_as_much_when_idle(self):
        points = sweep_htc_parameters(
            _small_htc_bundle(), initial_nodes=(2, 8), threshold_ratios=(2.0,),
            capacity=64,
        )
        by_b = {p.initial_nodes: p.resource_consumption for p in points}
        assert by_b[8] >= by_b[2]

    def test_best_point_prefers_cheapest_at_equal_throughput(self):
        points = [
            SweepPoint(10, 1.0, resource_consumption=100, completed_jobs=50),
            SweepPoint(20, 1.0, resource_consumption=80, completed_jobs=50),
            SweepPoint(40, 1.0, resource_consumption=60, completed_jobs=40),
        ]
        assert best_point(points).initial_nodes == 20

    def test_best_point_requires_nonempty(self):
        with pytest.raises(ValueError):
            best_point([])


class TestReport:
    def test_render_table_alignment(self):
        text = render_table([{"a": 1, "b": "xy"}, {"a": 22, "b": None}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "/" in text  # None renders as the paper's "/"

    def test_render_percentage_rows(self):
        rows = render_percentage_rows([{"saved_resources": 0.325},
                                       {"saved_resources": -0.258}])
        assert rows[0]["saved_resources"] == "32.5%"
        assert rows[1]["saved_resources"] == "-25.8%"

    def test_render_sweep(self):
        points = [SweepPoint(10, 1.5, 1234.0, 42)]
        text = render_sweep(points, title="Fig")
        assert "B10_R1.5" in text and "1234" in text

    def test_render_empty_table(self):
        assert "(no rows)" in render_table([])
