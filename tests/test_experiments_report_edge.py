"""Edge-case tests for the text rendering layer (experiments.report)."""

from repro.experiments.report import (
    render_percentage_rows,
    render_sweep,
    render_table,
)
from repro.experiments.sweep import SweepPoint


class TestRenderTable:
    def test_empty_rows(self):
        assert "(no rows)" in render_table([])
        assert "t\n(no rows)" in render_table([], title="t")

    def test_none_renders_as_slash(self):
        out = render_table([{"a": None}])
        assert "/" in out

    def test_column_widths_accommodate_long_values(self):
        out = render_table([{"x": "short"}, {"x": "a-much-longer-value"}])
        lines = out.splitlines()
        assert len(lines[1]) >= len("a-much-longer-value")

    def test_small_floats_get_decimals_large_get_commas(self):
        out = render_table([{"v": 2.49}, {"v": 43008.0}])
        assert "2.49" in out
        assert "43,008" in out

    def test_missing_keys_render_as_slash(self):
        out = render_table([{"a": 1, "b": 2}, {"a": 3}])
        assert out.splitlines()[-1].split()[-1] == "/"

    def test_headers_union_across_rows(self):
        # Keys absent from the first row must still get a column, in
        # first-appearance order, with "/" for rows lacking them.
        out = render_table([{"a": 1}, {"a": 2, "b": 5}, {"c": 7}])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "b", "c"]
        assert lines[2].split() == ["1", "/", "/"]
        assert lines[3].split() == ["2", "5", "/"]
        assert lines[4].split() == ["/", "/", "7"]


class TestPercentageRows:
    def test_fraction_formatting(self):
        rows = render_percentage_rows([
            {"saved_resources": 0.325},
            {"saved_resources": -0.258},
            {"saved_resources": None},
        ])
        assert rows[0]["saved_resources"] == "32.5%"
        assert rows[1]["saved_resources"] == "-25.8%"
        assert rows[2]["saved_resources"] is None

    def test_input_rows_not_mutated(self):
        original = [{"saved_resources": 0.5}]
        render_percentage_rows(original)
        assert original[0]["saved_resources"] == 0.5


class TestRenderSweep:
    def test_htc_points_have_no_tasks_column(self):
        out = render_sweep([
            SweepPoint(40, 1.2, 29014.0, 2603),
        ])
        assert "B40_R1.2" in out
        assert "tasks_per_second" not in out

    def test_mtc_points_include_tasks_per_second(self):
        out = render_sweep([
            SweepPoint(10, 8.0, 166.0, 1000, tasks_per_second=2.49),
        ])
        assert "B10_R8" in out
        assert "tasks_per_second" in out
        assert "2.49" in out
