"""Tests for the scenario registry, result cache and orchestrator.

The determinism properties here are the contract the parallel CLI rides
on: same seed + params ⇒ byte-identical canonical JSON, no matter how
many worker processes execute the scenarios.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.cache import (
    NullCache,
    ResultCache,
    canonical_json,
    canonicalize,
    code_version,
    scenario_key,
)
from repro.experiments.journal import RunJournal
from repro.experiments.orchestrator import Orchestrator, payloads
from repro.experiments.registry import (
    ScenarioRegistry,
    ScenarioSpec,
    default_registry,
)
from repro.experiments.supervision import OrchestrationError, RetryPolicy
from repro.simkit.rng import RandomStreams


# --------------------------------------------------------------------- #
# module-level scenario functions (picklable into pool workers)
# --------------------------------------------------------------------- #
def draw_scenario(seed: int, n: int = 8, stream: str = "draws") -> dict:
    """Deterministic pseudo-random payload: n draws from a named stream."""
    rng = RandomStreams(seed).stream(stream)
    return {"seed": seed, "draws": [float(x) for x in rng.random(n)]}


def square_scenario(seed: int, x: int = 3) -> dict:
    return {"x": x, "x_squared": x * x, "seed": seed}


def failing_scenario(seed: int) -> dict:
    raise ValueError("intentional failure")


def make_registry() -> ScenarioRegistry:
    reg = ScenarioRegistry()
    reg.scenario("draws", tags=("synthetic",), n=8, stream="draws")(draw_scenario)
    reg.scenario("square", tags=("synthetic", "fast"), x=3)(square_scenario)
    reg.scenario("boom", tags=("synthetic",))(failing_scenario)
    return reg


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_register_and_get(self):
        reg = make_registry()
        spec = reg.get("square")
        assert spec.defaults == {"x": 3}
        assert "synthetic" in spec.tags
        assert spec.run(seed=0) == {"x": 3, "x_squared": 9, "seed": 0}

    def test_description_defaults_to_docstring(self):
        reg = make_registry()
        assert "Deterministic pseudo-random" in reg.get("draws").description

    def test_duplicate_name_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError, match="already registered"):
            reg.register(ScenarioSpec(name="square", fn=square_scenario))

    def test_unknown_name_lists_known(self):
        reg = make_registry()
        with pytest.raises(KeyError, match="unknown scenario"):
            reg.get("nope")

    def test_select_by_glob_and_tags(self):
        reg = make_registry()
        assert [s.name for s in reg.select("s*")] == ["square"]
        assert [s.name for s in reg.select("draws,square")] == ["draws", "square"]
        assert [s.name for s in reg.select(tags=("fast",))] == ["square"]
        assert len(reg.select()) == 3

    def test_unknown_override_rejected(self):
        reg = make_registry()
        with pytest.raises(KeyError, match="no parameter"):
            reg.get("square").params_with({"y": 1})

    def test_default_registry_has_paper_scenarios(self):
        reg = default_registry()
        for name in (
            "table1-models", "table2-nasa", "table3-blue", "table4-montage",
            "fig09-sweep-blue", "fig10-sweep-nasa", "fig11-sweep-montage",
            "fig12-14-consolidated", "tco-case", "breakeven",
        ):
            assert name in reg
        # every paper scenario advertises the paper tag
        assert all("paper" in s.tags for s in reg.select("table*"))


# --------------------------------------------------------------------- #
# cache
# --------------------------------------------------------------------- #
class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("s", {"a": 1}, 0)
        assert cache.get("s", key) is None
        cache.put("s", key, {"rows": [1, 2]}, params={"a": 1}, seed=0)
        assert cache.get("s", key) == {"rows": [1, 2]}
        assert cache.hits == 1 and cache.misses == 1

    def test_key_covers_name_params_seed_and_code(self):
        base = scenario_key("s", {"a": 1}, 0, version="v1")
        assert scenario_key("t", {"a": 1}, 0, version="v1") != base
        assert scenario_key("s", {"a": 2}, 0, version="v1") != base
        assert scenario_key("s", {"a": 1}, 1, version="v1") != base
        assert scenario_key("s", {"a": 1}, 0, version="v2") != base
        assert scenario_key("s", {"a": 1}, 0, version="v1") == base

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_clear_and_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put("s", f"k{i}", i, params={}, seed=0)
        assert len(cache.entries()) == 3
        assert cache.clear() == 3
        assert cache.entries() == []

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "k", 1, params={}, seed=0)
        (tmp_path / "s" / "k.json").write_text("{not json")
        assert cache.get("s", "k") is None

    def test_foreign_json_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "s").mkdir()
        (tmp_path / "s" / "k.json").write_text("{}")  # parseable, no payload
        assert cache.get("s", "k") is None
        (tmp_path / "s" / "k.json").write_text("[1, 2]")  # not even a dict
        assert cache.get("s", "k") is None

    def test_null_cache_never_stores(self, tmp_path):
        cache = NullCache()
        cache.put("s", "k", 1, params={}, seed=0)
        assert cache.get("s", "k") is None

    def test_canonicalize_collapses_tuples(self):
        assert canonicalize({"a": (1, 2)}) == {"a": [1, 2]}
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


# --------------------------------------------------------------------- #
# orchestrator
# --------------------------------------------------------------------- #
class TestOrchestrator:
    def test_serial_run_and_cache_hit(self, tmp_path):
        orch = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path), seed=7
        )
        first = orch.run_one("square")
        assert first.cached is False
        assert first.payload == {"x": 3, "x_squared": 9, "seed": 7}
        second = orch.run_one("square")
        assert second.cached is True
        assert second.payload == first.payload

    def test_overrides_change_key(self, tmp_path):
        orch = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path), seed=0
        )
        a = orch.run_one("square", overrides={"x": 4})
        assert a.payload["x_squared"] == 16
        assert a.key != orch.run_one("square").key

    def test_pattern_selection(self):
        orch = Orchestrator(registry=make_registry())
        runs = orch.run(pattern="square,draws")
        assert sorted(runs) == ["draws", "square"]

    def test_failure_propagates_with_scenario_name(self):
        orch = Orchestrator(registry=make_registry())
        with pytest.raises(RuntimeError, match="scenario 'boom' failed"):
            orch.run_one("boom")

    def test_parallel_matches_serial_and_caches(self, tmp_path):
        names = ["draws", "square"]
        serial = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path / "a"), seed=3
        ).run(names=names)
        parallel = Orchestrator(
            registry=make_registry(),
            cache=ResultCache(tmp_path / "b"),
            workers=2,
            seed=3,
        ).run(names=names)
        assert canonical_json(payloads(serial)) == canonical_json(
            payloads(parallel)
        )
        # parallel run populated its cache: a rerun is all hits
        rerun = Orchestrator(
            registry=make_registry(),
            cache=ResultCache(tmp_path / "b"),
            workers=2,
            seed=3,
        ).run(names=names)
        assert all(r.cached for r in rerun.values())

    def test_real_fast_scenarios_parallel_equals_serial(self):
        serial = Orchestrator(seed=0).run(tags=("fast",))
        parallel = Orchestrator(workers=3, seed=0).run(tags=("fast",))
        assert canonical_json(payloads(serial)) == canonical_json(
            payloads(parallel)
        )

    def test_payload_is_json_canonical(self):
        run = Orchestrator(registry=make_registry()).run_one("draws")
        assert run.payload == json.loads(canonical_json(run.payload))


# --------------------------------------------------------------------- #
# determinism property: same seed + params => identical results,
# regardless of worker count
# --------------------------------------------------------------------- #
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    workers=st.integers(min_value=1, max_value=3),
    n=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=12, deadline=None)
def test_orchestrator_determinism_property(seed, workers, n):
    overrides = {"draws": {"n": n}}
    baseline = Orchestrator(registry=make_registry(), seed=seed).run(
        names=["draws", "square"], overrides=overrides
    )
    other = Orchestrator(
        registry=make_registry(), workers=workers, seed=seed
    ).run(names=["draws", "square"], overrides=overrides)
    assert canonical_json(payloads(other)) == canonical_json(payloads(baseline))
    assert other["draws"].payload["seed"] == seed
    assert len(other["draws"].payload["draws"]) == n


# --------------------------------------------------------------------- #
# supervised execution: crash isolation, structured failures, resume
# --------------------------------------------------------------------- #
class TestSupervisedExecution:
    def test_failure_is_isolated_from_siblings(self, tmp_path):
        orch = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path)
        )
        runs = orch.run(on_error="return")
        assert runs["boom"].status == "failed"
        assert runs["boom"].payload is None
        assert runs["boom"].error["type"] == "RuntimeError"
        assert "intentional failure" in runs["boom"].error["message"]
        # siblings completed AND cached despite the failure
        assert runs["draws"].ok and runs["square"].ok
        rerun = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path)
        ).run(names=["draws", "square"])
        assert all(r.cached for r in rerun.values())

    def test_raise_mode_carries_full_outcome_map(self):
        orch = Orchestrator(registry=make_registry())
        with pytest.raises(OrchestrationError) as excinfo:
            orch.run()
        assert set(excinfo.value.failures) == {"boom"}
        assert excinfo.value.runs["square"].ok

    def test_permanent_failure_is_not_retried(self):
        orch = Orchestrator(
            registry=make_registry(),
            retry=RetryPolicy(max_attempts=5, backoff_base_s=0.0),
        )
        runs = orch.run(names=["boom"], on_error="return")
        assert runs["boom"].attempts == 1  # deterministic raise: one try

    def test_parallel_failure_is_isolated_too(self):
        runs = Orchestrator(
            registry=make_registry(), workers=2
        ).run(on_error="return")
        assert runs["boom"].status == "failed"
        assert runs["draws"].ok and runs["square"].ok

    def test_fail_fast_skips_unstarted_siblings(self):
        reg = make_registry()
        orch = Orchestrator(registry=reg, fail_fast=True)
        runs = orch.run(names=["boom", "draws", "square"], on_error="return")
        assert runs["boom"].status == "failed"
        statuses = {runs["draws"].status, runs["square"].status}
        assert "skipped" in statuses  # jobs after the failure never ran

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            Orchestrator(registry=make_registry()).run(on_error="ignore")

    def test_failed_runs_are_not_memoized(self):
        orch = Orchestrator(registry=make_registry())
        first = orch.run(names=["boom"], on_error="return")
        second = orch.run(names=["boom"], on_error="return")
        assert first["boom"].status == "failed"
        assert second["boom"].status == "failed"
        assert second["boom"].cached is False

    def test_journal_written_alongside_cache(self, tmp_path):
        Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path)
        ).run(names=["square"])
        journal = RunJournal(tmp_path / "journal.jsonl")
        assert [e["event"] for e in journal.events()] == [
            "started", "finished",
        ]

    def test_resume_marks_journaled_successes(self, tmp_path):
        Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path)
        ).run(names=["square", "draws"])
        resumed = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path),
            resume=True,
        ).run(names=["square", "draws"])
        assert all(r.cached and r.resumed for r in resumed.values())
        # without --resume the same hits are plain cache hits
        plain = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path)
        ).run(names=["square"])
        assert plain["square"].cached and not plain["square"].resumed

    def test_resume_reruns_when_cache_entry_is_corrupt(self, tmp_path):
        first = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path)
        ).run(names=["square"])
        entry = tmp_path / "square" / f"{first['square'].key}.json"
        entry.write_text("{torn")
        resumed = Orchestrator(
            registry=make_registry(), cache=ResultCache(tmp_path),
            resume=True,
        ).run(names=["square"])
        assert not resumed["square"].cached  # recomputed, not trusted
        assert resumed["square"].payload == first["square"].payload

    def test_duplicate_names_run_once(self):
        runs = Orchestrator(registry=make_registry()).run(
            names=["square", "square"]
        )
        assert list(runs) == ["square"]
        assert runs["square"].attempts == 1


# --------------------------------------------------------------------- #
# cache integrity: verification, quarantine, tmp-file uniqueness
# --------------------------------------------------------------------- #
class TestCacheIntegrity:
    def test_verify_reports_clean_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("s", {"a": 1}, 0)
        cache.put("s", key, {"rows": [1]}, params={"a": 1}, seed=0)
        report = cache.verify()
        assert report == {
            "checked": 1, "ok": 1, "corrupt": [], "quarantined": 0,
        }

    def test_verify_detects_bit_flips_in_recipe(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("s", {"a": 1}, 0)
        cache.put("s", key, 42, params={"a": 1}, seed=0)
        path = tmp_path / "s" / f"{key}.json"
        entry = json.loads(path.read_text())
        entry["seed"] = 999  # silently altered recipe
        path.write_text(json.dumps(entry))
        report = cache.verify()
        assert len(report["corrupt"]) == 1
        assert "re-hashes" in report["corrupt"][0]["reason"]

    def test_verify_quarantines_on_request(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "wrong-key", 1, params={}, seed=0)
        report = cache.verify(quarantine=True)
        assert report["quarantined"] == 1
        assert cache.entries() == []
        assert len(cache.quarantined_entries()) == 1
        reason = (
            cache.quarantined_entries()[0].with_suffix(".reason").read_text()
        )
        assert "re-hashes" in reason

    def test_get_quarantines_corruption_not_just_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("s", {}, 0)
        cache.put("s", key, 1, params={}, seed=0)
        (tmp_path / "s" / f"{key}.json").write_text("{garbage")
        assert cache.get("s", key) is None
        assert cache.quarantined == 1
        assert len(cache.quarantined_entries()) == 1
        # a plain miss (absent file) does NOT quarantine
        assert cache.get("s", "0" * 32) is None
        assert cache.quarantined == 1

    def test_quarantined_entries_excluded_from_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("s", "bad-key", 1, params={}, seed=0)
        cache.verify(quarantine=True)
        assert cache.entries() == []
        assert cache.clear() == 0  # clear never touches quarantine

    def test_put_tmp_names_are_unique_per_write(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        seen = []
        original_write = __import__("pathlib").Path.write_text

        def spy(self, *args, **kwargs):
            if self.name.endswith(".tmp"):
                seen.append(self.name)
            return original_write(self, *args, **kwargs)

        monkeypatch.setattr("pathlib.Path.write_text", spy)
        key = scenario_key("s", {}, 0)
        cache.put("s", key, 1, params={}, seed=0)
        cache.put("s", key, 2, params={}, seed=0)
        assert len(seen) == 2 and seen[0] != seen[1]
        assert str(__import__("os").getpid()) in seen[0]

    def test_concurrent_style_overwrites_converge(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = scenario_key("s", {}, 0)
        for value in (1, 2, 3):
            cache.put("s", key, value, params={}, seed=0)
        assert cache.get("s", key) == 3
        assert len(cache.entries()) == 1  # no leftover tmp litter
        assert list(tmp_path.glob("s/.*.tmp")) == []


@given(
    seed_a=st.integers(min_value=0, max_value=1000),
    seed_b=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=20, deadline=None)
def test_different_seeds_give_different_draws(seed_a, seed_b):
    a = Orchestrator(registry=make_registry(), seed=seed_a).run_one("draws")
    b = Orchestrator(registry=make_registry(), seed=seed_b).run_one("draws")
    if seed_a == seed_b:
        assert a.payload == b.payload
    else:
        assert a.payload["draws"] != b.payload["draws"]
