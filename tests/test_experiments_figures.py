"""Tests for the Figures 12-14 extraction (experiments.figures).

Runs a miniature consolidation (two small HTC providers + one tiny
workflow) so the series semantics — especially the concurrent-peak choice
for Figure 13 — are pinned without the full two-week evaluation.
"""

import pytest

from repro.cluster.setup import DEFAULT_ADJUST_COST_S
from repro.core.policies import ResourceManagementPolicy
from repro.experiments.figures import figure12_13_14
from repro.systems.base import WorkloadBundle
from repro.systems.consolidation import run_all_systems
from repro.workloads.job import Job, Trace
from repro.workloads.workflowgen import fork_join

HOUR = 3600.0

#: miniature consolidation, still seconds of simulation
pytestmark = pytest.mark.slow



@pytest.fixture(scope="module")
def figures():
    def htc(name, offset):
        jobs = [
            Job(job_id=i + 1, submit_time=offset + 400.0 * i, size=4,
                runtime=900.0)
            for i in range(24)
        ]
        trace = Trace(name, jobs, machine_nodes=16, duration=6 * HOUR)
        return WorkloadBundle.from_trace(name, trace)

    wf = fork_join(width=8, mean_runtime=30.0, seed=0)
    wf.submit_time = 2 * HOUR
    for t in wf.tasks:
        t.submit_time = wf.submit_time
    bundles = [
        htc("alpha", 0.0),
        htc("beta", 200.0),
        WorkloadBundle.from_workflow("gamma", wf, fixed_nodes=8),
    ]
    policies = {
        "alpha": ResourceManagementPolicy.for_htc(4, 1.5),
        "beta": ResourceManagementPolicy.for_htc(4, 1.5),
        "gamma": ResourceManagementPolicy.for_mtc(4, 4.0),
    }
    result = run_all_systems(bundles, policies, capacity=128,
                             horizon=6 * HOUR)
    return figure12_13_14(result=result)


class TestSeries:
    def test_four_systems_present(self, figures):
        assert {s.system for s in figures.series} == {
            "DCS", "SSP", "DRP", "DawningCloud",
        }

    def test_by_system_lookup(self, figures):
        assert figures.by_system("DCS").system == "DCS"
        with pytest.raises(KeyError):
            figures.by_system("EC3")

    def test_dcs_and_ssp_coincide_except_adjustments(self, figures):
        dcs = figures.by_system("DCS")
        ssp = figures.by_system("SSP")
        assert dcs.total_consumption_node_hours == ssp.total_consumption_node_hours
        assert dcs.peak_nodes_per_hour == ssp.peak_nodes_per_hour
        assert dcs.adjusted_nodes == 0
        # SSP: one grant + one release per machine (16 + 16 + 8 nodes)
        assert ssp.adjusted_nodes == 2 * (16 + 16 + 8)

    def test_fixed_peak_is_sum_of_machines_when_overlapping(self, figures):
        # the workflow lands mid-window, so all three machines coexist
        assert figures.by_system("DCS").peak_nodes_per_hour == 16 + 16 + 8

    def test_dawningcloud_peak_is_concurrent_not_summed(self, figures):
        """Fig 13 must not double-count a time-multiplexed shared pool."""
        dc_agg = figures.result.aggregates["DawningCloud"]
        series = figures.by_system("DawningCloud")
        assert series.peak_nodes_per_hour == dc_agg.concurrent_peak_nodes
        assert dc_agg.concurrent_peak_nodes <= dc_agg.peak_nodes

    def test_overhead_derivation(self, figures):
        s = figures.by_system("DawningCloud")
        assert s.management_overhead_s == pytest.approx(
            s.adjusted_nodes * DEFAULT_ADJUST_COST_S
        )
        assert s.overhead_s_per_hour(figures.horizon_s) == pytest.approx(
            s.management_overhead_s / (figures.horizon_s / HOUR)
        )

    def test_every_system_completed_the_workload(self, figures):
        for system, agg in figures.result.aggregates.items():
            done = sum(p.completed_jobs for p in agg.providers)
            submitted = sum(p.submitted_jobs for p in agg.providers)
            assert done == submitted, (system, done, submitted)
