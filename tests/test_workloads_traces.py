"""Tests for the synthetic NASA/BLUE trace generators.

These assert the calibration properties DESIGN.md §2 promises — the
properties the paper's conclusions rest on.
"""

import numpy as np
import pytest

from repro.workloads.stats import half_split_arrival_ratio, summarize
from repro.workloads.traces import (
    HTCTraceSpec,
    generate_htc_trace,
    generate_nasa_ipsc,
    generate_sdsc_blue,
)

HOUR = 3600.0


@pytest.fixture(scope="module")
def nasa():
    return generate_nasa_ipsc(seed=0)


@pytest.fixture(scope="module")
def blue():
    return generate_sdsc_blue(seed=0)


class TestNasa:
    def test_job_count_matches_paper(self, nasa):
        assert len(nasa) == 2603

    def test_machine_is_128_nodes(self, nasa):
        assert nasa.machine_nodes == 128

    def test_two_week_duration(self, nasa):
        assert nasa.duration == pytest.approx(14 * 24 * HOUR)

    def test_utilization_calibrated(self, nasa):
        assert nasa.utilization == pytest.approx(0.466, abs=0.01)

    def test_sizes_are_powers_of_two(self, nasa):
        sizes = {j.size for j in nasa}
        assert sizes <= {1, 2, 4, 8, 16, 32, 64, 128}

    def test_contains_machine_filling_job(self, nasa):
        assert nasa.max_size == 128

    def test_short_job_heavy(self, nasa):
        # the DRP hour-rounding penalty requires many sub-hour jobs
        assert summarize(nasa).frac_sub_hour > 0.6

    def test_smooth_arrival_profile(self, nasa):
        ratio = half_split_arrival_ratio(nasa)
        assert 0.7 < ratio < 1.4

    def test_all_jobs_finish_inside_window(self, nasa):
        assert all(j.submit_time + j.runtime <= nasa.duration for j in nasa)

    def test_deterministic_in_seed(self):
        a, b = generate_nasa_ipsc(3), generate_nasa_ipsc(3)
        assert [(j.submit_time, j.size, j.runtime) for j in a] == [
            (j.submit_time, j.size, j.runtime) for j in b
        ]

    def test_different_seeds_differ(self):
        a, b = generate_nasa_ipsc(1), generate_nasa_ipsc(2)
        assert [j.runtime for j in a] != [j.runtime for j in b]


class TestBlue:
    def test_job_count_matches_paper(self, blue):
        assert len(blue) == 2657

    def test_machine_is_144_nodes(self, blue):
        assert blue.machine_nodes == 144

    def test_utilization_calibrated(self, blue):
        # ~61% offered load for the two-week slice (see the spec's
        # calibration note: 76.2% is the archive's whole-log figure)
        assert blue.utilization == pytest.approx(0.615, abs=0.01)

    def test_sparse_then_busy_arrivals(self, blue):
        assert half_split_arrival_ratio(blue) > 1.8

    def test_long_job_dominated(self, blue):
        # low hour-rounding penalty requires mostly multi-hour jobs
        assert summarize(blue).frac_sub_hour < 0.45

    def test_contains_machine_filling_job(self, blue):
        assert blue.max_size == 144

    def test_first_half_jobs_run_longer(self, blue):
        half = blue.duration / 2
        first = [j.runtime for j in blue if j.submit_time < half]
        second = [j.runtime for j in blue if j.submit_time >= half]
        assert np.mean(first) > 1.5 * np.mean(second)

    def test_all_jobs_finish_inside_window(self, blue):
        assert all(j.submit_time + j.runtime <= blue.duration for j in blue)


class TestSpecValidation:
    def test_size_pmf_must_sum_to_one(self):
        bad = HTCTraceSpec(
            name="bad",
            machine_nodes=16,
            duration=3600.0,
            n_jobs=10,
            target_utilization=0.5,
            size_pmf=((1, 0.5),),
            runtime_mixture=((1.0, 60.0, 0.5),),
        )
        with pytest.raises(ValueError):
            generate_htc_trace(bad)

    def test_oversized_pmf_entry_rejected(self):
        bad = HTCTraceSpec(
            name="bad",
            machine_nodes=16,
            duration=3600.0,
            n_jobs=10,
            target_utilization=0.5,
            size_pmf=((32, 1.0),),
            runtime_mixture=((1.0, 60.0, 0.5),),
        )
        with pytest.raises(ValueError):
            generate_htc_trace(bad)

    def test_utilization_bounds(self):
        bad = HTCTraceSpec(
            name="bad",
            machine_nodes=16,
            duration=3600.0,
            n_jobs=10,
            target_utilization=1.5,
            size_pmf=((1, 1.0),),
            runtime_mixture=((1.0, 60.0, 0.5),),
        )
        with pytest.raises(ValueError):
            generate_htc_trace(bad)

    def test_unknown_arrival_profile(self):
        bad = HTCTraceSpec(
            name="bad",
            machine_nodes=16,
            duration=3600.0,
            n_jobs=10,
            target_utilization=0.5,
            size_pmf=((1, 1.0),),
            runtime_mixture=((1.0, 60.0, 0.5),),
            arrival_profile="nope",
        )
        with pytest.raises(ValueError):
            generate_htc_trace(bad)


class TestCustomSpec:
    def test_small_custom_trace_calibrates(self):
        spec = HTCTraceSpec(
            name="mini",
            machine_nodes=32,
            duration=24 * HOUR,
            n_jobs=200,
            target_utilization=0.5,
            size_pmf=((1, 0.5), (4, 0.3), (16, 0.2)),
            runtime_mixture=((0.7, 600.0, 0.8), (0.3, 3600.0, 0.5)),
        )
        trace = generate_htc_trace(spec, seed=1)
        assert len(trace) == 200
        assert trace.utilization == pytest.approx(0.5, abs=0.03)

    def test_wide_job_factor_shortens_wide_jobs(self):
        base = dict(
            name="w",
            machine_nodes=64,
            duration=48 * HOUR,
            n_jobs=400,
            target_utilization=0.4,
            size_pmf=((1, 0.5), (32, 0.5)),
            runtime_mixture=((1.0, 1800.0, 0.3),),
        )
        plain = generate_htc_trace(HTCTraceSpec(**base), seed=2)
        skewed = generate_htc_trace(
            HTCTraceSpec(**base, wide_job_runtime_factor=0.2), seed=2
        )

        def mean_rt(trace, wide):
            vals = [j.runtime for j in trace if (j.size >= 32) == wide]
            return float(np.mean(vals))

        assert mean_rt(skewed, True) / mean_rt(skewed, False) < mean_rt(
            plain, True
        ) / mean_rt(plain, False)
