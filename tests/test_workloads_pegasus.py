"""Tests for the Pegasus workflow family generators (workloads.pegasus)."""

import pytest

from repro.workloads.pegasus import (
    PEGASUS_GENERATORS,
    PegasusSpec,
    generate_cybershake,
    generate_epigenomics,
    generate_ligo_inspiral,
    generate_pegasus,
    generate_sipht,
)


@pytest.mark.parametrize("name", sorted(PEGASUS_GENERATORS))
class TestCommonProperties:
    def test_valid_dag_and_single_node_tasks(self, name):
        wf = generate_pegasus(name, PegasusSpec(n_tasks_hint=300), seed=1)
        assert all(t.size == 1 for t in wf.tasks)
        assert len(wf.levels()) >= 3
        # entry tasks exist and the DAG has one final join
        assert wf.level_widths()[0] >= 1
        assert wf.level_widths()[-1] == 1

    def test_task_count_near_hint(self, name):
        for hint in (100, 500, 1000):
            wf = generate_pegasus(name, PegasusSpec(n_tasks_hint=hint), seed=0)
            assert 0.5 * hint <= len(wf) <= 1.5 * hint

    def test_deterministic_in_seed(self, name):
        a = generate_pegasus(name, PegasusSpec(n_tasks_hint=200), seed=7)
        b = generate_pegasus(name, PegasusSpec(n_tasks_hint=200), seed=7)
        assert [(t.job_id, t.runtime, t.dependencies) for t in a.tasks] == [
            (t.job_id, t.runtime, t.dependencies) for t in b.tasks
        ]

    def test_seeds_change_runtimes_not_structure(self, name):
        a = generate_pegasus(name, PegasusSpec(n_tasks_hint=200), seed=1)
        b = generate_pegasus(name, PegasusSpec(n_tasks_hint=200), seed=2)
        assert [t.dependencies for t in a.tasks] == [t.dependencies for t in b.tasks]
        assert [t.runtime for t in a.tasks] != [t.runtime for t in b.tasks]

    def test_mean_runtime_rescaling(self, name):
        wf = generate_pegasus(
            name, PegasusSpec(n_tasks_hint=200, mean_runtime=11.38), seed=0
        )
        mean = sum(t.runtime for t in wf.tasks) / len(wf)
        assert mean == pytest.approx(11.38, rel=1e-6)

    def test_submit_time_propagates(self, name):
        wf = generate_pegasus(
            name, PegasusSpec(n_tasks_hint=150, submit_time=500.0), seed=0
        )
        assert wf.submit_time == 500.0
        assert all(t.submit_time == 500.0 for t in wf.tasks)


class TestShapes:
    def test_cybershake_is_wide_and_shallow(self):
        wf = generate_cybershake(PegasusSpec(n_tasks_hint=1000), seed=0)
        assert wf.max_width() >= 0.3 * len(wf)
        assert len(wf.levels()) <= 6

    def test_epigenomics_lane_structure(self):
        wf = generate_epigenomics(PegasusSpec(n_tasks_hint=400), lanes=4, seed=0)
        types = {t.task_type for t in wf.tasks}
        assert {"fastQSplit", "filterContams", "map", "mapMerge",
                "maqIndex", "pileup"} <= types
        assert sum(1 for t in wf.tasks if t.task_type == "mapMerge") == 4
        # the four chain stages keep lanes independent until mapMerge
        assert len(wf.levels()) >= 7

    def test_ligo_two_humps(self):
        wf = generate_ligo_inspiral(PegasusSpec(n_tasks_hint=300), groups=3, seed=0)
        widths = wf.level_widths()
        insp = sum(1 for t in wf.tasks if t.task_type == "Inspiral")
        insp2 = sum(1 for t in wf.tasks if t.task_type == "Inspiral2")
        assert insp == insp2  # symmetric humps
        assert max(widths) >= insp  # all groups' stage-1 can be ready at once

    def test_sipht_uneven_fan_in(self):
        wf = generate_sipht(PegasusSpec(n_tasks_hint=500), seed=0)
        findterm = [t for t in wf.tasks if t.task_type == "FindTerm"]
        assert len(findterm) == 1
        assert len(findterm[0].dependencies) > 10  # massive join

    def test_lanes_groups_validation(self):
        with pytest.raises(ValueError):
            generate_epigenomics(lanes=0)
        with pytest.raises(ValueError):
            generate_ligo_inspiral(groups=0)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown pegasus workflow"):
            generate_pegasus("galaxy")


class TestRunnability:
    """Each workflow actually executes through the MTC server."""

    @pytest.mark.parametrize("name", sorted(PEGASUS_GENERATORS))
    def test_runs_to_completion_on_dawningcloud(self, name):
        from repro.core.policies import ResourceManagementPolicy
        from repro.systems.base import WorkloadBundle
        from repro.systems.dsp_runner import run_dawningcloud_mtc

        wf = generate_pegasus(
            name, PegasusSpec(n_tasks_hint=120, mean_runtime=8.0), seed=0
        )
        bundle = WorkloadBundle.from_workflow(name, wf, fixed_nodes=wf.max_width())
        metrics = run_dawningcloud_mtc(
            bundle, ResourceManagementPolicy.for_mtc(10, 4.0), capacity=2000
        )
        assert metrics.completed_jobs == len(wf)
        assert metrics.tasks_per_second is not None and metrics.tasks_per_second > 0
