"""Tests for the spec layer: round-trips, digests, and loud errors."""

import json
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import (
    ComponentRef,
    ExperimentSpec,
    SystemSpec,
    WorkloadSpec,
    load_spec_file,
    spec_digest,
)

# ---------------------------------------------------------------------- #
# strategies: JSON-safe params and structurally valid specs
# ---------------------------------------------------------------------- #
json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
params_st = st.dictionaries(
    st.text(min_size=1, max_size=8).filter(lambda s: not s.startswith("$")),
    st.one_of(json_scalars, st.lists(json_scalars, max_size=3)),
    max_size=3,
)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-0123456789", min_size=1, max_size=12
)
refs = st.one_of(
    st.none(),
    st.builds(ComponentRef, name=names, params=params_st),
)
workloads_st = st.builds(
    WorkloadSpec,
    generator=names,
    params=params_st,
    label=st.one_of(st.none(), names),
)
systems_st = st.builds(
    SystemSpec,
    runner=names,
    params=params_st,
    policy=refs,
    scheduler=refs,
    billing=refs,
    label=st.one_of(st.none(), names),
)
experiments_st = st.builds(
    ExperimentSpec,
    name=names,
    workloads=st.lists(workloads_st, min_size=1, max_size=3),
    systems=st.lists(systems_st, min_size=1, max_size=3),
    seeds=st.lists(st.integers(0, 99), min_size=1, max_size=3),
    sweep=st.dictionaries(
        st.sampled_from(["params.capacity", "params.x", "policy.params.b"]),
        st.lists(st.integers(0, 9), min_size=1, max_size=3),
        max_size=2,
    ),
    description=st.text(max_size=20),
)


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(spec=experiments_st)
    def test_from_dict_to_dict_round_trip(self, spec):
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    @settings(max_examples=100, deadline=None)
    @given(spec=experiments_st)
    def test_to_dict_is_json_safe_and_digest_stable(self, spec):
        blob = json.dumps(spec.to_dict(), sort_keys=True)
        again = ExperimentSpec.from_dict(json.loads(blob))
        assert spec_digest(again) == spec_digest(spec)

    def test_tuples_and_lists_are_one_spec(self):
        a = WorkloadSpec("w", params={"sizes": (1, 2, 3)})
        b = WorkloadSpec("w", params={"sizes": [1, 2, 3]})
        assert a == b

    def test_shorthand_strings(self):
        spec = ExperimentSpec.from_dict(
            {"name": "x", "workloads": ["nasa-ipsc"], "systems": ["dcs"]}
        )
        assert spec.workloads[0] == WorkloadSpec("nasa-ipsc")
        assert spec.systems[0] == SystemSpec("dcs")
        sys_spec = SystemSpec.from_value(
            {"runner": "drp", "billing": "per-second"}
        )
        assert sys_spec.billing == ComponentRef("per-second")


class TestDigest:
    def test_digest_changes_with_content(self):
        base = ExperimentSpec(name="x", workloads=("a",), systems=("dcs",))
        other = ExperimentSpec(name="x", workloads=("a",), systems=("drp",))
        assert spec_digest(base) != spec_digest(other)

    def test_digest_stable_across_processes(self):
        """The digest must not depend on hash seeds or dict order."""
        spec = ExperimentSpec(
            name="stability",
            workloads=(WorkloadSpec("nasa-ipsc", params={"b": 1, "a": 2}),),
            systems=(SystemSpec("dcs", params={"z": 1, "y": [3, 1]}),),
            sweep={"params.capacity": [1, 2]},
        )
        local = spec_digest(spec)
        code = textwrap.dedent(
            """
            from repro.api.spec import (
                ExperimentSpec, SystemSpec, WorkloadSpec, spec_digest,
            )
            spec = ExperimentSpec(
                name="stability",
                workloads=(WorkloadSpec("nasa-ipsc", params={"a": 2, "b": 1}),),
                systems=(SystemSpec("dcs", params={"y": [3, 1], "z": 1}),),
                sweep={"params.capacity": [1, 2]},
            )
            print(spec_digest(spec))
            """
        )
        import pathlib

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        for seed in ("0", "4242"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": seed},
            )
            assert out.stdout.strip() == local


class TestErrors:
    def test_unknown_experiment_key(self):
        with pytest.raises(ValueError, match=r"unknown key\(s\) \['sweeps'\]"):
            ExperimentSpec.from_dict(
                {"name": "x", "workloads": ["w"], "systems": ["s"],
                 "sweeps": {}}
            )

    def test_unknown_system_key_lists_known(self):
        with pytest.raises(ValueError, match="runner"):
            SystemSpec.from_value({"runner": "dcs", "biling": "per-hour"})

    def test_unknown_workload_key(self):
        with pytest.raises(ValueError, match=r"\['generator_name'\]"):
            WorkloadSpec.from_value({"generator_name": "nasa"})

    def test_missing_required_keys_named(self):
        with pytest.raises(ValueError, match="missing required"):
            ExperimentSpec.from_dict({"name": "x", "workloads": ["w"]})
        with pytest.raises(ValueError, match="'runner' key"):
            SystemSpec.from_value({"params": {}})

    def test_empty_collections_rejected(self):
        with pytest.raises(ValueError, match="at least one workload"):
            ExperimentSpec(name="x", workloads=(), systems=("dcs",))
        with pytest.raises(ValueError, match="at least one system"):
            ExperimentSpec(name="x", workloads=("w",), systems=())
        with pytest.raises(ValueError, match="at least one seed"):
            ExperimentSpec(name="x", workloads=("w",), systems=("s",), seeds=())

    def test_bad_types_rejected(self):
        with pytest.raises(TypeError, match="mapping"):
            ExperimentSpec.from_dict(["not", "a", "mapping"])
        with pytest.raises(TypeError, match="name or mapping"):
            SystemSpec.from_value(42)

    def test_empty_sweep_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            ExperimentSpec(
                name="x", workloads=("w",), systems=("s",),
                sweep={"params.c": []},
            )


class TestSweepExpansion:
    def test_cross_product_order(self):
        spec = ExperimentSpec(
            name="x", workloads=("w",),
            systems=(SystemSpec("dcs"), SystemSpec("drp")),
            sweep={"params.b": [1, 2], "params.a": [10]},
        )
        expanded = spec.expand_systems()
        assert len(expanded) == 4  # 2 systems x (2 x 1) grid
        # paths sorted (a before b), values in listed order, dcs first
        assert expanded[0][1] == {"params.a": 10, "params.b": 1}
        assert expanded[1][1] == {"params.a": 10, "params.b": 2}
        assert expanded[0][0].params == {"a": 10, "b": 1}
        assert expanded[2][0].runner == "drp"

    def test_sweep_reaches_nested_refs(self):
        spec = ExperimentSpec(
            name="x", workloads=("w",), systems=(SystemSpec("pooled-queue"),),
            sweep={"scheduler.name": ["sjf", "fcfs"]},
        )
        (s1, _), (s2, _) = spec.expand_systems()
        assert s1.scheduler == ComponentRef("sjf")
        assert s2.scheduler == ComponentRef("fcfs")

    def test_bad_sweep_path_is_loud(self):
        spec = ExperimentSpec(
            name="x", workloads=("w",), systems=(SystemSpec("dcs"),),
            sweep={"runner.deep.er": [1]},
        )
        with pytest.raises(ValueError, match="does not resolve"):
            spec.expand_systems()

    def test_no_sweep_is_identity(self):
        spec = ExperimentSpec(name="x", workloads=("w",), systems=("dcs",))
        assert spec.expand_systems() == [(SystemSpec("dcs"), {})]


class TestSpecFiles:
    def test_toml_and_json_agree(self, tmp_path):
        toml = tmp_path / "spec.toml"
        toml.write_text(textwrap.dedent(
            """
            name = "file-spec"
            [[workloads]]
            generator = "nasa-ipsc"
            [[systems]]
            runner = "dcs"
            """
        ))
        js = tmp_path / "spec.json"
        js.write_text(json.dumps(
            {"name": "file-spec", "workloads": ["nasa-ipsc"],
             "systems": ["dcs"]}
        ))
        assert load_spec_file(toml) == load_spec_file(js)

    def test_bad_suffix_and_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_spec_file(tmp_path / "nope.toml")
        bad = tmp_path / "spec.yaml"
        bad.write_text("name: x")
        with pytest.raises(ValueError, match=".toml or .json"):
            load_spec_file(bad)

    def test_invalid_spec_names_the_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"name": "x", "workloads": ["w"]}))
        with pytest.raises(ValueError, match="broken.json"):
            load_spec_file(path)
