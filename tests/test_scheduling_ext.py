"""Tests for the extension schedulers (SJF, conservative backfill,
weighted fair share) and the scheduler registry/override plumbing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import default_components
from repro.scheduling import SCHEDULER_REGISTRY, make_scheduler


def build_scheduler(name):
    return default_components().create("scheduler", name)
from repro.scheduling.base import RunningJob
from repro.scheduling.conservative import ConservativeBackfillScheduler
from repro.scheduling.fairshare import WeightedFairShareScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from repro.scheduling.sjf import SjfScheduler
from repro.workloads.job import Job


def J(jid, size, runtime, user=0, submit=0.0):
    return Job(job_id=jid, submit_time=submit, size=size, runtime=runtime,
               user_id=user)


def mark_queued(jobs):
    for j in jobs:
        j.mark_queued(j.submit_time)
    return jobs


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_all_names_construct(self):
        for name in SCHEDULER_REGISTRY:
            sched = build_scheduler(name)
            assert sched.select(0.0, [], 16) == []

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            build_scheduler("round-robin")

    def test_make_scheduler_deprecated_but_working(self):
        with pytest.warns(DeprecationWarning, match="scheduler"):
            sched = make_scheduler("first-fit")
        assert isinstance(sched, FirstFitScheduler)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown scheduler"):
                make_scheduler("round-robin")


# --------------------------------------------------------------------- #
# SJF
# --------------------------------------------------------------------- #
class TestSjf:
    def test_prefers_shortest(self):
        q = mark_queued([J(1, 4, 1000.0), J(2, 4, 10.0), J(3, 4, 100.0)])
        picked = SjfScheduler().select(0.0, q, 4)
        assert [j.job_id for j in picked] == [2]

    def test_packs_in_runtime_order(self):
        q = mark_queued([J(1, 2, 500.0), J(2, 2, 5.0), J(3, 2, 50.0)])
        picked = SjfScheduler().select(0.0, q, 4)
        assert {j.job_id for j in picked} == {2, 3}

    def test_tie_breaks_by_arrival(self):
        q = mark_queued([J(1, 4, 10.0), J(2, 4, 10.0)])
        picked = SjfScheduler().select(0.0, q, 4)
        assert [j.job_id for j in picked] == [1]

    def test_aging_barrier_blocks_later_jobs(self):
        sched = SjfScheduler(max_skip=1)
        wide_long = J(1, 8, 1000.0)
        q = mark_queued([wide_long, J(2, 2, 1.0), J(3, 2, 1.0), J(4, 2, 1.0)])
        # free=2: job 1 never fits; shorter jobs jump it repeatedly
        first = sched.select(0.0, q, 2)
        assert first and first[0].job_id != 1
        q2 = [j for j in q if j not in first]
        second = sched.select(1.0, q2, 2)
        assert second and second[0].job_id != 1
        q3 = [j for j in q2 if j not in second]
        # job 1 now exceeded max_skip=1: nothing behind it may start
        third = sched.select(2.0, q3, 2)
        assert third == []

    def test_pure_sjf_never_blocks(self):
        sched = SjfScheduler()  # no aging
        q = mark_queued([J(1, 8, 1000.0), J(2, 2, 1.0)])
        for t in range(5):
            assert sched.select(float(t), q, 2) == [q[1]]

    def test_max_skip_validation(self):
        with pytest.raises(ValueError):
            SjfScheduler(max_skip=-1)


# --------------------------------------------------------------------- #
# conservative backfill
# --------------------------------------------------------------------- #
class TestConservative:
    def test_plain_start_when_everything_fits(self):
        q = mark_queued([J(1, 2, 10.0), J(2, 2, 10.0)])
        picked = ConservativeBackfillScheduler().select(0.0, q, 8)
        assert {j.job_id for j in picked} == {1, 2}

    def test_backfills_without_delaying_reservations(self):
        # running job frees 4 nodes at t=100; head needs 6 (reserved @100);
        # a 2-node 50s job fits now and ends before 100 -> backfill it
        running = [RunningJob(J(99, 4, 100.0), finish_time=100.0)]
        q = mark_queued([J(1, 6, 100.0), J(2, 2, 50.0)])
        picked = ConservativeBackfillScheduler().select(0.0, q, 4, running)
        assert [j.job_id for j in picked] == [2]

    def test_does_not_backfill_job_that_would_delay_head(self):
        running = [RunningJob(J(99, 4, 100.0), finish_time=100.0)]
        q = mark_queued([J(1, 6, 100.0), J(2, 4, 500.0)])
        # job 2 fits now (4 free) but would hold 4 nodes past t=100,
        # leaving only 4 free for the 6-wide head -> must not start
        picked = ConservativeBackfillScheduler().select(0.0, q, 4, running)
        assert picked == []

    def test_protects_second_reservation_too(self):
        # EASY would start job 3 (it doesn't delay the head); conservative
        # also checks job 2's reservation.
        running = [RunningJob(J(99, 4, 100.0), finish_time=100.0)]
        q = mark_queued([
            J(1, 8, 10.0),    # head: reserved at t=100 (needs all 8)
            J(2, 4, 10.0),    # reserved at t=110
            J(3, 4, 200.0),   # fits now, but would run past t=110
        ])
        picked = ConservativeBackfillScheduler().select(0.0, q, 4, running)
        assert 3 not in {j.job_id for j in picked}

    def test_empty_inputs(self):
        s = ConservativeBackfillScheduler()
        assert s.select(0.0, [], 8) == []
        assert s.select(0.0, mark_queued([J(1, 2, 5.0)]), 0) == []


# --------------------------------------------------------------------- #
# weighted fair share
# --------------------------------------------------------------------- #
class TestFairShare:
    def test_single_user_degrades_to_fcfs(self):
        q = mark_queued([J(1, 2, 10.0, user=7), J(2, 2, 10.0, user=7)])
        picked = WeightedFairShareScheduler().select(0.0, q, 2)
        assert [j.job_id for j in picked] == [1]

    def test_equal_weights_alternate_users(self):
        q = mark_queued([
            J(1, 2, 10.0, user=1), J(2, 2, 10.0, user=1),
            J(3, 2, 10.0, user=2), J(4, 2, 10.0, user=2),
        ])
        picked = WeightedFairShareScheduler().select(0.0, q, 4)
        users = [j.user_id for j in picked]
        assert users == [1, 2] or users == [2, 1]

    def test_weights_bias_allocation(self):
        sched = WeightedFairShareScheduler(weights={1: 3.0, 2: 1.0})
        q = mark_queued([
            J(1, 2, 10.0, user=1), J(2, 2, 10.0, user=1), J(3, 2, 10.0, user=1),
            J(4, 2, 10.0, user=2), J(5, 2, 10.0, user=2), J(6, 2, 10.0, user=2),
        ])
        picked = sched.select(0.0, q, 8)
        share = {u: sum(j.size for j in picked if j.user_id == u) for u in (1, 2)}
        assert share[1] == 6 and share[2] == 2  # 3:1 split of 8 nodes

    def test_running_occupancy_counts_against_user(self):
        running = [RunningJob(J(99, 6, 100.0, user=1), finish_time=100.0)]
        q = mark_queued([J(1, 2, 10.0, user=1), J(2, 2, 10.0, user=2)])
        picked = WeightedFairShareScheduler().select(0.0, q, 2, running)
        assert [j.user_id for j in picked] == [2]

    def test_work_conserving_when_heads_blocked(self):
        # user 2's head is too wide, but a later job of user 1 fits
        q = mark_queued([J(1, 8, 10.0, user=2), J(2, 2, 10.0, user=1)])
        picked = WeightedFairShareScheduler().select(0.0, q, 4)
        assert [j.job_id for j in picked] == [2]

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            WeightedFairShareScheduler(weights={1: 0.0})
        with pytest.raises(ValueError):
            WeightedFairShareScheduler(default_weight=-1)


# --------------------------------------------------------------------- #
# property-based invariants for every scheduler
# --------------------------------------------------------------------- #
job_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=32),     # size
        st.floats(min_value=1.0, max_value=1e4),    # runtime
        st.integers(min_value=0, max_value=4),      # user
    ),
    min_size=0,
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(jobs=job_lists, free=st.integers(min_value=0, max_value=64))
@pytest.mark.parametrize("name", sorted(SCHEDULER_REGISTRY))
def test_scheduler_invariants(name, jobs, free):
    queued = mark_queued([
        J(i, size, runtime, user) for i, (size, runtime, user) in enumerate(jobs)
    ])
    picked = build_scheduler(name).select(0.0, queued, free)
    # 1. no duplicates, all picks came from the queue
    ids = [j.job_id for j in picked]
    assert len(ids) == len(set(ids))
    assert set(ids) <= {j.job_id for j in queued}
    # 2. aggregate width within the free nodes
    assert sum(j.size for j in picked) <= free
    # 3. determinism: same inputs -> same picks
    again = build_scheduler(name).select(0.0, queued, free)
    assert [j.job_id for j in again] == ids


def test_scheduler_override_threads_through_dawningcloud():
    """RuntimeEnvironmentSpec.scheduler_factory reaches the REServer."""
    from repro.core.dawningcloud import DawningCloud
    from repro.core.policies import ResourceManagementPolicy

    cloud = DawningCloud(capacity=64)
    cloud.add_htc_provider(
        "lab",
        ResourceManagementPolicy.for_htc(8, 1.5),
        scheduler_factory=SjfScheduler,
    )
    cloud.run(until=1.0)
    assert isinstance(cloud.tre("lab").server.scheduler, SjfScheduler)
    assert cloud.tre("lab").spec.default_scheduler().name == "sjf"


def test_default_scheduler_unchanged_without_override():
    from repro.core.policies import ResourceManagementPolicy
    from repro.core.tre import RuntimeEnvironmentSpec

    spec = RuntimeEnvironmentSpec(
        provider="x", kind="htc", policy=ResourceManagementPolicy.for_htc()
    )
    assert isinstance(spec.default_scheduler(), FirstFitScheduler)
