"""Tests for the process-wide trace store and columnar round-trips (PR 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.archive import ARCHIVE
from repro.workloads.job import Job, JobState, Trace, TraceArrays
from repro.workloads.montage import MontageSpec, generate_montage
from repro.workloads.store import TraceStore, montage_workflow, paper_trace, prewarm
from repro.workloads.traces import (
    NASA_IPSC,
    SDSC_BLUE,
    generate_htc_trace,
    generate_nasa_ipsc,
    generate_sdsc_blue,
)
from repro.workloads.workflowgen import bag_of_tasks, chain, fork_join, layered_random


def jobs_equal(a: Job, b: Job) -> bool:
    return (
        a.job_id == b.job_id
        and a.submit_time == b.submit_time
        and a.size == b.size
        and a.runtime == b.runtime
        and a.user_id == b.user_id
        and a.task_type == b.task_type
        and a.workflow_id == b.workflow_id
        and a.dependencies == b.dependencies
    )


class TestStoreKeying:
    def test_miss_then_hit(self):
        store = TraceStore()
        calls = []

        def build():
            calls.append(1)
            return generate_htc_trace(NASA_IPSC, 0)

        t1 = store.trace("htc-trace", NASA_IPSC, 0, build)
        t2 = store.trace("htc-trace", NASA_IPSC, 0, build)
        assert len(calls) == 1
        assert store.hits == 1 and store.misses == 1
        assert len(t1) == len(t2)

    def test_distinct_seeds_are_distinct_entries(self):
        store = TraceStore()
        store.trace("htc-trace", NASA_IPSC, 0, lambda: generate_htc_trace(NASA_IPSC, 0))
        store.trace("htc-trace", NASA_IPSC, 1, lambda: generate_htc_trace(NASA_IPSC, 1))
        assert len(store) == 2 and store.hits == 0

    def test_distinct_specs_are_distinct_entries(self):
        store = TraceStore()
        store.trace("htc-trace", NASA_IPSC, 0, lambda: generate_htc_trace(NASA_IPSC, 0))
        store.trace("htc-trace", SDSC_BLUE, 0, lambda: generate_htc_trace(SDSC_BLUE, 0))
        assert len(store) == 2 and store.hits == 0

    def test_equal_spec_values_share_one_entry(self):
        """Content keying: two spec *objects* with equal fields, one entry."""
        store = TraceStore()
        spec_a = MontageSpec()
        spec_b = MontageSpec()
        assert spec_a is not spec_b
        store.workflow("m", spec_a, 0, lambda: generate_montage(spec_a, 0))
        store.workflow("m", spec_b, 0, lambda: generate_montage(spec_b, 0))
        assert len(store) == 1 and store.hits == 1

    def test_handles_share_columns_but_not_mutable_state(self):
        store = TraceStore()
        build = lambda: generate_htc_trace(NASA_IPSC, 0)  # noqa: E731
        t1 = store.trace("htc-trace", NASA_IPSC, 0, build)
        t2 = store.trace("htc-trace", NASA_IPSC, 0, build)
        assert t1.arrays is t2.arrays  # shared immutable columns
        t1.jobs[0].mark_queued(0.0)
        assert t2.jobs[0].state is JobState.PENDING  # fresh jobs per handle

    def test_montage_submit_time_is_part_of_the_key(self):
        wf0 = montage_workflow(seed=0, submit_time=0.0)
        wf1 = montage_workflow(seed=0, submit_time=3600.0)
        assert wf0.submit_time == 0.0 and wf1.submit_time == 3600.0
        assert wf0.tasks[0].submit_time != wf1.tasks[0].submit_time

    def test_prewarm_is_idempotent(self):
        n1 = prewarm(["nasa-ipsc", "montage"], seed=0)
        n2 = prewarm(["nasa-ipsc", "montage"], seed=0)
        assert n2 == n1

    def test_unknown_trace_name_rejected(self):
        with pytest.raises(ValueError, match="unknown trace"):
            paper_trace("no-such-machine", 0)


class TestStoreIdentity:
    """Store-backed generation must be indistinguishable from direct."""

    def test_paper_trace_equals_direct_generation(self):
        via_store = paper_trace("nasa-ipsc", 0)
        direct = generate_htc_trace(NASA_IPSC, 0)
        assert len(via_store) == len(direct)
        assert all(jobs_equal(a, b) for a, b in zip(via_store.jobs, direct.jobs))

    def test_montage_equals_direct_generation(self):
        via_store = montage_workflow(seed=0)
        direct = generate_montage(MontageSpec(), seed=0)
        assert all(jobs_equal(a, b) for a, b in zip(via_store.tasks, direct.tasks))


@pytest.mark.slow
class TestCrossWorkerIdentity:
    """workers=4 (prewarmed, forked) and workers=1 are byte-identical."""

    def test_parallel_equals_serial_for_prewarmed_sweeps(self, tmp_path):
        from repro.experiments.cache import canonical_json
        from repro.experiments.orchestrator import Orchestrator, payloads

        names = ["fig10-sweep-nasa", "table2-nasa", "table4-montage"]
        serial = Orchestrator(workers=1, seed=0).run(names=names)
        parallel = Orchestrator(workers=4, seed=0).run(names=names)
        assert canonical_json(payloads(serial)) == canonical_json(payloads(parallel))


class TestTraceArraysRoundTrip:
    """TraceArrays ↔ Job equality on every built-in generator."""

    @pytest.mark.parametrize("name", sorted(ARCHIVE))
    def test_archive_traces_round_trip(self, name):
        trace = generate_htc_trace(ARCHIVE[name], seed=2)
        rebuilt = TraceArrays.from_jobs(trace.jobs).to_jobs()
        assert all(jobs_equal(a, b) for a, b in zip(trace.jobs, rebuilt))

    def test_paper_generators_round_trip(self):
        for trace in (generate_nasa_ipsc(1), generate_sdsc_blue(1)):
            rebuilt = trace.arrays.to_jobs()
            assert all(jobs_equal(a, b) for a, b in zip(trace.jobs, rebuilt))

    @pytest.mark.parametrize("factory", [
        lambda: generate_montage(MontageSpec(n_images=20, n_diffs=60), seed=3).tasks,
        lambda: bag_of_tasks(40, seed=3).tasks,
        lambda: chain(25, seed=3).tasks,
        lambda: fork_join(30, seed=3).tasks,
        lambda: layered_random((5, 8, 3), seed=3).tasks,
    ])
    def test_workflow_generators_round_trip(self, factory):
        tasks = factory()
        rebuilt = TraceArrays.from_jobs(tasks).to_jobs()
        assert all(jobs_equal(a, b) for a, b in zip(tasks, rebuilt))

    def test_mixed_workflow_ids_survive_round_trip_and_copy(self):
        jobs = [
            Job(job_id=1, submit_time=0.0, size=1, runtime=5.0, workflow_id=1),
            Job(job_id=2, submit_time=1.0, size=1, runtime=5.0, workflow_id=2),
            Job(job_id=3, submit_time=2.0, size=1, runtime=5.0),  # no workflow
        ]
        rebuilt = TraceArrays.from_jobs(jobs).to_jobs()
        assert [j.workflow_id for j in rebuilt] == [1, 2, None]
        trace = Trace("mixed", jobs, machine_nodes=4, duration=100.0)
        assert [j.workflow_id for j in trace.copy().jobs] == [1, 2, None]
        sub = trace.subset(0.5, 2.5)
        assert [j.workflow_id for j in sub.jobs] == [2, None]

    def test_round_trip_preserves_dependency_tuples(self):
        wf = generate_montage(MontageSpec(n_images=10, n_diffs=30), seed=0)
        arrays = TraceArrays.from_jobs(wf.tasks)
        assert arrays.has_dependencies
        rebuilt = arrays.to_jobs()
        for a, b in zip(wf.tasks, rebuilt):
            assert a.dependencies == b.dependencies
            assert isinstance(b.dependencies, tuple)

    def test_materialized_jobs_are_pristine(self):
        trace = generate_nasa_ipsc(0)
        job = trace.jobs[0]
        job.mark_queued(0.0)
        fresh = trace.copy().jobs[0]
        assert fresh.state is JobState.PENDING
        assert fresh.start_time is None and fresh.finish_time is None

    def test_vectorized_aggregates_match_python(self):
        trace = generate_sdsc_blue(0)
        jobs = trace.jobs
        assert trace.max_size == max(j.size for j in jobs)
        assert trace.total_work == pytest.approx(sum(j.work for j in jobs), rel=1e-12)

    def test_subset_vectorized(self):
        trace = generate_nasa_ipsc(0)
        sub = trace.subset(3600.0, 7200.0)
        expected = [j for j in trace.jobs if 3600.0 <= j.submit_time < 7200.0]
        assert len(sub) == len(expected)
        assert all(
            a.job_id == b.job_id
            and a.submit_time == pytest.approx(b.submit_time - 3600.0)
            for a, b in zip(sub.jobs, expected)
        )

    def test_validate_rejects_bad_columns(self):
        with pytest.raises(ValueError, match="size"):
            Trace.from_arrays(
                "bad",
                TraceArrays(
                    job_id=np.array([1]),
                    submit=np.array([0.0]),
                    size=np.array([0]),
                    runtime=np.array([1.0]),
                ),
                machine_nodes=4,
                duration=10.0,
            )
        with pytest.raises(ValueError, match="duplicate"):
            Trace.from_arrays(
                "bad",
                TraceArrays(
                    job_id=np.array([1, 1]),
                    submit=np.array([0.0, 1.0]),
                    size=np.array([1, 1]),
                    runtime=np.array([1.0, 1.0]),
                ),
                machine_nodes=4,
                duration=10.0,
            )
        with pytest.raises(ValueError, match="exceed machine"):
            Trace.from_arrays(
                "bad",
                TraceArrays(
                    job_id=np.array([1]),
                    submit=np.array([0.0]),
                    size=np.array([9]),
                    runtime=np.array([1.0]),
                ),
                machine_nodes=4,
                duration=10.0,
            )
