"""Tests for the DawningCloud runners and the four-system consolidation."""

import pytest

from repro.core.policies import ResourceManagementPolicy
from repro.systems.base import WorkloadBundle
from repro.systems.consolidation import run_all_systems
from repro.systems.dsp_runner import (
    run_dawningcloud_consolidated,
    run_dawningcloud_htc,
    run_dawningcloud_mtc,
)
from repro.workloads.workflow import Workflow
from tests.conftest import make_job, make_trace

HOUR = 3600.0


def htc_bundle(n_jobs=8, nodes=16, duration=4 * HOUR, name="htc"):
    jobs = [
        make_job(i, submit=(i - 1) * 300.0, size=2, runtime=900.0)
        for i in range(1, n_jobs + 1)
    ]
    return WorkloadBundle.from_trace(name, make_trace(jobs, nodes, duration, name))


def mtc_bundle(width=6, name="mtc", submit=0.0):
    tasks = [make_job(1, submit=submit, runtime=30, workflow_id=1)]
    for i in range(width):
        tasks.append(
            make_job(2 + i, submit=submit, runtime=30, deps=(1,), workflow_id=1)
        )
    wf = Workflow(1, tasks, name=name, submit_time=submit)
    return WorkloadBundle.from_workflow(name, wf, fixed_nodes=max(width // 2, 1))


HTC_POLICY = ResourceManagementPolicy.for_htc(2, 1.5)
MTC_POLICY = ResourceManagementPolicy.for_mtc(2, 8.0)


class TestStandaloneRunners:
    def test_htc_runner_completes_jobs(self):
        result = run_dawningcloud_htc(htc_bundle(), HTC_POLICY, capacity=64)
        assert result.system == "DawningCloud"
        assert result.completed_jobs == 8

    def test_htc_runner_rejects_mtc_bundle(self):
        with pytest.raises(ValueError):
            run_dawningcloud_htc(mtc_bundle(), HTC_POLICY)

    def test_mtc_runner_rejects_htc_bundle(self):
        with pytest.raises(ValueError):
            run_dawningcloud_mtc(htc_bundle(), MTC_POLICY)

    def test_mtc_runner_bills_only_workload_period(self):
        result = run_dawningcloud_mtc(mtc_bundle(width=6), MTC_POLICY, capacity=64)
        assert result.completed_jobs == 7
        # everything fits into one started hour: consumption = peak owned
        assert result.resource_consumption <= 8

    def test_htc_consumption_at_least_initial_lease(self):
        bundle = htc_bundle(duration=3 * HOUR)
        result = run_dawningcloud_htc(bundle, HTC_POLICY, capacity=64)
        assert result.resource_consumption >= 2 * 3  # B × horizon hours


class TestConsolidated:
    def test_aggregate_combines_all_providers(self):
        bundles = [htc_bundle(name="a"), mtc_bundle(name="b", submit=HOUR)]
        policies = {"a": HTC_POLICY, "b": MTC_POLICY}
        agg = run_dawningcloud_consolidated(
            bundles, policies, capacity=64, horizon=4 * HOUR
        )
        assert {p.provider for p in agg.providers} == {"a", "b"}
        assert agg.total_consumption == pytest.approx(
            sum(p.resource_consumption for p in agg.providers)
        )

    def test_horizon_defaults_to_longest_htc_bundle(self):
        bundles = [htc_bundle(duration=2 * HOUR)]
        agg = run_dawningcloud_consolidated(bundles, {"htc": HTC_POLICY}, capacity=64)
        assert agg.horizon_s == 2 * HOUR


@pytest.mark.slow  # full two-week consolidated run
class TestRunAllSystems:
    def test_every_system_present_with_every_provider(self):
        bundles = [htc_bundle(name="a"), mtc_bundle(name="b")]
        policies = {"a": HTC_POLICY, "b": MTC_POLICY}
        result = run_all_systems(bundles, policies, capacity=64)
        assert set(result.aggregates) == {"DCS", "SSP", "DRP", "DawningCloud"}
        for system in result.aggregates:
            assert {p.provider for p in result.aggregates[system].providers} == {
                "a",
                "b",
            }

    def test_dcs_equals_ssp(self):
        bundles = [htc_bundle(name="a")]
        result = run_all_systems(bundles, {"a": HTC_POLICY}, capacity=64)
        assert result.aggregate("DCS").total_consumption == result.aggregate(
            "SSP"
        ).total_consumption

    def test_savings_and_peak_helpers(self):
        bundles = [htc_bundle(name="a")]
        result = run_all_systems(bundles, {"a": HTC_POLICY}, capacity=64)
        saving = result.savings_vs("DawningCloud", "DCS")
        assert -2.0 < saving < 1.0
        assert result.peak_ratio("DCS", "DCS") == pytest.approx(1.0)

    def test_provider_lookup(self):
        bundles = [htc_bundle(name="a")]
        result = run_all_systems(bundles, {"a": HTC_POLICY}, capacity=64)
        assert result.provider("DRP", "a").system == "DRP"
        with pytest.raises(KeyError):
            result.provider("DRP", "nope")
