"""Tests for generic workflow generators and trace rescaling."""

import networkx as nx
import pytest

from repro.workloads.scaling import (
    normalize_to_single_cpu,
    scale_load,
    scale_sizes,
    transform_runtimes,
)
from repro.workloads.workflowgen import bag_of_tasks, chain, fork_join, layered_random
from tests.conftest import make_job, make_trace


class TestBagOfTasks:
    def test_count_and_independence(self):
        wf = bag_of_tasks(20, seed=0)
        assert len(wf.tasks) == 20
        assert all(not t.dependencies for t in wf.tasks)
        assert wf.max_width() == 20

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            bag_of_tasks(0)


class TestChain:
    def test_strictly_sequential(self):
        wf = chain(6, seed=0)
        assert wf.level_widths() == [1] * 6
        assert wf.critical_path_length() == pytest.approx(wf.total_work())


class TestForkJoin:
    def test_shape(self):
        wf = fork_join(8, seed=0)
        assert wf.level_widths() == [1, 8, 1]
        join = wf.task(10)
        assert len(join.dependencies) == 8


class TestLayeredRandom:
    def test_layer_widths_respected(self):
        wf = layered_random([3, 5, 2], seed=1)
        assert wf.level_widths() == [3, 5, 2]

    def test_acyclic(self):
        wf = layered_random([4, 4, 4, 4], seed=2)
        assert nx.is_directed_acyclic_graph(wf.graph)

    def test_every_non_entry_task_has_dependency(self):
        wf = layered_random([2, 6, 6], seed=3)
        entry = set(wf.levels()[0])
        for t in wf.tasks:
            if t.job_id not in entry:
                assert t.dependencies

    def test_bad_widths_rejected(self):
        with pytest.raises(ValueError):
            layered_random([])
        with pytest.raises(ValueError):
            layered_random([3, 0])


class TestScaling:
    def test_scale_sizes_doubles(self, small_trace):
        scaled = scale_sizes(small_trace, 2.0)
        assert scaled.machine_nodes == 32
        for orig, new in zip(small_trace, scaled):
            assert new.size == orig.size * 2

    def test_normalize_to_single_cpu_is_integer_scale(self, small_trace):
        norm = normalize_to_single_cpu(small_trace, cpus_per_node=8)
        assert norm.machine_nodes == 128
        assert norm.total_work == pytest.approx(small_trace.total_work * 8)

    def test_scale_sizes_never_below_one_node(self):
        trace = make_trace([make_job(1, size=1)], nodes=16)
        scaled = scale_sizes(trace, 0.1)
        assert scaled[0].size == 1

    def test_scale_load_compresses_arrivals(self, small_trace):
        fast = scale_load(small_trace, 2.0)
        for orig, new in zip(small_trace, fast):
            assert new.submit_time == pytest.approx(orig.submit_time / 2)

    def test_scale_load_drops_jobs_past_window(self):
        trace = make_trace([make_job(1, submit=3600.0)], duration=4000.0)
        slowed = scale_load(trace, 0.5)  # arrival stretches to 7200 > 4000
        assert len(slowed) == 0

    def test_transform_runtimes(self, small_trace):
        doubled = transform_runtimes(small_trace, lambda r: r * 2)
        assert doubled.total_work == pytest.approx(small_trace.total_work * 2)

    def test_transform_rejects_negative(self, small_trace):
        with pytest.raises(ValueError):
            transform_runtimes(small_trace, lambda r: -r)

    def test_invalid_factors(self, small_trace):
        with pytest.raises(ValueError):
            scale_sizes(small_trace, 0)
        with pytest.raises(ValueError):
            scale_load(small_trace, -1)
        with pytest.raises(ValueError):
            normalize_to_single_cpu(small_trace, 0)
