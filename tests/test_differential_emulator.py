"""Differential test harness: the engine-driven simulator against
independent reference executors.

The golden pins catch *that* a number drifted; they cannot localize
*where*.  This harness runs identical traces through the
:class:`~repro.systems.emulator.JobEmulator` → engine → server/runner
stack and through deliberately independent reimplementations (closed
forms and a grid-stepped replay that shares no code with the engine),
then compares **per-job completion times** and **invoice totals**.  A
scheduling or billing drift shows up here as the first divergent job,
not as an opaque golden mismatch.

Reference executors:

* DRP/HTC — the no-queue closed form: ``start = submit``,
  ``finish = submit + runtime``; invoice =
  :func:`repro.metrics.accounting.drp_htc_consumption_node_hours`;
* fixed systems — a grid replay of the scan loop: dispatch happens only
  at multiples of the scan interval, first-fit in arrival order, free
  nodes tracked from exact completion instants.  Runtimes are chosen off
  the scan grid (general position), where the server's idle-gap
  fast-forward is provably exact;
* failure timelines — a hand-computed kill/resume schedule under the
  trace-driven model (in ``test_reliability.py``; here the requeue path
  is cross-checked against the reference replay extended with outages).

Tolerances: completion times are exact (the same float arithmetic must
fall out of both executors); invoices compare at 1e-9 relative.
"""

from __future__ import annotations

import pytest

from repro.cluster.lease import HOUR
from repro.metrics.accounting import drp_htc_consumption_node_hours
from repro.simkit.rng import RandomStreams
from repro.systems.base import WorkloadBundle
from repro.systems.drp import _DrpHtcRun
from repro.systems.emulator import JobEmulator
from repro.simkit.engine import SimulationEngine
from repro.workloads.job import Job, Trace, hour_ceil


def build_trace(seed: int = 0, n_jobs: int = 60, nodes: int = 24) -> Trace:
    """A mixed trace with continuous (off-grid) submit/runtimes."""
    rng = RandomStreams(seed).stream("differential")
    jobs = []
    t = 0.0
    for i in range(1, n_jobs + 1):
        t += float(rng.exponential(180.0))
        jobs.append(
            Job(
                job_id=i,
                submit_time=round(t, 3),
                size=int(rng.integers(1, nodes // 2 + 1)),
                runtime=round(float(rng.uniform(30.0, 4000.0)), 3),
                user_id=int(rng.integers(0, 5)),
            )
        )
    return Trace("diff", jobs, machine_nodes=nodes, duration=8 * HOUR)


# --------------------------------------------------------------------- #
# reference executor 1: DRP closed form
# --------------------------------------------------------------------- #
class TestDrpDifferential:
    def test_per_job_completions_match_closed_form(self):
        trace = build_trace()
        engine = SimulationEngine()
        run = _DrpHtcRun(engine, "diff", capacity=1_000_000)
        JobEmulator(engine).submit_trace(trace.copy(), run.submit)
        engine.run(until=float(trace.duration))
        assert len(run.completed) == len(trace)
        for job in run.completed:
            assert job.start_time == job.submit_time, (
                f"job {job.job_id}: DRP must start instantly"
            )
            assert job.finish_time == job.submit_time + job.runtime, (
                f"job {job.job_id}: completion drifted from submit+runtime"
            )

    def test_invoice_matches_oracle(self):
        trace = build_trace()
        engine = SimulationEngine()
        run = _DrpHtcRun(engine, "diff", capacity=1_000_000)
        JobEmulator(engine).submit_trace(trace.copy(), run.submit)
        engine.run(until=float(trace.duration))
        run.provision.shutdown_client("diff", engine.now)
        simulated = run.provision.consumption_node_hours("diff")
        oracle = drp_htc_consumption_node_hours(trace)
        assert simulated == pytest.approx(oracle, rel=1e-9)


# --------------------------------------------------------------------- #
# reference executor 2: grid replay of the fixed system's scan loop
# --------------------------------------------------------------------- #
def reference_fixed_replay(
    trace: Trace, nodes: int, scan_s: float = 60.0, horizon: float = None
) -> dict[int, tuple[float, float]]:
    """An independent replay of DCS/SSP: first-fit at scan instants.

    No engine, no heap, no timers: a flat loop over the scan grid.
    Dispatch only happens at ``t = k * scan_s``; a job occupies its
    nodes from dispatch to ``start + runtime`` exactly.  Returns
    ``{job_id: (start, finish)}`` for jobs started within the horizon.
    """
    horizon = float(trace.duration if horizon is None else horizon)
    pending = sorted(trace.jobs, key=lambda j: (j.submit_time, j.job_id))
    queue: list[Job] = []
    running: list[tuple[float, Job]] = []  # (finish, job)
    out: dict[int, tuple[float, float]] = {}
    k = 1
    while k * scan_s <= horizon:
        t = k * scan_s
        # arrivals since the previous scan enter the queue in order
        while pending and pending[0].submit_time <= t:
            queue.append(pending.pop(0))
        # completions strictly before (or at) this instant free their nodes
        running = [(f, j) for f, j in running if f > t]
        free = nodes - sum(j.size for _, j in running)
        # first-fit in arrival order, greedy until nothing fits
        picked = []
        for job in queue:
            if job.size <= free:
                picked.append(job)
                free -= job.size
            if free <= 0:
                break
        for job in picked:
            queue.remove(job)
            finish = t + job.runtime
            running.append((finish, job))
            out[job.job_id] = (t, finish)
        k += 1
    return out


class TestFixedDifferential:
    def test_per_job_start_and_finish_match_reference(self):
        from repro.systems.fixed import run_dcs

        trace = build_trace()
        nodes = trace.machine_nodes
        reference = reference_fixed_replay(trace, nodes)

        # engine-driven run (through the public runner; per-job state is
        # read back off the materialized trace copy the runner executed)
        from repro.core.servers import REServer
        from repro.scheduling.firstfit import FirstFitScheduler

        engine = SimulationEngine()
        server = REServer(engine, "diff", FirstFitScheduler(), 60.0)
        server.add_nodes(nodes)
        sim_trace = trace.copy()
        JobEmulator(engine).submit_trace(sim_trace, server.submit_job)
        engine.run(until=float(trace.duration))

        simulated = {
            j.job_id: (j.start_time, j.finish_time) for j in server.completed
        }
        started_ref = {
            jid: sf for jid, sf in reference.items()
            if sf[1] <= trace.duration
        }
        assert set(simulated) == set(started_ref), (
            "the two executors completed different job sets"
        )
        for jid in sorted(simulated):
            assert simulated[jid] == pytest.approx(started_ref[jid]), (
                f"job {jid}: engine {simulated[jid]} != "
                f"reference {started_ref[jid]}"
            )
        # and the public runner agrees on the aggregate
        bundle = WorkloadBundle.from_trace("diff", trace)
        metrics = run_dcs(bundle)
        assert metrics.completed_jobs == len(simulated)

    def test_ssp_invoice_matches_closed_form(self):
        from repro.systems.fixed import run_ssp

        trace = build_trace()
        bundle = WorkloadBundle.from_trace("diff", trace)
        metrics = run_ssp(bundle)
        # one block of machine_nodes for the whole period, per-started-hour
        expected = trace.machine_nodes * hour_ceil(trace.duration)
        assert metrics.resource_consumption == pytest.approx(
            expected, rel=1e-9
        )

    def test_divergence_is_localized(self):
        """The harness names the first drifting job, not just a total.

        Run the reference at a *wrong* scan interval and assert the
        mismatch is detected per job — the property that makes this
        harness diagnostic where the golden pins are not.
        """
        trace = build_trace()
        nodes = trace.machine_nodes
        good = reference_fixed_replay(trace, nodes, scan_s=60.0)
        skewed = reference_fixed_replay(trace, nodes, scan_s=120.0)
        assert any(
            good.get(jid) != skewed.get(jid) for jid in good
        ), "a skewed cadence must move at least one dispatch"


# --------------------------------------------------------------------- #
# the requeue path against the reference replay extended with outages
# --------------------------------------------------------------------- #
class TestFailureDifferential:
    def test_single_outage_timeline_matches_hand_replay(self):
        """One job, one outage: both executors agree on the full timeline.

        Reference (by hand): 2-wide job submitted at t=0 dispatches at
        the t=60 scan on a 2-node machine; the slot-0 outage at t=500
        kills it (790 s of work lost, no checkpoints), one node is down
        until t=1400; the job (size 2) cannot redispatch until repair,
        so it starts at the first scan instant ≥ 1400 — t=1440 — and
        completes at 1440 + 1000.
        """
        from repro.core.servers import REServer
        from repro.reliability import NodeFailureInjector, TraceDrivenFailures
        from repro.scheduling.firstfit import FirstFitScheduler

        engine = SimulationEngine()
        server = REServer(engine, "diff", FirstFitScheduler(), 60.0)
        server.add_nodes(2)
        model = TraceDrivenFailures(events=((0, 500.0, 1400.0),))
        NodeFailureInjector(
            engine, server, model, RandomStreams(0), n_slots=2,
            restore="server",
        ).start()
        job = Job(job_id=1, submit_time=0.0, size=2, runtime=1000.0)
        server.submit_job(job)
        engine.run(until=4000.0)
        assert job.finish_time == pytest.approx(1440.0 + 1000.0)
        assert server.fault.stats.wasted_node_seconds == pytest.approx(2 * 440.0)

    def test_invoice_with_failures_still_matches_ledger_arithmetic(self):
        """SSP under one outage: invoice = shrunk slice + survivors + repair.

        Hand arithmetic under the per-second meter on a 4-node block
        held [0, 2h]: one node fails at 0.5 h (billed 0.5), three nodes
        run the full 2 h (billed 6), the repaired node is re-leased from
        1 h to 2 h (billed 1) — 7.5 node-hours total.
        """
        from repro.core.servers import REServer
        from repro.cluster.provision import ResourceProvisionService
        from repro.provisioning.billing import PerSecondMeter
        from repro.reliability import NodeFailureInjector, TraceDrivenFailures
        from repro.scheduling.firstfit import FirstFitScheduler

        engine = SimulationEngine()
        provision = ResourceProvisionService(
            4, meter=PerSecondMeter(min_charge_s=0.0)
        )
        server = REServer(engine, "diff", FirstFitScheduler(), 60.0)
        lease = provision.request("diff", 4, 0.0, kind="initial")
        assert lease is not None
        server.add_nodes(4)
        model = TraceDrivenFailures(events=((0, 0.5 * HOUR, 1.0 * HOUR),))
        NodeFailureInjector(
            engine, server, model, RandomStreams(0), n_slots=4,
            provision=provision, restore="server",
        ).start()
        engine.run(until=2 * HOUR)
        provision.shutdown_client("diff", engine.now)
        assert provision.consumption_node_hours("diff") == pytest.approx(
            0.5 + 3 * 2.0 + 1.0, rel=1e-9
        )
