"""The DSP (dynamic service provision) usage model.

Section 2 of the paper defines three roles and four usage models.  This
module encodes them declaratively; the comparison table is the paper's
Table 1 and is rendered by ``repro.experiments.tables.table1``.

Roles (§2.1)
------------
* **resource provider** — owns the cloud platform, offers outsourced
  resources (the Amazon of the story).
* **service provider** — the proxy of an organization; leases resources
  and offers MTC/HTC computing service to its end users.
* **end user** — a staff member who submits and manages applications.

Usage pattern (§2.2)
--------------------
1. the service provider requests a runtime environment (type of workload,
   size of resources, operating system);
2. the resource provider creates the RE;
3. the service provider manages the RE with full control;
4. end users submit/manage applications;
5. the RE automatically negotiates resources with the resource provider;
6.-8. coordinated destruction (backup, confirm, withdraw resources).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CloudRole(enum.Enum):
    RESOURCE_PROVIDER = "resource provider"
    SERVICE_PROVIDER = "service provider"
    END_USER = "end user"


class UsageModel(enum.Enum):
    DCS = "DCS"  # dedicated cluster system (traditional ownership)
    SSP = "SSP"  # static service provision (fixed-size virtual cluster)
    DRP = "DRP"  # direct resource provision (end users lease directly)
    DSP = "DSP"  # dynamic service provision (the paper's proposal)


@dataclass(frozen=True)
class ModelProperties:
    """One column of the paper's Table 1."""

    model: UsageModel
    resource_property: str  # local vs leased
    runtime_environment: str  # stereotyped / no offering / created on demand
    resource_provision: str  # fixed / manual / flexible

    def as_tuple(self) -> tuple[str, str, str, str]:
        return (
            self.model.value,
            self.resource_property,
            self.runtime_environment,
            self.resource_provision,
        )


#: Table 1: the comparison of different usage models.
MODEL_COMPARISON: tuple[ModelProperties, ...] = (
    ModelProperties(UsageModel.DCS, "local", "stereotyped", "fixed"),
    ModelProperties(UsageModel.SSP, "leased", "stereotyped", "fixed"),
    ModelProperties(UsageModel.DRP, "leased", "no offering", "manual"),
    ModelProperties(UsageModel.DSP, "leased", "created on the demand", "flexible"),
)


def distinguishing_properties(model: UsageModel) -> dict[str, bool]:
    """The two §2.3 differentiators, as predicates per model.

    * ``on_demand_re`` — can the resource provider create runtime
      environments on demand for MTC/HTC service providers?
    * ``dynamic_resize`` — can the service provider dynamically resize its
      provisioned resources?
    """
    return {
        "on_demand_re": model is UsageModel.DSP,
        "dynamic_resize": model is UsageModel.DSP,
    }
