"""DawningCloud: the assembled DSP system.

This is the library's flagship entry point.  A :class:`DawningCloud`
instance owns one resource provider (node pool + provision service + CSF)
and any number of MTC/HTC service providers, each with its own TRE and
resource-management policy.  Typical use::

    from repro.core import DawningCloud, ResourceManagementPolicy
    from repro.workloads import generate_nasa_ipsc, generate_montage

    cloud = DawningCloud(capacity=2000)
    cloud.add_htc_provider("nasa", ResourceManagementPolicy.for_htc(40, 1.2))
    cloud.add_mtc_provider("montage", ResourceManagementPolicy.for_mtc(10, 8.0))
    cloud.submit_trace("nasa", generate_nasa_ipsc())
    cloud.submit_workflow("montage", generate_montage())
    cloud.run(until=14 * 24 * 3600.0)
    print(cloud.provider_metrics("nasa"))

MTC TREs are destroyed automatically when their last workflow completes
(the service provider's §2.2 step 6-8 walk), so their leases are billed for
the workload period only; HTC TREs run until :meth:`DawningCloud.shutdown`
or the end of :meth:`DawningCloud.run`.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from repro.cluster.lease import HOUR
from repro.cluster.provision import ResourceProvisionService
from repro.cluster.setup import SetupPolicy
from repro.core.csf import CommonServiceFramework
from repro.provisioning.billing import BillingMeter
from repro.core.policies import ResourceManagementPolicy
from repro.core.tre import RuntimeEnvironmentSpec, ThinRuntimeEnvironment
from repro.metrics.results import ProviderMetrics, ResourceProviderMetrics
from repro.simkit.engine import SimulationEngine
from repro.workloads.job import Trace
from repro.workloads.workflow import Workflow


class DawningCloud:
    """One resource provider consolidating MTC and HTC service providers."""

    SYSTEM_NAME = "DawningCloud"

    def __init__(
        self,
        capacity: int = 5000,
        lease_unit_s: float = HOUR,
        setup_policy: SetupPolicy = SetupPolicy(),
        engine: Optional[SimulationEngine] = None,
        meter: Optional[BillingMeter] = None,
    ) -> None:
        self.engine = engine or SimulationEngine()
        self.provision = ResourceProvisionService(
            capacity, lease_unit=lease_unit_s, setup_policy=setup_policy,
            meter=meter,
        )
        self.csf = CommonServiceFramework(self.engine, self.provision)
        self._tres: dict[str, ThinRuntimeEnvironment] = {}
        self._workloads: dict[str, str] = {}
        self._pending_workflows: dict[str, int] = {}
        self._pending_specs: dict[str, RuntimeEnvironmentSpec] = {}
        self._destroyed_at: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # provider management
    # ------------------------------------------------------------------ #
    def add_htc_provider(
        self,
        name: str,
        policy: Optional[ResourceManagementPolicy] = None,
        create_at: float = 0.0,
        scheduler_factory=None,
    ) -> None:
        spec = RuntimeEnvironmentSpec(
            provider=name,
            kind="htc",
            policy=policy or ResourceManagementPolicy.for_htc(),
            scheduler_factory=scheduler_factory,
        )
        self._add(spec, auto_destroy=False, create_at=create_at)

    def add_mtc_provider(
        self,
        name: str,
        policy: Optional[ResourceManagementPolicy] = None,
        auto_destroy: bool = True,
        create_at: float = 0.0,
        scheduler_factory=None,
    ) -> None:
        """Register an MTC provider whose TRE is created *on demand*.

        ``create_at`` is when the service provider requests its RE — for
        consolidated runs this is the workflow submission instant, so the
        TRE (and its initial-resource lease) exists only for the workload
        period, per the DSP usage pattern (§2.2 steps 1-2).
        """
        spec = RuntimeEnvironmentSpec(
            provider=name,
            kind="mtc",
            policy=policy or ResourceManagementPolicy.for_mtc(),
            scheduler_factory=scheduler_factory,
        )
        self._add(spec, auto_destroy=auto_destroy, create_at=create_at)

    def _add(
        self, spec: RuntimeEnvironmentSpec, auto_destroy: bool, create_at: float
    ) -> None:
        name = spec.provider
        if name in self._pending_workflows:
            raise ValueError(f"provider {name!r} already registered")
        self._pending_workflows[name] = 0
        if create_at <= self.engine.now:
            self._create_tre(spec, auto_destroy)
        else:
            # priority -1: the TRE exists before same-instant submissions.
            # Bound method, not a closure: pending events must survive
            # engine snapshots, and deepcopy maps bound methods through the
            # memo while closures alias the original object graph.  The
            # spec is looked up by name at fire time (not baked into the
            # event args) so a forked branch can retarget the policy of a
            # TRE that does not exist yet.
            self._pending_specs[name] = spec
            self.engine.schedule_at(
                create_at, self._create_pending_tre, name, auto_destroy,
                priority=-1,
            )

    def _create_pending_tre(self, name: str, auto_destroy: bool) -> None:
        self._create_tre(self._pending_specs.pop(name), auto_destroy)

    def _create_tre(self, spec: RuntimeEnvironmentSpec, auto_destroy: bool) -> None:
        name = spec.provider
        tre = self.csf.create_tre(spec, dynamic=True)
        self._tres[name] = tre
        if auto_destroy and spec.kind == "mtc":
            tre.server.on_workflow_complete.append(
                partial(self._workflow_complete_hook, name)
            )

    def _workflow_complete_hook(self, name: str, workflow: Workflow) -> None:
        self._on_workflow_complete(name)

    def tre(self, name: str) -> ThinRuntimeEnvironment:
        """The provider's TRE (once created)."""
        return self._tres[name]

    def destroy_provider(self, name: str) -> None:
        if name not in self._tres:
            raise KeyError(f"unknown provider {name!r}")
        self._destroyed_at[name] = self.engine.now
        self.csf.destroy_tre(name)

    def _on_workflow_complete(self, name: str) -> None:
        self._pending_workflows[name] -= 1
        if self._pending_workflows[name] <= 0 and name not in self._destroyed_at:
            self.destroy_provider(name)

    # ------------------------------------------------------------------ #
    # workload injection (the paper's job emulator)
    # ------------------------------------------------------------------ #
    def submit_trace(self, provider: str, trace: Trace) -> None:
        """Schedule every job of an HTC trace for submission (bulk-loaded)."""
        self._workloads[provider] = trace.name
        tre = self._tres.get(provider)
        if tre is not None:
            # TRE already exists (standalone runs): bind the server's
            # submit directly, sparing one indirection per arrival event.
            sink = tre.server.submit_job
            items = [(job.submit_time, sink, (job,)) for job in trace]
        else:
            items = [
                (job.submit_time, self._submit_job, (provider, job))
                for job in trace
            ]
        self.engine.schedule_batch(items)

    def _submit_job(self, provider: str, job) -> None:
        self._tres[provider].server.submit_job(job)

    def submit_workflow(self, provider: str, workflow: Workflow) -> None:
        """Schedule an MTC workflow for submission at its submit time."""
        self._workloads[provider] = workflow.name
        self._pending_workflows[provider] += 1
        self.engine.schedule_at(
            workflow.submit_time, self._submit_workflow, provider, workflow
        )

    def _submit_workflow(self, provider: str, workflow: Workflow) -> None:
        self._tres[provider].server.submit_workflow(workflow)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, until: Optional[float] = None) -> float:
        return self.engine.run(until=until)

    def shutdown(self, at: Optional[float] = None) -> None:
        """Destroy every remaining TRE (end of the evaluation horizon)."""
        for name in list(self._tres):
            if name not in self._destroyed_at:
                self.destroy_provider(name)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def provider_metrics(
        self, name: str, horizon: Optional[float] = None
    ) -> ProviderMetrics:
        """Metrics for one service provider (a Tables 2-4 row).

        Call after the run finished and the TRE was destroyed/shut down so
        every lease is billed.
        """
        tre = self._tres[name]
        server = tre.server
        horizon = horizon if horizon is not None else self.engine.now
        makespan = server.makespan() if tre.spec.kind == "mtc" else None
        tasks_per_second = None
        if tre.spec.kind == "mtc" and makespan and makespan > 0:
            tasks_per_second = server.completed_count / makespan
        return ProviderMetrics(
            provider=name,
            system=self.SYSTEM_NAME,
            workload=self._workloads.get(name, "?"),
            resource_consumption=self.provision.consumption_node_hours(name),
            completed_jobs=server.completed_by(horizon),
            submitted_jobs=server.submitted_jobs,
            tasks_per_second=tasks_per_second,
            makespan_s=makespan,
            adjusted_nodes=self.provision.adjusted_node_count(name),
            peak_nodes=server.usage.peak(horizon),
            usage=server.usage,
        )

    def resource_provider_metrics(
        self, horizon: Optional[float] = None
    ) -> ResourceProviderMetrics:
        """The resource provider's aggregate (Figures 12-14)."""
        horizon = horizon if horizon is not None else self.engine.now
        providers = [self.provider_metrics(name, horizon) for name in self._tres]
        return ResourceProviderMetrics.from_providers(
            self.SYSTEM_NAME, providers, horizon
        )
