"""Runtime-environment servers.

A :class:`REServer` is the paper's "HTC server"/"MTC server": it accepts
submissions, keeps the job queue, dispatches jobs onto the nodes its TRE
currently owns, and tracks completion metrics.  Resource *resizing* is not
its business — that is attached separately by
:class:`repro.core.negotiation.DynamicResourceManager` (DawningCloud) or
fixed once at startup (DCS/SSP), which is exactly the paper's separation
between the server and the resource provision service.

Dispatching happens inside the periodic scan (per minute for HTC, per
three seconds for MTC, §3.2.2) — the cadence at which the emulated servers
load jobs — and at job-completion instants for workflow tasks' readiness
bookkeeping.

Idle-gap fast-forward: two-week traces contain long quiet stretches in
which every scan is a provable no-op (nothing queued, nothing to resize),
yet the scan timer used to wake the engine 60×/hour through all of them.
The server now *suspends* its scan timer after a scan that did nothing and
re-arms it — on the same grid instants, see
:class:`~repro.simkit.timers.PeriodicTimer` — as soon as its observable
state changes (a submission, a completion, a resource grant/withdrawal).
Suspension is gated so results stay bit-identical: it requires every
attached resize hook to be quiescence-safe (pure and inert at zero demand;
stateful policies such as the EWMA predictor clear
:attr:`REServer.idle_scan_suspend`), and scans with a non-empty queue are
only skipped when the scheduler declares itself time-independent
(backfilling policies re-evaluate reservations against the clock, so they
keep their cadence).

Scope of the guarantee: exact for workloads whose event times are in
general position (every built-in generator draws continuous runtimes).
Integer-runtime traces (real SWF replays) can produce the one residual
corner — two completions at the same grid instant whose start times
straddle the previous instant (see :meth:`REServer._finish`) — where
dispatch may shift by one scan interval relative to the un-suspended
execution.  Replays that need exactness under that tie pattern can set
``server.idle_scan_suspend = False`` to keep the full cadence.

The server counts *ready* tasks only in its queue: the MTC server parses
the workflow and releases a task to the scheduler once its dependencies
completed, so "jobs in queue" (the policy's demand input) are tasks that
could run now, matching §3.1.1's description of dependency-driven job flow.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.metrics.timeseries import UsageRecorder
from repro.scheduling.base import RunningJob, Scheduler
from repro.scheduling.queue import JobQueue
from repro.simkit.engine import SimulationEngine
from repro.simkit.events import Event
from repro.simkit.timers import PeriodicTimer
from repro.workloads.job import Job, JobState
from repro.workloads.workflow import Workflow

if TYPE_CHECKING:  # pragma: no cover - reliability is an optional layer
    from repro.reliability.checkpoint import CheckpointPolicy
    from repro.reliability.stats import ReliabilityStats


class FaultToleranceState:
    """Per-server bookkeeping that exists only when failures are modelled.

    The no-failure fast path never allocates one of these: ``REServer``
    keeps a single ``self._fault is None`` check on its job start/finish
    paths (asserted in ``benchmarks/perf_smoke.py``), so runs without a
    failure model execute exactly the pre-reliability event sequence.

    Kill/requeue/waste counters live on one shared
    :class:`~repro.reliability.stats.ReliabilityStats` (the injector
    passes its own), so the server-attached and DRP accounting paths use
    the same primitives and cannot drift.
    """

    __slots__ = ("checkpoint", "stats", "remaining", "finish_events")

    def __init__(
        self,
        checkpoint: Optional["CheckpointPolicy"] = None,
        stats: Optional["ReliabilityStats"] = None,
    ) -> None:
        if stats is None:
            from repro.reliability.stats import ReliabilityStats

            stats = ReliabilityStats()
        self.checkpoint = checkpoint
        self.stats = stats
        #: job_id -> remaining useful work (absent = never interrupted)
        self.remaining: dict[int, float] = {}
        #: job_id -> the pending completion event (cancellable on kill)
        self.finish_events: dict[int, Event] = {}


class REServer:
    """Queue + dispatch engine for one runtime environment.

    Parameters
    ----------
    engine:
        Shared simulation engine.
    name:
        Client name used in leases/metrics (the service provider).
    scheduler:
        Scheduling policy (first-fit for HTC, FCFS for MTC per §4.4).
    scan_interval_s:
        Dispatch/scan cadence. The attached resource manager (if any)
        piggybacks its resize decision on the same scan, mirroring the
        paper's server loop.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        scheduler: Scheduler,
        scan_interval_s: float,
    ) -> None:
        self.engine = engine
        self.name = name
        self.scheduler = scheduler
        self.queue = JobQueue()
        self.running: dict[int, RunningJob] = {}
        self.usage = UsageRecorder(name)
        self._owned = 0
        self.used = 0
        self.submitted_jobs = 0
        self.completed: list[Job] = []
        self._workflows: list[Workflow] = []
        self._wf_of_task: dict[int, Workflow] = {}
        #: called at every scan, before dispatch (resize hook); a truthy
        #: return value marks the scan as having *acted* (issued a request)
        self.pre_dispatch_hooks: list[Callable[[], object]] = []
        #: called when a workflow finishes (TRE destruction hook)
        self.on_workflow_complete: list[Callable[[Workflow], None]] = []
        #: called whenever ``idle`` grows (a grant, a completion, a kill) —
        #: the wake signal for consumers with their own suspended cadence
        #: (the hourly release checks)
        self.idle_increase_hooks: list[Callable[[], None]] = []
        #: idle-gap fast-forward master switch: hooks that are not
        #: quiescence-safe (stateful policies) clear this at attach time
        self.idle_scan_suspend = True
        #: fault-tolerance bookkeeping; None = failure machinery fully off
        self._fault: Optional[FaultToleranceState] = None
        self._sched_time_independent = bool(
            getattr(scheduler, "time_independent", False)
        )
        self._scan_timer = PeriodicTimer(engine, scan_interval_s, self._scan)
        self._scan_timer.start()
        self._stopped = False

    # ------------------------------------------------------------------ #
    # resources
    # ------------------------------------------------------------------ #
    @property
    def owned(self) -> int:
        """Nodes currently owned by this runtime environment."""
        return self._owned

    @property
    def idle(self) -> int:
        return self._owned - self.used

    def add_nodes(self, n: int) -> None:
        """Grow the owned pool by ``n`` (grant arrived)."""
        if n <= 0:
            raise ValueError("must add a positive number of nodes")
        self._owned += n
        self.usage.record(self.engine.now, n)
        self._wake_scan()
        for hook in self.idle_increase_hooks:
            hook()

    def remove_nodes(self, n: int) -> None:
        """Shrink the owned pool by ``n`` idle nodes."""
        if n <= 0:
            raise ValueError("must remove a positive number of nodes")
        if n > self.idle:
            raise ValueError(
                f"{self.name}: cannot remove {n} nodes, only {self.idle} idle"
            )
        self._owned -= n
        self.usage.record(self.engine.now, -n)
        self._wake_scan()

    # ------------------------------------------------------------------ #
    # fault tolerance (active only when a failure model is configured)
    # ------------------------------------------------------------------ #
    @property
    def fault(self) -> Optional[FaultToleranceState]:
        """The fault-tolerance state, or None on the no-failure fast path."""
        return self._fault

    def enable_fault_tolerance(
        self,
        checkpoint: Optional["CheckpointPolicy"] = None,
        stats: Optional["ReliabilityStats"] = None,
    ) -> FaultToleranceState:
        """Switch on kill/requeue (and optionally checkpoint-restart).

        Called once by the failure injector before the run starts; from
        here on job completions carry cancellable events so a node
        failure can preempt them.
        """
        if self._fault is None:
            self._fault = FaultToleranceState(checkpoint, stats)
        return self._fault

    def fail_nodes(self, n: int) -> None:
        """Lose ``n`` owned nodes to failures (they must be idle).

        The injector kills victims first (:meth:`kill_running`), so by
        the time the node count drops the failed nodes carry no work.
        """
        if n <= 0:
            raise ValueError("must fail a positive number of nodes")
        if n > self.idle:
            raise RuntimeError(
                f"{self.name}: cannot fail {n} nodes, only {self.idle} idle "
                f"(kill the victims first)"
            )
        self._owned -= n
        self.usage.record(self.engine.now, -n)

    def kill_running(self, job: Job) -> tuple[float, float]:
        """A node failure kills ``job``: cancel, account, requeue.

        The job's progress collapses to its last finished checkpoint
        (everything without a checkpoint policy), it re-enters the queue
        at the tail, and a later scan restarts it on the surviving
        nodes.  Returns ``(elapsed_wall_s, recovered_work_s)``.
        """
        from repro.reliability.checkpoint import collapse_progress

        fault = self._fault
        if fault is None:
            raise RuntimeError(
                f"{self.name}: fault tolerance not enabled; cannot kill jobs"
            )
        if job.job_id not in self.running:
            raise KeyError(f"job {job.job_id} is not running on {self.name}")
        del self.running[job.job_id]
        self.engine.cancel(fault.finish_events.pop(job.job_id))
        self.used -= job.size
        now = self.engine.now
        elapsed = now - (job.start_time or 0.0)
        before = fault.remaining.get(job.job_id, job.runtime)
        after, recovered, wasted_wall = collapse_progress(
            fault.checkpoint, before, elapsed
        )
        fault.remaining[job.job_id] = after
        fault.stats.record_kill(job.size, recovered, wasted_wall)
        job.mark_requeued(now)
        self.queue.push(job)
        self._wake_scan()
        for hook in self.idle_increase_hooks:
            hook()
        return elapsed, recovered

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit_job(self, job: Job) -> None:
        """HTC entry point: one independent batch job."""
        if self._stopped:
            return
        self.submitted_jobs += 1
        job.mark_queued(self.engine.now)
        self.queue.push(job)
        self._wake_scan()

    def submit_workflow(self, workflow: Workflow) -> None:
        """MTC entry point: parse the workflow, release ready tasks.

        Mirrors §3.1.2: "the MTC server needs to parse the workflow
        description model ... and then submit a set of jobs with
        dependencies to the MTC scheduler".
        """
        if self._stopped:
            return
        self._workflows.append(workflow)
        for task in workflow.tasks:
            self._wf_of_task[task.job_id] = workflow
        self.submitted_jobs += len(workflow.tasks)
        for task in workflow.ready_tasks():
            task.mark_queued(self.engine.now)
            self.queue.push(task)
        self._wake_scan()

    # ------------------------------------------------------------------ #
    # scan loop (dispatch cadence)
    # ------------------------------------------------------------------ #
    def _scan(self) -> None:
        # Policy first, then dispatch: the resize rule sees the queue as it
        # accumulated since the last scan and a granted request is used in
        # the same scan.  (This order reproduces the paper's Montage story:
        # at the first scan the 166 ready projections are all still queued,
        # so DR1 = 166 - B and the TRE "adjusts the resources size of the RE
        # to the configurations of the RE in the DCS/SSP system", §4.5.2.)
        acted = False
        for hook in self.pre_dispatch_hooks:
            if hook():
                acted = True
        started = self.dispatch()
        if not self.idle_scan_suspend:
            return
        # Fast-forward whenever the *next* scan is provably a no-op given
        # frozen state: an empty queue makes it one outright (quiescence-
        # safe hooks are inert at zero demand, dispatch has nothing to
        # pick), and a non-empty queue does too when this scan changed
        # nothing and the scheduler's decision cannot move with the clock.
        # Any submission, completion or resource change re-arms the grid.
        if not self.queue._jobs:
            self._scan_timer.suspend()
        elif not acted and not started and self._sched_time_independent:
            self._scan_timer.suspend()

    def _wake_scan(self, include_now: bool = True) -> None:
        """Observable state changed: resume the scan cadence if idling.

        With an empty queue a scan stays a no-op (quiescence-safe hooks are
        inert at zero demand), so only a non-empty queue needs the wakeup.
        ``include_now`` follows :meth:`PeriodicTimer.resume`: wakers whose
        events pre-date the would-be tick arming (arrivals, release checks)
        let a boundary tick fire at the current instant; completion events
        are scheduled after it and push to the next instant.
        """
        timer = self._scan_timer
        if timer._suspended and self.queue._jobs:
            timer.resume(include_now)

    def dispatch(self) -> int:
        """Start whatever the scheduling policy picks; returns the count."""
        queue = self.queue
        queued = queue.jobs_view
        if not queued:
            return 0
        idle = self._owned - self.used
        if idle <= 0:
            return 0  # nothing can start; spare the scheduler the scan
        if idle < queue.smallest_demand:
            # No queued job fits, so no legal scheduler can start one
            # (nothing may exceed the free width): skip the O(queue)
            # policy walk every backlogged scan would otherwise pay.
            return 0
        picked = self.scheduler.select(
            self.engine.now,
            queued,
            idle,
            self.running.values(),
        )
        for job in picked:
            self._start(job)
        return len(picked)

    def _start(self, job: Job) -> None:
        if job.size > self.idle:
            raise RuntimeError(
                f"{self.name}: scheduler over-selected (job {job.job_id} needs "
                f"{job.size}, idle {self.idle})"
            )
        self.queue.remove(job)
        self.used += job.size
        now = self.engine.now
        job.mark_running(now)
        fault = self._fault
        if fault is None:
            finish_time = now + job.runtime
            self.running[job.job_id] = RunningJob(job, finish_time)
            self.engine.schedule_at(finish_time, self._finish, job)
            return
        # fault-tolerant start: resume the remaining work (full runtime on
        # a first attempt), stretched by the checkpoint-write overhead
        work = fault.remaining.get(job.job_id, job.runtime)
        wall = (
            fault.checkpoint.segment_wall(work)
            if fault.checkpoint is not None
            else work
        )
        finish_time = now + wall
        self.running[job.job_id] = RunningJob(job, finish_time)
        fault.finish_events[job.job_id] = self.engine.schedule_at(
            finish_time, self._finish, job
        )

    def _finish(self, job: Job) -> None:
        if self._stopped:
            return
        del self.running[job.job_id]
        self.used -= job.size
        fault = self._fault
        if fault is not None:
            fault.finish_events.pop(job.job_id, None)
            # the successful segment's checkpoint writes are paid node
            # time with no application progress: count them as waste
            work = fault.remaining.pop(job.job_id, job.runtime)
            fault.stats.record_write_overhead(job.size, fault.checkpoint, work)
        job.mark_completed(self.engine.now)
        self.completed.append(job)
        workflow = self._wf_of_task.get(job.job_id)
        if workflow is not None:
            self._release_ready_tasks(workflow)
            if workflow.completed():
                for hook in list(self.on_workflow_complete):
                    hook(workflow)
        # Boundary semantics for a completion landing exactly on a grid
        # instant T: the finish event was scheduled when the job started.
        # A job started before T - interval was scheduled before the tick
        # at T would have been armed (during the tick at T - interval), so
        # in the un-suspended execution the completion runs first and the
        # scan at T must still fire (include_now).  A job started *at*
        # T - interval scheduled its finish after that arming (re-arm
        # precedes dispatch), so the scan at T ran first and must not be
        # replayed.  (Residual corner: two completions at one grid instant
        # straddling that threshold can still shift dispatch by one scan —
        # unreachable with continuous runtimes, possible only in
        # integer-runtime SWF replays.)
        started_at = job.start_time or 0.0
        self._wake_scan(
            include_now=(self.engine.now - started_at) > self._scan_timer.interval
        )
        for hook in self.idle_increase_hooks:
            hook()

    def _release_ready_tasks(self, workflow: Workflow) -> None:
        for task in workflow.ready_tasks():
            if task.state is JobState.PENDING:
                task.mark_queued(self.engine.now)
                self.queue.push(task)

    # ------------------------------------------------------------------ #
    # teardown / metrics
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Stop scanning and ignore further events (TRE destroyed)."""
        self._stopped = True
        self._scan_timer.stop()
        if self._owned:
            self.usage.record(self.engine.now, -self._owned)
            self._owned = 0
            self.used = 0

    @property
    def completed_count(self) -> int:
        return len(self.completed)

    def completed_by(self, horizon: float) -> int:
        """Jobs completed at or before ``horizon`` (the Tables 2-3 metric)."""
        return sum(1 for j in self.completed if (j.finish_time or 0.0) <= horizon)

    def makespan(self) -> Optional[float]:
        """Span from first submission to last completion (MTC metric)."""
        if not self.completed:
            return None
        start = min(j.submit_time for j in self.completed)
        end = max(j.finish_time for j in self.completed)  # type: ignore[type-var]
        return end - start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<REServer {self.name!r} owned={self._owned} used={self.used} "
            f"queued={len(self.queue)} done={len(self.completed)}>"
        )
