"""TRE lifecycle management (§3.1.3, Figure 4).

The paper's lifetime of a TRE::

    Inexistent --apply--> Planning --deploy--> Created --start--> Running
                                                                     |
    Inexistent <-------------------destroy---------------------------

The :class:`LifecycleService` validates requests, walks a TRE through the
states (with configurable deploy/start latencies to model the CSF's
deployment service and agents), and destroys it on request — prompting end
users to back up, stopping daemons, offloading packages (modelled as the
destroy latency).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.simkit.engine import SimulationEngine


class TREState(enum.Enum):
    INEXISTENT = "inexistent"
    PLANNING = "planning"
    CREATED = "created"
    RUNNING = "running"


_VALID_TRANSITIONS = {
    TREState.INEXISTENT: {TREState.PLANNING},
    TREState.PLANNING: {TREState.CREATED},
    TREState.CREATED: {TREState.RUNNING},
    TREState.RUNNING: {TREState.INEXISTENT},
}


class LifecycleError(RuntimeError):
    """Raised for invalid lifecycle operations."""


class LifecycleStateMachine:
    """Validated state holder for one TRE."""

    def __init__(self) -> None:
        self.state = TREState.INEXISTENT
        self.history: list[tuple[TREState, float]] = []

    def transition(self, target: TREState, now: float) -> None:
        if target not in _VALID_TRANSITIONS[self.state]:
            raise LifecycleError(
                f"illegal TRE transition {self.state.value} -> {target.value}"
            )
        self.state = target
        self.history.append((target, now))


class LifecycleService:
    """The CSF's lifecycle management service.

    ``deploy_latency_s`` models step 3 of §3.1.3 (downloading and deploying
    the TRE's software packages); ``start_latency_s`` models step 5
    (starting the TRE components).  Both default to zero so that the
    performance evaluation matches the paper's emulation, which strips
    these services out.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        deploy_latency_s: float = 0.0,
        start_latency_s: float = 0.0,
    ) -> None:
        if deploy_latency_s < 0 or start_latency_s < 0:
            raise ValueError("latencies must be >= 0")
        self.engine = engine
        self.deploy_latency_s = float(deploy_latency_s)
        self.start_latency_s = float(start_latency_s)

    def create(
        self,
        machine: LifecycleStateMachine,
        on_running: Optional[Callable[[], None]] = None,
    ) -> None:
        """Walk a TRE from INEXISTENT to RUNNING (steps 1-5 of §3.1.3).

        The deploy/start steps are bound methods, not closures: they sit in
        the event heap while latencies elapse, and heap-reachable callables
        must deepcopy through the snapshot memo rather than alias the
        original run.
        """
        machine.transition(TREState.PLANNING, self.engine.now)
        self.engine.schedule(self.deploy_latency_s, self._deployed, machine, on_running)

    def _deployed(
        self,
        machine: LifecycleStateMachine,
        on_running: Optional[Callable[[], None]],
    ) -> None:
        machine.transition(TREState.CREATED, self.engine.now)
        self.engine.schedule(self.start_latency_s, self._started, machine, on_running)

    def _started(
        self,
        machine: LifecycleStateMachine,
        on_running: Optional[Callable[[], None]],
    ) -> None:
        machine.transition(TREState.RUNNING, self.engine.now)
        if on_running is not None:
            on_running()

    def destroy(
        self,
        machine: LifecycleStateMachine,
        on_destroyed: Optional[Callable[[], None]] = None,
    ) -> None:
        """Steps 6-8 of §2.2: stop daemons, offload packages, withdraw."""
        if machine.state is not TREState.RUNNING:
            raise LifecycleError(
                f"can only destroy a RUNNING TRE (state: {machine.state.value})"
            )
        machine.transition(TREState.INEXISTENT, self.engine.now)
        if on_destroyed is not None:
            on_destroyed()
