"""The paper's primary contribution: the DSP model and DawningCloud.

* :mod:`repro.core.dsp` — the dynamic service provision model: roles,
  usage pattern, and the Table-1 comparison of usage models.
* :mod:`repro.core.policies` — resource management / provision policies
  (§3.2.2): initial resources ``B``, threshold ratio ``R``, DR1/DR2 rules,
  scan intervals.
* :mod:`repro.core.servers` — the TRE servers (HTC and MTC variants):
  queueing, dispatch, workflow dependency tracking.
* :mod:`repro.core.negotiation` — the dynamic resource negotiation
  mechanism between a TRE server and the resource provision service.
* :mod:`repro.core.lifecycle` / :mod:`repro.core.tre` /
  :mod:`repro.core.csf` — TRE lifecycle management and the common service
  framework (§3.1).
* :mod:`repro.core.dawningcloud` — assembles all of the above into a
  runnable DawningCloud instance.
"""

from repro.core.adaptive import (
    ChunkedHysteresisPolicy,
    DemandTrackingPolicy,
    EwmaPredictivePolicy,
    StaticPolicy,
    policy_catalog,
)
from repro.core.csf import CommonServiceFramework
from repro.core.dawningcloud import DawningCloud
from repro.core.dsp import MODEL_COMPARISON, CloudRole, UsageModel
from repro.core.lifecycle import TREState
from repro.core.negotiation import DynamicResourceManager
from repro.core.policies import ResourceManagementPolicy, ResourceProvisionPolicy
from repro.core.servers import REServer
from repro.core.tre import RuntimeEnvironmentSpec, ThinRuntimeEnvironment

__all__ = [
    "ChunkedHysteresisPolicy",
    "CloudRole",
    "DemandTrackingPolicy",
    "EwmaPredictivePolicy",
    "StaticPolicy",
    "policy_catalog",
    "CommonServiceFramework",
    "DawningCloud",
    "DynamicResourceManager",
    "MODEL_COMPARISON",
    "REServer",
    "ResourceManagementPolicy",
    "ResourceProvisionPolicy",
    "RuntimeEnvironmentSpec",
    "ThinRuntimeEnvironment",
    "TREState",
    "UsageModel",
]
