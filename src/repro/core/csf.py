"""The Common Service Framework (§3.1.2).

The CSF hosts "the common sets of functions for different runtime
environments": the resource provision service, the lifecycle management
service, the deployment service, the VM provision service and the per-node
agents.  A TRE only implements workload-specific parts.

In this reproduction the CSF is the factory through which service
providers obtain TREs: :meth:`CommonServiceFramework.create_tre` validates
the request, walks the lifecycle state machine (Planning → Created →
Running, with configurable deploy/start latencies), wires the TRE server to
the shared resource provision service, and hands back a running
:class:`~repro.core.tre.ThinRuntimeEnvironment`.
"""

from __future__ import annotations


from repro.cluster.provision import ResourceProvisionService
from repro.cluster.vm import VMProvisionService
from repro.core.lifecycle import LifecycleService, TREState
from repro.core.negotiation import DynamicResourceManager
from repro.core.servers import REServer
from repro.core.tre import RuntimeEnvironmentSpec, ThinRuntimeEnvironment
from repro.simkit.engine import SimulationEngine


class CommonServiceFramework:
    """The resource provider's shared service layer."""

    def __init__(
        self,
        engine: SimulationEngine,
        provision: ResourceProvisionService,
        deploy_latency_s: float = 0.0,
        start_latency_s: float = 0.0,
        vm_boot_latency_s: float = 30.0,
    ) -> None:
        self.engine = engine
        self.provision = provision
        self.lifecycle = LifecycleService(engine, deploy_latency_s, start_latency_s)
        self.vm_service = VMProvisionService(engine, vm_boot_latency_s)
        self.tres: dict[str, ThinRuntimeEnvironment] = {}

    # ------------------------------------------------------------------ #
    def create_tre(
        self,
        spec: RuntimeEnvironmentSpec,
        dynamic: bool = True,
    ) -> ThinRuntimeEnvironment:
        """Create (and start) a TRE for a service provider.

        ``dynamic=False`` builds a fixed-resource TRE: the initial resources
        are still obtained through the provision service, but no resize
        policy is attached — this is how the SSP system is emulated on the
        same code path.
        """
        if spec.provider in self.tres:
            raise ValueError(f"provider {spec.provider!r} already has a TRE")
        server = REServer(
            self.engine,
            spec.provider,
            spec.default_scheduler(),
            spec.policy.scan_interval_s,
        )
        manager = DynamicResourceManager(self.engine, server, self.provision, spec.policy)
        tre = ThinRuntimeEnvironment(spec, server, manager)
        if not dynamic:
            # fixed-size RE: suppress the resize rule but keep the lease
            server.pre_dispatch_hooks.remove(manager._on_scan)

        # bound method, not a closure: with nonzero start latency the
        # callback sits in the event heap, and snapshot/restore requires
        # heap-reachable callables to deepcopy through the memo
        self.lifecycle.create(tre.lifecycle, on_running=manager.start)
        self.tres[spec.provider] = tre
        return tre

    def destroy_tre(self, provider: str) -> None:
        """Destroy a provider's TRE and withdraw its resources."""
        tre = self.tres.pop(provider, None)
        if tre is None:
            raise KeyError(f"no TRE for provider {provider!r}")
        self.lifecycle.destroy(tre.lifecycle, on_destroyed=tre.destroy)

    def running_tres(self) -> list[ThinRuntimeEnvironment]:
        return [
            t for t in self.tres.values() if t.lifecycle.state is TREState.RUNNING
        ]
