"""Resource management and provision policies (§3.2.2).

The service provider's **resource management policy** has two tuning
parameters the evaluation sweeps (Figures 9-11):

* ``initial_nodes`` (the paper's **B**) — resources granted at TRE startup
  and never reclaimed until the TRE is destroyed;
* ``threshold_ratio`` (the paper's **R**) — the *ratio of obtaining
  resources* (accumulated queue demand / currently owned resources) above
  which the server requests dynamic resources.

Rules, verbatim from §3.2.2.1 (HTC) and §3.2.2.2 (MTC):

* every ``scan_interval`` the server scans the queue;
* if ``demand/owned > R`` it requests ``DR1 = demand - owned``;
* else if the biggest queued job is wider than what it owns it requests
  ``DR2 = biggest - owned``;
* after a successful dynamic request, a once-per-hour timer checks for idle
  resources; when idle ≥ the granted amount, that amount is released;
* the HTC server scans every minute, the MTC server every three seconds
  ("MTC tasks often run over in seconds");
* the MTC demand accounting counts every queued *ready* task of the
  workflow, HTC counts every independent queued job.

The resource provider's **provision policy** (§3.2.2.3) is all-or-nothing:
grant the full request if the pool allows, otherwise reject; releases are
reclaimed passively.
"""

from __future__ import annotations

from dataclasses import dataclass

HOUR = 3600.0

#: Scan cadences from §3.2.2.1 / §3.2.2.2.
HTC_SCAN_INTERVAL_S = 60.0
MTC_SCAN_INTERVAL_S = 3.0


@dataclass(frozen=True)
class ResourceManagementPolicy:
    """The service provider's dynamic-resize policy (B, R, scan cadence)."""

    initial_nodes: int
    threshold_ratio: float
    scan_interval_s: float
    release_check_interval_s: float = HOUR

    #: The decision rule is a pure function of (demand, biggest, owned) and
    #: requests nothing at zero demand, so servers may skip provably no-op
    #: scans (idle-gap fast-forward) without changing any outcome.  Stateful
    #: policies (e.g. the EWMA predictor) must say False here.
    quiescence_safe = True

    def __post_init__(self) -> None:
        if self.initial_nodes < 1:
            raise ValueError("initial_nodes (B) must be >= 1")
        if self.threshold_ratio <= 0:
            raise ValueError("threshold_ratio (R) must be positive")
        if self.scan_interval_s <= 0:
            raise ValueError("scan_interval_s must be positive")
        if self.release_check_interval_s <= 0:
            raise ValueError("release_check_interval_s must be positive")

    # ------------------------------------------------------------------ #
    # decision rules
    # ------------------------------------------------------------------ #
    def obtain_ratio(self, queue_demand: int, owned: int) -> float:
        """The paper's *ratio of obtaining resources*."""
        if owned <= 0:
            return float("inf") if queue_demand > 0 else 0.0
        return queue_demand / owned

    def dynamic_request_size(
        self, queue_demand: int, biggest_job: int, owned: int
    ) -> int:
        """Nodes to request this scan: DR1, DR2 or 0.

        DR1 fires when the obtain ratio exceeds R; DR2 fires when the widest
        queued job cannot fit in the owned resources *and* the obtain ratio
        is still at or below R (§3.2.2.1 rule 3).
        """
        if queue_demand <= 0:
            return 0
        ratio = self.obtain_ratio(queue_demand, owned)
        if ratio > self.threshold_ratio:
            return max(queue_demand - owned, 0)  # DR1
        if biggest_job > owned:
            return biggest_job - owned  # DR2
        return 0

    # ------------------------------------------------------------------ #
    # constructors for the two TRE flavours
    # ------------------------------------------------------------------ #
    @classmethod
    def for_htc(
        cls, initial_nodes: int = 40, threshold_ratio: float = 1.5
    ) -> "ResourceManagementPolicy":
        return cls(initial_nodes, threshold_ratio, HTC_SCAN_INTERVAL_S)

    @classmethod
    def for_mtc(
        cls, initial_nodes: int = 10, threshold_ratio: float = 8.0
    ) -> "ResourceManagementPolicy":
        return cls(initial_nodes, threshold_ratio, MTC_SCAN_INTERVAL_S)


def _register_paper_policies() -> None:
    """Self-register the §3.2.2 rule under its two TRE flavours.

    ``paper-htc`` / ``paper-mtc`` differ only in defaults (scan cadence
    and the paper's chosen R), so a spec can say just
    ``{"name": "paper-htc", "params": {"initial_nodes": 40}}``.
    """
    from repro.api.registry import Param, register_component

    def factory(scan_default: float, ratio_default: float):
        def build(
            initial_nodes: int,
            threshold_ratio: float = ratio_default,
            scan_interval_s: float = scan_default,
            release_check_interval_s: float = HOUR,
        ) -> ResourceManagementPolicy:
            return ResourceManagementPolicy(
                initial_nodes=initial_nodes,
                threshold_ratio=threshold_ratio,
                scan_interval_s=scan_interval_s,
                release_check_interval_s=release_check_interval_s,
            )

        return build

    for name, scan, ratio, doc in (
        ("paper-htc", HTC_SCAN_INTERVAL_S, 1.5,
         "The paper's B/R resize rule at the HTC scan cadence (60 s)"),
        ("paper-mtc", MTC_SCAN_INTERVAL_S, 8.0,
         "The paper's B/R resize rule at the MTC scan cadence (3 s)"),
    ):
        register_component(
            "policy", name, factory(scan, ratio),
            params=(
                Param("initial_nodes"),
                Param("threshold_ratio", ratio),
                Param("scan_interval_s", scan),
                Param("release_check_interval_s", HOUR),
            ),
            description=doc,
        )


_register_paper_policies()


@dataclass(frozen=True)
class ResourceProvisionPolicy:
    """The resource provider's side (§3.2.2.3).

    ``all_or_nothing`` grants the full request or rejects; partial grants
    are an ablation knob (not the paper's behaviour).
    """

    all_or_nothing: bool = True
    passive_reclaim: bool = True
