"""Alternative resource-management policies (the paper's future work).

Section 6 closes with "we investigate the optimal resource management and
scheduling policies in the context of cloud computing".  This module
explores that space: every class here is duck-compatible with
:class:`repro.core.policies.ResourceManagementPolicy` — it exposes
``initial_nodes``, ``scan_interval_s``, ``release_check_interval_s`` and
``dynamic_request_size(queue_demand, biggest_job, owned)`` — so it drops
into :class:`repro.core.negotiation.DynamicResourceManager`,
:class:`repro.core.dawningcloud.DawningCloud` and every experiment runner
unchanged.

Policies
--------
* :class:`DemandTrackingPolicy` — requests ``demand - owned`` whenever the
  queue outgrows the owned resources, ignoring the threshold ratio.  The
  most aggressive growth rule: throughput-optimal, lease-churn-heavy.
* :class:`EwmaPredictivePolicy` — smooths the observed queue demand with an
  exponentially weighted moving average and provisions to the prediction
  (plus headroom).  Damps the burst-chasing the paper observes on the BLUE
  trace ("the resource utilization of DawningCloud fluctuates too").
* :class:`ChunkedHysteresisPolicy` — grows in fixed node chunks once the
  obtain ratio crosses the threshold.  Models providers that only lease
  whole instance groups; bounds the per-adjustment setup overhead.
* :class:`StaticPolicy` — never requests dynamic resources.  A DawningCloud
  TRE under this policy behaves like an SSP runtime environment sized at B,
  which is exactly the bridge the policy-ablation benchmark needs.

The module also ships :func:`policy_catalog`, the named set the
policy-comparison ablation sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.core.policies import (
    HTC_SCAN_INTERVAL_S,
    MTC_SCAN_INTERVAL_S,
    HOUR,
    ResourceManagementPolicy,
)


def _validate_common(initial_nodes: int, scan_interval_s: float,
                     release_check_interval_s: float) -> None:
    if initial_nodes < 1:
        raise ValueError("initial_nodes (B) must be >= 1")
    if scan_interval_s <= 0:
        raise ValueError("scan_interval_s must be positive")
    if release_check_interval_s <= 0:
        raise ValueError("release_check_interval_s must be positive")


@dataclass(frozen=True)
class DemandTrackingPolicy:
    """Provision to the queue demand every scan (no threshold ratio).

    Equivalent to the paper's rule with R → 0⁺ plus DR2 folded in: the
    request is ``max(demand, biggest_job) - owned`` whenever positive.
    """

    initial_nodes: int = 10
    scan_interval_s: float = HTC_SCAN_INTERVAL_S
    release_check_interval_s: float = HOUR
    name: str = "demand-tracking"

    #: pure rule, inert at zero demand: no-op scans may be skipped
    quiescence_safe = True

    def __post_init__(self) -> None:
        _validate_common(
            self.initial_nodes, self.scan_interval_s, self.release_check_interval_s
        )

    def dynamic_request_size(
        self, queue_demand: int, biggest_job: int, owned: int
    ) -> int:
        if queue_demand <= 0:
            return 0
        target = max(queue_demand, biggest_job)
        return max(target - owned, 0)


class EwmaPredictivePolicy:
    """Provision to a smoothed demand estimate.

    Keeps ``ewma ← alpha·demand + (1-alpha)·ewma`` across scans and
    requests ``ceil(headroom · ewma) - owned`` when the *smoothed* demand
    exceeds what the TRE owns and the instantaneous queue cannot fit (the
    widest queued job is still honoured immediately so nothing deadlocks).

    Stateful by design — one instance per TRE run.  ``reset()`` clears the
    estimate so a policy object can be reused across replays.
    """

    #: the EWMA decays on *every* scan, including zero-demand ones, so no
    #: scan is skippable: idle-gap fast-forward must stay off
    quiescence_safe = False

    def __init__(
        self,
        initial_nodes: int = 10,
        alpha: float = 0.3,
        headroom: float = 1.0,
        scan_interval_s: float = HTC_SCAN_INTERVAL_S,
        release_check_interval_s: float = HOUR,
    ) -> None:
        _validate_common(initial_nodes, scan_interval_s, release_check_interval_s)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1 (under-provisioning on "
                             "purpose would starve the widest job)")
        self.initial_nodes = int(initial_nodes)
        self.alpha = float(alpha)
        self.headroom = float(headroom)
        self.scan_interval_s = float(scan_interval_s)
        self.release_check_interval_s = float(release_check_interval_s)
        self.name = f"ewma(a={alpha:g},h={headroom:g})"
        self._ewma = 0.0

    @property
    def smoothed_demand(self) -> float:
        return self._ewma

    def reset(self) -> None:
        self._ewma = 0.0

    def dynamic_request_size(
        self, queue_demand: int, biggest_job: int, owned: int
    ) -> int:
        self._ewma = self.alpha * queue_demand + (1.0 - self.alpha) * self._ewma
        if queue_demand <= 0:
            return 0
        # never let the widest job starve, whatever the smoothing says
        if biggest_job > owned:
            return biggest_job - owned
        target = math.ceil(self.headroom * self._ewma)
        return max(target - owned, 0)


@dataclass(frozen=True)
class ChunkedHysteresisPolicy:
    """Grow in fixed chunks once the obtain ratio crosses the threshold.

    ``chunk_nodes`` models instance-group leasing: every grant and release
    moves whole chunks, so the accumulated adjustment count (Figure 14's
    metric) is bounded by ``chunk_nodes × grants`` with far fewer, larger
    grants than demand tracking produces.
    """

    initial_nodes: int = 10
    threshold_ratio: float = 1.5
    chunk_nodes: int = 16
    scan_interval_s: float = HTC_SCAN_INTERVAL_S
    release_check_interval_s: float = HOUR
    name: str = "chunked-hysteresis"

    quiescence_safe = True

    def __post_init__(self) -> None:
        _validate_common(
            self.initial_nodes, self.scan_interval_s, self.release_check_interval_s
        )
        if self.threshold_ratio <= 0:
            raise ValueError("threshold_ratio must be positive")
        if self.chunk_nodes < 1:
            raise ValueError("chunk_nodes must be >= 1")

    def dynamic_request_size(
        self, queue_demand: int, biggest_job: int, owned: int
    ) -> int:
        if queue_demand <= 0:
            return 0
        ratio = queue_demand / owned if owned > 0 else float("inf")
        shortfall = 0
        if ratio > self.threshold_ratio:
            shortfall = queue_demand - owned
        elif biggest_job > owned:
            shortfall = biggest_job - owned
        if shortfall <= 0:
            return 0
        chunks = math.ceil(shortfall / self.chunk_nodes)
        return chunks * self.chunk_nodes


@dataclass(frozen=True)
class StaticPolicy:
    """Never resize: the TRE lives on its initial resources.

    DawningCloud with a static policy *is* the SSP model on shared
    infrastructure — the policy ablation uses it to separate what dynamic
    negotiation buys from what consolidation buys.
    """

    initial_nodes: int = 128
    scan_interval_s: float = HTC_SCAN_INTERVAL_S
    release_check_interval_s: float = HOUR
    name: str = "static"

    quiescence_safe = True

    def __post_init__(self) -> None:
        _validate_common(
            self.initial_nodes, self.scan_interval_s, self.release_check_interval_s
        )

    def dynamic_request_size(
        self, queue_demand: int, biggest_job: int, owned: int
    ) -> int:
        return 0


#: Factory signature used by :func:`policy_catalog`: B → policy object.
PolicyFactory = Callable[[int], object]


def policy_catalog(kind: str = "htc") -> dict[str, PolicyFactory]:
    """Named policy factories for the policy-comparison ablation.

    Each factory takes the initial resources B and returns a fresh policy
    object (fresh because :class:`EwmaPredictivePolicy` is stateful).
    ``kind`` selects the scan cadence (per-minute HTC, per-3-s MTC).
    """
    if kind not in ("htc", "mtc"):
        raise ValueError(f"kind must be 'htc' or 'mtc', got {kind!r}")
    scan = HTC_SCAN_INTERVAL_S if kind == "htc" else MTC_SCAN_INTERVAL_S
    paper_ratio = 1.5 if kind == "htc" else 8.0

    return {
        "paper(B,R)": lambda b: ResourceManagementPolicy(
            initial_nodes=b, threshold_ratio=paper_ratio, scan_interval_s=scan
        ),
        "demand-tracking": lambda b: DemandTrackingPolicy(
            initial_nodes=b, scan_interval_s=scan
        ),
        "ewma-predictive": lambda b: EwmaPredictivePolicy(
            initial_nodes=b, alpha=0.3, headroom=1.2, scan_interval_s=scan
        ),
        "chunked-hysteresis": lambda b: ChunkedHysteresisPolicy(
            initial_nodes=b,
            threshold_ratio=paper_ratio,
            chunk_nodes=16,
            scan_interval_s=scan,
        ),
        "static": lambda b: StaticPolicy(initial_nodes=b, scan_interval_s=scan),
    }


def _register_adaptive_policies() -> None:
    """Self-register the beyond-paper resize rules as policy components."""
    from repro.api.registry import register_component

    for name, cls in (
        ("demand-tracking", DemandTrackingPolicy),
        ("ewma-predictive", EwmaPredictivePolicy),
        ("chunked-hysteresis", ChunkedHysteresisPolicy),
        ("static", StaticPolicy),
    ):
        register_component("policy", name, cls, skip_params=("self", "name"))


_register_adaptive_policies()
