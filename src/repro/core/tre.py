"""Thin runtime environments (§3.1.2).

A TRE "only implements the core functions for the specific workload": the
server, the scheduler, and (for MTC) the trigger monitor; everything else
is delegated to the CSF.  This module bundles those pieces per flavour:

* **HTC TRE** — HTC server + first-fit scheduler (+ web portal, not
  modelled beyond the submission API).
* **MTC TRE** — MTC server (workflow parsing) + FCFS scheduler + trigger
  monitor (the hook that fires when a workflow's trigger condition is met
  and drives staged execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Optional

from repro.core.lifecycle import LifecycleStateMachine
from repro.core.negotiation import DynamicResourceManager
from repro.core.policies import ResourceManagementPolicy
from repro.core.servers import REServer
from repro.scheduling.base import Scheduler
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from repro.workloads.workflow import Workflow

WorkloadKind = Literal["htc", "mtc"]


@dataclass(frozen=True)
class RuntimeEnvironmentSpec:
    """A service provider's RE request (§2.2 step 1).

    "A service provider specifies its requirement for runtime environment,
    including types of workloads: MTC or HTC, size of resources, types of
    operating system."
    """

    provider: str
    kind: WorkloadKind
    policy: ResourceManagementPolicy
    operating_system: str = "linux"
    #: optional scheduler override (a zero-arg factory, since specs are
    #: reusable and schedulers may be stateful); None = the paper's §4.4
    #: choice for the workload kind
    scheduler_factory: Optional[Callable[[], Scheduler]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("htc", "mtc"):
            raise ValueError(f"kind must be 'htc' or 'mtc', got {self.kind!r}")

    def default_scheduler(self) -> Scheduler:
        """§4.4: first-fit for HTC, FCFS for MTC (unless overridden)."""
        if self.scheduler_factory is not None:
            return self.scheduler_factory()
        return FirstFitScheduler() if self.kind == "htc" else FcfsScheduler()


class TriggerMonitor:
    """The MTC TRE's trigger monitor (§3.1.2).

    In the real system it watches databases/files and notifies the MTC
    server to drive workflow stages; in the simulation the "trigger" is the
    completion of predecessor tasks, which the server already observes, so
    the monitor just exposes a subscription point used by tests and by the
    dsp runner's TRE-destruction hook.
    """

    def __init__(self) -> None:
        self._subscribers: list[Callable[[Workflow], None]] = []
        self.notifications = 0

    def subscribe(self, fn: Callable[[Workflow], None]) -> None:
        self._subscribers.append(fn)

    def notify(self, workflow: Workflow) -> None:
        self.notifications += 1
        for fn in list(self._subscribers):
            fn(workflow)


class ThinRuntimeEnvironment:
    """One TRE: lifecycle + server + (optional) dynamic resource manager."""

    def __init__(
        self,
        spec: RuntimeEnvironmentSpec,
        server: REServer,
        manager: Optional[DynamicResourceManager] = None,
    ) -> None:
        self.spec = spec
        self.server = server
        self.manager = manager
        self.lifecycle = LifecycleStateMachine()
        self.trigger_monitor = TriggerMonitor() if spec.kind == "mtc" else None
        if self.trigger_monitor is not None:
            server.on_workflow_complete.append(self.trigger_monitor.notify)

    @property
    def name(self) -> str:
        return self.spec.provider

    def destroy(self) -> None:
        """Release resources and stop the server (§2.2 steps 6-8)."""
        if self.manager is not None:
            self.manager.shutdown()
        else:
            self.server.stop()
