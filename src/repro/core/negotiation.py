"""The dynamic resource negotiation mechanism (§3.2.1).

The negotiation logic now lives in the provisioning kernel as
:class:`repro.provisioning.policies.ConsolidatedAllocation` — it is one of
the pluggable :class:`~repro.provisioning.policies.ProvisioningPolicy`
strategies every system runner composes with.  This module keeps the
historical name: the CSF (and a fair amount of test and downstream code)
knows the service-provider side of the negotiation as the
``DynamicResourceManager``.
"""

from __future__ import annotations

from repro.provisioning.policies import ConsolidatedAllocation


class DynamicResourceManager(ConsolidatedAllocation):
    """The service-provider side of the negotiation (kernel policy alias)."""


__all__ = ["DynamicResourceManager"]
