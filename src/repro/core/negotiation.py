"""The dynamic resource negotiation mechanism (§3.2.1).

A :class:`DynamicResourceManager` connects one TRE server to the resource
provision service:

1. at startup it obtains the **initial resources** (B), which "will not be
   reclaimed by the resource provision service until the TRE is destroyed";
2. on every server scan it evaluates the resource management policy and
   sends DR1/DR2 requests for **dynamic resources**;
3. for every granted dynamic request it registers a once-per-hour timer
   that releases exactly that amount back when the TRE has that much idle
   capacity (§3.2.2.1 steps 2-3);
4. at TRE destruction it releases everything and closes the leases.

The negotiation is deliberately all-or-nothing on the provider side
(§3.2.2.3): a rejected request simply leaves the queue to drain on what the
TRE already owns, and a later scan may retry with a fresh demand estimate.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.lease import Lease
from repro.cluster.provision import ResourceProvisionService
from repro.core.policies import ResourceManagementPolicy
from repro.core.servers import REServer
from repro.simkit.engine import SimulationEngine
from repro.simkit.timers import PeriodicTimer


class DynamicResourceManager:
    """Implements the service-provider side of the negotiation."""

    def __init__(
        self,
        engine: SimulationEngine,
        server: REServer,
        provision: ResourceProvisionService,
        policy: ResourceManagementPolicy,
    ) -> None:
        self.engine = engine
        self.server = server
        self.provision = provision
        self.policy = policy
        self.initial_lease: Optional[Lease] = None
        self._release_timers: dict[int, PeriodicTimer] = {}
        self.dynamic_grants = 0
        self.dynamic_rejections = 0
        self._started = False
        server.pre_dispatch_hooks.append(self._on_scan)

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Obtain the initial resources (TRE startup)."""
        if self._started:
            raise RuntimeError("already started")
        self._started = True
        lease = self.provision.request(
            self.server.name, self.policy.initial_nodes, self.engine.now, kind="initial"
        )
        if lease is None:
            raise RuntimeError(
                f"{self.server.name}: provider could not supply the initial "
                f"{self.policy.initial_nodes} nodes"
            )
        self.initial_lease = lease
        self.server.add_nodes(lease.n_nodes)

    # ------------------------------------------------------------------ #
    def _on_scan(self) -> None:
        """Policy evaluation, run by the server just before dispatch."""
        if not self._started:
            return
        request = self.policy.dynamic_request_size(
            self.server.queue.total_demand,
            self.server.queue.biggest_demand,
            self.server.owned,
        )
        if request > 0:
            self._request_dynamic(request)

    def _request_dynamic(self, n_nodes: int) -> None:
        lease = self.provision.request(
            self.server.name, n_nodes, self.engine.now, kind="dynamic"
        )
        if lease is None:
            self.dynamic_rejections += 1
            return
        self.dynamic_grants += 1
        self.server.add_nodes(lease.n_nodes)
        timer = PeriodicTimer(
            self.engine,
            self.policy.release_check_interval_s,
            self._check_release,
            lease,
        )
        timer.start()
        self._release_timers[lease.lease_id] = timer

    def _check_release(self, lease: Lease) -> None:
        """Hourly idle check for one dynamic grant (§3.2.2.1).

        "If there are idle resources with the size equal with or more than
        the value of DR1, the server will release the resources with the
        size of the DR1 to the resource provision service."
        """
        if not lease.open:  # already force-released at shutdown
            self._drop_timer(lease)
            return
        if self.server.idle >= lease.n_nodes:
            self._drop_timer(lease)
            self.server.remove_nodes(lease.n_nodes)
            self.provision.release(lease, self.engine.now)

    def _drop_timer(self, lease: Lease) -> None:
        timer = self._release_timers.pop(lease.lease_id, None)
        if timer is not None:
            timer.stop()

    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """TRE destruction: stop timers, return every lease (§2.2 step 8)."""
        for timer in self._release_timers.values():
            timer.stop()
        self._release_timers.clear()
        self.provision.shutdown_client(self.server.name, self.engine.now)
        self.server.stop()

    @property
    def open_dynamic_nodes(self) -> int:
        initial = self.initial_lease.n_nodes if self.initial_lease else 0
        return self.provision.allocated_nodes(self.server.name) - initial
