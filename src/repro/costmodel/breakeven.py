"""Own-versus-lease break-even analysis (extending §4.5.5).

The paper's TCO comparison bills the SSP option for a *full month* of
instance hours — the always-on worst case.  But the whole point of pay-
per-use is that a service provider only pays for busy hours, so the real
question behind §4.5.5 (and behind Kondo et al.'s cost-benefit analysis,
the paper's reference [11]) is: **at what duty level does owning beat
leasing?**  This module answers it in closed form and with sweeps:

* :func:`leasing_cost_at_utilization` — monthly SSP cost when instances
  run only a ``utilization`` fraction of the month;
* :func:`breakeven_utilization` — the duty level where leasing equals
  owning (above it, buy; below it, rent);
* :func:`breakeven_price` — how cheap the cloud's $/instance-hour must get
  before leasing wins even always-on;
* :func:`reserved_crossover_hours` — monthly running hours above which a
  reserved instance undercuts on-demand;
* :func:`sensitivity_table` — TCO-ratio rows over a grid of the case
  study's uncertain inputs (price, depreciation, energy).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.costmodel.pricing import (
    HOURS_PER_MONTH,
    InstancePricing,
    ReservedInstancePricing,
)
from repro.costmodel.tco import DCSCostModel, SSPCostModel


def leasing_cost_at_utilization(ssp: SSPCostModel, utilization: float) -> float:
    """Monthly SSP cost when each instance runs ``utilization`` of the month.

    The transfer cost is load-independent in the paper's accounting (a
    monthly bound from the system log), so only instance hours scale.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError(f"utilization must be in [0, 1], got {utilization}")
    hours = HOURS_PER_MONTH * utilization
    return (
        ssp.pricing.instance_cost(ssp.n_instances, hours)
        + ssp.transfer_cost_per_month
    )


def breakeven_utilization(dcs: DCSCostModel, ssp: SSPCostModel) -> Optional[float]:
    """Duty level where leasing costs exactly what owning costs.

    Returns ``None`` when leasing is cheaper even always-on (the paper's
    BJUT case: $2,260 always-on < $3,160 owned, so there is no break-even
    below 100% and the economic answer is "always lease").
    """
    full = leasing_cost_at_utilization(ssp, 1.0)
    own = dcs.tco_per_month()
    if full <= own:
        return None
    variable = full - ssp.transfer_cost_per_month
    if variable <= 0:
        return None
    u = (own - ssp.transfer_cost_per_month) / variable
    return max(u, 0.0)


def breakeven_price(dcs: DCSCostModel, ssp: SSPCostModel) -> float:
    """$/instance-hour at which always-on leasing matches owning.

    Above this price the DCS wins for an always-busy provider; the paper's
    case solves to ≈$0.142/h against EC2's actual $0.10/h.
    """
    hours = ssp.n_instances * HOURS_PER_MONTH
    if hours == 0:
        raise ValueError("ssp configuration has no instances")
    return (dcs.tco_per_month() - ssp.transfer_cost_per_month) / hours


def reserved_crossover_hours(
    on_demand: InstancePricing, reserved: ReservedInstancePricing
) -> Optional[float]:
    """Monthly running hours above which the reservation is cheaper.

    Solves ``upfront/mo + h·rate_res = h·rate_od``.  Returns ``None`` when
    the reservation never pays off within a month (discount non-positive).
    """
    discount = on_demand.usd_per_instance_hour - reserved.usd_per_instance_hour
    if discount <= 0:
        return None
    hours = reserved.upfront_per_month / discount
    return hours if hours <= HOURS_PER_MONTH else None


@dataclass(frozen=True)
class SensitivityPoint:
    """One row of the sensitivity table."""

    parameter: str
    value: float
    dcs_tco: float
    ssp_tco: float

    @property
    def degenerate(self) -> bool:
        """True when the owning side costs nothing (or less than nothing).

        ``energy_and_space_usd_per_month`` is a signed quantity (a co-lo
        credit is representable), so a perturbed grid can drive the DCS
        TCO to or below zero — there the lease/own ratio is undefined,
        not infinite-and-comparable.
        """
        return self.dcs_tco <= 0.0

    @property
    def ssp_over_dcs(self) -> Optional[float]:
        if self.degenerate:
            return None
        return self.ssp_tco / self.dcs_tco

    def to_row(self) -> dict:
        ratio = self.ssp_over_dcs
        row = {
            "parameter": self.parameter,
            "value": self.value,
            "dcs_tco_per_month": round(self.dcs_tco),
            "ssp_tco_per_month": round(self.ssp_tco),
            "ssp_over_dcs": None if ratio is None else round(ratio, 3),
        }
        if ratio is None:
            row["note"] = "owning is free at this grid point; ratio undefined"
        return row


def sensitivity_table(
    dcs: DCSCostModel,
    ssp: SSPCostModel,
    price_factors: Sequence[float] = (0.5, 1.0, 2.0, 3.0),
    depreciation_years: Sequence[float] = (4.0, 8.0, 12.0),
    energy_factors: Sequence[float] = (0.5, 1.0, 2.0),
) -> list[SensitivityPoint]:
    """TCO under one-at-a-time perturbations of the case study's inputs.

    Each row varies exactly one parameter from the base case, so the table
    reads as three independent sensitivity curves.
    """
    points: list[SensitivityPoint] = []
    for f in price_factors:
        pricing = replace(
            ssp.pricing,
            usd_per_instance_hour=ssp.pricing.usd_per_instance_hour * f,
        )
        varied = replace(ssp, pricing=pricing)
        points.append(
            SensitivityPoint(
                "ec2_price_factor", f, dcs.tco_per_month(), varied.tco_per_month()
            )
        )
    for years in depreciation_years:
        varied_dcs = replace(dcs, depreciation_years=years)
        points.append(
            SensitivityPoint(
                "depreciation_years",
                years,
                varied_dcs.tco_per_month(),
                ssp.tco_per_month(),
            )
        )
    for f in energy_factors:
        varied_dcs = replace(
            dcs,
            energy_and_space_usd_per_month=dcs.energy_and_space_usd_per_month * f,
        )
        points.append(
            SensitivityPoint(
                "energy_factor", f, varied_dcs.tco_per_month(), ssp.tco_per_month()
            )
        )
    return points


def utilization_cost_curve(
    dcs: DCSCostModel,
    ssp: SSPCostModel,
    utilizations: Sequence[float] = (0.0, 0.2, 0.4, 0.466, 0.6, 0.762, 0.9, 1.0),
) -> list[dict]:
    """Rows of (utilization, lease cost, own cost, winner) for plotting.

    The default grid passes through the paper's two trace loads (46.6% and
    76.2%) so the table answers "should the NASA/BLUE labs own or lease?"
    directly.
    """
    own = dcs.tco_per_month()
    rows = []
    for u in utilizations:
        lease = leasing_cost_at_utilization(ssp, u)
        rows.append(
            {
                "utilization": u,
                "lease_usd_per_month": round(lease),
                "own_usd_per_month": round(own),
                "winner": "lease" if lease < own else "own",
            }
        )
    return rows


def _register_breakeven_analysis() -> None:
    """Self-register the own-vs-lease break-even surface as an analysis."""
    from repro.api.registry import register_component
    from repro.costmodel.tco import BJUT_DCS_CASE, BJUT_SSP_CASE

    def breakeven(seed: int = 0) -> dict:
        """Own-vs-lease break-even surface extending the §4.5.5 case."""
        return {
            "breakeven_utilization": breakeven_utilization(
                BJUT_DCS_CASE, BJUT_SSP_CASE
            ),
            "breakeven_price": breakeven_price(BJUT_DCS_CASE, BJUT_SSP_CASE),
            "cost_curve": utilization_cost_curve(BJUT_DCS_CASE, BJUT_SSP_CASE),
            "sensitivity": [
                p.to_row() for p in sensitivity_table(BJUT_DCS_CASE, BJUT_SSP_CASE)
            ],
        }

    register_component("analysis", "breakeven", breakeven, skip_params=("seed",))


_register_breakeven_analysis()
