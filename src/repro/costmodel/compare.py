"""DCS-vs-SSP TCO comparison (§4.5.5 and the first conclusion of §4.5.6).

"From the perspectives of service providers, comparing with the DCS
system, SSP is more cost-effective ... the TCO of the service providers in
the SSP system is less than that in the DCS system."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.tco import BJUT_DCS_CASE, BJUT_SSP_CASE, DCSCostModel, SSPCostModel


@dataclass(frozen=True)
class TCOComparison:
    """Side-by-side monthly TCO of the two fixed-size options."""

    dcs_tco_per_month: float
    ssp_tco_per_month: float

    @property
    def ssp_over_dcs(self) -> float:
        """SSP cost as a fraction of DCS cost (the paper's 71.5%)."""
        return self.ssp_tco_per_month / self.dcs_tco_per_month

    @property
    def ssp_cheaper(self) -> bool:
        return self.ssp_tco_per_month < self.dcs_tco_per_month

    def monthly_saving(self) -> float:
        return self.dcs_tco_per_month - self.ssp_tco_per_month

    def __str__(self) -> str:
        return (
            f"DCS ${self.dcs_tco_per_month:,.0f}/mo vs SSP "
            f"${self.ssp_tco_per_month:,.0f}/mo "
            f"(SSP = {self.ssp_over_dcs:.1%} of DCS)"
        )


def compare_dcs_vs_ssp(dcs: DCSCostModel, ssp: SSPCostModel) -> TCOComparison:
    return TCOComparison(
        dcs_tco_per_month=dcs.tco_per_month(),
        ssp_tco_per_month=ssp.tco_per_month(),
    )


def paper_case_study() -> TCOComparison:
    """The BJUT grid-lab case exactly as §4.5.5 computes it."""
    return compare_dcs_vs_ssp(BJUT_DCS_CASE, BJUT_SSP_CASE)


def _register_tco_analysis() -> None:
    """Self-register the §4.5.5 TCO case as an analysis component."""
    from repro.api.registry import register_component

    def tco_case(seed: int = 0) -> dict:
        """§4.5.5: total cost of ownership, BJUT grid-lab case (closed form)."""
        tco = paper_case_study()
        return {
            "dcs_tco_per_month": tco.dcs_tco_per_month,
            "ssp_tco_per_month": tco.ssp_tco_per_month,
            "ssp_over_dcs": tco.ssp_over_dcs,
        }

    register_component("analysis", "tco-case", tco_case, skip_params=("seed",))


_register_tco_analysis()
