"""From simulated node-hours to monthly dollars.

Sections 4.5.2-4.5.3 report resource consumption in node-hours; §4.5.5
prices a fixed configuration in dollars.  This module closes the loop:
it bills a simulation's :class:`~repro.metrics.results.ProviderMetrics`
with an EC2-style price list, so the Tables 2-4 comparison can be read as
"what would each provider's monthly invoice be under each usage model?" —
the number an organization's administrator actually decides on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.costmodel.pricing import EC2_2009_SMALL, InstancePricing
from repro.metrics.results import ProviderMetrics

HOUR = 3600.0
DAYS_PER_MONTH = 30.0


@dataclass(frozen=True)
class Invoice:
    """One service provider's bill for one simulated run."""

    provider: str
    system: str
    node_hours: float
    period_s: float
    usd_per_node_hour: float
    transfer_usd: float = 0.0
    #: which billing meter produced ``node_hours`` (the paper's
    #: per-started-hour meter unless a run overrode it)
    billing: str = "per-hour"

    @property
    def usage_usd(self) -> float:
        return self.node_hours * self.usd_per_node_hour

    @property
    def total_usd(self) -> float:
        return self.usage_usd + self.transfer_usd

    @property
    def monthly_usd(self) -> float:
        """The run's cost extrapolated to a 30-day month."""
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        months = self.period_s / (DAYS_PER_MONTH * 24 * HOUR)
        return self.total_usd / months

    def to_row(self) -> dict:
        return {
            "provider": self.provider,
            "system": self.system,
            "billing": self.billing,
            "node_hours": round(self.node_hours, 1),
            "usage_usd": round(self.usage_usd, 2),
            "transfer_usd": round(self.transfer_usd, 2),
            "total_usd": round(self.total_usd, 2),
            "monthly_usd": round(self.monthly_usd, 2),
        }


def bill(
    metrics: ProviderMetrics,
    period_s: float,
    pricing: InstancePricing = EC2_2009_SMALL,
    inbound_gb: float = 0.0,
    billing: str = "per-hour",
) -> Invoice:
    """Price one provider's simulated consumption.

    ``period_s`` is the workload period the consumption covers (two weeks
    for the paper's traces; the makespan for an MTC run).  ``inbound_gb``
    adds the §4.5.5 transfer charge for the same period.  ``billing``
    names the meter the run used (see
    :data:`repro.provisioning.billing.METER_FACTORIES`) so invoices from
    metered re-runs stay distinguishable; already-cost-weighted meters
    (``reserved-spot``) pair with a $1-per-weighted-node-hour pricing.
    """
    if period_s <= 0:
        raise ValueError("period_s must be positive")
    return Invoice(
        provider=metrics.provider,
        system=metrics.system,
        node_hours=metrics.resource_consumption,
        period_s=period_s,
        usd_per_node_hour=pricing.usd_per_instance_hour,
        transfer_usd=pricing.transfer_cost(inbound_gb),
        billing=billing,
    )


def billing_table(
    results: dict[str, ProviderMetrics],
    period_s: float,
    pricing: InstancePricing = EC2_2009_SMALL,
    inbound_gb: float = 0.0,
    order: Optional[Iterable[str]] = None,
) -> list[dict]:
    """Invoices for one workload across systems (a dollar-form Table 2-4)."""
    systems = list(order) if order is not None else sorted(results)
    return [
        bill(results[s], period_s, pricing, inbound_gb).to_row() for s in systems
    ]
