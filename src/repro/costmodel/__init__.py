"""Total-cost-of-ownership models (§4.5.5).

* :mod:`repro.costmodel.pricing` — EC2-style pricing plans.
* :mod:`repro.costmodel.tco` — monthly TCO calculators for the DCS
  (owned cluster) and SSP (leased virtual cluster) options.
* :mod:`repro.costmodel.compare` — the side-by-side comparison the paper
  runs for the Beijing University of Technology grid lab.
* :mod:`repro.costmodel.breakeven` — own-vs-lease break-even analysis,
  reserved-instance crossovers and sensitivity sweeps (extension).
* :mod:`repro.costmodel.billing` — prices simulated node-hours into
  monthly invoices (bridges §4.5.2's tables and §4.5.5's dollars).
"""

from repro.costmodel.billing import Invoice, bill, billing_table
from repro.costmodel.breakeven import (
    breakeven_price,
    breakeven_utilization,
    leasing_cost_at_utilization,
    reserved_crossover_hours,
    sensitivity_table,
    utilization_cost_curve,
)
from repro.costmodel.compare import TCOComparison, compare_dcs_vs_ssp, paper_case_study
from repro.costmodel.pricing import (
    EC2_2009_SMALL,
    EC2_2009_SMALL_RESERVED,
    InstancePricing,
    ReservedInstancePricing,
)
from repro.costmodel.tco import (
    DCSCostModel,
    SSPCostModel,
    BJUT_DCS_CASE,
    BJUT_SSP_CASE,
)

__all__ = [
    "BJUT_DCS_CASE",
    "BJUT_SSP_CASE",
    "DCSCostModel",
    "Invoice",
    "bill",
    "billing_table",
    "EC2_2009_SMALL",
    "EC2_2009_SMALL_RESERVED",
    "ReservedInstancePricing",
    "breakeven_price",
    "breakeven_utilization",
    "leasing_cost_at_utilization",
    "reserved_crossover_hours",
    "sensitivity_table",
    "utilization_cost_curve",
    "InstancePricing",
    "SSPCostModel",
    "TCOComparison",
    "compare_dcs_vs_ssp",
    "paper_case_study",
]
