"""Cloud pricing plans.

The paper meters the SSP option with Amazon EC2's 2009 price list: "the
price of the EC2 service is 0.1$ per instance * hour and 0.1$ per GB
inbound transfer * month" for an instance with 2 GHz CPU, 1.7 GB memory
and 140 GB disk (§4.5.5).
"""

from __future__ import annotations

from dataclasses import dataclass

HOURS_PER_MONTH = 30 * 24  # the paper bills 30-day months


@dataclass(frozen=True)
class InstancePricing:
    """Pay-per-use pricing of one instance type."""

    name: str
    usd_per_instance_hour: float
    usd_per_gb_inbound: float
    cpu_ghz: float = 0.0
    memory_gb: float = 0.0
    disk_gb: float = 0.0

    def __post_init__(self) -> None:
        if self.usd_per_instance_hour < 0 or self.usd_per_gb_inbound < 0:
            raise ValueError("prices must be >= 0")

    def instance_cost(self, n_instances: int, hours: float) -> float:
        """Cost of running ``n_instances`` for ``hours`` each."""
        if n_instances < 0 or hours < 0:
            raise ValueError("instances and hours must be >= 0")
        return n_instances * hours * self.usd_per_instance_hour

    def monthly_instance_cost(self, n_instances: int) -> float:
        """Full-month always-on cost (the paper's 30×24 accounting)."""
        return self.instance_cost(n_instances, HOURS_PER_MONTH)

    def transfer_cost(self, gb_inbound: float) -> float:
        if gb_inbound < 0:
            raise ValueError("transfer must be >= 0")
        return gb_inbound * self.usd_per_gb_inbound


#: The EC2 small instance as quoted in §4.5.5.
EC2_2009_SMALL = InstancePricing(
    name="ec2-2009-small",
    usd_per_instance_hour=0.10,
    usd_per_gb_inbound=0.10,
    cpu_ghz=2.0,
    memory_gb=1.7,
    disk_gb=140.0,
)


@dataclass(frozen=True)
class ReservedInstancePricing:
    """Reserved-capacity pricing (EC2 introduced it in 2009).

    A reservation pays ``upfront_usd`` per instance for ``term_years`` and
    a discounted ``usd_per_instance_hour`` while running.  The effective
    hourly rate therefore depends on how many hours per month the instance
    actually runs — the crossover against on-demand is what
    :func:`repro.costmodel.breakeven.reserved_crossover_hours` computes.
    """

    name: str
    upfront_usd: float
    term_years: float
    usd_per_instance_hour: float

    def __post_init__(self) -> None:
        if self.upfront_usd < 0 or self.usd_per_instance_hour < 0:
            raise ValueError("prices must be >= 0")
        if self.term_years <= 0:
            raise ValueError("term must be positive")

    @property
    def upfront_per_month(self) -> float:
        return self.upfront_usd / (self.term_years * 12.0)

    def monthly_cost(self, n_instances: int, hours_per_instance: float) -> float:
        """Amortized upfront + metered usage for one month."""
        if n_instances < 0 or hours_per_instance < 0:
            raise ValueError("instances and hours must be >= 0")
        return n_instances * (
            self.upfront_per_month + hours_per_instance * self.usd_per_instance_hour
        )

    def effective_hourly(self, hours_per_month: float) -> float:
        """All-in $/hour at a given duty level."""
        if hours_per_month <= 0:
            raise ValueError("hours_per_month must be positive")
        return self.upfront_per_month / hours_per_month + self.usd_per_instance_hour


#: EC2's 2009 1-year reserved small instance: $227.50 upfront, $0.03/h.
EC2_2009_SMALL_RESERVED = ReservedInstancePricing(
    name="ec2-2009-small-reserved-1y",
    upfront_usd=227.50,
    term_years=1.0,
    usd_per_instance_hour=0.03,
)


def two_tier_rates(
    on_demand: InstancePricing = EC2_2009_SMALL,
    reserved: "ReservedInstancePricing" = None,  # type: ignore[assignment]
    hours_per_month: float = HOURS_PER_MONTH,
) -> tuple[float, float]:
    """``(reserved_rate, spot_rate)`` multipliers for a two-tier meter.

    The reserved multiplier is the reservation's all-in effective hourly
    rate at the given duty level over the on-demand price; the spot/
    on-demand multiplier is 1 by construction.  With the 2009 EC2 list at
    full duty this is ≈0.56 — the discount a service provider's steady
    base load earns, which the
    :class:`repro.provisioning.billing.TwoTierMeter` applies to the
    reserved share of each lease.
    """
    if reserved is None:
        reserved = EC2_2009_SMALL_RESERVED
    if on_demand.usd_per_instance_hour <= 0:
        raise ValueError("on-demand price must be positive")
    return (
        reserved.effective_hourly(hours_per_month)
        / on_demand.usd_per_instance_hour,
        1.0,
    )


def reserved_split_rates(
    on_demand: InstancePricing = EC2_2009_SMALL,
    reserved: "ReservedInstancePricing" = None,  # type: ignore[assignment]
    hours_per_month: float = HOURS_PER_MONTH,
) -> tuple[float, float]:
    """``(usage_rate, standing_rate)`` for an explicit reservation model.

    Unlike :func:`two_tier_rates` (which folds the upfront into one
    full-duty effective rate), this splits the reservation into what a
    capacity planner actually pays: ``usage_rate`` × the on-demand price
    per node-hour *while running* (EC2 2009: 0.3), plus ``standing_rate``
    × the on-demand price per reserved node-hour *of wall-clock*, running
    or idle (the amortized upfront, ≈0.26).  The ``drp-spot-market``
    scenario charges both, which is what makes over-reserving visibly
    wasteful.
    """
    if reserved is None:
        reserved = EC2_2009_SMALL_RESERVED
    if on_demand.usd_per_instance_hour <= 0:
        raise ValueError("on-demand price must be positive")
    od = on_demand.usd_per_instance_hour
    return (
        reserved.usd_per_instance_hour / od,
        reserved.upfront_per_month / hours_per_month / od,
    )
