"""Monthly TCO calculators for the DCS and SSP options (§4.5.5).

The paper's formulas::

    TCO_dcs = (CapEx depreciation) + OpEx                       (1)
    TCO_ssp = (total instance cost) + (inbound transfer cost)   (2)

and its real case — the grid lab of Beijing University of Technology
(deployed 2006): 15 nodes of 2×2 GHz CPU / 4 GB / 160 GB; CapEx $120,000
depreciated over 8 years; $30,000 total maintenance over the same cycle;
$1,600/month energy and space — giving $3,160/month.  The matched SSP
configuration is 30 EC2 instances always on plus <1000 GB/month inbound:
$2,160 + $100 = $2,260/month, i.e. 71.5% of the DCS figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.pricing import EC2_2009_SMALL, InstancePricing

MONTHS_PER_YEAR = 12


@dataclass(frozen=True)
class DCSCostModel:
    """Owned-cluster cost (equation 1)."""

    capex_usd: float
    depreciation_years: float
    maintenance_total_usd: float  # spread over the depreciation cycle
    energy_and_space_usd_per_month: float
    n_nodes: int = 0

    def __post_init__(self) -> None:
        if self.capex_usd < 0 or self.maintenance_total_usd < 0:
            raise ValueError("costs must be >= 0")
        if self.depreciation_years <= 0:
            raise ValueError("depreciation cycle must be positive")

    @property
    def depreciation_months(self) -> float:
        return self.depreciation_years * MONTHS_PER_YEAR

    @property
    def capex_per_month(self) -> float:
        return self.capex_usd / self.depreciation_months

    @property
    def maintenance_per_month(self) -> float:
        return self.maintenance_total_usd / self.depreciation_months

    @property
    def opex_per_month(self) -> float:
        return self.maintenance_per_month + self.energy_and_space_usd_per_month

    def tco_per_month(self) -> float:
        return self.capex_per_month + self.opex_per_month


@dataclass(frozen=True)
class SSPCostModel:
    """Leased-virtual-cluster cost (equation 2)."""

    pricing: InstancePricing
    n_instances: int
    inbound_gb_per_month: float

    def __post_init__(self) -> None:
        if self.n_instances < 0 or self.inbound_gb_per_month < 0:
            raise ValueError("instances and transfer must be >= 0")

    @property
    def instance_cost_per_month(self) -> float:
        return self.pricing.monthly_instance_cost(self.n_instances)

    @property
    def transfer_cost_per_month(self) -> float:
        return self.pricing.transfer_cost(self.inbound_gb_per_month)

    def tco_per_month(self) -> float:
        return self.instance_cost_per_month + self.transfer_cost_per_month


#: The paper's real DCS case (BJUT grid lab, deployed 2006).
BJUT_DCS_CASE = DCSCostModel(
    capex_usd=120_000.0,
    depreciation_years=8.0,
    maintenance_total_usd=30_000.0,
    energy_and_space_usd_per_month=1_600.0,
    n_nodes=15,
)

#: The matched SSP configuration: 30 EC2 small instances (two per DCS node
#: to match the dual-CPU configuration) + <=1000 GB/month inbound transfer.
BJUT_SSP_CASE = SSPCostModel(
    pricing=EC2_2009_SMALL,
    n_instances=30,
    inbound_gb_per_month=1000.0,
)
