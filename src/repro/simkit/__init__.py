"""Discrete-event simulation kernel used by every emulated system.

The kernel is deliberately small: a binary-heap event loop
(:class:`~repro.simkit.engine.SimulationEngine`), cancellable events
(:class:`~repro.simkit.events.Event`), periodic timers
(:class:`~repro.simkit.timers.PeriodicTimer`) and seeded random-stream
management (:class:`~repro.simkit.rng.RandomStreams`).  All simulated
components (schedulers, TRE servers, the resource provision service, job
emulators) are plain objects that schedule callbacks on the shared engine,
which keeps runs deterministic and easy to test.
"""

from repro.simkit.engine import SimulationEngine
from repro.simkit.events import Event, EventCancelled
from repro.simkit.process import SimProcess
from repro.simkit.rng import RandomStreams
from repro.simkit.timers import OneShotTimer, PeriodicTimer

__all__ = [
    "Event",
    "EventCancelled",
    "OneShotTimer",
    "PeriodicTimer",
    "RandomStreams",
    "SimProcess",
    "SimulationEngine",
]
