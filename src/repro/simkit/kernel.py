"""The vectorized batch kernel: column operations for homogeneous windows.

The exact engine executes one event at a time.  For *provably homogeneous*
event windows — pure arrival-drain phases in which every event is a grid
scan, a pre-scheduled arrival, or a completion whose instant was fixed at
dispatch — the same state evolution can be computed as numpy column
operations over :class:`~repro.workloads.job.TraceArrays` slices.  This
module holds those operations; :mod:`repro.simkit.fluid` decides *when*
they may replace the event loop (the eligibility gates) and applies the
results to the live world.

Three interchangeable backends compute each operation:

``python``
    Pure-Python loops — the readable reference, and the proof text for
    the bit-identity argument (each loop is literally the scalar
    computation the exact engine performs).
``numpy``
    Vectorized column ops.  Elementwise float64 arithmetic in numpy is
    IEEE-754-identical to CPython's float arithmetic, so results match
    the ``python`` backend bit for bit (asserted in
    ``tests/test_differential_kernel.py``).
``numba``
    The ``python`` loops compiled with :func:`numba.njit` (no fastmath,
    so IEEE semantics are preserved).  numba is optional: when the wheel
    is absent the backend **falls back cleanly to numpy** — requesting
    ``numba`` never fails, it just runs the vectorized path.

Backend selection (lowest to highest precedence):

1. the ``REPRO_KERNEL`` environment variable (``python``/``numpy``/
   ``numba`` enable the hybrid core process-wide; ``off``/``exact``/unset
   keep the exact engine),
2. :func:`configure` / the :func:`configured` context manager,
3. an explicit ``kernel=`` argument on a runner (a backend name, a
   ``{"kernel": ..., "materialize": ...}`` mapping, a
   :class:`KernelSpec`, or ``"off"`` to force the exact engine), which
   also maps from the spec layer's ``engine`` reference.

The default everywhere is **off**: the pure-Python exact engine remains
canonical, and every golden pin runs against it.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

import numpy as np

#: The recognised backend names, in reference → fastest order.
KERNEL_BACKENDS = ("python", "numpy", "numba")

#: Flag values that mean "exact engine, no kernel".
OFF_VALUES = ("", "off", "exact")

#: The environment flag the hybrid core is gated behind.
KERNEL_ENV_VAR = "REPRO_KERNEL"

_CONFIGURED: Optional[str] = None  # configure() override; "" = forced off
_NUMBA_OPS: Optional[tuple] = None  # lazily compiled njit functions
_NUMBA_AVAILABLE: Optional[bool] = None  # memoized import probe


class KernelConfigError(ValueError):
    """Raised for unrecognised kernel/backend selections."""


def numba_available() -> bool:
    """True when the optional numba wheel can be imported."""
    global _NUMBA_AVAILABLE
    if _NUMBA_AVAILABLE is None:
        try:
            import numba  # noqa: F401
        except Exception:
            _NUMBA_AVAILABLE = False
        else:  # pragma: no cover - requires the optional wheel
            _NUMBA_AVAILABLE = True
    return _NUMBA_AVAILABLE


def resolve_backend(name: str) -> str:
    """Normalize a backend name; ``numba`` degrades to numpy when absent."""
    if name not in KERNEL_BACKENDS:
        raise KernelConfigError(
            f"unknown kernel backend {name!r}; known: {list(KERNEL_BACKENDS)} "
            f"(or {list(OFF_VALUES[1:])} for the exact engine)"
        )
    if name == "numba" and not numba_available():
        return "numpy"
    return name


def configure(kernel: Optional[str]) -> None:
    """Set the process-wide kernel override.

    ``configure("numpy")`` enables the hybrid core for every subsequent
    run in this process (beating the environment variable);
    ``configure("off")`` forces it off; ``configure(None)`` removes the
    override, falling back to ``REPRO_KERNEL``.
    """
    global _CONFIGURED
    if kernel is None:
        _CONFIGURED = None
    elif kernel in OFF_VALUES:
        _CONFIGURED = ""
    else:
        _CONFIGURED = resolve_backend(kernel)


@contextmanager
def configured(kernel: Optional[str]):
    """Scoped :func:`configure` for tests and probes."""
    global _CONFIGURED
    previous = _CONFIGURED
    configure(kernel)
    try:
        yield
    finally:
        _CONFIGURED = previous


def active_kernel() -> Optional[str]:
    """The ambient backend name, or None when the hybrid core is off."""
    if _CONFIGURED is not None:
        return _CONFIGURED or None
    env = os.environ.get(KERNEL_ENV_VAR, "")
    if env in OFF_VALUES:
        return None
    return resolve_backend(env)


@dataclass(frozen=True)
class KernelSpec:
    """One resolved hybrid-core request.

    ``materialize=True`` (the default) keeps full job-object fidelity:
    the fluid tier produces the same :class:`~repro.workloads.job.Job`
    states, server queues and completion lists as the exact engine, so
    any downstream consumer (snapshots, reliability finalization) sees an
    indistinguishable world.  ``materialize=False`` is the columnar fast
    path for scale runs (the ``million-node-year`` scenario): per-job
    Python objects are never created and only aggregate metrics exist.
    """

    backend: str
    materialize: bool = True


def resolve_kernel_spec(
    value: Union[None, str, Mapping[str, Any], KernelSpec],
) -> Optional[KernelSpec]:
    """A runner's ``kernel=`` argument → a :class:`KernelSpec` or None.

    ``None`` defers to the ambient selection (:func:`active_kernel`);
    ``"off"``/``"exact"`` force the exact engine regardless of it.
    """
    if value is None:
        backend = active_kernel()
        return None if backend is None else KernelSpec(backend)
    if isinstance(value, KernelSpec):
        return KernelSpec(resolve_backend(value.backend), value.materialize)
    if isinstance(value, str):
        if value in OFF_VALUES:
            return None
        return KernelSpec(resolve_backend(value))
    if isinstance(value, Mapping):
        unknown = set(value) - {"kernel", "materialize"}
        if unknown:
            raise KernelConfigError(
                f"unknown kernel option(s) {sorted(unknown)}; "
                f"valid: ['kernel', 'materialize']"
            )
        backend = value.get("kernel", "numpy")
        if backend in OFF_VALUES:
            return None
        return KernelSpec(
            resolve_backend(backend), bool(value.get("materialize", True))
        )
    raise KernelConfigError(
        f"kernel must be a backend name, mapping or KernelSpec, "
        f"got {type(value).__name__}"
    )


# --------------------------------------------------------------------- #
# column operations
# --------------------------------------------------------------------- #
def _grid_indices_python(
    submit: np.ndarray, interval: float, epoch: float
) -> np.ndarray:
    """Per-job first-eligible-tick indices, scalar reference.

    Replicates :meth:`repro.simkit.timers.PeriodicTimer.resume` for an
    ``include_now=True`` waker (arrivals are pre-scheduled events, so a
    submission landing exactly on a grid instant is dispatched by that
    instant's tick): the ceil candidate is corrected against the product
    form ``epoch + n*interval`` — the exact instants ticks fire at — in
    both directions, and tick 0 never dispatches (the timer's first
    firing is tick 1).
    """
    out = np.empty(len(submit), dtype=np.int64)
    for i, s in enumerate(submit.tolist()):
        n = int(math.ceil((s - epoch) / interval))
        if n < 1:
            n = 1
        while n > 1 and epoch + (n - 1) * interval >= s:
            n -= 1
        while epoch + n * interval < s:
            n += 1
        out[i] = n
    return out


def _grid_indices_numpy(
    submit: np.ndarray, interval: float, epoch: float
) -> np.ndarray:
    n = np.ceil((submit - epoch) / interval).astype(np.int64)
    np.maximum(n, 1, out=n)
    # The float-edge guards, vectorized: each masked pass mirrors one
    # iteration of the scalar while-loops (they converge in <= 2 passes
    # because ceil is off by at most one ulp-step).
    while True:
        down = (n > 1) & (epoch + (n - 1) * interval >= submit)
        if not down.any():
            break
        n[down] -= 1
    while True:
        up = epoch + n * interval < submit
        if not up.any():
            break
        n[up] += 1
    return n


def _numba_ops() -> tuple:
    """Compile (once) and return the njit'd operations."""
    global _NUMBA_OPS
    if _NUMBA_OPS is not None:
        return _NUMBA_OPS
    import numba  # pragma: no cover - requires the optional wheel

    @numba.njit(cache=False)  # pragma: no cover
    def grid_indices(submit, interval, epoch):  # pragma: no cover
        out = np.empty(submit.shape[0], dtype=np.int64)
        for i in range(submit.shape[0]):
            s = submit[i]
            n = np.int64(math.ceil((s - epoch) / interval))
            if n < 1:
                n = 1
            while n > 1 and epoch + (n - 1) * interval >= s:
                n -= 1
            while epoch + n * interval < s:
                n += 1
            out[i] = n
        return out

    @numba.njit(cache=False)  # pragma: no cover
    def running_max(deltas):  # pragma: no cover
        level = np.int64(0)
        peak = np.int64(0)
        for i in range(deltas.shape[0]):
            level += deltas[i]
            if level > peak:
                peak = level
        return peak

    _NUMBA_OPS = (grid_indices, running_max)
    return _NUMBA_OPS


def grid_starts(
    submit: np.ndarray,
    interval: float,
    epoch: float = 0.0,
    backend: str = "numpy",
) -> np.ndarray:
    """Dispatch instants for uncontended jobs under a grid-pinned scan.

    With no contention, every job starts at the first scan tick at or
    after its submission: ``epoch + n*interval`` with
    ``n = min{n >= 1 : epoch + n*interval >= submit}``.  The product form
    ``epoch + n*interval`` is the exact float the timer computes in
    :meth:`~repro.simkit.timers.PeriodicTimer._arm`, and the elementwise
    ``+``/``*`` below are IEEE-identical to the scalar ops, so the
    returned instants equal the exact engine's bit for bit.
    """
    submit = np.ascontiguousarray(submit, dtype=np.float64)
    interval = float(interval)
    epoch = float(epoch)
    if backend == "python":
        n = _grid_indices_python(submit, interval, epoch)
    elif backend == "numba" and numba_available():  # pragma: no cover
        n = _numba_ops()[0](submit, interval, epoch)
    else:
        n = _grid_indices_numpy(submit, interval, epoch)
    return epoch + n * interval


def peak_concurrency(
    starts: np.ndarray,
    finishes: np.ndarray,
    sizes: np.ndarray,
    backend: str = "numpy",
) -> int:
    """Maximum simultaneous node demand of the (start, finish, size) set.

    Sweep line with starts ordered *before* finishes at equal instants —
    a conservative overestimate of the true concurrency (a job finishing
    exactly when another starts briefly counts twice), so a window this
    deems uncontended is uncontended under any event interleaving.
    """
    n = len(starts)
    if n == 0:
        return 0
    sizes = np.ascontiguousarray(sizes, dtype=np.int64)
    times = np.concatenate([starts, finishes])
    deltas = np.concatenate([sizes, -sizes])
    # tiekey 0 = start, 1 = finish: at equal times, adds come first
    tiekey = np.concatenate(
        [np.zeros(n, dtype=np.int8), np.ones(n, dtype=np.int8)]
    )
    order = np.lexsort((tiekey, times))
    ordered = deltas[order]
    if backend == "python":
        level = peak = 0
        for d in ordered.tolist():
            level += d
            if level > peak:
                peak = level
        return peak
    if backend == "numba" and numba_available():  # pragma: no cover
        return int(_numba_ops()[1](ordered))
    return int(np.cumsum(ordered).max())
