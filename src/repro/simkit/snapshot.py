"""Whole-engine snapshot/restore with mid-run branching (PR 6).

An :class:`EngineSnapshot` freezes an entire simulation *world* — the
engine (heap entries, clock, executed/cancelled counters), every timer
riding on it (grid epoch, armed tick index, suspension state), the seeded
RNG streams, cluster/ledger/billing state and the runners' server/queue
state — by deep-copying the world's root object through one shared memo.
:meth:`EngineSnapshot.restore` hands back a *fresh* deep copy, so a single
snapshot can branch arbitrarily many what-if continuations, each with its
own disjoint mutable state.

Determinism argument
--------------------
The engine is a pure function of its heap and clock: events fire in
``(time, priority, seq)`` order and scheduling happens only from event
callbacks.  A deep copy maps every reachable object — including the
callables inside heap entries, which is why they must be *bound methods*
or :class:`functools.partial` objects (both copy their ``__self__``/args
through the memo) rather than closures (atomic under deepcopy, so they
would silently alias the original world's mutable state).
:func:`verify_heap_callables` enforces that invariant at snapshot time.

Two pieces of process-global state survive on purpose:

* ``Lease._ids`` — the class-level lease id counter.  Only the *relative*
  order of lease ids is observable (the provider shrinks the
  youngest-first), and ids allocated after a restore are always larger
  than any pre-snapshot id, so branches bill identically even though
  their absolute ids differ from an uninterrupted run's.
* interned immutables (strings, small ints) — shared by design.
"""

from __future__ import annotations

import copy
import types
from functools import partial
from typing import Any, Optional

from repro.simkit.engine import SimulationEngine


class SnapshotAliasError(RuntimeError):
    """A heap callable would alias the original world after deepcopy."""


def _innermost_function(fn: Any) -> Any:
    """Unwrap partials/bound methods down to the underlying function."""
    while True:
        if isinstance(fn, partial):
            fn = fn.func
        elif isinstance(fn, types.MethodType):
            fn = fn.__func__
        else:
            return fn


def verify_heap_callables(engine: SimulationEngine) -> None:
    """Reject pending events whose callbacks cannot survive a deep copy.

    Bound methods and partials deepcopy through the memo; plain functions
    are fine only when they close over nothing (deepcopy treats functions
    as atomic, so captured cells would keep pointing into the original
    world).  This is the guard that flushes out latent alias bugs the
    moment someone schedules a closure into a snapshot-able world.
    """
    for entry in engine._heap:
        event = entry[3]
        if event._cancelled:
            continue
        fn = _innermost_function(event.fn)
        if isinstance(fn, types.FunctionType) and fn.__closure__ is not None:
            raise SnapshotAliasError(
                f"event at t={event.time} calls closure "
                f"{fn.__qualname__!r}; schedule a bound method or "
                f"functools.partial instead so snapshots do not alias "
                f"the original run"
            )


def assert_forkable(
    world: Any,
    engine: Optional[SimulationEngine] = None,
    *,
    max_pending_events: Optional[int] = None,
) -> None:
    """All snapshot/fork preconditions, without paying for a deepcopy.

    Long-lived services fork on every what-if query, so they want the
    failure modes (mid-callback fork, closure in the heap, unbounded
    pending backlog) surfaced as a cheap precondition check with a
    pointed error, not as a deep-copy surprise.  ``max_pending_events``
    optionally bounds the live heap size: forking a world with millions
    of pending arrivals deep-copies all of them, which a service-level
    caller may prefer to refuse outright.
    """
    if engine is None:
        engine = world.engine
    if engine._running:
        raise RuntimeError(
            "cannot fork while the engine is running; fork between "
            "run()/advance_before() calls"
        )
    verify_heap_callables(engine)
    if max_pending_events is not None:
        pending = sum(1 for entry in engine._heap if not entry[3]._cancelled)
        if pending > max_pending_events:
            raise RuntimeError(
                f"world has {pending} live pending events, above the fork "
                f"bound of {max_pending_events}; advance the run or raise "
                f"the bound before forking"
            )


class EngineSnapshot:
    """A frozen deep copy of a simulation world at one instant.

    The snapshot owns a private deep copy of ``world``; every
    :meth:`restore` returns another fresh deep copy of that private copy,
    so neither the original run nor any branch can reach the snapshot's
    state (or each other's).
    """

    __slots__ = ("_world", "time", "label")

    def __init__(self, world: Any, time: float, label: str = "") -> None:
        self._world = world
        self.time = time
        self.label = label

    def restore(self) -> Any:
        """A fresh, fully disjoint copy of the world, ready to continue."""
        return copy.deepcopy(self._world)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        tag = f" {self.label!r}" if self.label else ""
        return f"<EngineSnapshot{tag} t={self.time:.3f}>"


def snapshot_world(
    world: Any,
    engine: Optional[SimulationEngine] = None,
    label: str = "",
) -> EngineSnapshot:
    """Snapshot ``world`` (anything whose ``engine`` attribute — or the
    ``engine`` argument — is the simulation engine the world runs on)."""
    if engine is None:
        engine = world.engine
    assert_forkable(world, engine)
    return EngineSnapshot(copy.deepcopy(world), engine.now, label)


def fork_world(world: Any, engine: Optional[SimulationEngine] = None) -> Any:
    """One live branch of ``world``, without keeping a snapshot around.

    Semantically ``snapshot_world(world).restore()`` — the same alias
    verification, the same disjointness guarantee — at half the copying
    cost (one deepcopy instead of snapshot + restore).  Use it when
    branches are consumed immediately (prefix-shared sweeps); keep an
    :class:`EngineSnapshot` when the frozen state itself must outlive the
    run that produced it.
    """
    if engine is None:
        engine = world.engine
    if engine._running:
        raise RuntimeError(
            "cannot fork while the engine is running; fork between "
            "run()/advance_before() calls"
        )
    verify_heap_callables(engine)
    return copy.deepcopy(world)
