"""The fluid tier: flow through quiescent loaded time in closed form.

PR 3's idle-gap fast-forward skips *empty* time — scan ticks that
provably do nothing.  This module generalizes it to *loaded* time: for a
fixed-machine HTC run (DCS/SSP) whose whole horizon is one provably
homogeneous window — no scheduling decision can differ from "dispatch
every queued job at the first scan tick after it arrives" — the entire
event evolution has a closed form, computed by the column operations in
:mod:`repro.simkit.kernel` and applied here in one step:

* every job's start is the first grid tick at or after its submission
  (:func:`~repro.simkit.kernel.grid_starts` — bit-identical to the
  timer's product form), its finish is ``start + runtime`` (the same
  float64 add the server performs);
* :class:`~repro.metrics.timeseries.UsageRecorder` integrals and
  :class:`~repro.provisioning.billing.BillingMeter` accruals need no
  correction at all, because a fixed machine's ownership level is
  constant between startup and teardown — the engine clock simply jumps
  (:meth:`~repro.simkit.engine.SimulationEngine.fast_forward`) and the
  boundary events bill exactly as in the exact run;
* the run re-enters exact event mode at the horizon: with
  ``materialize=True`` the world state (job objects, server queue and
  running table, completion list, counters) is reconstructed exactly as
  the exact engine would have left it, so finalization — including
  reliability finalization with zero in-window failures — reads an
  indistinguishable world.

Eligibility is conservative (:func:`fluid_ineligible_reason`): the run
must be fresh, the scheduler time-independent with idle-scan suspension
on, no hooks attached, any failure injector's earliest possible failure
strictly beyond the horizon with no checkpoint policy stretching walls,
and the peak node demand — computed with starts-before-finishes tie
breaking, an overestimate — must fit the machine, so no queueing decision
ever arises.  Anything else returns a reason and the caller falls back to
the exact engine (the deferred trace is injected with identical event
sequence numbers, so the fallback is byte-identical to a never-hybrid
run).  MTC/workflow runs, elastic (DawningCloud/DRP) systems, contended
traces and in-window failures are all served by the exact engine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.simkit.kernel import KernelSpec, grid_starts, peak_concurrency

if TYPE_CHECKING:  # pragma: no cover
    from repro.systems.fixed import FixedLiveRun

#: Process-wide counters, for probes and benchmarks (not part of any
#: payload): how often the fluid tier engaged vs fell back to exact mode.
STATS = {"applied": 0, "fallbacks": 0}


def fluid_ineligible_reason(run: "FixedLiveRun") -> Optional[str]:
    """Why this run must use the exact engine, or None if fluid is safe."""
    server = run.server
    if run.kind != "htc":
        return "MTC/workflow runs use the exact engine"
    if run.engine.executed_events or run.engine.now != 0.0:
        return "events already executed (not a fresh run)"
    if getattr(run, "_deferred_trace", None) is None:
        return "workload already injected into the event heap"
    if run._emulator.speedup != 1.0:
        return "emulator speedup rescales submission times"
    if not server._sched_time_independent:
        return "scheduler is time-dependent (clock-reading decisions)"
    if not server.idle_scan_suspend:
        return "idle-scan suspension disabled (stateful hook attached)"
    if (
        server.pre_dispatch_hooks
        or server.idle_increase_hooks
        or server.on_workflow_complete
    ):
        return "server has attached hooks (elastic resizing / consumers)"
    if server._stopped or len(server.queue) or server.running:
        return "server already carries live state"
    if server.owned <= 0:
        return "server owns no nodes"
    if run.injector is not None:
        fault = server.fault
        if fault is not None and fault.checkpoint is not None:
            return "checkpoint policy stretches job wall times"
        bound = run.injector.earliest_failure_bound()
        if not bound > run.horizon:
            return "a failure can fire within the horizon"
    return None


def try_fluid_run(run: "FixedLiveRun") -> bool:
    """Attempt the closed-form evolution of a deferred fixed HTC run.

    Returns True when the fluid tier applied (the run is advanced to its
    horizon and carries exact-equivalent state); False when any gate
    failed — the caller then injects the deferred workload and runs the
    exact engine.  Only structural state is touched on False.
    """
    reason = fluid_ineligible_reason(run)
    if reason is not None:
        STATS["fallbacks"] += 1
        return False

    trace = run._deferred_trace
    spec: KernelSpec = run._kernel
    server = run.server
    timer = server._scan_timer
    horizon = run.horizon
    nodes = server.owned

    arrays = trace.arrays
    submit = arrays.submit
    sizes = arrays.size
    runtimes = arrays.runtime
    n = len(submit)
    if n and int(sizes.max()) > nodes:
        STATS["fallbacks"] += 1
        return False

    starts = grid_starts(submit, timer.interval, timer._epoch, spec.backend)
    finishes = starts + runtimes
    if peak_concurrency(starts, finishes, sizes, spec.backend) > nodes:
        STATS["fallbacks"] += 1
        return False

    if spec.materialize or run.injector is not None:
        # Full fidelity: reconstruct the exact engine's world at the
        # horizon (reliability finalization walks server.completed, so an
        # armed injector always takes this path).
        _apply_materialized(run, trace, starts, finishes, horizon)
    else:
        _apply_columnar(run, submit, finishes, horizon)

    # Exit the window: drop the armed scan tick, jump the clock to the
    # horizon (only strictly-later events — armed failure clocks — may
    # remain in the heap), and bring time-accruing provisioning state to
    # the boundary.  server.stop()/teardown() in finish() then execute at
    # exactly the instant the exact run would have reached.
    timer.stop()
    run.engine.fast_forward(horizon)
    if run.provision is not None:
        run.provision.fast_forward(horizon)
    run.fluid_applied = True
    STATS["applied"] += 1
    return True


def _apply_materialized(
    run: "FixedLiveRun",
    trace,
    starts: np.ndarray,
    finishes: np.ndarray,
    horizon: float,
) -> None:
    """Reconstruct full job-object state as of the horizon.

    ``run(until=horizon)`` executes events scheduled exactly *at* the
    horizon, so every boundary below is inclusive: a job is COMPLETED iff
    ``finish <= horizon``, RUNNING iff ``start <= horizon < finish``,
    QUEUED iff ``submit <= horizon < start``, and untouched (PENDING)
    otherwise.
    """
    from repro.scheduling.base import RunningJob

    server = run.server
    jobs = trace.jobs  # trace order == submission order == queue order
    submitted = 0
    start_list = starts.tolist()
    finish_list = finishes.tolist()
    n = len(jobs)

    # Arrival replay, in trace order: the queue's insertion order for
    # jobs still waiting at the horizon is their arrival order.
    for i, job in enumerate(jobs):
        if job.submit_time > horizon:
            continue
        submitted += 1
        job.mark_queued(job.submit_time)
        if start_list[i] > horizon:
            server.queue.push(job)
    # Dispatch replay, in (start tick, trace index) order — the order the
    # scans started jobs, which the running table's insertion preserves.
    dispatch_order = np.lexsort((np.arange(n), starts))
    for i in dispatch_order.tolist():
        start = start_list[i]
        if start > horizon:
            continue
        job = jobs[i]
        job.mark_running(start)
        if finish_list[i] > horizon:
            server.running[job.job_id] = RunningJob(job, finish_list[i])
            server.used += job.size
    # Completion replay, in finish-event order (finish, start, trace
    # index): starts order the seqs of simultaneous finishes, trace order
    # breaks exact ties (same-instant dispatches were queued in trace
    # order).
    completion_order = np.lexsort((np.arange(n), starts, finishes))
    completed = server.completed
    for i in completion_order.tolist():
        if finish_list[i] <= horizon:
            jobs[i].mark_completed(finish_list[i])
            completed.append(jobs[i])
    server.submitted_jobs = submitted
    run.submitted = len(trace)


def _apply_columnar(
    run: "FixedLiveRun",
    submit: np.ndarray,
    finishes: np.ndarray,
    horizon: float,
) -> None:
    """Aggregate-only evolution: no per-job Python objects are created.

    The scale path (``materialize=False``): only the counters the fixed
    runners' finalization reads are produced.  ``FixedLiveRun.finish``
    consumes ``_fluid_summary`` instead of walking ``server.completed``.
    """
    run.server.submitted_jobs = int(np.count_nonzero(submit <= horizon))
    run.submitted = int(len(submit))
    run._fluid_summary = {
        "completed": int(np.count_nonzero(finishes <= horizon)),
    }
