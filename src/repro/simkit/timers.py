"""Timers built on the simulation engine.

Two small helpers wrap the raw engine API:

* :class:`PeriodicTimer` — the paper's scan loops ("the HTC server scans jobs
  in queue per minute", "a MTC server scans jobs in queue per three seconds")
  and the hourly idle-resource checks registered after each dynamic request.
* :class:`OneShotTimer` — a cancellable single callback, used for TRE
  lifecycle steps and workload injection.

Periodic ticks live on a fixed grid: the n-th firing happens at exactly
``epoch + n*interval`` (``epoch`` = the clock at :meth:`PeriodicTimer.start`)
rather than at an accumulated ``t += interval`` sum, so a two-week run of
10^5 ticks carries no float drift.  The grid is also what makes
:meth:`PeriodicTimer.suspend` / :meth:`PeriodicTimer.resume` exact: a timer
suspended through an idle stretch resumes on the *same* tick instants it
would have fired on anyway — skipping the no-op wakeups is invisible to the
simulation.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from repro.simkit.engine import SimulationEngine
from repro.simkit.events import Event


class OneShotTimer:
    """A single cancellable callback ``delay`` seconds in the future."""

    def __init__(
        self,
        engine: SimulationEngine,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
    ) -> None:
        self._engine = engine
        self._event: Optional[Event] = engine.schedule(delay, self._fire)
        self._fn = fn
        self._args = args
        self.fired = False

    def _fire(self) -> None:
        self._event = None
        self.fired = True
        self._fn(*self._args)

    @property
    def active(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def cancel(self) -> None:
        if self._event is not None:
            self._engine.cancel(self._event)
            self._event = None


class PeriodicTimer:
    """Fires ``fn(*args)`` every ``interval`` seconds until stopped.

    The first firing happens ``interval`` seconds after :meth:`start` (not
    immediately), matching how the paper's servers begin scanning after the
    runtime environment starts.  Re-arming happens *before* the callback so
    the callback may safely call :meth:`stop`.

    A started timer can also be *suspended*: the pending tick is cancelled
    and nothing fires until :meth:`resume`, which re-arms on the first grid
    instant strictly after the current clock.  Because ticks are grid-pinned,
    every tick that does fire lands on the exact instant it would have
    without the suspension — only the skipped (idle) wakeups disappear.
    ``fire_count`` counts executed ticks, so a suspended stretch contributes
    zero.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        silent_suspend: bool = False,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._engine = engine
        self.interval = float(interval)
        self._fn = fn
        self._args = args
        self._priority = priority
        self._silent_suspend = silent_suspend
        self._event: Optional[Event] = None
        self._epoch = 0.0  # clock at start(); tick n fires at epoch + n*interval
        self._n = 0  # index of the last armed-or-fired tick
        self._started = False
        self._suspended = False
        self.fire_count = 0

    @property
    def active(self) -> bool:
        return (
            not self._suspended
            and self._event is not None
            and not self._event.cancelled
        )

    @property
    def suspended(self) -> bool:
        """True while started but idling between :meth:`suspend`/:meth:`resume`."""
        return self._suspended

    def start(self) -> "PeriodicTimer":
        # Guard on _started, not active: a suspended timer is inactive but
        # still owns its grid (and possibly a pending ghost tick), and
        # restarting it would interleave two tick streams.
        if self._started:
            raise RuntimeError("timer already started")
        self._started = True
        self._suspended = False
        self._epoch = self._engine.now
        self._n = 0
        self._arm(1)
        return self

    def stop(self) -> None:
        self._started = False
        self._suspended = False
        if self._event is not None:
            self._engine.cancel(self._event)
            self._event = None

    # ------------------------------------------------------------------ #
    # idle-gap fast-forward
    # ------------------------------------------------------------------ #
    def suspend(self) -> None:
        """Pause ticking; a no-op unless the timer is started.

        Lazy: the already-armed grid tick stays in the heap and lapses as a
        silent *ghost* (no callback, no re-arm) if still suspended when it
        comes up.  Suspend/resume cycles shorter than one interval — the
        overwhelmingly common case under bursty arrivals — therefore cost
        no heap traffic at all, and the grid itself is untouched:
        :meth:`resume` continues on the original instants.

        A timer built with ``silent_suspend=True`` ghosts differently: the
        lapsing tick silently *re-arms* the next grid slot instead of
        dropping out of the heap.  The event stream (instants, priorities
        and sequence-number allocations) then stays literally identical to
        the un-suspended run — only the callback is skipped — so same-
        instant ordering against any other event is exact by construction.
        That is the right trade for long-interval timers (the hourly
        release checks): their un-suspended tick is armed a full interval
        ahead, and no re-armed event can reproduce that heap position
        after the slot is lost.  Short-cadence timers (the scans) keep the
        cheaper lapsing ghost, whose 60 s arming window admits the seq
        argument in :meth:`resume`.
        """
        if self._started:
            self._suspended = True

    def resume(self, include_now: bool = True) -> None:
        """Re-arm on the next grid instant at-or-after the current clock.

        ``include_now`` decides the boundary case where the clock sits
        exactly on a grid instant that has not fired yet.  A waker whose
        event was scheduled *before* the tick would have been armed (an
        hourly release check, a pre-scheduled arrival) runs ahead of the
        pending tick in the un-suspended execution, so the tick must still
        fire at ``now`` (``include_now=True``, the default).  A waker
        scheduled *after* the arming point (a job-completion event) runs
        behind it, so replaying the tick at ``now`` would let the scan see
        state the un-suspended scan could not — those wakers pass
        ``include_now=False`` and the timer continues strictly after.
        Either way, a tick that already fired at ``now`` is never repeated.

        A ``silent_suspend`` timer always still owns its armed slot, so
        resuming it is just the flag flip: the pending tick fires at its
        original heap position.
        """
        if not self._started or not self._suspended:
            return
        self._suspended = False
        if self._event is not None:
            # The armed tick has not lapsed yet: it carries its original
            # scheduling order, so letting it fire reproduces the
            # un-suspended execution exactly.  Nothing to do.
            return
        now = self._engine.now
        k = (now - self._epoch) / self.interval
        n = int(math.ceil(k)) if include_now else int(math.floor(k)) + 1
        # Float-edge guards, symmetric in both directions: the quotient k
        # can land on either side of the true tick index, so the candidate
        # is corrected against the *product* form (epoch + n*interval, the
        # exact instant ticks actually fire at) rather than trusted.  The
        # downward guard covers the knife-edge where a waker lands exactly
        # on an unfired grid instant but k sits just above the integer, so
        # ceil alone would skip the tick that must still fire at ``now``.
        threshold_ok = (
            (lambda t: t >= now) if include_now else (lambda t: t > now)
        )
        while n - 1 > self._n and threshold_ok(self._epoch + (n - 1) * self.interval):
            n -= 1
        if n <= self._n:
            n = self._n + 1
        while self._epoch + n * self.interval < now:
            n += 1
        if not include_now:
            while self._epoch + n * self.interval <= now:
                n += 1
        self._arm(n)

    # ------------------------------------------------------------------ #
    def _arm(self, n: int) -> None:
        self._n = n
        self._event = self._engine.schedule_at(
            self._epoch + n * self.interval, self._tick, priority=self._priority
        )

    def _tick(self) -> None:
        if self._suspended:
            if self._silent_suspend:
                # silent slot: re-arm exactly where the un-suspended tick
                # would have, skip only the callback (see suspend())
                self._arm(self._n + 1)
            else:
                self._event = None  # ghost: the grid slot lapses silently
            return
        self._arm(self._n + 1)
        self.fire_count += 1
        self._fn(*self._args)
