"""Timers built on the simulation engine.

Two small helpers wrap the raw engine API:

* :class:`PeriodicTimer` — the paper's scan loops ("the HTC server scans jobs
  in queue per minute", "a MTC server scans jobs in queue per three seconds")
  and the hourly idle-resource checks registered after each dynamic request.
* :class:`OneShotTimer` — a cancellable single callback, used for TRE
  lifecycle steps and workload injection.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simkit.engine import SimulationEngine
from repro.simkit.events import Event


class OneShotTimer:
    """A single cancellable callback ``delay`` seconds in the future."""

    def __init__(
        self,
        engine: SimulationEngine,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
    ) -> None:
        self._engine = engine
        self._event: Optional[Event] = engine.schedule(delay, self._fire)
        self._fn = fn
        self._args = args
        self.fired = False

    def _fire(self) -> None:
        self._event = None
        self.fired = True
        self._fn(*self._args)

    @property
    def active(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def cancel(self) -> None:
        if self._event is not None:
            self._engine.cancel(self._event)
            self._event = None


class PeriodicTimer:
    """Fires ``fn(*args)`` every ``interval`` seconds until stopped.

    The first firing happens ``interval`` seconds after :meth:`start` (not
    immediately), matching how the paper's servers begin scanning after the
    runtime environment starts.  Re-arming happens *before* the callback so
    the callback may safely call :meth:`stop`.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._engine = engine
        self.interval = float(interval)
        self._fn = fn
        self._args = args
        self._priority = priority
        self._event: Optional[Event] = None
        self.fire_count = 0

    @property
    def active(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self) -> "PeriodicTimer":
        if self.active:
            raise RuntimeError("timer already started")
        self._arm()
        return self

    def stop(self) -> None:
        if self._event is not None:
            self._engine.cancel(self._event)
            self._event = None

    def _arm(self) -> None:
        self._event = self._engine.schedule(
            self.interval, self._tick, priority=self._priority
        )

    def _tick(self) -> None:
        self._arm()
        self.fire_count += 1
        self._fn(*self._args)
