"""Seeded random-stream management.

Every stochastic component in the reproduction draws from a *named* child
stream of one root seed, via :class:`RandomStreams`.  Child streams are
derived with ``numpy.random.SeedSequence`` from a stable hash of the stream
name, so:

* the same root seed always reproduces the same experiment bit-for-bit,
* adding a new consumer never perturbs the draws of existing consumers
  (streams are independent, not a shared cursor).
"""

from __future__ import annotations

import hashlib

import numpy as np


def _name_to_entropy(name: str) -> int:
    """Map a stream name to a stable 128-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


class RandomStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (and memoize) the generator for ``name``."""
        if name not in self._cache:
            ss = np.random.SeedSequence([self.seed, _name_to_entropy(name)])
            self._cache[name] = np.random.default_rng(ss)
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (not memoized).

        Useful in tests that need to replay a stream from its start.
        """
        ss = np.random.SeedSequence([self.seed, _name_to_entropy(name)])
        return np.random.default_rng(ss)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomStreams seed={self.seed} streams={sorted(self._cache)}>"
