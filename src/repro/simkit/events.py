"""Event objects for the simulation engine.

Events are comparable by ``(time, priority, seq)`` so that the engine's heap
pops them in chronological order, with ties broken first by an explicit
priority (lower runs earlier) and then by scheduling order.  The secondary
sequence key makes simulations deterministic: two events scheduled for the
same instant always fire in the order they were scheduled.
"""

from __future__ import annotations

from typing import Any, Callable


class EventCancelled(RuntimeError):
    """Raised when an operation is attempted on a cancelled event."""


class Event:
    """A single scheduled callback.

    Instances are created by :meth:`repro.simkit.engine.SimulationEngine.schedule`
    and friends; user code normally only keeps them around to call
    :meth:`cancel`.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    priority:
        Tie-break rank for events at the same time; lower fires first.
    seq:
        Monotonically increasing scheduling sequence number (final tie-break).
    fn:
        The callback. Called as ``fn(*args)``.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "_cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple[Any, ...] = (),
    ) -> None:
        # No defensive float()/int() coercion: construction happens a
        # couple hundred thousand times per two-week sweep and the engine
        # only ever passes numbers (heap keys compare ints/floats fine).
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return bool(self._cancelled)

    def cancel(self) -> None:
        """Mark the event so the engine skips it. Idempotent.

        ``_cancelled`` is tri-state: ``False`` (pending), ``True``
        (cancelled directly, invisible to the engine's slack counter) or
        ``2`` (cancelled through ``SimulationEngine.cancel``, counted into
        the compaction slack).  Both truthy states read as cancelled; only
        counted entries may decrement the slack counter when popped,
        otherwise direct cancellations would drain it and suppress
        compaction while counted slack still sits deep in the heap.
        """
        if not self._cancelled:
            self._cancelled = True

    def fire(self) -> None:
        """Invoke the callback. Raises :class:`EventCancelled` if cancelled."""
        if self._cancelled:
            raise EventCancelled(f"event at t={self.time} was cancelled")
        self.fn(*self.args)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # The engine's heap holds (time, priority, seq, event) tuples, so
        # this is off the hot path; it exists for direct Event sorting.
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f} p={self.priority} {name} ({state})>"
