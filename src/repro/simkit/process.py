"""Generator-based simulation processes.

Most components in this reproduction are event-callback objects, but a few
sequential behaviours (the TRE lifecycle walk-through, deployment sequences)
read more naturally as coroutines.  :class:`SimProcess` runs a Python
generator that yields delays::

    def boot_sequence(env):
        yield 5.0           # deploy packages
        env.mark_created()
        yield 1.0           # start daemons
        env.mark_running()

    SimProcess(engine, boot_sequence(env))

Each ``yield delay`` suspends the process for ``delay`` simulated seconds.
Yielding a negative number is an error; returning ends the process.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.simkit.engine import SimulationEngine
from repro.simkit.events import Event


class SimProcess:
    """Drives a generator of delays on the simulation engine."""

    def __init__(
        self,
        engine: SimulationEngine,
        generator: Generator[float, None, None],
        start_delay: float = 0.0,
    ) -> None:
        self._engine = engine
        self._gen = generator
        self._event: Optional[Event] = engine.schedule(start_delay, self._advance)
        self.finished = False

    @property
    def active(self) -> bool:
        return not self.finished and self._event is not None

    def interrupt(self) -> None:
        """Stop the process; the generator is closed immediately."""
        if self._event is not None:
            self._engine.cancel(self._event)
            self._event = None
        if not self.finished:
            self.finished = True
            self._gen.close()

    def _advance(self) -> None:
        self._event = None
        try:
            delay = next(self._gen)
        except StopIteration:
            self.finished = True
            return
        if delay is None or delay < 0:
            self.finished = True
            self._gen.close()
            raise ValueError(f"process yielded invalid delay {delay!r}")
        self._event = self._engine.schedule(float(delay), self._advance)
