"""The discrete-event simulation engine.

A :class:`SimulationEngine` owns the virtual clock and a binary heap of
pending :class:`~repro.simkit.events.Event` objects.  Components schedule
callbacks with :meth:`SimulationEngine.schedule` (relative delay) or
:meth:`SimulationEngine.schedule_at` (absolute time) and the engine executes
them in deterministic ``(time, priority, seq)`` order.

Design notes
------------
* Cancelled events stay in the heap and are discarded lazily when popped;
  this keeps :meth:`cancel` O(1) at the cost of some heap slack.  When the
  slack grows pathological (cancel-heavy timer churn) the engine compacts:
  once more than :data:`COMPACT_MIN_HEAP` events are pending and cancelled
  entries exceed :data:`COMPACT_SLACK_RATIO` of the heap, the heap is
  rebuilt without them — O(n), amortized O(1) per cancellation.
* The engine never advances past ``horizon`` when one is given to
  :meth:`run`, and it is resumable: calling :meth:`run` again continues from
  where the previous call stopped.
* There is no wall-clock coupling anywhere; time is just a float in seconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.simkit.events import Event


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


#: Compaction triggers only above this heap size (small heaps drain fast
#: enough that lazy discarding is already optimal).
COMPACT_MIN_HEAP = 1024
#: ... and only when cancelled entries exceed this fraction of the heap.
COMPACT_SLACK_RATIO = 0.5


class SimulationEngine:
    """A deterministic discrete-event executor.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after
        executing this many events, which turns accidental infinite
        event loops into clean test failures.
    compact_min_heap, compact_slack_ratio:
        Heap-compaction thresholds; the module-level defaults
        (:data:`COMPACT_MIN_HEAP`, :data:`COMPACT_SLACK_RATIO`) suit
        every in-tree workload, but cancel-heavy custom components can
        tune them per engine instead of monkeypatching the module.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        max_events: int = 200_000_000,
        compact_min_heap: int = COMPACT_MIN_HEAP,
        compact_slack_ratio: float = COMPACT_SLACK_RATIO,
    ) -> None:
        if compact_min_heap < 0:
            raise ValueError(
                f"compact_min_heap must be >= 0, got {compact_min_heap}"
            )
        if not 0.0 < compact_slack_ratio <= 1.0:
            raise ValueError(
                f"compact_slack_ratio must be in (0, 1], got {compact_slack_ratio}"
            )
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._max_events = int(max_events)
        self._running = False
        self._cancelled_pending = 0  # cancelled-but-unpopped heap entries
        self._compact_min_heap = int(compact_min_heap)
        self._compact_slack_ratio = float(compact_slack_ratio)
        self.compactions = 0

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (cancelled pops excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events in the heap, including cancelled ones."""
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (clock is already at {self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, fn, args)
        # The heap stores (time, priority, seq, event): comparisons stay in
        # C-level tuple code (seq is unique, so the event is never compared),
        # which is the difference between the heap dominating a two-week
        # sweep and disappearing from its profile.
        heapq.heappush(self._heap, (time, priority, seq, event))
        return event

    def schedule_batch(
        self,
        items: "list[tuple[float, Callable[..., Any], tuple[Any, ...]]]",
        priority: int = 0,
    ) -> list[Event]:
        """Schedule many ``(time, fn, args)`` callbacks in one pass.

        Equivalent to calling :meth:`schedule_at` per item (same seq
        assignment, hence identical tie-breaking and execution order), but
        loads the heap with one ``extend`` + ``heapify`` — O(n) instead of
        O(n log n) pushes — which is how whole workload traces are injected.
        """
        now = self._now
        seq = self._seq
        entries = []
        events = []
        for time, fn, args in items:
            if time < now:
                raise SimulationError(
                    f"cannot schedule at t={time} (clock is already at {now})"
                )
            event = Event(time, priority, seq, fn, args)
            entries.append((event.time, priority, seq, event))
            events.append(event)
            seq += 1
        self._seq = seq
        self._heap.extend(entries)
        heapq.heapify(self._heap)
        return events

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy removal, amortized O(1)).

        Calling ``event.cancel()`` directly is also valid (the engine skips
        the entry when popped) but bypasses the slack accounting that
        triggers heap compaction, so prefer this method for events that may
        sit far in the future.
        """
        if not event._cancelled:
            # 2 = "counted into the slack": pops decrement the counter only
            # for these entries.  Direct Event.cancel() sets True, and the
            # pop paths leave the counter alone for those — they were never
            # counted in, so decrementing would drain the counter while
            # counted slack still sits deep in the heap and compaction
            # would never fire (the accounting drift fixed in PR 6).
            event._cancelled = 2
            self._cancelled_pending += 1
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap without cancelled entries when slack dominates."""
        heap = self._heap
        if (
            len(heap) > self._compact_min_heap
            and self._cancelled_pending > self._compact_slack_ratio * len(heap)
        ):
            live = [entry for entry in heap if not entry[3].cancelled]
            heapq.heapify(live)
            self._heap = live
            self._cancelled_pending = 0
            self.compactions += 1

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is empty."""
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Execute the next live event. Returns False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)[3]
        self._now = event.time
        self._executed += 1
        if self._executed > self._max_events:
            raise SimulationError(
                f"exceeded max_events={self._max_events}; likely a runaway timer"
            )
        event.fire()
        return True

    def advance_before(self, time: float) -> int:
        """Execute every pending event strictly before ``time``.

        Stops on the exact pre-event-batch boundary: after this returns,
        the next live event (if any) fires at or after ``time``, with no
        float-epsilon games.  The clock is left on the last executed
        event, not on ``time`` — a subsequent :meth:`run` therefore
        replays exactly the tail an uninterrupted run would have executed,
        which is what makes mid-run snapshots byte-identical to cold runs.
        Returns the number of events executed.
        """
        n = 0
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time >= time:
                return n
            self.step()
            n += 1

    def fast_forward(self, time: float) -> None:
        """Jump the clock to ``time`` without executing anything.

        The fluid tier's mode switch: after a quiescent window's state
        evolution has been applied in closed form, the clock moves to the
        window boundary in O(1).  Safety: the jump must not step over any
        live event — every pending event must be scheduled strictly
        *after* ``time`` (events exactly at ``time`` would have executed
        in ``run(until=time)``, so skipping them would diverge) — and the
        engine must be outside :meth:`run`.
        """
        if self._running:
            raise SimulationError("cannot fast-forward while running")
        time = float(time)
        if time < self._now:
            raise SimulationError(
                f"cannot fast-forward to t={time} (clock is already at "
                f"{self._now})"
            )
        next_time = self.peek_time()
        if next_time is not None and next_time <= time:
            raise SimulationError(
                f"cannot fast-forward to t={time} over a live event at "
                f"t={next_time}"
            )
        self._now = time

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock would pass ``until``.

        Events scheduled exactly at ``until`` are executed.  Returns the
        final clock value (``until`` if a horizon was given and reached).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        # Hand-inlined peek/pop/fire loop: this is the innermost loop of
        # every simulation, and the method-call version costs ~25% more.
        heap = self._heap
        max_events = self._max_events
        pop = heapq.heappop
        executed = self._executed
        try:
            while True:
                while heap and heap[0][3]._cancelled:
                    if pop(heap)[3]._cancelled == 2:
                        self._cancelled_pending -= 1
                if not heap:
                    break
                now = heap[0][0]
                if until is not None and now > until:
                    break
                # Coalesce the whole same-timestamp batch: events at one
                # instant share the horizon check and the clock write, so
                # burst arrivals / simultaneous completions cost one pass.
                self._now = now
                while heap and heap[0][0] == now:
                    event = pop(heap)[3]
                    if event._cancelled:
                        if event._cancelled == 2:
                            self._cancelled_pending -= 1
                        continue
                    executed += 1
                    if executed > max_events:
                        self._executed = executed
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            f"likely a runaway timer"
                        )
                    event.fn(*event.args)
                    if heap is not self._heap:
                        heap = self._heap  # compaction swapped the list
        finally:
            self._executed = executed
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return self._now

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            # Lazily-discovered cancellations: only entries counted in by
            # SimulationEngine.cancel (marked 2) decrement the slack; events
            # cancelled via Event.cancel() directly were never counted, so
            # popping them must not eat a counted entry's decrement.
            if heapq.heappop(heap)[3]._cancelled == 2:
                self._cancelled_pending -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SimulationEngine t={self._now:.3f} pending={len(self._heap)} "
            f"executed={self._executed}>"
        )
