"""The discrete-event simulation engine.

A :class:`SimulationEngine` owns the virtual clock and a binary heap of
pending :class:`~repro.simkit.events.Event` objects.  Components schedule
callbacks with :meth:`SimulationEngine.schedule` (relative delay) or
:meth:`SimulationEngine.schedule_at` (absolute time) and the engine executes
them in deterministic ``(time, priority, seq)`` order.

Design notes
------------
* Cancelled events stay in the heap and are discarded lazily when popped;
  this keeps :meth:`cancel` O(1) at the cost of some heap slack, which for
  our workloads (hourly timers over two simulated weeks) is negligible.
* The engine never advances past ``horizon`` when one is given to
  :meth:`run`, and it is resumable: calling :meth:`run` again continues from
  where the previous call stopped.
* There is no wall-clock coupling anywhere; time is just a float in seconds.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.simkit.events import Event


class SimulationError(RuntimeError):
    """Raised for invalid engine operations (e.g. scheduling in the past)."""


class SimulationEngine:
    """A deterministic discrete-event executor.

    Parameters
    ----------
    start_time:
        Initial value of the simulation clock, in seconds.
    max_events:
        Safety valve: :meth:`run` raises :class:`SimulationError` after
        executing this many events, which turns accidental infinite
        event loops into clean test failures.
    """

    def __init__(self, start_time: float = 0.0, max_events: int = 200_000_000) -> None:
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._max_events = int(max_events)
        self._running = False

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (cancelled pops excluded)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of events in the heap, including cancelled ones."""
        return len(self._heap)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (clock is already at {self._now})"
            )
        event = Event(time, priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (lazy removal)."""
        event.cancel()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next live event. Returns False if none remain."""
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._now = event.time
        self._executed += 1
        if self._executed > self._max_events:
            raise SimulationError(
                f"exceeded max_events={self._max_events}; likely a runaway timer"
            )
        event.fire()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock would pass ``until``.

        Events scheduled exactly at ``until`` are executed.  Returns the
        final clock value (``until`` if a horizon was given and reached).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = float(until)
        return self._now

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SimulationEngine t={self._now:.3f} pending={len(self._heap)} "
            f"executed={self._executed}>"
        )
