"""Reliability outcome metrics.

One :class:`ReliabilityStats` per failure-injected run, accumulated by
the :class:`~repro.reliability.injector.NodeFailureInjector` (and the
DRP runner's per-job failure path) and attached to
:class:`~repro.metrics.results.ProviderMetrics.reliability` — from where
it flows into scenario payloads and :class:`~repro.api.run.RunResult`.

The headline derived quantities:

* **goodput vs. wasted work** — node-hours of useful work that survived
  into completed jobs, against node-hours executed-then-lost to kills
  (checkpoint-write overhead counts as waste: it is paid node time that
  produced no application progress);
* **repair downtime** — node-hours of capacity out of service, clamped
  to the run horizon;
* **failure-adjusted cost per job** — billed node-hours per completed
  job, the cost metric the no-failure tables cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

HOUR = 3600.0


def completed_goodput_node_seconds(jobs: Iterable, horizon_s: float) -> float:
    """Node-seconds of useful work inside jobs completed by the horizon."""
    return float(sum(
        job.work for job in jobs if (job.finish_time or 0.0) <= horizon_s
    ))


@dataclass
class ReliabilityStats:
    """Failure/repair/requeue accounting for one run."""

    failures: int = 0
    repairs: int = 0
    killed_jobs: int = 0
    requeues: int = 0
    checkpoint_restores: int = 0
    #: node-seconds of capacity out of service (clamped to the horizon)
    downtime_node_seconds: float = 0.0
    #: node-seconds executed that produced no surviving progress
    wasted_node_seconds: float = 0.0
    #: node-seconds of useful work inside completed jobs (set at finalize)
    goodput_node_seconds: float = 0.0
    #: open outage start instants, per slot (internal; drained at finalize)
    _down_since: dict[int, float] = field(default_factory=dict, repr=False)

    def record_kill(
        self, n_nodes: int, recovered_work_s: float, wasted_wall_s: float
    ) -> None:
        """One job killed by a node failure (the shared bookkeeping).

        Callers compute the triple with
        :func:`repro.reliability.checkpoint.collapse_progress`; this
        folds it in so the server-attached and DRP paths cannot drift.
        """
        self.killed_jobs += 1
        self.requeues += 1
        if recovered_work_s > 0:
            self.checkpoint_restores += 1
        self.wasted_node_seconds += n_nodes * wasted_wall_s

    def record_write_overhead(
        self, n_nodes: int, checkpoint, work_s: float
    ) -> None:
        """Checkpoint writes of a *successful* segment count as waste too.

        A killed segment's writes are already inside its wasted wall
        time; the final segment's writes are paid node time with no
        application progress and would otherwise vanish between goodput
        and waste.
        """
        if checkpoint is not None:
            self.wasted_node_seconds += (
                n_nodes * checkpoint.writes_for(work_s) * checkpoint.overhead_s
            )

    def finalize(self, horizon_s: float, goodput_node_seconds: float) -> None:
        """Close out the run: clamp open outages, record goodput."""
        for t_down in self._down_since.values():
            self.downtime_node_seconds += max(horizon_s - t_down, 0.0)
        self._down_since.clear()
        self.goodput_node_seconds = float(goodput_node_seconds)

    def to_payload(self) -> dict:
        """JSON-safe projection (hours for the node-time integrals)."""
        executed = self.goodput_node_seconds + self.wasted_node_seconds
        return {
            "failures": self.failures,
            "repairs": self.repairs,
            "killed_jobs": self.killed_jobs,
            "requeues": self.requeues,
            "checkpoint_restores": self.checkpoint_restores,
            "downtime_node_hours": self.downtime_node_seconds / HOUR,
            "wasted_node_hours": self.wasted_node_seconds / HOUR,
            "goodput_node_hours": self.goodput_node_seconds / HOUR,
            "wasted_fraction": (
                self.wasted_node_seconds / executed if executed > 0 else 0.0
            ),
        }
