"""The node-failure injector: failure processes wired into a live run.

A :class:`NodeFailureInjector` attaches a
:class:`~repro.reliability.failures.FailureModel` to one server-attached
run (DCS/SSP/DawningCloud/pooled-queue).  It models the **machine
partition** the workload runs on as ``n_slots`` node slots; each slot
cycles UP → (TTF) → DOWN → (TTR) → UP forever, with both durations drawn
from a slot-private RNG stream (``failure:<client>:slot<i>``), so the
whole failure timeline of slot *i* is a function of ``(seed, client, i)``
alone — independent of event interleaving, of other components' draws,
and of every other slot (the determinism argument; see
docs/reliability.md).

When a slot fails while the server owns nodes, the failure strikes one
uniformly-chosen owned node:

* a **busy** node (probability ``used/owned``, victim job chosen
  proportionally to its width) kills the running job, which collapses to
  its last checkpoint and re-enters the queue
  (:meth:`repro.core.servers.REServer.kill_running`);
* the node leaves the server (:meth:`~repro.core.servers.REServer
  .fail_nodes`), and — on leased systems — the provision service shrinks
  the covering lease so the dead node **stops metering**
  (:meth:`~repro.cluster.provision.ResourceProvisionService.fail_node`).

When the server owns nothing (an elastic TRE between grants), the
failure hits the provider's free pool instead; either way the node is
out of service until its repair fires.

Repair semantics follow the system's provisioning shape (``restore``):

* ``"server"`` — fixed machines (DCS/SSP): the repaired node returns
  straight to the server; SSP re-leases it through the provision service
  (lease kind ``"repair"``), DCS owns it outright.
* ``"provider"`` — elastic systems (DawningCloud, pooled-queue): the
  repaired node rejoins the provider's free pool only; the TRE re-grows
  through its normal resource-management policy.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.provision import ResourceProvisionService
from repro.core.servers import REServer
from repro.reliability.failures import FailureModel, TraceDrivenFailures
from repro.reliability.stats import ReliabilityStats
from repro.simkit.engine import SimulationEngine
from repro.simkit.rng import RandomStreams

#: Failure/repair events run after the instant's ordinary events (job
#: completions, scans) — a job finishing exactly when the node dies
#: finished first.
FAILURE_EVENT_PRIORITY = 5

RESTORE_MODES = ("server", "provider")


class NodeFailureInjector:
    """Drives one failure model against one server-attached run."""

    def __init__(
        self,
        engine: SimulationEngine,
        server: REServer,
        model: FailureModel,
        streams: RandomStreams,
        n_slots: int,
        provision: Optional[ResourceProvisionService] = None,
        restore: str = "provider",
    ) -> None:
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        if restore not in RESTORE_MODES:
            raise ValueError(
                f"restore must be one of {RESTORE_MODES}, got {restore!r}"
            )
        if restore == "provider" and provision is None:
            raise ValueError("restore='provider' needs a provision service")
        self.engine = engine
        self.server = server
        self.model = model
        self.streams = streams
        self.n_slots = int(n_slots)
        self.provision = provision
        self.restore = restore
        self.stats = ReliabilityStats()
        self._started = False
        self._first_failure_bound = float("inf")

    # ------------------------------------------------------------------ #
    def _rng(self, slot: int):
        return self.streams.stream(f"failure:{self.server.name}:slot{slot}")

    def _victim_rng(self, slot: int):
        """Victim picks draw from their own stream, never the slot clock.

        The slot stream must stay a pure alternation of TTF/TTR draws so
        the outage timeline is a function of ``(seed, client, slot)``
        alone; victim selection only happens when the server owns nodes,
        and letting it share the clock stream would make later outage
        instants depend on workload state.
        """
        return self.streams.stream(
            f"failure:{self.server.name}:slot{slot}:victim"
        )

    def start(self) -> "NodeFailureInjector":
        """Arm every slot's first failure; enable server fault tolerance."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        self.server.enable_fault_tolerance(self.model.checkpoint, self.stats)
        if isinstance(self.model, TraceDrivenFailures):
            for slot, fail_t, repair_t in self.model.events:
                if slot >= self.n_slots:
                    raise ValueError(
                        f"trace outage names slot {slot}, machine has "
                        f"{self.n_slots}"
                    )
                event = self.engine.schedule_at(
                    fail_t, self._fail_slot, slot, repair_t,
                    priority=FAILURE_EVENT_PRIORITY,
                )
                if event.time < self._first_failure_bound:
                    self._first_failure_bound = event.time
        else:
            for slot in range(self.n_slots):
                event = self.engine.schedule(
                    self.model.draw_ttf(self._rng(slot)),
                    self._fail_slot, slot, None,
                    priority=FAILURE_EVENT_PRIORITY,
                )
                if event.time < self._first_failure_bound:
                    self._first_failure_bound = event.time
        return self

    def earliest_failure_bound(self) -> float:
        """Lower bound on the instant of the first failure, ever.

        Valid from :meth:`start` on: every slot's first TTF is armed there,
        and new TTFs only arise from repairs, which follow failures — so
        no failure can fire before the minimum of the armed first-failure
        instants.  The fluid tier uses a strict ``bound > horizon`` gate
        (a failure exactly at the horizon would execute in the exact run).
        """
        if not self._started:
            raise RuntimeError("injector not started")
        return self._first_failure_bound

    # ------------------------------------------------------------------ #
    def _fail_slot(self, slot: int, repair_at: Optional[float]) -> None:
        """Slot goes down: strike the machine, schedule the repair."""
        now = self.engine.now
        self.stats.failures += 1
        self.stats._down_since[slot] = now
        struck_server = struck_provider = False
        server = self.server
        if not server._stopped and server.owned > 0:
            struck_server = True
            self._strike_owned_node(slot)
            if self.provision is not None:
                struck_provider = True
                self.provision.fail_node(now, client=server.name)
        elif self.provision is not None and self.provision.free_nodes > 0:
            struck_provider = True
            self.provision.fail_node(now)
        # else: the slot was already outside the in-service machine
        # (e.g. the provider pool is fully leased out by *other* tenants);
        # the outage still runs its course for the slot's own clock.
        if repair_at is None:
            repair_at = now + self.model.draw_ttr(self._rng(slot))
        self.engine.schedule_at(
            repair_at, self._repair_slot, slot, struck_server, struck_provider,
            priority=FAILURE_EVENT_PRIORITY,
        )

    def _strike_owned_node(self, slot: int) -> None:
        """Pick the struck node uniformly among owned; kill its job if busy."""
        server = self.server
        struck = int(self._victim_rng(slot).integers(0, server.owned))
        if struck < server.used:
            # the node was busy: find the job covering owned-node index
            # `struck` (jobs occupy consecutive slots in running order)
            cursor = 0
            victim = None
            for running in server.running.values():
                cursor += running.size
                if struck < cursor:
                    victim = running.job
                    break
            assert victim is not None  # used > 0 implies running jobs exist
            server.kill_running(victim)
        server.fail_nodes(1)

    def _repair_slot(
        self, slot: int, struck_server: bool, struck_provider: bool
    ) -> None:
        """Slot comes back: return the node, arm the next failure."""
        now = self.engine.now
        self.stats.repairs += 1
        down_since = self.stats._down_since.pop(slot, now)
        self.stats.downtime_node_seconds += now - down_since
        if struck_provider:
            self.provision.repair_node(now)
        if self.restore == "server" and struck_server and not self.server._stopped:
            if self.provision is not None:
                lease = self.provision.request(
                    self.server.name, 1, now, kind="repair"
                )
                # the node just rejoined the free pool in this very
                # handler, so the all-or-nothing rule cannot reject a
                # one-node request
                assert lease is not None
            self.server.add_nodes(1)
        if not isinstance(self.model, TraceDrivenFailures):
            self.engine.schedule(
                self.model.draw_ttf(self._rng(slot)),
                self._fail_slot, slot, None,
                priority=FAILURE_EVENT_PRIORITY,
            )

    # ------------------------------------------------------------------ #
    def finalize(self, horizon_s: float) -> dict:
        """Close the books and return the reliability payload.

        The server shares this injector's stats object, so kill/requeue/
        waste counters are already here; this computes goodput from the
        completed jobs and clamps still-open outages at the horizon.
        """
        from repro.reliability.stats import completed_goodput_node_seconds

        self.stats.finalize(
            horizon_s,
            completed_goodput_node_seconds(self.server.completed, horizon_s),
        )
        return self.stats.to_payload()
