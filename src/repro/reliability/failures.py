"""Failure-model components: stochastic node up/down processes.

A :class:`FailureModel` describes how long a node stays up before
failing (time-to-failure, TTF) and how long the repair takes
(time-to-repair, TTR).  Models are *pure distribution objects* — frozen,
picklable, seed-free.  All randomness flows through the
``numpy.random.Generator`` the caller passes in, which the
:class:`~repro.reliability.injector.NodeFailureInjector` derives
per node slot from the run's :class:`~repro.simkit.rng.RandomStreams`
(see docs/reliability.md for the determinism argument).

Three families self-register under the ``failure-model`` registry kind:

* ``exponential`` — memoryless TTF/TTR, the classic MTBF/MTTR pair;
* ``weibull`` — shape-parameterized TTF (infant mortality at shape < 1,
  wear-out at shape > 1) with the scale chosen so the *mean* equals the
  configured MTBF, exponential TTR;
* ``trace`` — replayed ``(slot, fail_t, repair_t)`` outage windows, for
  studies driven by real failure logs.

Every factory also accepts ``checkpoint_interval_s``/
``checkpoint_overhead_s``, bundling an optional
:class:`~repro.reliability.checkpoint.CheckpointPolicy` with the model so
a spec's single ``failures=`` block configures the whole reliability
story.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.api.registry import register_component
from repro.reliability.checkpoint import CheckpointPolicy

HOUR = 3600.0


class FailureModel(abc.ABC):
    """One node's up/down renewal process, as a distribution pair."""

    name: str = "abstract"
    #: optional checkpoint-restart policy bundled with the model
    checkpoint: Optional[CheckpointPolicy] = None

    @abc.abstractmethod
    def draw_ttf(self, rng: np.random.Generator) -> float:
        """Seconds of uptime until the next failure."""

    @abc.abstractmethod
    def draw_ttr(self, rng: np.random.Generator) -> float:
        """Seconds of downtime until the node is repaired."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


@dataclass(frozen=True)
class ExponentialFailures(FailureModel):
    """Memoryless failures: TTF ~ Exp(MTBF), TTR ~ Exp(MTTR)."""

    mtbf_s: float
    mttr_s: float = 2 * HOUR
    checkpoint: Optional[CheckpointPolicy] = None
    name = "exponential"

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ValueError(f"mtbf_s must be positive, got {self.mtbf_s!r}")
        if self.mttr_s <= 0:
            raise ValueError(f"mttr_s must be positive, got {self.mttr_s!r}")

    def draw_ttf(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mtbf_s))

    def draw_ttr(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mttr_s))


@dataclass(frozen=True)
class WeibullFailures(FailureModel):
    """Weibull TTF with mean MTBF; exponential TTR.

    ``shape < 1`` models infant mortality (failures cluster early after
    repair), ``shape > 1`` wear-out; ``shape == 1`` degenerates to the
    exponential model.  The scale is derived so the distribution's mean
    is exactly ``mtbf_s`` (``scale = mtbf / Γ(1 + 1/shape)``), keeping
    MTBF sweeps comparable across families.
    """

    mtbf_s: float
    shape: float = 0.7
    mttr_s: float = 2 * HOUR
    checkpoint: Optional[CheckpointPolicy] = None
    name = "weibull"

    def __post_init__(self) -> None:
        if self.mtbf_s <= 0:
            raise ValueError(f"mtbf_s must be positive, got {self.mtbf_s!r}")
        if self.shape <= 0:
            raise ValueError(f"shape must be positive, got {self.shape!r}")
        if self.mttr_s <= 0:
            raise ValueError(f"mttr_s must be positive, got {self.mttr_s!r}")

    @property
    def scale_s(self) -> float:
        return self.mtbf_s / math.gamma(1.0 + 1.0 / self.shape)

    def draw_ttf(self, rng: np.random.Generator) -> float:
        return float(self.scale_s * rng.weibull(self.shape))

    def draw_ttr(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mttr_s))


@dataclass(frozen=True)
class TraceDrivenFailures(FailureModel):
    """Replayed outage windows: ``(slot, fail_t, repair_t)`` triples.

    Deterministic by construction (no RNG draws); the injector consumes
    the windows directly instead of running per-slot renewal processes.
    Windows must satisfy ``0 <= fail_t < repair_t`` and be non-overlapping
    per slot.
    """

    events: tuple[tuple[int, float, float], ...] = field(default=())
    checkpoint: Optional[CheckpointPolicy] = None
    name = "trace"

    def __post_init__(self) -> None:
        canon = []
        for ev in self.events:
            slot, fail_t, repair_t = ev
            if slot < 0:
                raise ValueError(f"negative slot in failure event {ev!r}")
            if not (0 <= fail_t < repair_t):
                raise ValueError(
                    f"failure event {ev!r} needs 0 <= fail_t < repair_t"
                )
            canon.append((int(slot), float(fail_t), float(repair_t)))
        canon.sort(key=lambda e: (e[0], e[1]))
        for a, b in zip(canon, canon[1:]):
            if a[0] == b[0] and b[1] < a[2]:
                raise ValueError(
                    f"overlapping outage windows for slot {a[0]}: {a} / {b}"
                )
        object.__setattr__(self, "events", tuple(canon))

    def slots(self) -> list[int]:
        return sorted({slot for slot, _, _ in self.events})

    def windows_for(self, slot: int) -> list[tuple[float, float]]:
        return [(f, r) for s, f, r in self.events if s == slot]

    def draw_ttf(self, rng: np.random.Generator) -> float:  # pragma: no cover
        raise RuntimeError("trace-driven model replays windows, never draws")

    def draw_ttr(self, rng: np.random.Generator) -> float:  # pragma: no cover
        raise RuntimeError("trace-driven model replays windows, never draws")


# --------------------------------------------------------------------- #
# registration
# --------------------------------------------------------------------- #
def _checkpoint_from(
    interval_s: Optional[float], overhead_s: float
) -> Optional[CheckpointPolicy]:
    if interval_s is None:
        return None
    return CheckpointPolicy(interval_s=float(interval_s),
                            overhead_s=float(overhead_s))


def _register_failure_models() -> None:
    """Self-register the failure models for the spec API.

    The hour-denominated parameters (``mtbf_hours``/``mttr_hours``) are
    the spec-facing spelling — failure studies think in hours, the
    engine in seconds.
    """

    def exponential(
        mtbf_hours: float,
        mttr_hours: float = 2.0,
        checkpoint_interval_s: Optional[float] = None,
        checkpoint_overhead_s: float = 60.0,
    ) -> ExponentialFailures:
        """Memoryless node failures: TTF ~ Exp(MTBF), TTR ~ Exp(MTTR)."""
        return ExponentialFailures(
            mtbf_s=float(mtbf_hours) * HOUR,
            mttr_s=float(mttr_hours) * HOUR,
            checkpoint=_checkpoint_from(
                checkpoint_interval_s, checkpoint_overhead_s
            ),
        )

    def weibull(
        mtbf_hours: float,
        shape: float = 0.7,
        mttr_hours: float = 2.0,
        checkpoint_interval_s: Optional[float] = None,
        checkpoint_overhead_s: float = 60.0,
    ) -> WeibullFailures:
        """Weibull node failures (mean = MTBF); shape < 1 = infant mortality."""
        return WeibullFailures(
            mtbf_s=float(mtbf_hours) * HOUR,
            shape=float(shape),
            mttr_s=float(mttr_hours) * HOUR,
            checkpoint=_checkpoint_from(
                checkpoint_interval_s, checkpoint_overhead_s
            ),
        )

    def trace(
        events: Sequence[Sequence[float]],
        checkpoint_interval_s: Optional[float] = None,
        checkpoint_overhead_s: float = 60.0,
    ) -> TraceDrivenFailures:
        """Replayed (slot, fail_t, repair_t) outage windows from a log."""
        return TraceDrivenFailures(
            events=tuple(tuple(ev) for ev in events),
            checkpoint=_checkpoint_from(
                checkpoint_interval_s, checkpoint_overhead_s
            ),
        )

    for name, factory in (
        ("exponential", exponential),
        ("weibull", weibull),
        ("trace", trace),
    ):
        register_component("failure-model", name, factory)


_register_failure_models()
