"""Fault tolerance: node failure/repair processes and checkpoint-restart.

The paper's evaluation assumes nodes never die; at the scale the ROADMAP
targets, failures dominate effective capacity and cost.  This package
adds a first-class failure model threaded through every layer:

* :mod:`repro.reliability.failures` — ``failure-model`` components
  (exponential, Weibull, trace-driven) bundling an optional
  :class:`~repro.reliability.checkpoint.CheckpointPolicy`;
* :mod:`repro.reliability.injector` — the
  :class:`~repro.reliability.injector.NodeFailureInjector` driving
  per-slot up/down processes against a live run (kills + requeues jobs,
  stops billing on dead nodes, restores per system shape);
* :mod:`repro.reliability.checkpoint` — periodic checkpoint-restart
  semantics as pure functions;
* :mod:`repro.reliability.stats` — goodput/waste/downtime metrics that
  flow into :class:`~repro.metrics.results.ProviderMetrics` payloads.

Runs without a configured failure model never touch any of this — the
machinery is attached per run, and the server's fast path carries a
single ``is None`` check (asserted in ``benchmarks/perf_smoke.py``).
See docs/reliability.md.
"""

from repro.reliability.checkpoint import CheckpointPolicy, resume_work
from repro.reliability.failures import (
    ExponentialFailures,
    FailureModel,
    TraceDrivenFailures,
    WeibullFailures,
)
from repro.reliability.injector import NodeFailureInjector
from repro.reliability.stats import ReliabilityStats

__all__ = [
    "CheckpointPolicy",
    "ExponentialFailures",
    "FailureModel",
    "NodeFailureInjector",
    "ReliabilityStats",
    "TraceDrivenFailures",
    "WeibullFailures",
    "resume_work",
]
