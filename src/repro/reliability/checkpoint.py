"""Checkpoint-restart semantics.

A :class:`CheckpointPolicy` models periodic application-level
checkpointing: a running job writes a checkpoint after every
``interval_s`` seconds of *useful work*, each write costing
``overhead_s`` of wall time on the nodes the job occupies.  When a node
failure kills the job, it restarts from the most recent checkpoint that
*finished writing* before the failure instant — everything after it is
lost (re-executed on the next attempt).

The execution timeline of one attempt at ``work`` seconds of remaining
useful work therefore alternates work and checkpoint slices::

    |-- interval --|ovh|-- interval --|ovh| ... |-- tail --|
    0              c1                 c2                   done

No checkpoint is written at completion (there is nothing left to
protect), so an attempt carries ``ceil(work/interval) - 1`` writes and
:meth:`segment_wall` returns ``work + writes * overhead_s``.

Two invariants every consumer relies on (property-tested in
``tests/test_properties_reliability.py``):

* :meth:`recovered_work` never exceeds the useful work actually executed
  before the failure — checkpoints cannot invent progress — hence a
  checkpointed run **never finishes earlier than the failure-free run**;
* recovered work is a multiple of ``interval_s``, and zero when the
  failure lands before (or during) the first write.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CheckpointPolicy:
    """Periodic checkpointing: write every ``interval_s`` of work.

    Parameters
    ----------
    interval_s:
        Useful-work seconds between consecutive checkpoint writes.
    overhead_s:
        Wall-time cost of one write (the job stalls while the state
        streams out).
    """

    interval_s: float
    overhead_s: float = 0.0

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(
                f"checkpoint interval must be positive, got {self.interval_s!r}"
            )
        if self.overhead_s < 0:
            raise ValueError(
                f"checkpoint overhead must be >= 0, got {self.overhead_s!r}"
            )

    # ------------------------------------------------------------------ #
    def writes_for(self, work_s: float) -> int:
        """Checkpoint writes during an attempt at ``work_s`` of work.

        One write after each full interval *except* a write that would
        coincide with completion — ``ceil(work/interval) - 1``.
        """
        if work_s <= 0:
            return 0
        return max(int(math.ceil(work_s / self.interval_s - 1e-12)) - 1, 0)

    def segment_wall(self, work_s: float) -> float:
        """Wall-clock duration of one attempt at ``work_s`` of work."""
        if work_s < 0:
            raise ValueError(f"negative work {work_s!r}")
        return work_s + self.writes_for(work_s) * self.overhead_s

    def recovered_work(self, elapsed_wall_s: float) -> float:
        """Useful work protected by the last finished write at ``elapsed``.

        The k-th checkpoint finishes writing at wall time
        ``k*interval + k*overhead``; the largest such k within the elapsed
        wall time is what survives the failure.
        """
        if elapsed_wall_s <= 0:
            return 0.0
        k = int(
            math.floor(
                elapsed_wall_s / (self.interval_s + self.overhead_s) + 1e-12
            )
        )
        return k * self.interval_s


def resume_work(
    policy: "CheckpointPolicy | None", remaining_s: float, elapsed_wall_s: float
) -> float:
    """Remaining useful work after a failure ``elapsed_wall_s`` into an
    attempt that had ``remaining_s`` of work left.

    Without a policy everything re-executes (restart from scratch).  The
    result is clamped into ``[0, remaining_s]``: a failure in the final
    tail slice can recover at most what the attempt still owed.
    """
    if policy is None:
        return remaining_s
    recovered = min(policy.recovered_work(elapsed_wall_s), remaining_s)
    return remaining_s - recovered


def collapse_progress(
    policy: "CheckpointPolicy | None", remaining_s: float, elapsed_wall_s: float
) -> tuple[float, float, float]:
    """The one kill-accounting primitive every requeue path shares.

    Returns ``(remaining_after, recovered_work, wasted_wall)``: the work
    the next attempt owes, the work the last finished checkpoint saved,
    and the per-node wall time that produced no surviving progress
    (checkpoint writes inside the killed segment included — they are in
    the elapsed wall but not in the recovered work).
    """
    after = resume_work(policy, remaining_s, elapsed_wall_s)
    recovered = remaining_s - after
    return after, recovered, max(elapsed_wall_s - recovered, 0.0)
