"""Policy-composable system runners.

The five paper systems are fixed points in a larger design space the
kernel spans: *provisioning policy* × *scheduler* × *billing meter*.  This
module runs arbitrary points of that space, which is how the beyond-paper
scenarios (``pooled-drp-scheduler-cross``, ``drp-spot-market``) are built
without another hand-rolled runner.

The flagship composition is the **pooled-DRP × scheduler cross**: a
cooperative end-user community that — unlike raw DRP — queues jobs and
dispatches them with a real scheduler over one bounded, elastically leased
pool (cap: the trace's machine size), but — unlike DawningCloud — has no
runtime environment to negotiate for it, so the pool grows eagerly to
queue demand and shrinks through the hourly idle-reclaim check.  It sits
exactly between the ``DRP-shared-pool`` ablation rung and DawningCloud,
and isolates how much of the remaining gap each dispatch rule closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.api.registry import register_component
from repro.cluster.lease import HOUR
from repro.cluster.provision import ResourceProvisionService
from repro.core.policies import HTC_SCAN_INTERVAL_S
from repro.core.servers import REServer
from repro.metrics.results import ProviderMetrics
from repro.provisioning.billing import BillingMeter
from repro.provisioning.policies import ConsolidatedAllocation
from repro.scheduling.base import Scheduler
from repro.simkit.engine import SimulationEngine
from repro.systems.base import LiveRun, WorkloadBundle
from repro.systems.emulator import JobEmulator


@dataclass(frozen=True)
class EagerPoolPolicy:
    """Grow the leased pool to queue demand (capped); reclaim when idle.

    The resource-management rule of a user community without a TRE: no
    threshold ratio, no negotiation — every scan it simply tops the pool
    up to ``min(queue demand, cap)``, moderated by what the provider has
    free so the all-or-nothing grant rule never rejects.  Shrinking is
    the kernel's standard per-grant hourly idle-release check.
    """

    cap: int
    initial_nodes: int = 1
    scan_interval_s: float = HTC_SCAN_INTERVAL_S
    release_check_interval_s: float = HOUR

    #: pure top-up rule, inert at zero demand (idle-gap fast-forward ok)
    quiescence_safe = True

    def __post_init__(self) -> None:
        if self.cap < 1:
            raise ValueError("pool cap must be >= 1")

    def dynamic_request_size(
        self, queue_demand: int, biggest_job: int, owned: int
    ) -> int:
        return max(min(queue_demand, self.cap) - owned, 0)


register_component("policy", "eager-pool", EagerPoolPolicy)


class PooledQueueLiveRun(LiveRun):
    """The pooled-queue composition, built/loaded but not yet run.

    ``pool_cap`` defaults to the trace's recorded machine size — the
    community leases at most the cluster it would otherwise have owned.
    """

    def __init__(
        self,
        bundle: WorkloadBundle,
        scheduler: Scheduler | Callable[[], Scheduler],
        pool_cap: Optional[int] = None,
        meter: Optional[BillingMeter] = None,
        system: Optional[str] = None,
        failures=None,
        seed: int = 0,
    ) -> None:
        if bundle.kind != "htc":
            raise ValueError("the pooled-queue composition is an HTC runner")
        engine = self.engine = SimulationEngine()
        trace = bundle.materialize_trace()
        cap = int(pool_cap if pool_cap is not None else trace.machine_nodes)
        self.name = bundle.name
        self.provision = ResourceProvisionService(cap, meter=meter)
        sched = scheduler() if callable(scheduler) else scheduler
        policy = EagerPoolPolicy(cap=cap)
        self.server = REServer(engine, bundle.name, sched, policy.scan_interval_s)
        self.allocation = ConsolidatedAllocation(
            engine, self.server, self.provision, policy
        )
        self.allocation.start()
        self.system = (
            system
            or f"pooled-queue/{getattr(sched, 'name', type(sched).__name__)}"
        )
        self.injector = None
        if failures is not None:
            from repro.reliability.injector import NodeFailureInjector
            from repro.simkit.rng import RandomStreams

            self.injector = NodeFailureInjector(
                engine, self.server, failures, RandomStreams(seed), n_slots=cap,
                provision=self.provision, restore="provider",
            ).start()
        JobEmulator(engine).submit_trace(trace, self.server.submit_job)
        self.submitted = len(trace)
        self.horizon = float(bundle.horizon)  # type: ignore[arg-type]

    def complete(self) -> None:
        self.engine.run(until=self.horizon)

    def finish(self) -> ProviderMetrics:
        horizon = self.horizon
        self.allocation.shutdown()
        return ProviderMetrics(
            provider=self.name,
            system=self.system,
            workload=self.name,
            resource_consumption=self.provision.consumption_node_hours(self.name),
            completed_jobs=self.server.completed_by(horizon),
            submitted_jobs=self.submitted,
            tasks_per_second=None,
            makespan_s=None,
            adjusted_nodes=self.provision.adjusted_node_count(self.name),
            peak_nodes=self.server.usage.peak(horizon),
            usage=self.server.usage,
            reliability=(
                self.injector.finalize(horizon)
                if self.injector is not None
                else None
            ),
        )


def run_pooled_queue_htc(
    bundle: WorkloadBundle,
    scheduler: Scheduler | Callable[[], Scheduler],
    pool_cap: Optional[int] = None,
    meter: Optional[BillingMeter] = None,
    system: Optional[str] = None,
    failures=None,
    seed: int = 0,
) -> ProviderMetrics:
    """One HTC trace through the pooled-queue composition."""
    return PooledQueueLiveRun(
        bundle, scheduler, pool_cap=pool_cap, meter=meter, system=system,
        failures=failures, seed=seed,
    ).run()
