"""The provisioning kernel: shared cluster state, billing meters, policies.

Every system runner in :mod:`repro.systems` is a thin composition over
this package (see docs/architecture.md):

* :class:`~repro.provisioning.state.ClusterState` — the one node
  inventory, range-indexed with incremental accounting;
* :class:`~repro.provisioning.billing.BillingMeter` — how held leases
  turn into billed units (per started hour, per second, reserved+spot);
* :class:`~repro.provisioning.policies.ProvisioningPolicy` — how a
  workload acquires, holds and returns nodes (per-job leases, pooled
  leases with idle reclaim, fixed allocations, the DawningCloud dynamic
  negotiation).
"""

from repro.provisioning.billing import (
    BillingMeter,
    METER_FACTORIES,
    PerSecondMeter,
    PerStartedUnitMeter,
    TwoTierMeter,
    make_meter,
)
from repro.provisioning.policies import (
    ConsolidatedAllocation,
    FixedAllocation,
    PerJobLease,
    PooledLease,
    ProvisioningPolicy,
)
from repro.provisioning.state import ClusterState, ClusterStateError

__all__ = [
    "BillingMeter",
    "ClusterState",
    "ClusterStateError",
    "ConsolidatedAllocation",
    "FixedAllocation",
    "METER_FACTORIES",
    "PerJobLease",
    "PerSecondMeter",
    "PerStartedUnitMeter",
    "PooledLease",
    "ProvisioningPolicy",
    "TwoTierMeter",
    "make_meter",
]
