"""Provisioning policies: how a workload holds nodes on the shared cluster.

Before this module existed, every system runner hand-rolled the same three
concerns — when to open a lease, how long to keep it, when to hand it back
— in five near-identical copies (``systems/drp.py``, ``systems/fixed.py``,
``systems/dsp_runner.py``, ``systems/consolidation.py`` and the
DawningCloud core).  Each strategy is now one :class:`ProvisioningPolicy`:

* :class:`PerJobLease` — DRP's rule: a fresh lease per job, returned at
  completion (the hour-rounding penalty of Table 2 in one class);
* :class:`PooledLease` — the cost-aware manual strategy: keyed idle
  buckets of paid-for leases, drained before leasing anew, returned at
  the hourly check when idle (DRP-MTC's user pool and both DRP-pooling
  ablation rungs are this policy under different bucket keys);
* :class:`FixedAllocation` — DCS/SSP: one block for the whole workload
  period, owned (DCS) or leased through the provision service (SSP);
* :class:`ConsolidatedAllocation` — DawningCloud's dynamic negotiation
  (§3.2.1): initial resources at TRE startup, DR1/DR2 requests on every
  server scan, once-per-hour idle-release checks per granted request.

Two attachment shapes exist, mirroring how the paper's systems consume
nodes.  *Task-attached* policies (:class:`PerJobLease`,
:class:`PooledLease`) hand leases directly to jobs — there is no runtime
environment, so the policy is the whole resource story.  *Server-attached*
policies (:class:`FixedAllocation`, :class:`ConsolidatedAllocation`) feed
an :class:`~repro.core.servers.REServer`'s owned-node count and let the
queue/scheduler dispatch onto it.  All of them bill through the provision
service's :class:`~repro.provisioning.billing.BillingMeter` and record
usage deltas for the metrics layer, so any policy × any meter × any
scheduler composes into a runnable system (see
:mod:`repro.provisioning.runner`).
"""

from __future__ import annotations

import abc
from typing import Any, Hashable, Optional, TYPE_CHECKING

from repro.api.registry import register_component
from repro.cluster.lease import HOUR, Lease
from repro.metrics.timeseries import UsageRecorder
from repro.simkit.engine import SimulationEngine
from repro.simkit.timers import PeriodicTimer

#: Collaborators the runtime injects into provisioning policies; only the
#: remaining keyword parameters are spec-settable data.
_INJECTED = ("engine", "provision", "client", "usage", "server", "policy")

if TYPE_CHECKING:  # pragma: no cover - cluster.provision imports billing
    from repro.cluster.provision import ResourceProvisionService


class ProvisioningPolicy(abc.ABC):
    """Common contract: a named node-holding strategy with teardown.

    Construction binds the policy to its collaborators (engine, provision
    service, usage recorder, and — for server-attached policies — the
    server); :meth:`teardown` returns every held node and must be safe to
    call once the run is over.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def teardown(self) -> None:
        """Return every held lease/node (run finished or TRE destroyed)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


# --------------------------------------------------------------------- #
# task-attached policies
# --------------------------------------------------------------------- #
class PerJobLease(ProvisioningPolicy):
    """One fresh lease per job, returned the instant the job completes.

    The paper's DRP rule (§4.1): "all jobs run immediately without
    queuing", every job pays at least one billing unit per node.
    """

    name = "per-job"

    def __init__(
        self,
        engine: SimulationEngine,
        provision: ResourceProvisionService,
        client: str,
        usage: UsageRecorder,
    ) -> None:
        self.engine = engine
        self.provision = provision
        self.client = client
        self.usage = usage

    def acquire(self, n_nodes: int) -> Lease:
        lease = self.provision.request(self.client, n_nodes, self.engine.now)
        if lease is None:  # pragma: no cover - capacity effectively infinite
            raise RuntimeError(f"{self.client}: provisioning pool exhausted")
        self.usage.record(self.engine.now, n_nodes)
        return lease

    def release(self, lease: Lease) -> None:
        self.provision.release(lease, self.engine.now)
        self.usage.record(self.engine.now, -lease.n_nodes)

    def teardown(self) -> None:
        """Nothing pooled: open leases belong to still-running jobs."""


class PooledLease(ProvisioningPolicy):
    """Keyed idle buckets of paid leases, reclaimed at the periodic check.

    The manual cost-aware strategy under per-started-hour billing: a task
    drains its bucket before opening a new lease, finished tasks return
    leases to the bucket, and a per-lease timer releases leases that sit
    idle at the check boundary.  The bucket key decides the sharing scope:

    * ``size`` (default) — one pool per lease width (DRP's MTC end user);
    * ``(user, size)`` — per-end-user pools (the ``DRP-pooled`` ablation);
    * ``(0, size)`` — one community pool (the ``DRP-shared-pool`` rung).
    """

    name = "pooled"

    def __init__(
        self,
        engine: SimulationEngine,
        provision: ResourceProvisionService,
        client: str,
        usage: UsageRecorder,
        reclaim_interval_s: float = HOUR,
    ) -> None:
        self.engine = engine
        self.provision = provision
        self.client = client
        self.usage = usage
        self.reclaim_interval_s = float(reclaim_interval_s)
        self._idle: dict[Hashable, list[Lease]] = {}
        self._timers: dict[int, PeriodicTimer] = {}
        self._keys: dict[int, Hashable] = {}  # lease_id -> acquire bucket

    # -------------------------------------------------------------- #
    def acquire(self, n_nodes: int, key: Optional[Hashable] = None) -> Lease:
        """A lease of ``n_nodes``: from the ``key`` bucket, else fresh."""
        key = n_nodes if key is None else key
        bucket = self._idle.get(key)
        if bucket:
            return bucket.pop()
        lease = self.provision.request(self.client, n_nodes, self.engine.now)
        if lease is None:  # pragma: no cover - capacity effectively infinite
            raise RuntimeError(f"{self.client}: provisioning pool exhausted")
        self.usage.record(self.engine.now, n_nodes)
        self._keys[lease.lease_id] = key
        timer = PeriodicTimer(
            self.engine, self.reclaim_interval_s, self._reclaim_check,
            lease, key,
        )
        timer.start()
        self._timers[lease.lease_id] = timer
        return lease

    def release(self, lease: Lease) -> None:
        """Task done: the lease goes back to its bucket, still paid for.

        The bucket is the one the lease was acquired under — remembered
        per lease, so it can never land where its reclaim timer does not
        look.
        """
        self._idle.setdefault(self._keys[lease.lease_id], []).append(lease)

    def _reclaim_check(self, lease: Lease, key: Hashable) -> None:
        """Per-lease periodic check: release if it sits idle right now."""
        bucket = self._idle.get(key, [])
        if lease in bucket:
            bucket.remove(lease)
            self._close(lease)

    def _close(self, lease: Lease) -> None:
        timer = self._timers.pop(lease.lease_id, None)
        if timer is not None:
            timer.stop()
        self._keys.pop(lease.lease_id, None)
        self.provision.release(lease, self.engine.now)
        self.usage.record(self.engine.now, -lease.n_nodes)

    def idle_count(self) -> int:
        """Idle pooled nodes across all buckets."""
        return sum(
            lease.n_nodes for bucket in self._idle.values() for lease in bucket
        )

    def teardown(self) -> None:
        """Run over: every idle pooled lease goes back to the provider."""
        for bucket in self._idle.values():
            for lease in list(bucket):
                self._close(lease)
        self._idle.clear()


# --------------------------------------------------------------------- #
# server-attached policies
# --------------------------------------------------------------------- #
class FixedAllocation(ProvisioningPolicy):
    """One fixed block for the whole workload period (DCS and SSP, §4.1).

    With a provision service the block is *leased* (SSP): one initial
    grant, one release at finalization — exactly ``2 × nodes`` adjusted
    nodes, Figure 14's "SSP has the lowest management overhead" — and the
    billed node-hours come from the meter.  Without one the block is
    *owned* (DCS): no leases, no adjustments; consumption is the closed
    form ``size × period`` accounted by the caller.
    """

    name = "fixed"

    def __init__(
        self,
        engine: SimulationEngine,
        server: Any,
        nodes: int,
        provision: Optional[ResourceProvisionService] = None,
    ) -> None:
        if nodes <= 0:
            raise ValueError("fixed allocation must be positive")
        self.engine = engine
        self.server = server
        self.nodes = int(nodes)
        self.provision = provision
        self.lease: Optional[Lease] = None
        self._started = False

    @property
    def leased(self) -> bool:
        return self.provision is not None

    def start(self) -> None:
        """Acquire the block (machine delivery / RE startup)."""
        if self._started:
            raise RuntimeError("fixed allocation already started")
        self._started = True
        if self.provision is not None:
            lease = self.provision.request(
                self.server.name, self.nodes, self.engine.now, kind="initial"
            )
            if lease is None:
                raise RuntimeError(
                    f"{self.server.name}: provider could not supply the "
                    f"fixed {self.nodes} nodes"
                )
            self.lease = lease
        self.server.add_nodes(self.nodes)

    def teardown(self) -> None:
        """Finalization: the leased block goes back; an owned one just stops.

        Closes *every* open lease of the server's client, not only the
        initial block: under a failure model the initial lease shrinks as
        nodes die and per-node ``"repair"`` re-leases accumulate beside
        it, and all of them must be billed at finalization.
        """
        if self.provision is not None and self._started:
            self.provision.shutdown_client(self.server.name, self.engine.now)
            self.lease = None


class ConsolidatedAllocation(ProvisioningPolicy):
    """DawningCloud's dynamic resource negotiation (§3.2.1).

    Connects one TRE server to the resource provision service:

    1. at startup it obtains the **initial resources** (B), which "will
       not be reclaimed by the resource provision service until the TRE
       is destroyed";
    2. on every server scan it evaluates the resource management policy
       and sends DR1/DR2 requests for **dynamic resources**;
    3. for every granted dynamic request it registers a once-per-hour
       timer that releases exactly that amount back when the TRE has that
       much idle capacity (§3.2.2.1 steps 2-3);
    4. at TRE destruction it releases everything and closes the leases.

    The negotiation is deliberately all-or-nothing on the provider side
    (§3.2.2.3): a rejected request simply leaves the queue to drain on
    what the TRE already owns, and a later scan may retry with a fresh
    demand estimate.
    """

    name = "consolidated"

    def __init__(
        self,
        engine: SimulationEngine,
        server: Any,
        provision: ResourceProvisionService,
        policy: Any,
    ) -> None:
        self.engine = engine
        self.server = server
        self.provision = provision
        self.policy = policy
        self.initial_lease: Optional[Lease] = None
        self._release_timers: dict[int, PeriodicTimer] = {}
        self._release_leases: dict[int, Lease] = {}
        self._releases_suspended = False
        self.dynamic_grants = 0
        self.dynamic_rejections = 0
        self._started = False
        server.pre_dispatch_hooks.append(self._on_scan)
        server.idle_increase_hooks.append(self._on_idle_increase)
        provision.on_lease_shrink.append(self._on_lease_shrink)
        # Idle-gap fast-forward is only sound when skipped scans are
        # provable no-ops; a stateful policy (its estimate evolves on
        # every scan) pins the server to the full cadence.
        if not getattr(policy, "quiescence_safe", False):
            server.idle_scan_suspend = False

    # -------------------------------------------------------------- #
    def start(self) -> None:
        """Obtain the initial resources (TRE startup)."""
        if self._started:
            raise RuntimeError("already started")
        self._started = True
        lease = self.provision.request(
            self.server.name, self.policy.initial_nodes, self.engine.now,
            kind="initial",
        )
        if lease is None:
            raise RuntimeError(
                f"{self.server.name}: provider could not supply the initial "
                f"{self.policy.initial_nodes} nodes"
            )
        self.initial_lease = lease
        self.server.add_nodes(lease.n_nodes)

    # -------------------------------------------------------------- #
    def _on_scan(self) -> bool:
        """Policy evaluation, run by the server just before dispatch.

        Returns True when a dynamic request was issued (granted *or*
        rejected — a rejection must be retried next scan against the
        provider's then-current pool, so it counts as activity).
        """
        if not self._started:
            return False
        queue = self.server.queue
        request = self.policy.dynamic_request_size(
            queue.total_demand,
            queue.biggest_demand,
            self.server.owned,
        )
        if request > 0:
            self._request_dynamic(request)
            return True
        return False

    def _request_dynamic(self, n_nodes: int) -> None:
        lease = self.provision.request(
            self.server.name, n_nodes, self.engine.now, kind="dynamic"
        )
        if lease is None:
            self.dynamic_rejections += 1
            return
        self.dynamic_grants += 1
        self.server.add_nodes(lease.n_nodes)
        timer = PeriodicTimer(
            self.engine,
            self.policy.release_check_interval_s,
            self._check_release,
            lease,
            silent_suspend=True,
        )
        timer.start()
        self._release_timers[lease.lease_id] = timer
        self._release_leases[lease.lease_id] = lease

    def _check_release(self, lease: Lease) -> None:
        """Hourly idle check for one dynamic grant (§3.2.2.1).

        "If there are idle resources with the size equal with or more than
        the value of DR1, the server will release the resources with the
        size of the DR1 to the resource provision service."
        """
        if not lease.open:  # already force-released at shutdown
            self._drop_timer(lease)
            return
        if self.server.idle >= lease.n_nodes:
            self._drop_timer(lease)
            self.server.remove_nodes(lease.n_nodes)
            self.provision.release(lease, self.engine.now)
        else:
            self._maybe_suspend_releases()

    # -------------------------------------------------------------- #
    # release-check fast-forward
    # -------------------------------------------------------------- #
    # Hourly release ticks are no-ops while the TRE is busier than its
    # smallest dynamic grant.  Once a (no-op) check observes that *every*
    # open grant is unreleasable, the whole cadence suspends, and any
    # event that can flip ``idle >= n_nodes`` back on resumes it: an idle
    # increase (grant, completion, kill) or a lease shrinking under a
    # node failure.  The timers suspend *silently*
    # (:class:`~repro.simkit.timers.PeriodicTimer` with
    # ``silent_suspend=True``): their grid slots — and the sequence
    # numbers those armings consume — stay in the heap exactly as in the
    # un-suspended run, only the callback work is skipped, so the check
    # can never drift against same-instant scans, completions or sibling
    # checks.  An hourly tick is armed a full interval ahead of time; no
    # re-armed event could reproduce that heap position after the slot
    # lapsed, which is why these timers do not use the scans' lapsing-
    # ghost suspension.  ``server.idle_scan_suspend = False`` opts out
    # of this fast-forward too.
    def _maybe_suspend_releases(self) -> None:
        if not self.server.idle_scan_suspend:
            return
        idle = self.server.idle
        if any(idle >= l.n_nodes for l in self._release_leases.values()):
            return
        self._releases_suspended = True
        for timer in self._release_timers.values():
            timer.suspend()

    def _on_lease_shrink(self, lease: Lease) -> None:
        # a node failure shrank a lease: ``idle >= n_nodes`` can flip true
        # with no idle change at all, so re-run the resume check
        self._on_idle_increase()

    def _on_idle_increase(self) -> None:
        if not self._releases_suspended:
            return
        idle = self.server.idle
        if all(idle < l.n_nodes for l in self._release_leases.values()):
            return
        self._releases_suspended = False
        for timer in self._release_timers.values():
            timer.resume()  # flag flip: silent timers still own their slot

    def _drop_timer(self, lease: Lease) -> None:
        timer = self._release_timers.pop(lease.lease_id, None)
        if timer is not None:
            timer.stop()
        self._release_leases.pop(lease.lease_id, None)

    # -------------------------------------------------------------- #
    def shutdown(self) -> None:
        """TRE destruction: stop timers, return every lease (§2.2 step 8)."""
        for timer in self._release_timers.values():
            timer.stop()
        self._release_timers.clear()
        self._release_leases.clear()
        self._releases_suspended = False
        self.provision.shutdown_client(self.server.name, self.engine.now)
        self.server.stop()

    def teardown(self) -> None:
        self.shutdown()

    @property
    def open_dynamic_nodes(self) -> int:
        initial = self.initial_lease.n_nodes if self.initial_lease else 0
        return self.provision.allocated_nodes(self.server.name) - initial


for _cls in (PerJobLease, PooledLease, FixedAllocation, ConsolidatedAllocation):
    register_component(
        "provisioning-policy", _cls.name, _cls, skip_params=_INJECTED
    )
del _cls
