"""Shared cluster state: the provisioning kernel's node inventory.

:class:`ClusterState` is what every system runner provisions against.  It
replaces :class:`repro.cluster.node.NodePool`'s per-node object loops on
the hot path:

* the free set is a **sorted list of disjoint id ranges** — ``assign`` and
  ``reclaim`` move whole ranges with :mod:`bisect` indexing, so granting a
  500-node lease touches O(log segments) list entries instead of 500
  ``Node`` objects (and a DRP-sized pool of 10^6 nodes costs one range,
  not 10^6 allocations);
* per-owner holdings are range stacks (LIFO, matching ``NodePool``'s
  most-recently-assigned-first reclaim order);
* **failed nodes** live in a third range index alongside free and busy
  (see :mod:`repro.reliability`): :meth:`ClusterState.fail_free` /
  :meth:`ClusterState.fail_owned` move nodes out of service,
  :meth:`ClusterState.repair` returns them to the free index, and the
  conservation invariant ``free + allocated + failed == capacity`` holds
  at every instant (property-tested);
* aggregate counts, the adjustment counter, and the **busy node-second
  integral** accumulate incrementally at each assign/reclaim instant, so
  accounting reads are O(1) instead of a scan over recorded events.

The per-node state machine (``FREE → ASSIGNING → ...``) stays available in
:mod:`repro.cluster.node` for components that model the setup window
explicitly; the kernel only needs counts and identity ranges.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional

#: One contiguous block of node ids, as a half-open ``(start, stop)`` pair.
Range = tuple[int, int]


class ClusterStateError(RuntimeError):
    """Raised for invalid inventory operations."""


class ClusterState:
    """Range-indexed node inventory with incremental accounting."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = int(capacity)
        self._free: list[Range] = [(0, self._capacity)]
        self._free_count = self._capacity
        self._owned: dict[str, list[Range]] = {}
        self._owned_count: dict[str, int] = {}
        self._failed: list[Range] = []  # stack of out-of-service ranges
        self._failed_count = 0
        self._adjustments = 0
        # incremental busy-time integral
        self._busy_node_seconds = 0.0
        self._last_t = 0.0

    # ------------------------------------------------------------------ #
    # counts
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def free_count(self) -> int:
        return self._free_count

    @property
    def allocated_count(self) -> int:
        return self._capacity - self._free_count - self._failed_count

    @property
    def failed_count(self) -> int:
        """Nodes currently out of service (failed, awaiting repair)."""
        return self._failed_count

    def owned_count(self, owner: str) -> int:
        return self._owned_count.get(owner, 0)

    def owned_ranges(self, owner: str) -> list[Range]:
        """The owner's current id ranges (copies; safe to mutate)."""
        return list(self._owned.get(owner, []))

    def total_adjustments(self) -> int:
        """Assign + reclaim node counts accumulated so far."""
        return self._adjustments

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def _accrue(self, t: float) -> None:
        if t < self._last_t:
            raise ClusterStateError(
                f"time went backwards: {t} < {self._last_t}"
            )
        self._busy_node_seconds += self.allocated_count * (t - self._last_t)
        self._last_t = t

    def busy_node_seconds(self, now: Optional[float] = None) -> float:
        """Exact ∫ allocated(t) dt, accumulated incrementally.

        A pure read: extrapolates from the last mutation instant without
        advancing the internal clock, so mid-run probes never make a later
        assign/reclaim look like time running backwards.
        """
        if now is None:
            return self._busy_node_seconds
        if now < self._last_t:
            raise ClusterStateError(
                f"cannot read occupancy at {now} < last event {self._last_t}"
            )
        return self._busy_node_seconds + self.allocated_count * (
            now - self._last_t
        )

    def fast_forward(self, t: float) -> None:
        """Advance the accounting clock to ``t`` with no inventory change.

        The fluid tier's hook: across a quiescent window the allocation
        level is constant, so the busy-node-second integral accrues in
        closed form — exactly what :meth:`_accrue` computes — and the next
        mutation sees time already at the window boundary.
        """
        self._accrue(t)

    # ------------------------------------------------------------------ #
    # assignment
    # ------------------------------------------------------------------ #
    def assign(self, owner: str, n: int, t: float = 0.0) -> list[Range]:
        """Atomically assign ``n`` free nodes to ``owner`` at time ``t``.

        Raises :class:`ClusterStateError` if fewer than ``n`` are free (the
        provision policy decides grant-or-reject *before* calling this).
        Returns the assigned ranges.
        """
        if n <= 0:
            raise ClusterStateError("must assign at least one node")
        if n > self._free_count:
            raise ClusterStateError(
                f"only {self._free_count} free nodes, requested {n}"
            )
        self._accrue(t)
        taken = self._pop_from(self._free, n)
        self._free_count -= n
        bucket = self._owned.setdefault(owner, [])
        bucket.extend(taken)
        self._owned_count[owner] = self._owned_count.get(owner, 0) + n
        self._adjustments += n
        return taken

    def reclaim(self, owner: str, n: int, t: float = 0.0) -> list[Range]:
        """Reclaim ``n`` nodes from ``owner`` (most recently assigned first)."""
        held = self._owned_count.get(owner, 0)
        if n <= 0 or n > held:
            raise ClusterStateError(
                f"{owner!r} owns {held} nodes, cannot reclaim {n}"
            )
        self._accrue(t)
        bucket = self._owned[owner]
        freed = self._pop_from(bucket, n)
        self._owned_count[owner] = held - n
        if not bucket:
            del self._owned[owner]
            self._owned_count.pop(owner, None)
        self._free_count += n
        for rng in freed:
            self._insert_free(rng)
        self._adjustments += n
        return freed

    # ------------------------------------------------------------------ #
    # failure / repair (the reliability subsystem's hooks)
    # ------------------------------------------------------------------ #
    def fail_free(self, n: int, t: float = 0.0) -> list[Range]:
        """Move ``n`` free nodes out of service at time ``t``."""
        if n <= 0:
            raise ClusterStateError("must fail at least one node")
        if n > self._free_count:
            raise ClusterStateError(
                f"only {self._free_count} free nodes, cannot fail {n}"
            )
        self._accrue(t)
        failed = self._pop_from(self._free, n)
        self._free_count -= n
        self._failed.extend(failed)
        self._failed_count += n
        return failed

    def fail_owned(self, owner: str, n: int, t: float = 0.0) -> list[Range]:
        """Move ``n`` of ``owner``'s nodes out of service at time ``t``.

        The nodes leave the owner's holdings entirely (the lease layer
        stops metering them, see :meth:`repro.cluster.lease.LeaseLedger
        .shrink_lease`); repair returns them to the *free* index — the
        owner re-acquires capacity through its normal provisioning path.
        """
        held = self._owned_count.get(owner, 0)
        if n <= 0 or n > held:
            raise ClusterStateError(
                f"{owner!r} owns {held} nodes, cannot fail {n}"
            )
        self._accrue(t)
        bucket = self._owned[owner]
        failed = self._pop_from(bucket, n)
        self._owned_count[owner] = held - n
        if not bucket:
            del self._owned[owner]
            self._owned_count.pop(owner, None)
        self._failed.extend(failed)
        self._failed_count += n
        return failed

    def repair(self, n: int, t: float = 0.0) -> list[Range]:
        """Return ``n`` repaired nodes to the free index at time ``t``."""
        if n <= 0 or n > self._failed_count:
            raise ClusterStateError(
                f"{self._failed_count} nodes failed, cannot repair {n}"
            )
        self._accrue(t)
        repaired = self._pop_from(self._failed, n)
        self._failed_count -= n
        self._free_count += n
        for rng in repaired:
            self._insert_free(rng)
        return repaired

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _pop_from(ranges: list[Range], n: int) -> list[Range]:
        """Pop ``n`` nodes off a range stack (LIFO), splitting as needed."""
        taken: list[Range] = []
        remaining = n
        while remaining:
            start, stop = ranges[-1]
            width = stop - start
            if width <= remaining:
                ranges.pop()
                taken.append((start, stop))
                remaining -= width
            else:
                ranges[-1] = (start, stop - remaining)
                taken.append((stop - remaining, stop))
                remaining = 0
        return taken

    def _insert_free(self, rng: Range) -> None:
        """Insert a range into the free index, merging adjacent blocks."""
        start, stop = rng
        free = self._free
        i = bisect_left(free, (start, stop))
        # merge with predecessor
        if i > 0 and free[i - 1][1] == start:
            start = free[i - 1][0]
            i -= 1
            free.pop(i)
        # merge with successor
        if i < len(free) and free[i][0] == stop:
            stop = free[i][1]
            free.pop(i)
        free.insert(i, (start, stop))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ClusterState cap={self._capacity} free={self._free_count} "
            f"segments={len(self._free)} owners={len(self._owned)}>"
        )
