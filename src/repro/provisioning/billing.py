"""Pluggable billing meters: how a closed lease turns into billed units.

The paper bills **per started hour** ("we set a quite long time unit: one
hour ... In fact, EC2 also charges resources with this time unit", §4.4).
That rule used to be hard-wired into the lease ledger; it is now one
:class:`BillingMeter` among several, so the same simulated systems can be
re-billed under different market rules without touching the runners:

* :class:`PerStartedUnitMeter` — the paper's meter: ``nodes × ceil(held /
  unit)``, minimum one unit per lease (default unit: one hour);
* :class:`PerSecondMeter` — modern cloud billing: exact seconds (scaled to
  the unit so node-hours stay the common currency), with an optional
  per-lease minimum charge (EC2 bills Linux instances per second with a
  60 s floor);
* :class:`TwoTierMeter` — a reserved + spot market: the first
  ``reserved_nodes`` of a client's concurrently open nodes bill at a
  discounted rate, overflow bills at the (pricier) on-demand/spot rate,
  both per started unit.  Which tier a lease lands in is decided at open
  time from the client's open-node count — the information the ledger
  already tracks.

All meters return **billed units** (node-hours for the default unit), the
paper's resource-consumption currency, so every consumer of
``resource_consumption`` keeps working regardless of the meter.  Dollar
conversion stays in :mod:`repro.costmodel` (see
:func:`repro.costmodel.pricing.two_tier_rates`).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.workloads.job import hour_ceil

HOUR = 3600.0


class BillingMeter(abc.ABC):
    """Strategy: lease (nodes, held seconds) → billed units."""

    #: registry key / CLI spelling
    name: str = "abstract"

    @abc.abstractmethod
    def charge(
        self, n_nodes: int, held_s: float, open_nodes_at_open: int = 0
    ) -> float:
        """Billed units for a closed lease.

        ``open_nodes_at_open`` is how many nodes the same client already
        had open when this lease opened (tier assignment for two-tier
        meters; ignored by flat meters).
        """

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.describe()}>"


@dataclass(frozen=True)
class PerStartedUnitMeter(BillingMeter):
    """The paper's meter: every started unit is billed in full."""

    unit_s: float = HOUR
    name = "per-hour"

    def __post_init__(self) -> None:
        if self.unit_s <= 0:
            raise ValueError("unit_s must be positive")

    def charge(
        self, n_nodes: int, held_s: float, open_nodes_at_open: int = 0
    ) -> float:
        return float(n_nodes * hour_ceil(held_s, self.unit_s))


@dataclass(frozen=True)
class PerSecondMeter(BillingMeter):
    """Exact-duration billing, scaled to units of ``unit_s``."""

    unit_s: float = HOUR
    #: minimum billed seconds per lease (EC2's per-second billing keeps a
    #: 60 s floor); 0 disables the floor.
    min_charge_s: float = 60.0
    name = "per-second"

    def __post_init__(self) -> None:
        if self.unit_s <= 0:
            raise ValueError("unit_s must be positive")
        if self.min_charge_s < 0:
            raise ValueError("min_charge_s must be >= 0")

    def charge(
        self, n_nodes: int, held_s: float, open_nodes_at_open: int = 0
    ) -> float:
        return n_nodes * max(held_s, self.min_charge_s) / self.unit_s


@dataclass(frozen=True)
class TwoTierMeter(BillingMeter):
    """Reserved + spot: a discounted base pool, premium overflow.

    A client reserves ``reserved_nodes`` up front.  While a lease opens
    within that concurrent footprint it bills at ``reserved_rate`` × the
    per-started-unit charge; nodes beyond it bill at ``spot_rate`` ×.
    Rates are multipliers on the node-hour currency, so ``resource
    consumption`` becomes *cost-weighted* node-hours — comparable across
    systems the same way dollars would be, without leaving the paper's
    unit.  The rate defaults are *neutral* (no discount); construct
    through :func:`make_meter` to get the EC2-2009-derived tier rates
    (:func:`repro.costmodel.pricing.two_tier_rates`), or pass rates
    explicitly.
    """

    reserved_nodes: int = 0
    reserved_rate: float = 1.0
    spot_rate: float = 1.0
    unit_s: float = HOUR
    name = "reserved-spot"

    def __post_init__(self) -> None:
        if self.reserved_nodes < 0:
            raise ValueError("reserved_nodes must be >= 0")
        if self.reserved_rate < 0 or self.spot_rate < 0:
            raise ValueError("rates must be >= 0")
        if self.unit_s <= 0:
            raise ValueError("unit_s must be positive")

    def charge(
        self, n_nodes: int, held_s: float, open_nodes_at_open: int = 0
    ) -> float:
        units = hour_ceil(held_s, self.unit_s)
        headroom = max(self.reserved_nodes - open_nodes_at_open, 0)
        reserved_part = min(n_nodes, headroom)
        spot_part = n_nodes - reserved_part
        return units * (
            reserved_part * self.reserved_rate + spot_part * self.spot_rate
        )


#: CLI / scenario spellings → meter class (the one source of truth).
METER_FACTORIES = {
    "per-hour": PerStartedUnitMeter,
    "per-second": PerSecondMeter,
    "reserved-spot": TwoTierMeter,
}


def _register_meters() -> None:
    """Self-register every meter in the component registry.

    The factories go through :func:`make_meter`, so spec-built meters get
    the same validation and EC2-2009 tier-rate defaults as the CLI's
    ``--billing`` path.
    """
    import functools

    from repro.api.registry import Param, params_from_signature, register_component

    for name, cls in METER_FACTORIES.items():
        params = params_from_signature(cls)
        if name == "reserved-spot":
            # the dataclass default (0) is a sentinel make_meter rejects;
            # the catalog must advertise the parameter as required (the
            # spec path satisfies it by injecting the bundle's fixed size)
            params = tuple(
                Param("reserved_nodes") if p.name == "reserved_nodes" else p
                for p in params
            )
        register_component(
            "billing-meter",
            name,
            functools.partial(make_meter, name),
            params=params,
            description=(cls.__doc__ or "").strip().splitlines()[0],
        )


def make_meter(name: str, unit_s: float = HOUR, **kwargs) -> BillingMeter:
    """Meter by registry name (the ``--billing`` CLI contract).

    Extra ``kwargs`` go to the meter constructor (e.g. ``reserved_nodes``
    for ``reserved-spot``).  ``reserved-spot`` *requires* a reservation
    size: with ``reserved_nodes=0`` every lease lands in the spot tier and
    the meter silently degenerates to per-hour numbers, so callers that
    cannot supply one (see :func:`repro.api.run.resolve_meter` for the
    natural workload-derived choice) get a loud error instead of
    mislabeled data.
    """
    if name not in METER_FACTORIES:
        raise KeyError(
            f"unknown billing meter {name!r}; known: {sorted(METER_FACTORIES)}"
        )
    if name == "reserved-spot":
        if not kwargs.get("reserved_nodes"):
            raise ValueError(
                "reserved-spot needs reserved_nodes > 0 (a zero reservation "
                "bills identically to per-hour)"
            )
        if "reserved_rate" not in kwargs and "spot_rate" not in kwargs:
            # the same EC2-2009-derived rates the built-in scenarios use,
            # so factory-built meters and scenario data stay comparable
            from repro.costmodel.pricing import two_tier_rates

            kwargs["reserved_rate"], kwargs["spot_rate"] = two_tier_rates()
    return METER_FACTORIES[name](unit_s=unit_s, **kwargs)


_register_meters()
