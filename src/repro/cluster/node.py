"""Node model for the cloud platform.

The evaluation only needs node *counts*, but the CSF's deployment and setup
emulation (and several tests) benefit from explicit node identity and a
small state machine:

``FREE → ASSIGNING → ASSIGNED → RECLAIMING → FREE``

``ASSIGNING``/``RECLAIMING`` model the setup window (wiping the OS,
installing/uninstalling runtime-environment packages) that the paper
measures at 15.743 s per adjusted node (§4.5.4).

The reliability subsystem (:mod:`repro.reliability`) adds a ``FAILED``
state reachable from ``FREE`` and ``ASSIGNED``: a failed node is out of
service until :meth:`Node.repair` returns it to ``FREE`` — ownership is
dropped at failure time, mirroring how the range-indexed
:class:`~repro.provisioning.state.ClusterState` moves failed nodes out
of an owner's holdings.
"""

from __future__ import annotations

import enum
from typing import Optional


class NodeState(enum.Enum):
    FREE = "free"
    ASSIGNING = "assigning"
    ASSIGNED = "assigned"
    RECLAIMING = "reclaiming"
    FAILED = "failed"


_VALID_TRANSITIONS = {
    NodeState.FREE: {NodeState.ASSIGNING, NodeState.FAILED},
    NodeState.ASSIGNING: {NodeState.ASSIGNED},
    NodeState.ASSIGNED: {NodeState.RECLAIMING, NodeState.FAILED},
    NodeState.RECLAIMING: {NodeState.FREE},
    NodeState.FAILED: {NodeState.FREE},
}


class Node:
    """One physical node owned by the resource provider."""

    __slots__ = ("node_id", "state", "owner", "adjust_count")

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self.state = NodeState.FREE
        self.owner: Optional[str] = None
        self.adjust_count = 0

    def _transition(self, target: NodeState) -> None:
        if target not in _VALID_TRANSITIONS[self.state]:
            raise RuntimeError(
                f"node {self.node_id}: illegal transition {self.state.value} "
                f"-> {target.value}"
            )
        self.state = target

    def begin_assign(self, owner: str) -> None:
        self._transition(NodeState.ASSIGNING)
        self.owner = owner
        self.adjust_count += 1

    def finish_assign(self) -> None:
        self._transition(NodeState.ASSIGNED)

    def begin_reclaim(self) -> None:
        self._transition(NodeState.RECLAIMING)
        self.adjust_count += 1

    def finish_reclaim(self) -> None:
        self._transition(NodeState.FREE)
        self.owner = None

    def fail(self) -> None:
        """Node goes down (from FREE or ASSIGNED); ownership is dropped."""
        self._transition(NodeState.FAILED)
        self.owner = None

    def repair(self) -> None:
        """Repair finished: the node rejoins the free pool."""
        self._transition(NodeState.FREE)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.node_id} {self.state.value} owner={self.owner!r}>"


class NodePool:
    """The resource provider's node inventory.

    Assignment is instantaneous at this layer (the setup *cost* is accounted
    separately by :class:`repro.cluster.setup.SetupCostModel`); the two-phase
    state machine is exposed for components that want to model the window
    explicitly.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.nodes = [Node(i) for i in range(capacity)]
        self._free: list[int] = list(range(capacity - 1, -1, -1))  # stack of ids
        self._owned: dict[str, list[int]] = {}

    @property
    def capacity(self) -> int:
        return len(self.nodes)

    @property
    def free_count(self) -> int:
        return len(self._free)

    def owned_count(self, owner: str) -> int:
        return len(self._owned.get(owner, []))

    def assign(self, owner: str, n: int) -> list[Node]:
        """Atomically assign ``n`` free nodes to ``owner``.

        Raises :class:`ValueError` if fewer than ``n`` nodes are free (the
        provision policy decides grant-or-reject *before* calling this).
        """
        if n <= 0:
            raise ValueError("must assign at least one node")
        if n > self.free_count:
            raise ValueError(f"only {self.free_count} free nodes, requested {n}")
        taken = []
        bucket = self._owned.setdefault(owner, [])
        for _ in range(n):
            node_id = self._free.pop()
            node = self.nodes[node_id]
            node.begin_assign(owner)
            node.finish_assign()
            bucket.append(node_id)
            taken.append(node)
        return taken

    def reclaim(self, owner: str, n: int) -> list[Node]:
        """Reclaim ``n`` nodes from ``owner`` (most recently assigned first)."""
        bucket = self._owned.get(owner, [])
        if n <= 0 or n > len(bucket):
            raise ValueError(f"{owner!r} owns {len(bucket)} nodes, cannot reclaim {n}")
        freed = []
        for _ in range(n):
            node_id = bucket.pop()
            node = self.nodes[node_id]
            node.begin_reclaim()
            node.finish_reclaim()
            self._free.append(node_id)
            freed.append(node)
        return freed

    def fail(self, owner: Optional[str] = None) -> Node:
        """Fail one node: ``owner``'s most recently assigned, or a free one.

        Mirrors :meth:`repro.provisioning.state.ClusterState.fail_owned` /
        ``fail_free`` at the per-node-object level: the node leaves its
        owner's holdings (or the free stack) and sits in ``FAILED`` until
        :meth:`repair`.
        """
        if owner is None:
            if not self._free:
                raise ValueError("no free node to fail")
            node = self.nodes[self._free.pop()]
        else:
            bucket = self._owned.get(owner, [])
            if not bucket:
                raise ValueError(f"{owner!r} owns no nodes to fail")
            node = self.nodes[bucket.pop()]
        node.fail()
        return node

    def repair(self, node: Node) -> None:
        """Repair finished: the node rejoins the free stack."""
        node.repair()
        self._free.append(node.node_id)

    @property
    def failed_count(self) -> int:
        return sum(1 for node in self.nodes if node.state is NodeState.FAILED)

    def total_adjustments(self) -> int:
        """Sum of per-node adjust counts (assign + reclaim events)."""
        return sum(node.adjust_count for node in self.nodes)
