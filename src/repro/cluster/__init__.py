"""Cluster substrate: the resource provider's side of the cloud.

* :mod:`repro.cluster.lease` — hour-granular lease ledger (the paper's
  "time unit of leasing resources: one hour").
* :mod:`repro.cluster.provision` — the resource provision service: grants,
  rejections, reclaims, adjustment accounting (§3.2.2.3 provision policy).
* :mod:`repro.cluster.node` / :mod:`repro.cluster.vm` — node and virtual
  machine state machines used by the CSF's deployment emulation.
* :mod:`repro.cluster.setup` — per-node setup (wipe/redeploy) cost model
  (§4.5.4: 15.743 s per adjusted node).
"""

from repro.cluster.lease import Lease, LeaseLedger
from repro.cluster.node import Node, NodePool, NodeState
from repro.cluster.provision import ProvisionError, ResourceProvisionService
from repro.cluster.setup import SetupCostModel, SetupPolicy
from repro.cluster.vm import VirtualMachine, VMProvisionService, VMState

__all__ = [
    "Lease",
    "LeaseLedger",
    "Node",
    "NodePool",
    "NodeState",
    "ProvisionError",
    "ResourceProvisionService",
    "SetupCostModel",
    "SetupPolicy",
    "VMProvisionService",
    "VMState",
    "VirtualMachine",
]
