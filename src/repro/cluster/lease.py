"""Hour-granular lease accounting.

The paper charges leased resources in one-hour units ("we set a quite long
time unit: one hour ... In fact, EC2 also charges resources with this time
unit", §4.4).  A :class:`LeaseLedger` records every allocation as a
:class:`Lease` and bills it when it closes through a pluggable
:class:`~repro.provisioning.billing.BillingMeter`; the default meter is the
paper's per-started-unit rule — ``nodes × ceil(held/unit)`` lease units,
with a minimum of one unit per opened lease.

The ledger also keeps an event log of ``(time, ±nodes)`` deltas per client,
from which hourly usage series and peaks are derived (see
:mod:`repro.metrics.timeseries`).
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

from repro.workloads.job import hour_ceil

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.provisioning.billing import BillingMeter

HOUR = 3600.0


class Lease:
    """One open-ended allocation of ``n_nodes`` to ``client``."""

    _ids = itertools.count(1)

    __slots__ = ("lease_id", "client", "n_nodes", "t_open", "t_close", "kind",
                 "open_nodes_at_open")

    def __init__(self, client: str, n_nodes: int, t_open: float, kind: str = "dynamic"):
        if n_nodes <= 0:
            raise ValueError(f"lease must cover >= 1 node, got {n_nodes}")
        self.lease_id = next(Lease._ids)
        self.client = client
        self.n_nodes = int(n_nodes)
        self.t_open = float(t_open)
        self.t_close: Optional[float] = None
        self.kind = kind
        #: the client's already-open nodes when this lease opened (set by
        #: the ledger; tier assignment for two-tier billing meters)
        self.open_nodes_at_open = 0

    @property
    def open(self) -> bool:
        return self.t_close is None

    def held_seconds(self, now: Optional[float] = None) -> float:
        end = self.t_close if self.t_close is not None else now
        if end is None:
            raise ValueError("lease still open; pass `now`")
        return end - self.t_open

    def charged_units(self, unit: float = HOUR, now: Optional[float] = None) -> int:
        """Lease units billed: ``n_nodes × ceil(held/unit)``, min 1 unit/node."""
        return self.n_nodes * hour_ceil(self.held_seconds(now), unit)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.open else f"closed@{self.t_close:.0f}"
        return f"<Lease #{self.lease_id} {self.client} n={self.n_nodes} {state}>"


class LeaseLedger:
    """Tracks leases and billed node-hours per client."""

    def __init__(
        self, unit: float = HOUR, meter: Optional["BillingMeter"] = None
    ) -> None:
        if unit <= 0:
            raise ValueError("unit must be positive")
        self.unit = float(unit)
        if meter is None:
            from repro.provisioning.billing import PerStartedUnitMeter

            meter = PerStartedUnitMeter(unit_s=self.unit)
        self.meter = meter
        self._open: dict[int, Lease] = {}
        self._open_nodes: dict[str, int] = {}  # incremental per-client count
        self._charged: dict[str, float] = {}
        self._events: dict[str, list[tuple[float, int]]] = {}
        self.closed_leases: list[Lease] = []
        #: chronological ``(t, client, units)`` log of every billing event
        #: (lease close or failure shrink) — the rolling-metrics layer
        #: derives windowed cost-burn rates from it.  Charges land at the
        #: instant the meter runs, i.e. when the lease closes, not spread
        #: over the holding period (that is how the paper bills too).
        self.charge_log: list[tuple[float, str, float]] = []

    # ------------------------------------------------------------------ #
    def open_lease(
        self, client: str, n_nodes: int, t: float, kind: str = "dynamic"
    ) -> Lease:
        lease = Lease(client, n_nodes, t, kind)
        lease.open_nodes_at_open = self._open_nodes.get(client, 0)
        self._open[lease.lease_id] = lease
        self._open_nodes[client] = lease.open_nodes_at_open + n_nodes
        self._events.setdefault(client, []).append((t, n_nodes))
        return lease

    def close_lease(self, lease: Lease, t: float) -> float:
        """Close ``lease`` at time ``t`` and bill it. Returns charged units."""
        if not lease.open:
            raise ValueError(f"lease #{lease.lease_id} already closed")
        if t < lease.t_open:
            raise ValueError("cannot close a lease before it opened")
        lease.t_close = float(t)
        del self._open[lease.lease_id]
        self._open_nodes[lease.client] -= lease.n_nodes
        charged = self.meter.charge(
            lease.n_nodes, lease.held_seconds(), lease.open_nodes_at_open
        )
        self._charged[lease.client] = self._charged.get(lease.client, 0.0) + charged
        self._events.setdefault(lease.client, []).append((t, -lease.n_nodes))
        self.charge_log.append((float(t), lease.client, charged))
        self.closed_leases.append(lease)
        return charged

    def shrink_lease(self, lease: Lease, n_failed: int, t: float) -> float:
        """Stop metering ``n_failed`` of an open lease's nodes at ``t``.

        The reliability path: a node failure takes part of a lease out of
        service, and a dead node must not keep accruing charges.  The
        failed slice is billed *now* for its actual held time (as if a
        ``n_failed``-node lease closed at ``t``, in the tier the lease
        opened under); the surviving nodes keep running on the same lease
        and bill normally when it eventually closes.  Shrinking the whole
        lease is exactly :meth:`close_lease`.  Returns the units charged
        for the failed slice.
        """
        if not lease.open:
            raise ValueError(f"lease #{lease.lease_id} already closed")
        if n_failed <= 0 or n_failed > lease.n_nodes:
            raise ValueError(
                f"lease #{lease.lease_id} covers {lease.n_nodes} nodes, "
                f"cannot shrink by {n_failed}"
            )
        if t < lease.t_open:
            raise ValueError("cannot shrink a lease before it opened")
        if n_failed == lease.n_nodes:
            return self.close_lease(lease, t)
        charged = self.meter.charge(
            n_failed, t - lease.t_open, lease.open_nodes_at_open
        )
        lease.n_nodes -= n_failed
        self._open_nodes[lease.client] -= n_failed
        self._charged[lease.client] = (
            self._charged.get(lease.client, 0.0) + charged
        )
        self._events.setdefault(lease.client, []).append((t, -n_failed))
        self.charge_log.append((float(t), lease.client, charged))
        return charged

    def close_all(self, t: float, client: Optional[str] = None) -> float:
        """Close every open lease (optionally only ``client``'s) at ``t``."""
        total = 0.0
        for lease in list(self._open.values()):
            if client is None or lease.client == client:
                total += self.close_lease(lease, t)
        return total

    # ------------------------------------------------------------------ #
    def open_nodes(self, client: Optional[str] = None) -> int:
        if client is not None:
            return self._open_nodes.get(client, 0)
        return sum(self._open_nodes.values())

    def open_leases(self, client: Optional[str] = None) -> list[Lease]:
        return [
            l for l in self._open.values() if client is None or l.client == client
        ]

    def charged_units_total(self, client: Optional[str] = None) -> float:
        """Billed lease units (node-hours for the default unit) so far."""
        if client is not None:
            return self._charged.get(client, 0.0)
        return sum(self._charged.values())

    def events(self, client: Optional[str] = None) -> list[tuple[float, int]]:
        """Chronological ``(time, ±nodes)`` usage deltas."""
        if client is not None:
            return sorted(self._events.get(client, []))
        merged: list[tuple[float, int]] = []
        for evs in self._events.values():
            merged.extend(evs)
        return sorted(merged)

    def clients(self) -> list[str]:
        return sorted(self._events)
