"""Virtual machine provisioning emulation.

The real DawningCloud provisions resources "in terms of nodes or virtual
machines" via a XEN-backed VM provision service (§3.1.2).  The evaluation
works at node granularity, but the CSF still exposes the VM layer; this
module provides a faithful-but-light state machine so the lifecycle paths
(and their latencies) exist and are testable.

``REQUESTED → BOOTING → RUNNING → DESTROYED``
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional

from repro.simkit.engine import SimulationEngine


class VMState(enum.Enum):
    REQUESTED = "requested"
    BOOTING = "booting"
    RUNNING = "running"
    DESTROYED = "destroyed"


_VALID = {
    VMState.REQUESTED: {VMState.BOOTING, VMState.DESTROYED},
    VMState.BOOTING: {VMState.RUNNING, VMState.DESTROYED},
    VMState.RUNNING: {VMState.DESTROYED},
    VMState.DESTROYED: set(),
}


class VirtualMachine:
    """One guest instance pinned to a physical node."""

    _ids = itertools.count(1)

    def __init__(self, node_id: int, image: str = "default") -> None:
        self.vm_id = next(VirtualMachine._ids)
        self.node_id = node_id
        self.image = image
        self.state = VMState.REQUESTED
        self.boot_time: Optional[float] = None

    def _transition(self, target: VMState) -> None:
        if target not in _VALID[self.state]:
            raise RuntimeError(
                f"vm {self.vm_id}: illegal transition {self.state.value} -> "
                f"{target.value}"
            )
        self.state = target

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<VM {self.vm_id} on node {self.node_id} {self.state.value}>"


class VMProvisionService:
    """Creates and destroys VMs with a configurable boot latency."""

    def __init__(self, engine: SimulationEngine, boot_latency_s: float = 30.0) -> None:
        if boot_latency_s < 0:
            raise ValueError("boot latency must be >= 0")
        self.engine = engine
        self.boot_latency_s = float(boot_latency_s)
        self.vms: dict[int, VirtualMachine] = {}

    def create(
        self,
        node_id: int,
        image: str = "default",
        on_running: Optional[Callable[[VirtualMachine], None]] = None,
    ) -> VirtualMachine:
        """Start booting a VM; ``on_running`` fires when it is up."""
        vm = VirtualMachine(node_id, image)
        self.vms[vm.vm_id] = vm
        vm._transition(VMState.BOOTING)
        # bound method: boot completions sit in the heap for the boot
        # latency and must deepcopy through engine snapshots
        self.engine.schedule(self.boot_latency_s, self._finish_boot, vm, on_running)
        return vm

    def _finish_boot(self, vm: VirtualMachine, on_running) -> None:
        if vm.state is VMState.BOOTING:  # not destroyed mid-boot
            vm._transition(VMState.RUNNING)
            vm.boot_time = self.engine.now
            if on_running is not None:
                on_running(vm)

    def destroy(self, vm: VirtualMachine) -> None:
        vm._transition(VMState.DESTROYED)

    def running_count(self) -> int:
        return sum(1 for vm in self.vms.values() if vm.state is VMState.RUNNING)
