"""The resource provision service.

This is the resource provider's agent in the DSP model (§3.2): it owns the
node pool, grants or rejects resource requests from TRE servers, reclaims
released resources, and triggers the setup policy for every adjusted node.

The provision policy is the paper's simple one (§3.2.2.3):

1. provision the initial resources at TRE startup;
2. on a dynamic request, assign the full amount or **reject** (no partial
   grants);
3. on release, passively reclaim everything released.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.lease import HOUR, Lease, LeaseLedger
from repro.cluster.setup import SetupCostModel, SetupPolicy
from repro.provisioning.billing import BillingMeter
from repro.provisioning.state import ClusterState


class ProvisionError(RuntimeError):
    """Raised for invalid provision-service operations."""


@dataclass
class AdjustmentRecord:
    """One grant or reclaim event, for the Figure-14 accounting."""

    time: float
    client: str
    n_nodes: int  # positive = assigned, negative = reclaimed
    kind: str  # "initial" | "dynamic" | "release" | "shutdown" | "failure" | "repair"


class ResourceProvisionService:
    """Grants node leases to runtime environments out of one shared pool."""

    def __init__(
        self,
        capacity: int,
        lease_unit: float = HOUR,
        setup_policy: SetupPolicy = SetupPolicy(),
        meter: Optional[BillingMeter] = None,
    ) -> None:
        self.state = ClusterState(capacity)
        self.ledger = LeaseLedger(unit=lease_unit, meter=meter)
        self.setup = SetupCostModel(setup_policy)
        self.adjustments: list[AdjustmentRecord] = []
        self.rejected_requests = 0
        self.granted_requests = 0
        #: observers of lease shrinks (node failures): a shrink can make a
        #: suspended hourly release check releasable without any idle
        #: change, so fast-forwarding consumers must re-evaluate on it
        self.on_lease_shrink: list = []

    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self.state.capacity

    @property
    def free_nodes(self) -> int:
        return self.state.free_count

    @property
    def meter(self) -> BillingMeter:
        return self.ledger.meter

    def allocated_nodes(self, client: Optional[str] = None) -> int:
        if client is None:
            return self.state.allocated_count
        return self.state.owned_count(client)

    # ------------------------------------------------------------------ #
    def request(
        self, client: str, n_nodes: int, t: float, kind: str = "dynamic"
    ) -> Optional[Lease]:
        """Request ``n_nodes`` for ``client`` at time ``t``.

        Returns the opened :class:`Lease`, or ``None`` if the pool cannot
        satisfy the request in full (the paper's reject behaviour).
        """
        if n_nodes <= 0:
            raise ProvisionError(f"request must be positive, got {n_nodes}")
        if n_nodes > self.state.free_count:
            self.rejected_requests += 1
            return None
        self.state.assign(client, n_nodes, t)
        lease = self.ledger.open_lease(client, n_nodes, t, kind=kind)
        self.setup.record_adjustment(n_nodes)
        self.adjustments.append(AdjustmentRecord(t, client, n_nodes, kind))
        self.granted_requests += 1
        return lease

    def release(self, lease: Lease, t: float, kind: str = "release") -> float:
        """Release a lease; reclaims the nodes and bills the lease.

        Returns the billed lease units.
        """
        if not lease.open:
            raise ProvisionError(f"lease #{lease.lease_id} already closed")
        charged = self.ledger.close_lease(lease, t)
        self.state.reclaim(lease.client, lease.n_nodes, t)
        self.setup.record_adjustment(lease.n_nodes)
        self.adjustments.append(
            AdjustmentRecord(t, lease.client, -lease.n_nodes, kind)
        )
        return charged

    # ------------------------------------------------------------------ #
    # failure / repair (the reliability subsystem's entry points)
    # ------------------------------------------------------------------ #
    @property
    def failed_nodes(self) -> int:
        """Nodes currently out of service across the whole pool."""
        return self.state.failed_count

    def fail_node(self, t: float, client: Optional[str] = None) -> None:
        """One node goes down at ``t``.

        With a ``client``, the failure strikes one of that client's leased
        nodes: the node leaves the client's holdings, and the most
        recently opened lease covering it shrinks — the dead node is
        billed for its actual held time and **stops metering** from ``t``
        on (:meth:`~repro.cluster.lease.LeaseLedger.shrink_lease`).
        Without a client, a free node goes down.  Repair returns the node
        to the *free* pool either way (:meth:`repair_node`); clients
        re-acquire capacity through their normal provisioning path.
        """
        if client is None:
            self.state.fail_free(1, t)
        else:
            self.state.fail_owned(client, 1, t)
            lease = max(
                self.ledger.open_leases(client),
                key=lambda lease: lease.lease_id,
            )
            self.ledger.shrink_lease(lease, 1, t)
            self.setup.record_adjustment(1)
            self.adjustments.append(AdjustmentRecord(t, client, -1, "failure"))
            for hook in self.on_lease_shrink:
                hook(lease)

    def repair_node(self, t: float) -> None:
        """One repaired node rejoins the free pool at ``t``."""
        self.state.repair(1, t)

    def fast_forward(self, t: float) -> None:
        """Bring time-accruing state to ``t`` with no inventory change.

        Only the cluster state's busy-time integral accrues continuously;
        the meter bills at lease boundaries (open/shrink/close events),
        which the fluid tier never skips — so jumping the accounting clock
        is the complete state update for a quiescent window.
        """
        self.state.fast_forward(t)

    def shutdown_client(self, client: str, t: float) -> float:
        """Close every lease of ``client`` (TRE destruction, §2.2 step 8)."""
        total = 0.0
        for lease in self.ledger.open_leases(client):
            total += self.release(lease, t, kind="shutdown")
        return total

    # ------------------------------------------------------------------ #
    def consumption_node_hours(self, client: Optional[str] = None) -> float:
        """Billed node-hours so far (open leases not yet included)."""
        return self.ledger.charged_units_total(client)

    def occupancy_node_hours(self, now: float) -> float:
        """Exact pool occupancy ∫allocated dt in node-hours, up to ``now``.

        The meter-independent counterpart of billed consumption (what the
        provider's hardware actually carried), accumulated incrementally
        by the cluster state — O(1), no event-log scan.
        """
        return self.state.busy_node_seconds(now) / HOUR

    def adjusted_node_count(self, client: Optional[str] = None) -> int:
        """Accumulated size of adjusting nodes (Figure 14's metric)."""
        return sum(
            abs(rec.n_nodes)
            for rec in self.adjustments
            if client is None or rec.client == client
        )

    def usage_events(self, client: Optional[str] = None) -> list[tuple[float, int]]:
        """Chronological ``(time, ±nodes)`` deltas for time-series analysis."""
        return self.ledger.events(client)
