"""Setup policy and cost model.

Section 3.2.1: "for each assigned or reclaimed node, the setup policy is
triggered ... such as wiping off the operating system or doing nothing."
Section 4.5.4 measures the total cost of adjusting one node at **15.743 s**
(stopping + uninstalling the previous RE's packages, installing + starting
the new RE's packages) and reports DawningCloud's average management
overhead as ≈341 s per hour for the resource provider.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper-measured cost of adjusting (assigning or reclaiming) one node.
DEFAULT_ADJUST_COST_S = 15.743


@dataclass(frozen=True)
class SetupPolicy:
    """What happens when a node changes hands.

    ``wipe_os`` selects the heavyweight path (redeploy from bare metal);
    the paper's measured 15.743 s figure explicitly *excludes* the OS wipe,
    so the default models package-level setup only.
    """

    wipe_os: bool = False
    package_setup_cost_s: float = DEFAULT_ADJUST_COST_S
    os_wipe_cost_s: float = 300.0

    @property
    def per_node_cost_s(self) -> float:
        cost = self.package_setup_cost_s
        if self.wipe_os:
            cost += self.os_wipe_cost_s
        return cost


class SetupCostModel:
    """Accumulates management overhead from node adjustments."""

    def __init__(self, policy: SetupPolicy = SetupPolicy()) -> None:
        self.policy = policy
        self.adjusted_nodes = 0

    def record_adjustment(self, n_nodes: int) -> float:
        """Record ``n_nodes`` changing hands; returns the overhead incurred."""
        if n_nodes < 0:
            raise ValueError("n_nodes must be >= 0")
        self.adjusted_nodes += n_nodes
        return n_nodes * self.policy.per_node_cost_s

    @property
    def total_overhead_s(self) -> float:
        return self.adjusted_nodes * self.policy.per_node_cost_s

    def overhead_per_hour(self, horizon_s: float) -> float:
        """Average management overhead in seconds per simulated hour."""
        if horizon_s <= 0:
            raise ValueError("horizon must be positive")
        return self.total_overhead_s / (horizon_s / 3600.0)
