"""Consolidated comparison of all four systems (§4.5.3-4.5.4).

For the resource-provider perspective the paper consolidates the three
service providers' workloads and compares total consumption (Figure 12),
peak consumption (Figure 13) and accumulated node adjustments (Figure 14)
across DawningCloud, SSP, DRP and DCS.

DCS/SSP/DRP have no cross-provider interaction (fixed machines or an
effectively unbounded pool), so each provider runs on its own engine and
the aggregates are merged; DawningCloud genuinely shares one provision
service across TREs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.policies import ResourceManagementPolicy
from repro.metrics.results import ProviderMetrics, ResourceProviderMetrics
from repro.provisioning.billing import BillingMeter
from repro.systems.base import WorkloadBundle
from repro.systems.drp import run_drp
from repro.systems.dsp_runner import (
    DEFAULT_CAPACITY,
    run_dawningcloud_consolidated,
)
from repro.systems.fixed import run_dcs, run_ssp

SYSTEMS = ("DCS", "SSP", "DRP", "DawningCloud")


@dataclass
class ConsolidationResult:
    """Per-system aggregates plus the per-provider breakdown."""

    aggregates: dict[str, ResourceProviderMetrics] = field(default_factory=dict)

    def aggregate(self, system: str) -> ResourceProviderMetrics:
        return self.aggregates[system]

    def provider(self, system: str, name: str) -> ProviderMetrics:
        for p in self.aggregates[system].providers:
            if p.provider == name:
                return p
        raise KeyError(f"{system}/{name}")

    def savings_vs(self, system: str, baseline: str) -> float:
        """Total-consumption saving of ``system`` against ``baseline``."""
        base = self.aggregates[baseline].total_consumption
        return 1.0 - self.aggregates[system].total_consumption / base

    def peak_ratio(self, system: str, baseline: str) -> float:
        base = self.aggregates[baseline].peak_nodes
        return self.aggregates[system].peak_nodes / base if base else float("nan")


def run_all_systems(
    bundles: list[WorkloadBundle],
    policies: dict[str, ResourceManagementPolicy],
    capacity: int = DEFAULT_CAPACITY,
    horizon: Optional[float] = None,
    meter: Optional[BillingMeter] = None,
) -> ConsolidationResult:
    """Run every bundle through all four systems and aggregate.

    ``meter`` re-bills every *leased* system (SSP, DRP, DawningCloud)
    under a different billing rule; DCS owns its machine, so its §4.3
    closed form is meter-independent.
    """
    if horizon is None:
        horizon = max(float(b.horizon) for b in bundles if b.kind == "htc")  # type: ignore[arg-type]
    result = ConsolidationResult()
    for system, runner in (("DCS", run_dcs), ("SSP", run_ssp), ("DRP", run_drp)):
        providers = [runner(b, meter=meter) for b in bundles]
        result.aggregates[system] = ResourceProviderMetrics.from_providers(
            system, providers, horizon
        )
    result.aggregates["DawningCloud"] = run_dawningcloud_consolidated(
        bundles, policies, capacity=capacity, horizon=horizon, meter=meter
    )
    return result
