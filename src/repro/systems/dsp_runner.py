"""DawningCloud runners.

Two granularities, matching the paper's evaluation:

* :func:`run_dawningcloud_htc` / :func:`run_dawningcloud_mtc` — one service
  provider alone on the cloud (the per-provider rows of Tables 2-4; the
  provider-side metrics are unaffected by consolidation because the pool is
  large enough that requests are never rejected).
* :func:`run_dawningcloud_consolidated` — all service providers together on
  one resource provider (Figures 12-14), which is the configuration that
  realizes the economies of scale.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.dawningcloud import DawningCloud
from repro.core.policies import ResourceManagementPolicy
from repro.metrics.results import ProviderMetrics, ResourceProviderMetrics
from repro.provisioning.billing import BillingMeter
from repro.systems.base import LiveRun, WorkloadBundle, run_until

if TYPE_CHECKING:  # pragma: no cover - reliability is an optional layer
    from repro.reliability.failures import FailureModel
    from repro.reliability.injector import NodeFailureInjector

HOUR = 3600.0

#: Default cloud-pool size.  The paper's consolidated DawningCloud peak is
#: only 1.06× the DCS total (438 nodes), i.e. the platform partition backing
#: the experiment was barely larger than the three dedicated systems
#: combined — the all-or-nothing provision policy *rejecting* oversized
#: dynamic requests is what bounds DawningCloud's expansion under bursts.
#: 420 nodes reproduces that regime.
DEFAULT_CAPACITY = 420


def _elastic_injector(
    cloud: DawningCloud,
    bundle: WorkloadBundle,
    failures: "FailureModel",
    seed: int,
) -> "NodeFailureInjector":
    """An injector for a DawningCloud TRE (must already exist).

    The slot set is sized to the workload's dedicated-machine scale
    (``bundle.fixed_nodes``) so every system faces the same failure
    exposure; repaired nodes rejoin the *provider's* free pool and the
    TRE re-grows through its resource-management policy.
    """
    from repro.reliability.injector import NodeFailureInjector
    from repro.simkit.rng import RandomStreams

    return NodeFailureInjector(
        cloud.engine,
        cloud.tre(bundle.name).server,
        failures,
        RandomStreams(seed),
        n_slots=int(bundle.fixed_nodes),  # type: ignore[arg-type]
        provision=cloud.provision,
        restore="provider",
    )


def _retarget_policy(
    cloud: DawningCloud, name: str, policy: ResourceManagementPolicy
) -> None:
    """Swap a provider's resource-management policy on a live world.

    Only sound while the old policy is provably unread: before the first
    workload submission every scan sees zero demand and returns before
    consulting the threshold ratio, and no dynamic grant exists yet, so a
    branch retargeted at or before that instant continues byte-identically
    to a cold run built with ``policy``.  ``initial_nodes`` is burned into
    the TRE's startup lease (and ``scan_interval_s`` into its scan timer)
    at creation, so neither can be retargeted on an existing TRE.
    """
    from dataclasses import replace

    tre = cloud._tres.get(name)
    current = (
        tre.spec.policy if tre is not None else cloud._pending_specs[name].policy
    )
    if policy.initial_nodes != current.initial_nodes and tre is not None:
        raise ValueError(
            f"cannot retarget initial_nodes on a live TRE "
            f"({current.initial_nodes} -> {policy.initial_nodes}); B is the "
            f"startup lease, branch from a base built with the right B"
        )
    if tre is None:
        # TRE not created yet (MTC, create_at in the future): the policy
        # simply rides along in the pending spec.
        cloud._pending_specs[name] = replace(
            cloud._pending_specs[name], policy=policy
        )
        return
    if policy.scan_interval_s != current.scan_interval_s:
        raise ValueError(
            f"cannot retarget scan_interval_s on a live TRE "
            f"({current.scan_interval_s} -> {policy.scan_interval_s}); the "
            f"scan timer was armed at TRE creation"
        )
    tre.manager.policy = policy
    tre.spec = replace(tre.spec, policy=policy)


class DawningCloudHtcLiveRun(LiveRun):
    """One HTC provider on DawningCloud, built/loaded but not yet run."""

    def __init__(
        self,
        bundle: WorkloadBundle,
        policy: ResourceManagementPolicy,
        capacity: int = DEFAULT_CAPACITY,
        meter: Optional[BillingMeter] = None,
        failures: Optional["FailureModel"] = None,
        seed: int = 0,
        lease_unit_s: float = HOUR,
        setup_cost_s: Optional[float] = None,
        scheduler=None,
    ) -> None:
        if bundle.kind != "htc":
            raise ValueError("expected an HTC bundle")
        from repro.cluster.setup import SetupPolicy

        setup_policy = (
            SetupPolicy(package_setup_cost_s=setup_cost_s)
            if setup_cost_s is not None
            else SetupPolicy()
        )
        cloud = self.cloud = DawningCloud(
            capacity=capacity, lease_unit_s=lease_unit_s,
            setup_policy=setup_policy, meter=meter,
        )
        self.engine = cloud.engine
        self.name = bundle.name
        cloud.add_htc_provider(
            bundle.name, policy,
            scheduler_factory=(
                None if scheduler is None else (lambda: scheduler)
            ),
        )
        self.injector = (
            _elastic_injector(cloud, bundle, failures, seed).start()
            if failures is not None
            else None
        )
        cloud.submit_trace(bundle.name, bundle.materialize_trace())
        self.horizon = float(bundle.horizon)  # type: ignore[arg-type]

    def retarget_policy(self, policy: ResourceManagementPolicy) -> None:
        """Swap B/R on a forked branch (see :func:`_retarget_policy`)."""
        _retarget_policy(self.cloud, self.name, policy)

    def complete(self) -> None:
        self.cloud.run(until=self.horizon)

    def finish(self) -> ProviderMetrics:
        from repro.metrics.jobstats import compute_statistics

        self.cloud.shutdown()
        metrics = self.cloud.provider_metrics(self.name, self.horizon)
        if self.injector is not None:
            metrics.reliability = self.injector.finalize(self.horizon)
        metrics.wait_stats = compute_statistics(
            self.cloud.tre(self.name).server.completed
        ).to_row()
        setup = self.cloud.provision.setup
        metrics.setup_overhead_s = setup.total_overhead_s
        metrics.setup_overhead_s_per_hour = setup.overhead_per_hour(
            self.horizon
        )
        return metrics


def run_dawningcloud_htc(
    bundle: WorkloadBundle,
    policy: ResourceManagementPolicy,
    capacity: int = DEFAULT_CAPACITY,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
    lease_unit_s: float = HOUR,
    setup_cost_s: Optional[float] = None,
    scheduler=None,
) -> ProviderMetrics:
    """One HTC service provider on DawningCloud (standalone)."""
    return DawningCloudHtcLiveRun(
        bundle, policy, capacity=capacity, meter=meter, failures=failures,
        seed=seed, lease_unit_s=lease_unit_s, setup_cost_s=setup_cost_s,
        scheduler=scheduler,
    ).run()


class DawningCloudMtcLiveRun(LiveRun):
    """One MTC provider on DawningCloud, built/loaded but not yet run."""

    def __init__(
        self,
        bundle: WorkloadBundle,
        policy: ResourceManagementPolicy,
        capacity: int = DEFAULT_CAPACITY,
        meter: Optional[BillingMeter] = None,
        failures: Optional["FailureModel"] = None,
        seed: int = 0,
    ) -> None:
        if bundle.kind != "mtc":
            raise ValueError("expected an MTC bundle")
        workflow = self.workflow = bundle.materialize_workflow()
        cloud = self.cloud = DawningCloud(capacity=capacity, meter=meter)
        self.engine = cloud.engine
        self.name = bundle.name
        cloud.add_mtc_provider(
            bundle.name, policy, auto_destroy=True, create_at=workflow.submit_time
        )
        self.injector = None
        if failures is not None:
            # the TRE materializes at submit_time (priority -1); attach the
            # injector right after it exists, at the same instant.  Bound
            # method (not a closure): the pending event must survive
            # engine snapshots.
            self._pending_injection = (bundle, failures, seed)
            cloud.engine.schedule_at(workflow.submit_time, self._attach_injector)
        cloud.submit_workflow(bundle.name, workflow)
        self.horizon = float(bundle.horizon)  # type: ignore[arg-type]

    def _attach_injector(self) -> None:
        bundle, failures, seed = self._pending_injection
        self.injector = _elastic_injector(
            self.cloud, bundle, failures, seed
        ).start()

    def retarget_policy(self, policy: ResourceManagementPolicy) -> None:
        """Swap B/R on a forked branch (see :func:`_retarget_policy`)."""
        _retarget_policy(self.cloud, self.name, policy)

    def complete(self) -> None:
        run_until(self.engine, self.workflow.completed, hard_limit=self.horizon)

    def finish(self) -> ProviderMetrics:
        self.cloud.shutdown()
        metrics = self.cloud.provider_metrics(self.name, self.engine.now)
        if self.injector is not None:
            metrics.reliability = self.injector.finalize(self.engine.now)
        return metrics


def run_dawningcloud_mtc(
    bundle: WorkloadBundle,
    policy: ResourceManagementPolicy,
    capacity: int = DEFAULT_CAPACITY,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
) -> ProviderMetrics:
    """One MTC service provider on DawningCloud (standalone).

    The TRE is created on demand, the workflow runs, and the TRE is
    destroyed at completion, so the leases are billed for the workload
    period only (1 hour for Montage → the paper's 166 node-hours).
    With a failure model, injection starts at TRE creation (the machine
    partition exists only for the workload period).
    """
    return DawningCloudMtcLiveRun(
        bundle, policy, capacity=capacity, meter=meter, failures=failures,
        seed=seed,
    ).run()


def run_dawningcloud_consolidated(
    bundles: list[WorkloadBundle],
    policies: dict[str, ResourceManagementPolicy],
    capacity: int = DEFAULT_CAPACITY,
    horizon: Optional[float] = None,
    meter: Optional[BillingMeter] = None,
) -> ResourceProviderMetrics:
    """All service providers consolidated on one DawningCloud platform."""
    cloud = DawningCloud(capacity=capacity, meter=meter)
    if horizon is None:
        horizon = max(float(b.horizon) for b in bundles if b.kind == "htc")  # type: ignore[arg-type]
    pending_workflows = []
    for bundle in bundles:
        policy = policies[bundle.name]
        if bundle.kind == "htc":
            cloud.add_htc_provider(bundle.name, policy)
            cloud.submit_trace(bundle.name, bundle.materialize_trace())
        else:
            workflow = bundle.materialize_workflow()
            pending_workflows.append(workflow)
            cloud.add_mtc_provider(
                bundle.name, policy, auto_destroy=True, create_at=workflow.submit_time
            )
            cloud.submit_workflow(bundle.name, workflow)
    cloud.run(until=horizon)
    # MTC workflows submitted near the horizon may still be in flight;
    # in the paper's setup they complete well inside the window.
    cloud.shutdown()
    return cloud.resource_provider_metrics(horizon)
