"""DawningCloud runners.

Two granularities, matching the paper's evaluation:

* :func:`run_dawningcloud_htc` / :func:`run_dawningcloud_mtc` — one service
  provider alone on the cloud (the per-provider rows of Tables 2-4; the
  provider-side metrics are unaffected by consolidation because the pool is
  large enough that requests are never rejected).
* :func:`run_dawningcloud_consolidated` — all service providers together on
  one resource provider (Figures 12-14), which is the configuration that
  realizes the economies of scale.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.dawningcloud import DawningCloud
from repro.core.policies import ResourceManagementPolicy
from repro.metrics.results import ProviderMetrics, ResourceProviderMetrics
from repro.provisioning.billing import BillingMeter
from repro.systems.base import WorkloadBundle, run_until

if TYPE_CHECKING:  # pragma: no cover - reliability is an optional layer
    from repro.reliability.failures import FailureModel
    from repro.reliability.injector import NodeFailureInjector

HOUR = 3600.0

#: Default cloud-pool size.  The paper's consolidated DawningCloud peak is
#: only 1.06× the DCS total (438 nodes), i.e. the platform partition backing
#: the experiment was barely larger than the three dedicated systems
#: combined — the all-or-nothing provision policy *rejecting* oversized
#: dynamic requests is what bounds DawningCloud's expansion under bursts.
#: 420 nodes reproduces that regime.
DEFAULT_CAPACITY = 420


def _elastic_injector(
    cloud: DawningCloud,
    bundle: WorkloadBundle,
    failures: "FailureModel",
    seed: int,
) -> "NodeFailureInjector":
    """An injector for a DawningCloud TRE (must already exist).

    The slot set is sized to the workload's dedicated-machine scale
    (``bundle.fixed_nodes``) so every system faces the same failure
    exposure; repaired nodes rejoin the *provider's* free pool and the
    TRE re-grows through its resource-management policy.
    """
    from repro.reliability.injector import NodeFailureInjector
    from repro.simkit.rng import RandomStreams

    return NodeFailureInjector(
        cloud.engine,
        cloud.tre(bundle.name).server,
        failures,
        RandomStreams(seed),
        n_slots=int(bundle.fixed_nodes),  # type: ignore[arg-type]
        provision=cloud.provision,
        restore="provider",
    )


def run_dawningcloud_htc(
    bundle: WorkloadBundle,
    policy: ResourceManagementPolicy,
    capacity: int = DEFAULT_CAPACITY,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
) -> ProviderMetrics:
    """One HTC service provider on DawningCloud (standalone)."""
    if bundle.kind != "htc":
        raise ValueError("expected an HTC bundle")
    cloud = DawningCloud(capacity=capacity, meter=meter)
    cloud.add_htc_provider(bundle.name, policy)
    injector = (
        _elastic_injector(cloud, bundle, failures, seed).start()
        if failures is not None
        else None
    )
    cloud.submit_trace(bundle.name, bundle.materialize_trace())
    horizon = float(bundle.horizon)  # type: ignore[arg-type]
    cloud.run(until=horizon)
    cloud.shutdown()
    metrics = cloud.provider_metrics(bundle.name, horizon)
    if injector is not None:
        metrics.reliability = injector.finalize(horizon)
    return metrics


def run_dawningcloud_mtc(
    bundle: WorkloadBundle,
    policy: ResourceManagementPolicy,
    capacity: int = DEFAULT_CAPACITY,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
) -> ProviderMetrics:
    """One MTC service provider on DawningCloud (standalone).

    The TRE is created on demand, the workflow runs, and the TRE is
    destroyed at completion, so the leases are billed for the workload
    period only (1 hour for Montage → the paper's 166 node-hours).
    With a failure model, injection starts at TRE creation (the machine
    partition exists only for the workload period).
    """
    if bundle.kind != "mtc":
        raise ValueError("expected an MTC bundle")
    workflow = bundle.materialize_workflow()
    cloud = DawningCloud(capacity=capacity, meter=meter)
    cloud.add_mtc_provider(
        bundle.name, policy, auto_destroy=True, create_at=workflow.submit_time
    )
    injectors: list = []
    if failures is not None:
        # the TRE materializes at submit_time (priority -1); attach the
        # injector right after it exists, at the same instant
        cloud.engine.schedule_at(
            workflow.submit_time,
            lambda: injectors.append(
                _elastic_injector(cloud, bundle, failures, seed).start()
            ),
        )
    cloud.submit_workflow(bundle.name, workflow)
    run_until(cloud.engine, workflow.completed, hard_limit=float(bundle.horizon))  # type: ignore[arg-type]
    cloud.shutdown()
    metrics = cloud.provider_metrics(bundle.name, cloud.engine.now)
    if injectors:
        metrics.reliability = injectors[0].finalize(cloud.engine.now)
    return metrics


def run_dawningcloud_consolidated(
    bundles: list[WorkloadBundle],
    policies: dict[str, ResourceManagementPolicy],
    capacity: int = DEFAULT_CAPACITY,
    horizon: Optional[float] = None,
    meter: Optional[BillingMeter] = None,
) -> ResourceProviderMetrics:
    """All service providers consolidated on one DawningCloud platform."""
    cloud = DawningCloud(capacity=capacity, meter=meter)
    if horizon is None:
        horizon = max(float(b.horizon) for b in bundles if b.kind == "htc")  # type: ignore[arg-type]
    pending_workflows = []
    for bundle in bundles:
        policy = policies[bundle.name]
        if bundle.kind == "htc":
            cloud.add_htc_provider(bundle.name, policy)
            cloud.submit_trace(bundle.name, bundle.materialize_trace())
        else:
            workflow = bundle.materialize_workflow()
            pending_workflows.append(workflow)
            cloud.add_mtc_provider(
                bundle.name, policy, auto_destroy=True, create_at=workflow.submit_time
            )
            cloud.submit_workflow(bundle.name, workflow)
    cloud.run(until=horizon)
    # MTC workflows submitted near the horizon may still be in flight;
    # in the paper's setup they complete well inside the window.
    cloud.shutdown()
    return cloud.resource_provider_metrics(horizon)
