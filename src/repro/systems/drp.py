"""The DRP system: direct resource provision (§4.1, Figure 7).

Each end user leases resources directly from the resource provider (as
with raw EC2); there is no runtime environment and no queue — "all jobs run
immediately without queuing" (§4.4) — and leases are billed per started
hour.

* **HTC**: each job is one lease of ``size`` nodes held for the job's
  runtime, so the billed cost is ``Σ size × ceil(runtime/1h)`` — the
  hour-rounding penalty that makes DRP *more* expensive than DCS for the
  short-job NASA trace (Table 2's -25.8%).
* **MTC**: the workflow's end user keeps a pool of leased nodes.  A ready
  task grabs an idle leased node before leasing a new one, and idle nodes
  are returned at the hourly check (manual management mimicking what a
  cost-aware user does under hourly billing).  For Montage this makes the
  cost equal the widest ready level — the paper's 662 node-hours against
  166 for DawningCloud (Table 4, the 74.9% saving).

Since the provisioning-kernel refactor the lease handling itself lives in
:mod:`repro.provisioning.policies` — the HTC runner is
:class:`~repro.provisioning.policies.PerJobLease`, the MTC user pool and
the pooling ablations are :class:`~repro.provisioning.policies.PooledLease`
under different bucket keys — and every runner takes a pluggable
:class:`~repro.provisioning.billing.BillingMeter`.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.cluster.lease import Lease
from repro.cluster.provision import ResourceProvisionService
from repro.metrics.results import ProviderMetrics
from repro.metrics.timeseries import UsageRecorder
from repro.provisioning.billing import BillingMeter
from repro.provisioning.policies import PerJobLease, PooledLease
from repro.simkit.engine import SimulationEngine
from repro.systems.base import LiveRun, WorkloadBundle, run_until
from repro.systems.emulator import JobEmulator
from repro.workloads.job import Job, JobState
from repro.workloads.workflow import Workflow

if TYPE_CHECKING:  # pragma: no cover - reliability is an optional layer
    from repro.reliability.failures import FailureModel

#: The cloud is effectively unbounded from a single tenant's perspective.
DEFAULT_DRP_CAPACITY = 1_000_000


class _DrpHtcRun:
    """One HTC trace through DRP: lease per job, no queue.

    With a failure model, each running job is exposed to per-node
    failures: the job's TTF is the minimum of one draw per occupied node
    (from the job's private RNG stream, ``failure:drp:job<id>`` — the
    same determinism argument as the slot streams).  A failed job's
    lease closes immediately (the dead instance stops billing), the end
    user re-leases healthy nodes on the spot — repair time is the
    *provider's* problem at cloud scale — and the job restarts from its
    last checkpoint (everything, without one).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        capacity: int,
        meter: Optional[BillingMeter] = None,
        failures: Optional["FailureModel"] = None,
        seed: int = 0,
    ) -> None:
        self.engine = engine
        self.name = name
        self.provision = ResourceProvisionService(capacity, meter=meter)
        self.usage = UsageRecorder(name)
        self.leasing = PerJobLease(engine, self.provision, name, self.usage)
        self.completed: list[Job] = []
        self.submitted = 0
        self.failures = failures
        self.stats = None
        if failures is not None:
            from repro.reliability.stats import ReliabilityStats
            from repro.simkit.rng import RandomStreams

            self.stats = ReliabilityStats()
            self._streams = RandomStreams(seed)

    def submit(self, job: Job) -> None:
        self.submitted += 1
        job.mark_queued(self.engine.now)
        job.mark_running(self.engine.now)
        if self.failures is None:
            lease = self.leasing.acquire(job.size)
            self.engine.schedule(job.runtime, self._finish, job, lease)
        else:
            self._start_segment(job, job.runtime)

    def _finish(
        self, job: Job, lease: Lease, segment_work: Optional[float] = None
    ) -> None:
        self.leasing.release(lease)
        job.mark_completed(self.engine.now)
        self.completed.append(job)
        if segment_work is not None:
            # mirror the server path (REServer._finish): the successful
            # segment's checkpoint writes count as waste *at completion*,
            # so a segment still in flight at the horizon adds nothing
            self.stats.record_write_overhead(
                job.size, self.failures.checkpoint, segment_work
            )

    # -------------------------------------------------------------- #
    # failure-exposed execution
    # -------------------------------------------------------------- #
    def _job_ttf(self, job: Job) -> float:
        """The job's time-to-failure: first of its nodes to die."""
        rng = self._streams.stream(f"failure:drp:job{job.job_id}")
        return min(self.failures.draw_ttf(rng) for _ in range(job.size))

    def _start_segment(self, job: Job, remaining: float) -> None:
        checkpoint = self.failures.checkpoint
        wall = (
            checkpoint.segment_wall(remaining)
            if checkpoint is not None
            else remaining
        )
        lease = self.leasing.acquire(job.size)
        ttf = self._job_ttf(job)
        if ttf >= wall:
            self.engine.schedule(wall, self._finish, job, lease, remaining)
        else:
            self.engine.schedule(
                ttf, self._fail_segment, job, lease, remaining, ttf
            )

    def _fail_segment(
        self, job: Job, lease: Lease, remaining: float, elapsed: float
    ) -> None:
        from repro.reliability.checkpoint import collapse_progress

        self.leasing.release(lease)  # the dead instance stops billing
        self.stats.failures += 1
        self.stats.repairs += 1  # the user replaces the instance instantly
        after, recovered, wasted_wall = collapse_progress(
            self.failures.checkpoint, remaining, elapsed
        )
        self.stats.record_kill(job.size, recovered, wasted_wall)
        self._start_segment(job, after)


class _DrpMtcUserPool:
    """The MTC end user's manually managed lease pool."""

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        capacity: int,
        meter: Optional[BillingMeter] = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self.provision = ResourceProvisionService(capacity, meter=meter)
        self.usage = UsageRecorder(name)
        self.pool = PooledLease(engine, self.provision, name, self.usage)
        self.completed: list[Job] = []
        self.submitted = 0
        self.workflow: Optional[Workflow] = None

    # -------------------------------------------------------------- #
    def submit(self, workflow: Workflow) -> None:
        self.workflow = workflow
        self.submitted += len(workflow.tasks)
        for task in workflow.ready_tasks():
            self._start(task)

    def _start(self, task: Job) -> None:
        lease = self.pool.acquire(task.size)
        task.mark_queued(self.engine.now)
        task.mark_running(self.engine.now)
        self.engine.schedule(task.runtime, self._finish, task, lease)

    def _finish(self, task: Job, lease: Lease) -> None:
        self.pool.release(lease)
        task.mark_completed(self.engine.now)
        self.completed.append(task)
        assert self.workflow is not None
        for ready in self.workflow.ready_tasks():
            if ready.state is JobState.PENDING:
                self._start(ready)
        if self.workflow.completed():
            self.teardown()

    def teardown(self) -> None:
        """Workflow done: the user returns every leased node."""
        self.pool.teardown()


def _check_drp_failure_model(failures: Optional["FailureModel"]) -> None:
    if failures is not None:
        from repro.reliability.failures import TraceDrivenFailures

        if isinstance(failures, TraceDrivenFailures):
            raise ValueError(
                "DRP failure injection draws per-job TTFs and cannot replay "
                "a trace-driven (slot, fail_t, repair_t) model; use a "
                "distributional model, or run the trace through a "
                "server-attached system (dcs/ssp/dawningcloud)"
            )


class DrpHtcLiveRun(LiveRun):
    """One HTC trace through DRP, built/loaded but not yet run."""

    def __init__(
        self,
        bundle: WorkloadBundle,
        capacity: int = DEFAULT_DRP_CAPACITY,
        meter: Optional[BillingMeter] = None,
        failures: Optional["FailureModel"] = None,
        seed: int = 0,
    ) -> None:
        _check_drp_failure_model(failures)
        engine = self.engine = SimulationEngine()
        trace = bundle.materialize_trace()
        self.name = bundle.name
        self.state = _DrpHtcRun(engine, bundle.name, capacity, meter=meter,
                                failures=failures, seed=seed)
        JobEmulator(engine).submit_trace(trace, self.state.submit)
        self.submitted = len(trace)
        self.horizon = float(bundle.horizon)  # type: ignore[arg-type]

    def complete(self) -> None:
        self.engine.run(until=self.horizon)

    def finish(self) -> ProviderMetrics:
        run, horizon = self.state, self.horizon
        run.provision.shutdown_client(self.name, self.engine.now)  # bill stragglers
        completed = sum(
            1 for j in run.completed if (j.finish_time or 0.0) <= horizon
        )
        reliability = None
        if run.stats is not None:
            from repro.reliability.stats import completed_goodput_node_seconds

            run.stats.finalize(
                horizon,
                completed_goodput_node_seconds(run.completed, horizon),
            )
            reliability = run.stats.to_payload()
        return ProviderMetrics(
            provider=self.name,
            system="DRP",
            workload=self.name,
            resource_consumption=run.provision.consumption_node_hours(self.name),
            completed_jobs=completed,
            submitted_jobs=self.submitted,
            tasks_per_second=None,
            makespan_s=None,
            adjusted_nodes=run.provision.adjusted_node_count(self.name),
            peak_nodes=run.usage.peak(horizon),
            usage=run.usage,
            reliability=reliability,
        )


class DrpMtcLiveRun(LiveRun):
    """One MTC workflow through DRP, built/loaded but not yet run."""

    def __init__(
        self,
        bundle: WorkloadBundle,
        capacity: int = DEFAULT_DRP_CAPACITY,
        meter: Optional[BillingMeter] = None,
        failures: Optional["FailureModel"] = None,
        seed: int = 0,
    ) -> None:
        _check_drp_failure_model(failures)
        if failures is not None:
            raise ValueError(
                "DRP failure injection is HTC-only (the MTC user pool has "
                "no requeue path); model MTC failures through DawningCloud"
            )
        engine = self.engine = SimulationEngine()
        workflow = self.workflow = bundle.materialize_workflow()
        self.name = bundle.name
        self.pool = _DrpMtcUserPool(engine, bundle.name, capacity, meter=meter)
        JobEmulator(engine).submit_workflow(workflow, self.pool.submit)
        self.horizon = float(bundle.horizon)  # type: ignore[arg-type]

    def complete(self) -> None:
        run_until(self.engine, self.workflow.completed, hard_limit=self.horizon)

    def finish(self) -> ProviderMetrics:
        pool, workflow = self.pool, self.workflow
        pool.teardown()
        completed = len(pool.completed)
        finish = max(t.finish_time for t in workflow.tasks)  # type: ignore[type-var]
        makespan = finish - workflow.submit_time
        return ProviderMetrics(
            provider=self.name,
            system="DRP",
            workload=self.name,
            resource_consumption=pool.provision.consumption_node_hours(self.name),
            completed_jobs=completed,
            submitted_jobs=len(workflow.tasks),
            tasks_per_second=completed / makespan if makespan > 0 else None,
            makespan_s=makespan,
            adjusted_nodes=pool.provision.adjusted_node_count(self.name),
            peak_nodes=pool.usage.peak(self.engine.now),
            usage=pool.usage,
            reliability=None,
        )


def run_drp(
    bundle: WorkloadBundle,
    capacity: int = DEFAULT_DRP_CAPACITY,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
) -> ProviderMetrics:
    """Run one bundle through the DRP system."""
    _check_drp_failure_model(failures)
    cls = DrpHtcLiveRun if bundle.kind == "htc" else DrpMtcLiveRun
    return cls(
        bundle, capacity=capacity, meter=meter, failures=failures, seed=seed
    ).run()


class _DrpPooledHtcRun:
    """A cost-aware HTC end user community: per-user node-pool reuse.

    The paper's DRP charges one fresh lease per job, which is what makes
    short-job traces (NASA) *more* expensive than owning (Table 2's
    -25.8%).  The obvious user-side optimization under hourly billing is
    to keep paid-for nodes and pack the next job onto them.  This run
    models that with a :class:`PooledLease` keyed per end user: a job
    first drains its user's idle bucket, and idle leases are returned at
    the next hourly check — the same manual strategy as the MTC pool, but
    per end user, because DRP has no cross-user runtime environment.

    The gap that remains against DawningCloud is therefore exactly the
    value of *sharing*: a queue over one elastic pool spanning all users.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        name: str,
        capacity: int,
        shared: bool = False,
        meter: Optional[BillingMeter] = None,
    ) -> None:
        self.engine = engine
        self.name = name
        self.shared = shared
        self.provision = ResourceProvisionService(capacity, meter=meter)
        self.usage = UsageRecorder(name)
        self.pool = PooledLease(engine, self.provision, name, self.usage)
        self.completed: list[Job] = []
        self.submitted = 0

    def _key(self, job: Job) -> tuple[int, int]:
        # shared: one community bucket per size (cross-user reuse, the
        # strongest manual strategy DRP allows); else per end user
        return (0 if self.shared else job.user_id, job.size)

    def submit(self, job: Job) -> None:
        self.submitted += 1
        lease = self.pool.acquire(job.size, key=self._key(job))
        job.mark_queued(self.engine.now)
        job.mark_running(self.engine.now)
        self.engine.schedule(job.runtime, self._finish, job, lease)

    def _finish(self, job: Job, lease: Lease) -> None:
        self.pool.release(lease)
        job.mark_completed(self.engine.now)
        self.completed.append(job)

    def teardown(self) -> None:
        self.pool.teardown()


class DrpPooledLiveRun(LiveRun):
    """The pooled-DRP HTC ablation, built/loaded but not yet run."""

    def __init__(
        self,
        bundle: WorkloadBundle,
        capacity: int = DEFAULT_DRP_CAPACITY,
        shared: bool = False,
        meter: Optional[BillingMeter] = None,
    ) -> None:
        if bundle.kind != "htc":
            raise ValueError("pooled DRP is an HTC ablation")
        engine = self.engine = SimulationEngine()
        trace = bundle.materialize_trace()
        self.name = bundle.name
        self.shared = shared
        self.state = _DrpPooledHtcRun(engine, bundle.name, capacity,
                                      shared=shared, meter=meter)
        JobEmulator(engine).submit_trace(trace, self.state.submit)
        self.submitted = len(trace)
        self.horizon = float(bundle.horizon)  # type: ignore[arg-type]

    def complete(self) -> None:
        self.engine.run(until=self.horizon)

    def finish(self) -> ProviderMetrics:
        run, horizon = self.state, self.horizon
        run.teardown()
        run.provision.shutdown_client(self.name, self.engine.now)
        completed = sum(
            1 for j in run.completed if (j.finish_time or 0.0) <= horizon
        )
        return ProviderMetrics(
            provider=self.name,
            system="DRP-shared-pool" if self.shared else "DRP-pooled",
            workload=self.name,
            resource_consumption=run.provision.consumption_node_hours(self.name),
            completed_jobs=completed,
            submitted_jobs=self.submitted,
            tasks_per_second=None,
            makespan_s=None,
            adjusted_nodes=run.provision.adjusted_node_count(self.name),
            peak_nodes=run.usage.peak(horizon),
            usage=run.usage,
        )


def run_drp_pooled(
    bundle: WorkloadBundle,
    capacity: int = DEFAULT_DRP_CAPACITY,
    shared: bool = False,
    meter: Optional[BillingMeter] = None,
) -> ProviderMetrics:
    """DRP with cost-aware per-user node pooling (HTC ablation).

    An extension beyond the paper: quantifies how much of DawningCloud's
    saving over DRP survives once end users manage their leases cleverly.
    """
    return DrpPooledLiveRun(
        bundle, capacity=capacity, shared=shared, meter=meter
    ).run()
