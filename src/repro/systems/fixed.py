"""The DCS and SSP systems: fixed-size resources plus a queuing RE.

Per §4.1, the emulated SSP and DCS systems are identical machines — two HTC
servers, one MTC server, three schedulers, no resource provision service —
because both hold a fixed-size resource set for the whole workload period.
They differ only in *ownership*:

* **DCS** owns the cluster: consumption is ``size × period`` (node-hours)
  by definition, and no node adjustments ever happen.
* **SSP** leases the same size from the resource provider at RE startup
  and releases it at finalization: the billed node-hours equal DCS's
  figure under the paper's meter, and exactly ``2 × size`` node
  adjustments occur (Figure 14's "SSP has the lowest management
  overhead").

Hence one simulation serves both; ownership is a
:class:`~repro.provisioning.policies.FixedAllocation` with or without a
provision service behind it, and SSP's node-hours flow through the
service's :class:`~repro.provisioning.billing.BillingMeter` (the paper's
per-started-hour meter reproduces the closed form; a per-second meter
bills the same machine very differently).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.cluster.provision import ResourceProvisionService
from repro.core.servers import REServer
from repro.core.policies import HTC_SCAN_INTERVAL_S, MTC_SCAN_INTERVAL_S
from repro.metrics.accounting import dcs_consumption_node_hours
from repro.metrics.results import ProviderMetrics
from repro.provisioning.billing import BillingMeter
from repro.provisioning.policies import FixedAllocation
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from repro.simkit.engine import SimulationEngine
from repro.systems.base import WorkloadBundle, run_until
from repro.systems.emulator import JobEmulator

if TYPE_CHECKING:  # pragma: no cover - reliability is an optional layer
    from repro.reliability.failures import FailureModel

HOUR = 3600.0


def _run_fixed(
    bundle: WorkloadBundle,
    system: str,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
) -> ProviderMetrics:
    engine = SimulationEngine()
    emulator = JobEmulator(engine)
    nodes = int(bundle.fixed_nodes)  # type: ignore[arg-type]

    # SSP leases its block through the provision service (and its meter);
    # DCS owns the machine outright, so there is nothing to meter.
    provision = (
        ResourceProvisionService(nodes, meter=meter) if system == "SSP" else None
    )

    injector = None
    if failures is not None:
        from repro.reliability.injector import NodeFailureInjector
        from repro.simkit.rng import RandomStreams

        def make_injector(server: REServer) -> NodeFailureInjector:
            # the fixed machine *is* the slot set; repaired nodes return
            # to the machine (DCS owns them, SSP re-leases per node)
            return NodeFailureInjector(
                engine, server, failures, RandomStreams(seed), n_slots=nodes,
                provision=provision, restore="server",
            )

    if bundle.kind == "htc":
        trace = bundle.materialize_trace()
        server = REServer(engine, bundle.name, FirstFitScheduler(), HTC_SCAN_INTERVAL_S)
        allocation = FixedAllocation(engine, server, nodes, provision=provision)
        allocation.start()
        if failures is not None:
            injector = make_injector(server).start()
        emulator.submit_trace(trace, server.submit_job)
        horizon = float(bundle.horizon)  # type: ignore[arg-type]
        engine.run(until=horizon)
        allocation.teardown()
        server.stop()
        # the machine exists (and DCS pays) for the configured horizon:
        # bundle.horizon defaults to trace.duration, but when a caller
        # extends it (e.g. a repair tail letting requeued jobs finish
        # after the trace period) billing, completions and peaks must all
        # clamp to the *same* instant
        period = horizon
        completed = server.completed_by(horizon)
        tasks_per_second = None
        makespan = None
        submitted = len(trace)
    else:
        workflow = bundle.materialize_workflow()
        server = REServer(engine, bundle.name, FcfsScheduler(), MTC_SCAN_INTERVAL_S)
        allocation = FixedAllocation(engine, server, nodes, provision=provision)
        # the fixed machine exists only for the workload period
        engine.schedule_at(workflow.submit_time, allocation.start)
        if failures is not None:
            injector = make_injector(server)
            engine.schedule_at(workflow.submit_time, injector.start)
        emulator.submit_workflow(workflow, server.submit_workflow)
        run_until(engine, workflow.completed, hard_limit=float(bundle.horizon))  # type: ignore[arg-type]
        makespan = server.makespan()
        allocation.teardown()
        server.stop()
        period = makespan or 0.0
        completed = server.completed_count
        tasks_per_second = (
            completed / makespan if makespan and makespan > 0 else None
        )
        submitted = len(workflow.tasks)
        horizon = engine.now

    if provision is not None:
        # SSP: billed through the lease ledger (meter-dependent).
        consumption = provision.consumption_node_hours(bundle.name)
        adjusted = provision.adjusted_node_count(bundle.name)
    else:
        # DCS: owned — the §4.3 closed form, no adjustments ever.
        consumption = dcs_consumption_node_hours(nodes, period)
        adjusted = 0
    return ProviderMetrics(
        provider=bundle.name,
        system=system,
        workload=bundle.name,
        resource_consumption=consumption,
        completed_jobs=completed,
        submitted_jobs=submitted,
        tasks_per_second=tasks_per_second,
        makespan_s=makespan,
        adjusted_nodes=adjusted,
        peak_nodes=server.usage.peak(horizon),
        usage=server.usage,
        reliability=injector.finalize(horizon) if injector is not None else None,
    )


def run_dcs(
    bundle: WorkloadBundle,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
) -> ProviderMetrics:
    """Run a workload on a dedicated cluster system (owned, fixed size)."""
    return _run_fixed(bundle, "DCS", meter=meter, failures=failures, seed=seed)


def run_ssp(
    bundle: WorkloadBundle,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
) -> ProviderMetrics:
    """Run a workload on a static-service-provision system (leased, fixed)."""
    return _run_fixed(bundle, "SSP", meter=meter, failures=failures, seed=seed)
