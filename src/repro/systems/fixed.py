"""The DCS and SSP systems: fixed-size resources plus a queuing RE.

Per §4.1, the emulated SSP and DCS systems are identical machines — two HTC
servers, one MTC server, three schedulers, no resource provision service —
because both hold a fixed-size resource set for the whole workload period.
They differ only in *ownership*:

* **DCS** owns the cluster: consumption is ``size × period`` (node-hours)
  by definition, and no node adjustments ever happen.
* **SSP** leases the same size from the resource provider at RE startup
  and releases it at finalization: the billed node-hours equal DCS's
  figure under the paper's meter, and exactly ``2 × size`` node
  adjustments occur (Figure 14's "SSP has the lowest management
  overhead").

Hence one simulation serves both; ownership is a
:class:`~repro.provisioning.policies.FixedAllocation` with or without a
provision service behind it, and SSP's node-hours flow through the
service's :class:`~repro.provisioning.billing.BillingMeter` (the paper's
per-started-hour meter reproduces the closed form; a per-second meter
bills the same machine very differently).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, TYPE_CHECKING, Union

from repro.cluster.provision import ResourceProvisionService
from repro.core.servers import REServer
from repro.core.policies import HTC_SCAN_INTERVAL_S, MTC_SCAN_INTERVAL_S
from repro.metrics.accounting import dcs_consumption_node_hours
from repro.metrics.results import ProviderMetrics
from repro.provisioning.billing import BillingMeter
from repro.provisioning.policies import FixedAllocation
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from repro.simkit.engine import SimulationEngine
from repro.simkit.kernel import KernelSpec, resolve_kernel_spec
from repro.systems.base import LiveRun, WorkloadBundle, run_until
from repro.systems.emulator import JobEmulator

if TYPE_CHECKING:  # pragma: no cover - reliability is an optional layer
    from repro.reliability.failures import FailureModel

HOUR = 3600.0


class FixedLiveRun(LiveRun):
    """A DCS/SSP system built and loaded, but with no events executed.

    Construction is the old ``_run_fixed`` prologue: engine, server,
    fixed allocation, (optional) failure injector and the injected
    workload.  :meth:`complete` advances to the horizon (HTC) or workflow
    completion (MTC); :meth:`finish` tears down and prices the run.
    Snapshot/fork any time in between.

    ``kernel`` opts into the hybrid fluid/event core (a backend name, a
    ``{"kernel": ..., "materialize": ...}`` mapping, a
    :class:`~repro.simkit.kernel.KernelSpec`, or ``"off"`` to force the
    exact engine; ``None`` defers to ``REPRO_KERNEL``/
    :func:`repro.simkit.kernel.configure`).  A hybrid HTC run holds its
    trace back from the event heap; :meth:`complete` then evolves the
    whole horizon in closed form when the fluid tier's gates allow it
    (see :mod:`repro.simkit.fluid`), falling back — byte-identically —
    to the exact engine otherwise.  MTC runs always use the exact engine.
    """

    def __init__(
        self,
        bundle: WorkloadBundle,
        system: str,
        meter: Optional[BillingMeter] = None,
        failures: Optional["FailureModel"] = None,
        seed: int = 0,
        kernel: Union[None, str, Mapping[str, Any], KernelSpec] = None,
    ) -> None:
        engine = self.engine = SimulationEngine()
        emulator = self._emulator = JobEmulator(engine)
        self._kernel = resolve_kernel_spec(kernel)
        self._deferred_trace = None
        self._fluid_summary = None
        #: True once the fluid tier evolved this run in closed form.
        self.fluid_applied = False
        self.system = system
        self.name = bundle.name
        self.kind = bundle.kind
        nodes = self.nodes = int(bundle.fixed_nodes)  # type: ignore[arg-type]

        # SSP leases its block through the provision service (and its
        # meter); DCS owns the machine outright, so nothing to meter.
        self.provision = (
            ResourceProvisionService(nodes, meter=meter) if system == "SSP" else None
        )
        self.injector = None
        self.workflow = None

        if bundle.kind == "htc":
            trace = bundle.materialize_trace()
            self.server = REServer(
                engine, bundle.name, FirstFitScheduler(), HTC_SCAN_INTERVAL_S
            )
            self.allocation = FixedAllocation(
                engine, self.server, nodes, provision=self.provision
            )
            self.allocation.start()
            if failures is not None:
                self.injector = self._make_injector(failures, seed).start()
            if self._kernel is not None:
                # Hybrid: hold the trace columnar until complete() decides
                # between the fluid closed form and exact injection.
                emulator.defer_trace(trace, self.server.submit_job)
                self._deferred_trace = trace
            else:
                emulator.submit_trace(trace, self.server.submit_job)
            self.submitted = len(trace)
        else:
            workflow = self.workflow = bundle.materialize_workflow()
            self.server = REServer(
                engine, bundle.name, FcfsScheduler(), MTC_SCAN_INTERVAL_S
            )
            self.allocation = FixedAllocation(
                engine, self.server, nodes, provision=self.provision
            )
            # the fixed machine exists only for the workload period
            engine.schedule_at(workflow.submit_time, self.allocation.start)
            if failures is not None:
                self.injector = self._make_injector(failures, seed)
                engine.schedule_at(workflow.submit_time, self.injector.start)
            emulator.submit_workflow(workflow, self.server.submit_workflow)
            self.submitted = len(workflow.tasks)
        self.horizon = float(bundle.horizon)  # type: ignore[arg-type]

    def _make_injector(self, failures: "FailureModel", seed: int):
        from repro.reliability.injector import NodeFailureInjector
        from repro.simkit.rng import RandomStreams

        # the fixed machine *is* the slot set; repaired nodes return
        # to the machine (DCS owns them, SSP re-leases per node)
        return NodeFailureInjector(
            self.engine, self.server, failures, RandomStreams(seed),
            n_slots=self.nodes, provision=self.provision, restore="server",
        )

    def _inject_deferred(self) -> None:
        """Exact-mode fallback: load the held-back trace into the heap."""
        self._deferred_trace = None
        self._emulator.inject_deferred()

    def _ensure_exact_mode(self) -> None:
        """Give up the fluid option before any event-granular operation.

        Partial advances, snapshots and forks all observe (or copy) the
        event heap, so a still-deferred trace must be injected first —
        with identical sequence numbers, hence byte-identical evolution.
        """
        if self._deferred_trace is not None:
            self._inject_deferred()

    def advance_before(self, time: float) -> int:
        self._ensure_exact_mode()
        return super().advance_before(time)

    def snapshot(self, label: str = ""):
        self._ensure_exact_mode()
        return super().snapshot(label)

    def fork(self):
        self._ensure_exact_mode()
        return super().fork()

    def complete(self) -> None:
        if self.kind == "htc":
            if self._deferred_trace is not None:
                from repro.simkit.fluid import try_fluid_run

                if try_fluid_run(self):
                    # The fluid tier evolved the whole horizon in closed
                    # form and jumped the clock; nothing left to execute.
                    self._deferred_trace = None
                    self._emulator.clear_deferred()
                    return
                self._inject_deferred()
            self.engine.run(until=self.horizon)
        else:
            run_until(self.engine, self.workflow.completed, hard_limit=self.horizon)

    def finish(self) -> ProviderMetrics:
        server = self.server
        if self.kind == "htc":
            horizon = self.horizon
            self.allocation.teardown()
            server.stop()
            # the machine exists (and DCS pays) for the configured horizon:
            # bundle.horizon defaults to trace.duration, but when a caller
            # extends it (e.g. a repair tail letting requeued jobs finish
            # after the trace period) billing, completions and peaks must
            # all clamp to the *same* instant
            period = horizon
            if self._fluid_summary is not None:
                # Columnar fluid run: no job objects exist to walk.
                completed = self._fluid_summary["completed"]
            else:
                completed = server.completed_by(horizon)
            tasks_per_second = None
            makespan = None
        else:
            makespan = server.makespan()
            self.allocation.teardown()
            server.stop()
            period = makespan or 0.0
            completed = server.completed_count
            tasks_per_second = (
                completed / makespan if makespan and makespan > 0 else None
            )
            horizon = self.engine.now

        if self.provision is not None:
            # SSP: billed through the lease ledger (meter-dependent).
            consumption = self.provision.consumption_node_hours(self.name)
            adjusted = self.provision.adjusted_node_count(self.name)
        else:
            # DCS: owned — the §4.3 closed form, no adjustments ever.
            consumption = dcs_consumption_node_hours(self.nodes, period)
            adjusted = 0
        return ProviderMetrics(
            provider=self.name,
            system=self.system,
            workload=self.name,
            resource_consumption=consumption,
            completed_jobs=completed,
            submitted_jobs=self.submitted,
            tasks_per_second=tasks_per_second,
            makespan_s=makespan,
            adjusted_nodes=adjusted,
            peak_nodes=server.usage.peak(horizon),
            usage=server.usage,
            reliability=(
                self.injector.finalize(horizon)
                if self.injector is not None
                else None
            ),
        )


def _run_fixed(
    bundle: WorkloadBundle,
    system: str,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
    kernel: Union[None, str, Mapping[str, Any], KernelSpec] = None,
) -> ProviderMetrics:
    return FixedLiveRun(
        bundle, system, meter=meter, failures=failures, seed=seed, kernel=kernel
    ).run()


def run_dcs(
    bundle: WorkloadBundle,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
    kernel: Union[None, str, Mapping[str, Any], KernelSpec] = None,
) -> ProviderMetrics:
    """Run a workload on a dedicated cluster system (owned, fixed size)."""
    return _run_fixed(
        bundle, "DCS", meter=meter, failures=failures, seed=seed, kernel=kernel
    )


def run_ssp(
    bundle: WorkloadBundle,
    meter: Optional[BillingMeter] = None,
    failures: Optional["FailureModel"] = None,
    seed: int = 0,
    kernel: Union[None, str, Mapping[str, Any], KernelSpec] = None,
) -> ProviderMetrics:
    """Run a workload on a static-service-provision system (leased, fixed)."""
    return _run_fixed(
        bundle, "SSP", meter=meter, failures=failures, seed=seed, kernel=kernel
    )
