"""The job emulator (§4.1).

"For all emulated systems, the job emulator is used to emulate the process
of submitting jobs.  For HTC workload, the job emulator generates jobs by
reading the trace file, and then submits jobs.  For MTC workload, the job
emulator reads the workflow file, generates each job ... and their
dependencies ... and then submits jobs according to the dependency
constraints."

The paper speeds submission/completion up by a factor of 100 because its
emulation runs on real hardware; a discrete-event simulation needs no
speedup, but the factor is kept as an option so emulation-fidelity
experiments can compress time the same way (all times divided by
``speedup``).
"""

from __future__ import annotations

from typing import Callable

from repro.simkit.engine import SimulationEngine
from repro.workloads.job import Job, Trace
from repro.workloads.workflow import Workflow


class JobEmulator:
    """Schedules workload submission events on a simulation engine."""

    def __init__(self, engine: SimulationEngine, speedup: float = 1.0) -> None:
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.engine = engine
        self.speedup = float(speedup)
        self.scheduled = 0
        self._deferred: list[tuple[Trace, Callable[[Job], None]]] = []

    def _t(self, t: float) -> float:
        return t / self.speedup

    def submit_trace(self, trace: Trace, sink: Callable[[Job], None]) -> None:
        """Schedule every job submission of an HTC trace into ``sink``."""
        self.engine.schedule_batch(
            [(self._t(job.submit_time), sink, (job,)) for job in trace]
        )
        self.scheduled += len(trace)

    # ------------------------------------------------------------------ #
    # deferred injection (the hybrid core's entry point)
    # ------------------------------------------------------------------ #
    def defer_trace(self, trace: Trace, sink: Callable[[Job], None]) -> None:
        """Hold a trace back instead of loading it into the event heap.

        The fluid tier decides *after* construction whether a run's whole
        horizon has a closed form; deferring keeps the trace columnar
        until that decision.  :meth:`inject_deferred` later performs the
        exact :meth:`submit_trace` call — and because nothing else
        schedules events between construction and injection, the arrival
        events receive the same sequence numbers either way, so a
        fallen-back hybrid run is byte-identical to a never-hybrid one.
        """
        self._deferred.append((trace, sink))

    @property
    def deferred(self) -> bool:
        """True while at least one trace is held back from the heap."""
        return bool(self._deferred)

    def inject_deferred(self) -> None:
        """Load every held-back trace into the heap (exact-mode fallback)."""
        pending, self._deferred = self._deferred, []
        for trace, sink in pending:
            self.submit_trace(trace, sink)

    def clear_deferred(self) -> None:
        """Drop held-back traces (the fluid tier consumed them)."""
        self._deferred = []

    def submit_workflow(
        self, workflow: Workflow, sink: Callable[[Workflow], None]
    ) -> None:
        """Schedule an MTC workflow submission into ``sink``.

        Dependency constraints are enforced downstream (the MTC server or
        the DRP user pool releases tasks as predecessors complete).
        """
        self.engine.schedule_at(self._t(workflow.submit_time), sink, workflow)
        self.scheduled += 1
