"""The job emulator (§4.1).

"For all emulated systems, the job emulator is used to emulate the process
of submitting jobs.  For HTC workload, the job emulator generates jobs by
reading the trace file, and then submits jobs.  For MTC workload, the job
emulator reads the workflow file, generates each job ... and their
dependencies ... and then submits jobs according to the dependency
constraints."

The paper speeds submission/completion up by a factor of 100 because its
emulation runs on real hardware; a discrete-event simulation needs no
speedup, but the factor is kept as an option so emulation-fidelity
experiments can compress time the same way (all times divided by
``speedup``).
"""

from __future__ import annotations

from typing import Callable

from repro.simkit.engine import SimulationEngine
from repro.workloads.job import Job, Trace
from repro.workloads.workflow import Workflow


class JobEmulator:
    """Schedules workload submission events on a simulation engine."""

    def __init__(self, engine: SimulationEngine, speedup: float = 1.0) -> None:
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        self.engine = engine
        self.speedup = float(speedup)
        self.scheduled = 0

    def _t(self, t: float) -> float:
        return t / self.speedup

    def submit_trace(self, trace: Trace, sink: Callable[[Job], None]) -> None:
        """Schedule every job submission of an HTC trace into ``sink``."""
        self.engine.schedule_batch(
            [(self._t(job.submit_time), sink, (job,)) for job in trace]
        )
        self.scheduled += len(trace)

    def submit_workflow(
        self, workflow: Workflow, sink: Callable[[Workflow], None]
    ) -> None:
        """Schedule an MTC workflow submission into ``sink``.

        Dependency constraints are enforced downstream (the MTC server or
        the DRP user pool releases tasks as predecessors complete).
        """
        self.engine.schedule_at(self._t(workflow.submit_time), sink, workflow)
        self.scheduled += 1
