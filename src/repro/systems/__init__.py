"""The four evaluated systems (§4).

* :mod:`repro.systems.fixed` — DCS and SSP: fixed-size resources, queuing
  runtime environment (they share one code path; only ownership/accounting
  differs, which is why the paper reports identical performance for them).
* :mod:`repro.systems.drp` — direct resource provision: end users lease
  from the provider per job (HTC) or through a per-user reusable VM pool
  (MTC); no queueing.
* :mod:`repro.systems.dsp_runner` — DawningCloud runners (standalone per
  provider, as in Tables 2-4, and consolidated, as in Figures 12-14).
* :mod:`repro.systems.consolidation` — drives all four systems over the
  same workload set and aggregates the resource provider's metrics.
* :mod:`repro.systems.base` — workload bundles shared by every runner.
* :mod:`repro.systems.emulator` — submission scheduling (the paper's "job
  emulator").
"""

from repro.systems.base import WorkloadBundle, clone_workflow
from repro.systems.consolidation import ConsolidationResult, run_all_systems
from repro.systems.drp import run_drp
from repro.systems.dsp_runner import (
    run_dawningcloud_consolidated,
    run_dawningcloud_htc,
    run_dawningcloud_mtc,
)
from repro.systems.emulator import JobEmulator
from repro.systems.fixed import run_dcs, run_ssp

__all__ = [
    "ConsolidationResult",
    "JobEmulator",
    "WorkloadBundle",
    "clone_workflow",
    "run_all_systems",
    "run_dawningcloud_consolidated",
    "run_dawningcloud_htc",
    "run_dawningcloud_mtc",
    "run_dcs",
    "run_drp",
    "run_ssp",
]
