"""The four evaluated systems (§4).

* :mod:`repro.systems.fixed` — DCS and SSP: fixed-size resources, queuing
  runtime environment (they share one code path; only ownership/accounting
  differs, which is why the paper reports identical performance for them).
* :mod:`repro.systems.drp` — direct resource provision: end users lease
  from the provider per job (HTC) or through a per-user reusable VM pool
  (MTC); no queueing.
* :mod:`repro.systems.dsp_runner` — DawningCloud runners (standalone per
  provider, as in Tables 2-4, and consolidated, as in Figures 12-14).
* :mod:`repro.systems.consolidation` — drives all four systems over the
  same workload set and aggregates the resource provider's metrics.
* :mod:`repro.systems.base` — workload bundles shared by every runner.
* :mod:`repro.systems.emulator` — submission scheduling (the paper's "job
  emulator").
"""

from repro.systems.base import WorkloadBundle, clone_workflow
from repro.systems.consolidation import ConsolidationResult, run_all_systems

#: The paper's Tables 2-4 column order — the canonical home (the
#: experiments and api layers both import it from here).
SYSTEM_ORDER = ("DCS", "SSP", "DRP", "DawningCloud")
from repro.systems.drp import run_drp
from repro.systems.dsp_runner import (
    run_dawningcloud_consolidated,
    run_dawningcloud_htc,
    run_dawningcloud_mtc,
)
from repro.systems.emulator import JobEmulator
from repro.systems.fixed import run_dcs, run_ssp

__all__ = [
    "ConsolidationResult",
    "JobEmulator",
    "SYSTEM_ORDER",
    "WorkloadBundle",
    "clone_workflow",
    "run_all_systems",
    "run_dawningcloud_consolidated",
    "run_dawningcloud_htc",
    "run_dawningcloud_mtc",
    "run_dcs",
    "run_drp",
    "run_ssp",
]


# --------------------------------------------------------------------- #
# system components: each runner as a (bundle, seed, **params) factory
# --------------------------------------------------------------------- #
def _register_systems() -> None:
    """Self-register the system runners for the spec API.

    Every factory takes an already-materialized bundle plus data-level
    parameters; ``policy``/``scheduler``/``meter`` objects are resolved
    from nested spec refs by :func:`repro.api.run.run_system`.
    """
    from repro.api.registry import register_component
    from repro.systems.drp import DEFAULT_DRP_CAPACITY, run_drp_pooled
    from repro.systems.dsp_runner import DEFAULT_CAPACITY

    def dcs(bundle, seed=0, meter=None, failures=None, kernel=None):
        """DCS: a dedicated, owned cluster sized to the fixed configuration."""
        return run_dcs(
            bundle, meter=meter, failures=failures, seed=seed, kernel=kernel
        )

    def ssp(bundle, seed=0, meter=None, failures=None, kernel=None):
        """SSP: the same fixed cluster, leased through the provider."""
        return run_ssp(
            bundle, meter=meter, failures=failures, seed=seed, kernel=kernel
        )

    def drp(bundle, seed=0, capacity=DEFAULT_DRP_CAPACITY, meter=None,
            failures=None):
        """DRP: per-job leases (HTC) / a manual user pool (MTC), no queue."""
        return run_drp(bundle, capacity=capacity, meter=meter,
                       failures=failures, seed=seed)

    def drp_pooled(bundle, seed=0, capacity=DEFAULT_DRP_CAPACITY,
                   shared=False, meter=None):
        """DRP with cost-aware lease pooling (per end user, or shared)."""
        return run_drp_pooled(bundle, capacity=capacity, shared=shared,
                              meter=meter)

    def dawningcloud(bundle, seed=0, policy=None, capacity=DEFAULT_CAPACITY,
                     meter=None, failures=None, lease_unit_s=3600.0,
                     setup_cost_s=None, scheduler=None):
        """DawningCloud: a TRE with dynamic B/R negotiation over the pool."""
        from repro.core.policies import ResourceManagementPolicy

        if policy is None:
            policy = (
                ResourceManagementPolicy.for_htc()
                if bundle.kind == "htc"
                else ResourceManagementPolicy.for_mtc()
            )
        if bundle.kind != "htc":
            if lease_unit_s != 3600.0 or setup_cost_s is not None \
                    or scheduler is not None:
                raise ValueError(
                    "lease_unit_s/setup_cost_s/scheduler are HTC-only knobs"
                )
            return run_dawningcloud_mtc(
                bundle, policy, capacity=capacity, meter=meter,
                failures=failures, seed=seed,
            )
        return run_dawningcloud_htc(
            bundle, policy, capacity=capacity, meter=meter,
            failures=failures, seed=seed, lease_unit_s=lease_unit_s,
            setup_cost_s=setup_cost_s, scheduler=scheduler,
        )

    def pooled_queue(bundle, seed=0, scheduler=None, pool_cap=None,
                     meter=None, failures=None):
        """A queued scheduler over one bounded, elastically leased pool."""
        from repro.provisioning.runner import run_pooled_queue_htc
        from repro.scheduling.firstfit import FirstFitScheduler

        return run_pooled_queue_htc(
            bundle, scheduler if scheduler is not None else FirstFitScheduler(),
            pool_cap=pool_cap, meter=meter, failures=failures, seed=seed,
        )

    for name, factory in (
        ("dcs", dcs),
        ("ssp", ssp),
        ("drp", drp),
        ("drp-pooled", drp_pooled),
        ("dawningcloud", dawningcloud),
        ("pooled-queue", pooled_queue),
    ):
        register_component(
            "system", name, factory, skip_params=("bundle", "seed")
        )


_register_systems()
