"""Workload bundles: what one service provider brings to the cloud.

A :class:`WorkloadBundle` is either an HTC trace or an MTC workflow plus
the context every runner needs (nominal horizon, the fixed configuration a
DCS/SSP system would buy).  Bundles hand out *fresh copies* of their
workload (:meth:`WorkloadBundle.materialize`) because jobs carry mutable
execution state and each system must replay from a clean slate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, TYPE_CHECKING

from repro.workloads.job import Trace
from repro.workloads.workflow import Workflow

HOUR = 3600.0

#: MTC horizon safety factor: runners stop at workflow *completion*, so the
#: horizon is only a runaway guard.  A workflow can never take longer than
#: ``critical_path + total_work`` on one node; the critical path is padded
#: ``×10`` so pathological schedules (a starved one-node TRE executing the
#: chain serially, schedulers that hold tasks for whole scan intervals)
#: still finish inside the guard rather than tripping it.
MTC_HORIZON_CP_FACTOR = 10.0


def clone_workflow(workflow: Workflow) -> Workflow:
    """Deep copy of a workflow with pristine execution state."""
    return workflow.clone()


@dataclass
class WorkloadBundle:
    """One service provider's workload and its fixed-system configuration."""

    name: str
    kind: Literal["htc", "mtc"]
    trace: Optional[Trace] = None
    workflow: Optional[Workflow] = None
    fixed_nodes: Optional[int] = None
    horizon: Optional[float] = None

    def __post_init__(self) -> None:
        # Error messages name the bundle and kind: bundles are routinely
        # built from declarative specs, where "needs a trace" without a
        # culprit is undebuggable.
        if self.kind == "htc":
            if self.trace is None or self.workflow is not None:
                raise ValueError(
                    f"bundle {self.name!r} (kind 'htc') needs a trace and "
                    f"no workflow; got trace={self.trace!r}, "
                    f"workflow={self.workflow!r}"
                )
            if self.fixed_nodes is None:
                # §4.4: DCS/SSP sized to the trace's maximal requirement,
                # which equals the recorded machine size for both traces.
                self.fixed_nodes = self.trace.machine_nodes
            if self.horizon is None:
                self.horizon = self.trace.duration
        elif self.kind == "mtc":
            if self.workflow is None or self.trace is not None:
                raise ValueError(
                    f"bundle {self.name!r} (kind 'mtc') needs a workflow "
                    f"and no trace; got workflow={self.workflow!r}, "
                    f"trace={self.trace!r}"
                )
            if self.fixed_nodes is None:
                # §4.4: "the accumulated resource demand in most of the
                # running time" — the width of the workflow's steady level
                # (166 for Montage: the projection/background stages).
                self.fixed_nodes = len(self.workflow.levels()[0])
            if self.horizon is None:
                cp = self.workflow.critical_path_length()
                work = self.workflow.total_work()
                self.horizon = (
                    self.workflow.submit_time
                    + MTC_HORIZON_CP_FACTOR * cp
                    + work
                )
        else:
            raise ValueError(
                f"bundle {self.name!r}: kind must be 'htc' or 'mtc', "
                f"got {self.kind!r}"
            )
        if self.fixed_nodes is not None and self.fixed_nodes <= 0:
            raise ValueError(
                f"bundle {self.name!r} (kind {self.kind!r}): fixed_nodes "
                f"must be positive, got {self.fixed_nodes}"
            )

    # ------------------------------------------------------------------ #
    def materialize_trace(self) -> Trace:
        if self.trace is None:
            raise ValueError(f"bundle {self.name!r} is not an HTC bundle")
        return self.trace.copy()

    def materialize_workflow(self) -> Workflow:
        if self.workflow is None:
            raise ValueError(f"bundle {self.name!r} is not an MTC bundle")
        return clone_workflow(self.workflow)

    @property
    def n_jobs(self) -> int:
        if self.kind == "htc":
            return len(self.trace)  # type: ignore[arg-type]
        return len(self.workflow.tasks)  # type: ignore[union-attr]

    @staticmethod
    def from_trace(name: str, trace: Trace) -> "WorkloadBundle":
        return WorkloadBundle(name=name, kind="htc", trace=trace)

    @staticmethod
    def from_workflow(
        name: str, workflow: Workflow, fixed_nodes: Optional[int] = None
    ) -> "WorkloadBundle":
        return WorkloadBundle(
            name=name, kind="mtc", workflow=workflow, fixed_nodes=fixed_nodes
        )


class LiveRun:
    """A built-but-unfinished simulation: advance, snapshot, fork, finish.

    Every system runner now splits into *build* (the subclass constructor:
    engine, servers, injected workload — no events executed), *advance*
    (:meth:`complete`, or :meth:`advance_before` for a partial run),
    and *finalize* (:meth:`finish`, which tears down and prices the run
    into metrics).  :meth:`snapshot` freezes the whole world mid-run;
    restoring the snapshot yields another LiveRun that continues
    byte-identically to a run that was never interrupted.
    """

    engine: "SimulationEngine"

    def advance_before(self, time: float) -> int:
        """Execute every event strictly before ``time`` (exact boundary)."""
        return self.engine.advance_before(time)

    def fast_forward(self, time: float) -> None:
        """Jump the clock to ``time`` without executing events.

        Delegates to :meth:`SimulationEngine.fast_forward` (which refuses
        to step over live events); the fluid tier uses this to exit a
        closed-form window at its boundary.
        """
        self.engine.fast_forward(time)

    def snapshot(self, label: str = "") -> "EngineSnapshot":
        """Freeze this world; ``snapshot().restore()`` forks a branch."""
        from repro.simkit.snapshot import snapshot_world

        return snapshot_world(self, self.engine, label)

    def fork(self) -> "LiveRun":
        """A live branch of this run, fully disjoint from the original.

        Equivalent to ``snapshot().restore()`` at half the copying cost;
        both this run and the branch continue independently and
        byte-identically to runs that were never branched.
        """
        from repro.simkit.snapshot import fork_world

        return fork_world(self, self.engine)

    def complete(self) -> None:  # pragma: no cover - subclass contract
        raise NotImplementedError

    def finish(self):  # pragma: no cover - subclass contract
        raise NotImplementedError

    def run(self):
        """Convenience: complete the simulation and finalize metrics."""
        self.complete()
        return self.finish()


if TYPE_CHECKING:  # pragma: no cover
    from repro.simkit.engine import SimulationEngine
    from repro.simkit.snapshot import EngineSnapshot


def run_until(engine, predicate, hard_limit: float, max_steps: int = 50_000_000) -> None:
    """Step the engine until ``predicate()`` holds (or limits are hit).

    Periodic timers keep the event heap non-empty forever, so MTC runs
    (which end at workflow completion, not at a wall-clock horizon) step
    the engine under a predicate instead of using ``run(until=...)``.
    """
    steps = 0
    while not predicate():
        if engine.now > hard_limit:
            raise RuntimeError(f"run exceeded hard limit t={hard_limit}")
        if not engine.step():
            break
        steps += 1
        if steps > max_steps:
            raise RuntimeError("run exceeded step budget")
