"""Scheduler interface.

A scheduler is a pure policy object: given the queue (in arrival order),
the number of free nodes and the currently running jobs, it returns which
queued jobs to start *now*.  All state (queue membership, resource counts)
lives in the runtime-environment server, which makes policies trivially
testable and swappable.
"""

from __future__ import annotations

import abc
from typing import NamedTuple, Sequence

from repro.workloads.job import Job


class RunningJob(NamedTuple):
    """What a scheduler may know about a running job.

    A named tuple rather than a (frozen) dataclass: one is allocated per
    job start, and tuple construction is measurably cheaper than a frozen
    dataclass's ``object.__setattr__`` path on the dispatch hot loop.
    """

    job: Job
    finish_time: float

    @property
    def size(self) -> int:
        return self.job.size


class Scheduler(abc.ABC):
    """Decides which queued jobs start now."""

    name: str = "abstract"

    #: True when :meth:`select` is a pure function of (queued, free_nodes,
    #: running) — i.e. it neither reads ``now`` nor keeps state across
    #: calls.  Servers use this to skip provably no-op scans while nothing
    #: changes (idle-gap fast-forward); time-aware policies (backfilling
    #: reservations move with the clock) must leave it False.
    time_independent: bool = False

    @abc.abstractmethod
    def select(
        self,
        now: float,
        queued: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJob] = (),
    ) -> list[Job]:
        """Return the queued jobs to start at ``now``.

        Implementations must never select more aggregate width than
        ``free_nodes`` and must preserve queue membership (no duplicates).
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__}>"
