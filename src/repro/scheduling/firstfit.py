"""First-fit scheduling (the paper's HTC policy).

Section 4.4: "The first-fit scheduling algorithm scans all the queued jobs
in the order of job arrival and chooses the first job, whose resources
requirement can be met by the system, to execute."

The dispatcher calls :meth:`select` repeatedly (after every arrival,
completion or resource change), so scanning greedily until nothing fits is
equivalent to the paper's one-at-a-time formulation but needs fewer passes.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduling.base import RunningJob, Scheduler
from repro.workloads.job import Job


class FirstFitScheduler(Scheduler):
    """Greedy first-fit over the queue in arrival order."""

    name = "first-fit"
    time_independent = True

    def select(
        self,
        now: float,
        queued: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJob] = (),
    ) -> list[Job]:
        picked: list[Job] = []
        remaining = free_nodes
        for job in queued:
            if job.size <= remaining:
                picked.append(job)
                remaining -= job.size
            if remaining <= 0:
                break
        return picked
