"""FCFS scheduling (the paper's MTC policy).

Section 4.4: "For MTC workload, firstly we generate the job flow according
to the dependency constraints, and then we choose the FCFS (First Come
First Served) scheduling policy."

Strict FCFS never skips the queue head: if the head does not fit, nothing
starts.  (Dependency gating happens upstream — only ready tasks are in the
queue.)  For Montage, where every task is single-node, FCFS and first-fit
coincide; they differ for mixed-width queues, which the ablation benchmark
exercises.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduling.base import RunningJob, Scheduler
from repro.workloads.job import Job


class FcfsScheduler(Scheduler):
    """Strict first-come-first-served (no skipping the head)."""

    name = "fcfs"
    time_independent = True

    def select(
        self,
        now: float,
        queued: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJob] = (),
    ) -> list[Job]:
        picked: list[Job] = []
        remaining = free_nodes
        for job in queued:
            if job.size > remaining:
                break
            picked.append(job)
            remaining -= job.size
        return picked
