"""The job queue shared by every runtime-environment server.

Keeps arrival order, supports O(1) membership checks, and provides the two
demand aggregates the paper's resource-management policy needs (§3.2.2.1):

* ``total_demand`` — "the accumulated resource demands of all jobs in the
  queue" (numerator of the ratio of obtaining resources);
* ``biggest_demand`` — "the resource demand of the present biggest job in
  the queue" (the DR2 trigger).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.workloads.job import Job


class JobQueue:
    """FIFO of queued jobs with demand aggregates.

    Backed by an insertion-ordered dict keyed on ``job_id``: dispatch
    removes jobs from the *middle* of the arrival order (first-fit skips
    a too-wide head), which on a list is an O(n) scan per started job —
    the single hottest queue operation of a two-week sweep.
    """

    def __init__(self) -> None:
        self._jobs: dict[int, Job] = {}
        # Incremental aggregates: the policy reads both once per scan
        # (tens of thousands of scans per two-week run), so they must not
        # rescan the queue.
        self._total_demand = 0
        self._size_counts: dict[int, int] = {}
        self._biggest = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._jobs

    @property
    def jobs(self) -> list[Job]:
        """The queue in arrival order (a copy; safe to mutate)."""
        return list(self._jobs.values())

    @property
    def jobs_view(self):
        """Zero-copy read-only view of the queue in arrival order.

        The dispatch hot path hands this to schedulers, which only
        iterate it; anything that mutates the queue must go through
        push/remove.  Schedulers needing random access materialize their
        own list.
        """
        return self._jobs.values()

    def push(self, job: Job) -> None:
        if job.job_id in self._jobs:
            raise ValueError(f"job {job.job_id} already queued")
        self._jobs[job.job_id] = job
        self._total_demand += job.size
        self._size_counts[job.size] = self._size_counts.get(job.size, 0) + 1
        if job.size > self._biggest:
            self._biggest = job.size

    def remove(self, job: Job) -> None:
        if job.job_id not in self._jobs:
            raise ValueError(f"job {job.job_id} not in queue")
        del self._jobs[job.job_id]
        self._total_demand -= job.size
        count = self._size_counts[job.size] - 1
        if count:
            self._size_counts[job.size] = count
        else:
            del self._size_counts[job.size]
            if job.size == self._biggest:
                self._biggest = max(self._size_counts, default=0)

    def head(self) -> Optional[Job]:
        return next(iter(self._jobs.values()), None)

    # ------------------------------------------------------------------ #
    # policy aggregates (§3.2.2.1)
    # ------------------------------------------------------------------ #
    @property
    def total_demand(self) -> int:
        """Accumulated resource demand of all queued jobs, in nodes."""
        return self._total_demand

    @property
    def biggest_demand(self) -> int:
        """Width of the widest queued job (0 when empty)."""
        return self._biggest

    @property
    def smallest_demand(self) -> int:
        """Width of the narrowest queued job (0 when empty).

        O(distinct sizes), not O(jobs): dispatch uses it to prove that a
        backlogged scan cannot start anything (``idle < smallest``)
        without walking the whole queue.
        """
        return min(self._size_counts, default=0)
