"""The job queue shared by every runtime-environment server.

Keeps arrival order, supports O(1) membership checks, and provides the two
demand aggregates the paper's resource-management policy needs (§3.2.2.1):

* ``total_demand`` — "the accumulated resource demands of all jobs in the
  queue" (numerator of the ratio of obtaining resources);
* ``biggest_demand`` — "the resource demand of the present biggest job in
  the queue" (the DR2 trigger).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.workloads.job import Job


class JobQueue:
    """FIFO of queued jobs with demand aggregates."""

    def __init__(self) -> None:
        self._jobs: list[Job] = []
        self._members: set[int] = set()
        # Incremental aggregates: the policy reads both once per scan
        # (tens of thousands of scans per two-week run), so they must not
        # rescan the queue.
        self._total_demand = 0
        self._size_counts: dict[int, int] = {}
        self._biggest = 0

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs)

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._members

    @property
    def jobs(self) -> list[Job]:
        """The queue in arrival order (a copy; safe to mutate)."""
        return list(self._jobs)

    @property
    def jobs_view(self) -> list[Job]:
        """The live internal list — read-only by contract, zero-copy.

        The dispatch hot path hands this to schedulers, which only read it;
        anything that mutates the queue must go through push/remove.
        """
        return self._jobs

    def push(self, job: Job) -> None:
        if job.job_id in self._members:
            raise ValueError(f"job {job.job_id} already queued")
        self._jobs.append(job)
        self._members.add(job.job_id)
        self._total_demand += job.size
        self._size_counts[job.size] = self._size_counts.get(job.size, 0) + 1
        if job.size > self._biggest:
            self._biggest = job.size

    def remove(self, job: Job) -> None:
        if job.job_id not in self._members:
            raise ValueError(f"job {job.job_id} not in queue")
        self._jobs.remove(job)
        self._members.discard(job.job_id)
        self._total_demand -= job.size
        count = self._size_counts[job.size] - 1
        if count:
            self._size_counts[job.size] = count
        else:
            del self._size_counts[job.size]
            if job.size == self._biggest:
                self._biggest = max(self._size_counts, default=0)

    def head(self) -> Optional[Job]:
        return self._jobs[0] if self._jobs else None

    # ------------------------------------------------------------------ #
    # policy aggregates (§3.2.2.1)
    # ------------------------------------------------------------------ #
    @property
    def total_demand(self) -> int:
        """Accumulated resource demand of all queued jobs, in nodes."""
        return self._total_demand

    @property
    def biggest_demand(self) -> int:
        """Width of the widest queued job (0 when empty)."""
        return self._biggest
