"""Shortest-job-first scheduling (an ablation beyond the paper).

SJF greedily starts the shortest queued jobs that fit.  It minimizes mean
wait time on a single machine and is the classic foil to arrival-order
policies: comparing it against first-fit on the fixed-size systems shows
how much of the throughput story is scheduling (almost none — consumption
is fixed by the machine size) versus resizing (the paper's whole effect).

Ties break by arrival order so the policy stays deterministic.  Wide long
jobs *can* starve under pure SJF — ``max_skip`` bounds that: once a queued
job has been jumped by later arrivals more than ``max_skip`` times, no job
behind it may start before it does (SJF with aging).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.scheduling.base import RunningJob, Scheduler
from repro.workloads.job import Job


class SjfScheduler(Scheduler):
    """Shortest-job-first with optional aging.

    Parameters
    ----------
    max_skip:
        How many times a queued job may be jumped by later arrivals before
        it becomes a barrier (``None`` = never, pure SJF).
    """

    name = "sjf"

    def __init__(self, max_skip: Optional[int] = None) -> None:
        if max_skip is not None and max_skip < 0:
            raise ValueError("max_skip must be >= 0 or None")
        self.max_skip = max_skip
        self._skips: dict[int, int] = {}
        # pure SJF never reads the clock; the aging variant counts skips
        # per select call, so skipping scans would change its decisions
        self.time_independent = max_skip is None

    def select(
        self,
        now: float,
        queued: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJob] = (),
    ) -> list[Job]:
        if not queued or free_nodes <= 0:
            return []
        queued = list(queued)  # positional access; servers pass a dict view

        barrier_pos: Optional[int] = None
        if self.max_skip is not None:
            for pos, job in enumerate(queued):
                if self._skips.get(job.job_id, 0) > self.max_skip:
                    barrier_pos = pos
                    break

        order = sorted(range(len(queued)), key=lambda i: (queued[i].runtime, i))
        picked_pos: set[int] = set()
        remaining = free_nodes
        for pos in order:
            job = queued[pos]
            if (
                barrier_pos is not None
                and pos > barrier_pos
                and barrier_pos not in picked_pos
            ):
                continue  # nothing may jump the aged barrier job
            if job.size <= remaining:
                picked_pos.add(pos)
                remaining -= job.size
            if remaining <= 0:
                break

        if self.max_skip is not None:
            self._update_skips(queued, picked_pos)
        return [queued[pos] for pos in sorted(picked_pos)]

    def _update_skips(self, queued: Sequence[Job], picked_pos: set[int]) -> None:
        """A job is 'skipped' when some later arrival started and it didn't."""
        last_started = max(picked_pos, default=-1)
        for pos, job in enumerate(queued):
            if pos in picked_pos:
                self._skips.pop(job.job_id, None)
            elif pos < last_started:
                self._skips[job.job_id] = self._skips.get(job.job_id, 0) + 1
