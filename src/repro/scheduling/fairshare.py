"""Weighted fair-share scheduling (after the Winks scheduler, related work).

The paper's related-work section cites Grit & Chase's *Winks* scheduler
[20], which "supports a weighted fair sharing model for a virtual cloud
computing utility ... in a way that preserves the fairness across flows".
This module brings that model to the runtime-environment server: every end
user (flow) carries a weight, and the scheduler starts queued jobs so that
the users' occupied nodes track their weight shares.

Mechanism — a deficit-style water-filling pass:

1. compute each user's *current* occupancy from the running jobs;
2. repeatedly pick the user with the smallest ``occupancy / weight`` whose
   queue head fits in the remaining free nodes, and start that head;
3. stop when nothing fits or every queue is empty.

Within one user, jobs start in arrival order (no intra-flow reordering),
so a single-user workload degrades exactly to FCFS and the scheduler stays
work-conserving: if any queued job of any user fits, something starts.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping, Optional, Sequence

from repro.scheduling.base import RunningJob, Scheduler
from repro.workloads.job import Job


class WeightedFairShareScheduler(Scheduler):
    """Winks-style weighted fair sharing across end users.

    Parameters
    ----------
    weights:
        ``user_id -> weight``.  Users absent from the map get
        ``default_weight``.  Weights must be positive.
    default_weight:
        Weight for users not named in ``weights``.
    """

    name = "weighted-fair-share"
    time_independent = True

    def __init__(
        self,
        weights: Optional[Mapping[int, float]] = None,
        default_weight: float = 1.0,
    ) -> None:
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.weights = dict(weights or {})
        for user, w in self.weights.items():
            if w <= 0:
                raise ValueError(f"user {user}: weight must be positive, got {w}")
        self.default_weight = float(default_weight)

    def weight_of(self, user_id: int) -> float:
        return self.weights.get(user_id, self.default_weight)

    def select(
        self,
        now: float,
        queued: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJob] = (),
    ) -> list[Job]:
        if not queued or free_nodes <= 0:
            return []

        occupancy: dict[int, float] = defaultdict(float)
        for r in running:
            occupancy[r.job.user_id] += r.size

        # per-user FIFO queues, preserving arrival order
        per_user: dict[int, list[Job]] = defaultdict(list)
        for job in queued:
            per_user[job.user_id].append(job)

        picked: list[Job] = []
        remaining = free_nodes
        while remaining > 0:
            # user with the lowest normalized occupancy whose head fits;
            # ties break by user id for determinism
            candidates = [
                (occupancy[u] / self.weight_of(u), u)
                for u, jobs in per_user.items()
                if jobs and jobs[0].size <= remaining
            ]
            if not candidates:
                # work conservation: let any fitting job of a blocked-head
                # user run rather than idling nodes
                fallback = None
                for u in sorted(per_user, key=lambda u: occupancy[u] / self.weight_of(u)):
                    for job in per_user[u]:
                        if job.size <= remaining:
                            fallback = (u, job)
                            break
                    if fallback:
                        break
                if fallback is None:
                    break
                user, job = fallback
                per_user[user].remove(job)
            else:
                _, user = min(candidates)
                job = per_user[user].pop(0)
            picked.append(job)
            occupancy[user] += job.size
            remaining -= job.size
        return picked
