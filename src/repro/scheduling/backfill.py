"""EASY backfilling — an ablation beyond the paper.

The paper's HTC systems use plain first-fit.  EASY backfilling (Lifka '95)
is the classic alternative: the queue head gets a *reservation* at the
earliest time enough nodes will be free, and later jobs may jump ahead only
if they finish before that reservation (so the head is never delayed).

Including it lets the benchmark suite ask how much of DawningCloud's saving
comes from dynamic resizing versus from smarter scheduling — one of the
design-choice ablations DESIGN.md calls out.

The implementation assumes exact runtime knowledge (the simulator has it);
with user estimates it would be the usual estimate-based variant.
"""

from __future__ import annotations

from typing import Sequence

from repro.scheduling.base import RunningJob, Scheduler
from repro.workloads.job import Job


class EasyBackfillScheduler(Scheduler):
    """FCFS head reservation + conservative-for-the-head backfilling."""

    name = "easy-backfill"

    def select(
        self,
        now: float,
        queued: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJob] = (),
    ) -> list[Job]:
        picked: list[Job] = []
        remaining = free_nodes
        queue = list(queued)

        # Start jobs strictly from the head while they fit.
        while queue and queue[0].size <= remaining:
            job = queue.pop(0)
            picked.append(job)
            remaining -= job.size

        if not queue:
            return picked

        # The head does not fit: compute its reservation (shadow time).
        head = queue[0]
        events = sorted(
            (r.finish_time, r.size) for r in running
        )
        avail = remaining
        shadow_time = None
        extra_at_shadow = 0
        for finish, size in events:
            avail += size
            if avail >= head.size:
                shadow_time = finish
                extra_at_shadow = avail - head.size
                break
        if shadow_time is None:
            # Head can never run with current resources; no backfilling that
            # could responsibly promise not to delay it, so be conservative.
            return picked

        # Backfill later jobs that (a) fit now and (b) either finish before
        # the shadow time or fit inside the spare capacity at the shadow.
        spare = extra_at_shadow
        for job in queue[1:]:
            if job.size > remaining:
                continue
            ends_before_shadow = now + job.runtime <= shadow_time
            if ends_before_shadow or job.size <= spare:
                picked.append(job)
                remaining -= job.size
                if not ends_before_shadow:
                    spare -= job.size
        return picked
