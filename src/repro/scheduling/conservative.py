"""Conservative backfilling (an ablation beyond the paper).

Where EASY backfilling (``repro.scheduling.backfill``) only protects the
queue *head*, conservative backfilling gives **every** queued job a
reservation: a later job may start now only if doing so delays no earlier
job's reservation.  It trades backfilling aggressiveness for predictability
— the classic pairing studied by Mu'alem & Feitelson.

The implementation rebuilds the reservation schedule on every call from
the running jobs' exact finish times (the simulator knows them), which is
O(queue × events) — fine at the queue lengths the paper's traces produce.

A *profile* is a step function of free nodes over future time, seeded by
the running jobs' completions; each queued job, in arrival order, is
placed at the earliest step where it fits for its whole runtime, and the
profile is debited.  Jobs whose reservation lands at ``now`` start.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.scheduling.base import RunningJob, Scheduler
from repro.workloads.job import Job

_FAR_FUTURE = math.inf


class _Profile:
    """Free-node step function over [now, inf)."""

    def __init__(self, now: float, free: int, running: Sequence[RunningJob]) -> None:
        events: dict[float, int] = {}
        for r in running:
            t = max(r.finish_time, now)
            events[t] = events.get(t, 0) + r.size
        self.times: list[float] = [now]
        self.free: list[int] = [free]
        level = free
        for t in sorted(events):
            level += events[t]
            self.times.append(t)
            self.free.append(level)
        self.times.append(_FAR_FUTURE)

    def earliest_start(self, size: int, runtime: float) -> float:
        """Earliest time ``size`` nodes stay free for ``runtime`` seconds."""
        for i in range(len(self.free)):
            start = self.times[i]
            end = start + runtime
            ok = True
            for j in range(i, len(self.free)):
                if self.times[j] >= end:
                    break
                if self.free[j] < size:
                    ok = False
                    break
            if ok:
                return start
        # A job wider than everything that will ever be free has no window
        # (its TRE hasn't grown yet); it simply isn't picked this round.
        return _FAR_FUTURE

    def reserve(self, start: float, size: int, runtime: float) -> None:
        """Debit ``size`` nodes over [start, start+runtime)."""
        end = start + runtime
        self._split_at(start)
        self._split_at(end)
        for i in range(len(self.free)):
            if self.times[i] >= end:
                break
            if self.times[i] >= start:
                self.free[i] -= size

    def _split_at(self, t: float) -> None:
        if t == _FAR_FUTURE:
            return
        for i in range(len(self.times) - 1):
            if self.times[i] == t:
                return
            if self.times[i] < t < self.times[i + 1]:
                self.times.insert(i + 1, t)
                self.free.insert(i + 1, self.free[i])
                return


class ConservativeBackfillScheduler(Scheduler):
    """Every queued job holds a reservation; nothing may push one back."""

    name = "conservative-backfill"

    def select(
        self,
        now: float,
        queued: Sequence[Job],
        free_nodes: int,
        running: Sequence[RunningJob] = (),
    ) -> list[Job]:
        if not queued or free_nodes <= 0:
            return []
        profile = _Profile(now, free_nodes, running)
        picked: list[Job] = []
        for job in queued:
            start = profile.earliest_start(job.size, job.runtime)
            profile.reserve(start, job.size, job.runtime)
            if start <= now:
                picked.append(job)
        return picked
