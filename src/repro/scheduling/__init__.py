"""Scheduling substrate: queues and scheduling policies.

The paper configures (§4.4):

* **first-fit** for HTC — "scans all the queued jobs in the order of job
  arrival and chooses the first job whose resources requirement can be met
  by the system" (:mod:`repro.scheduling.firstfit`);
* **FCFS** for MTC — tasks released in dependency order, started strictly
  in arrival order (:mod:`repro.scheduling.fcfs`);
* the DRP system takes no scheduling policy (jobs run at submission).

Extensions beyond the paper, used by the ablation benchmarks:

* :mod:`repro.scheduling.backfill` — EASY backfilling;
* :mod:`repro.scheduling.conservative` — conservative backfilling (every
  queued job holds a reservation);
* :mod:`repro.scheduling.sjf` — shortest-job-first with optional aging;
* :mod:`repro.scheduling.fairshare` — Winks-style weighted fair sharing
  across end users (the related-work scheduler the paper contrasts with).
"""

import warnings

from repro.api.registry import register_component
from repro.scheduling.backfill import EasyBackfillScheduler
from repro.scheduling.base import RunningJob, Scheduler
from repro.scheduling.conservative import ConservativeBackfillScheduler
from repro.scheduling.fairshare import WeightedFairShareScheduler
from repro.scheduling.fcfs import FcfsScheduler
from repro.scheduling.firstfit import FirstFitScheduler
from repro.scheduling.queue import JobQueue
from repro.scheduling.sjf import SjfScheduler

SCHEDULER_REGISTRY = {
    "first-fit": FirstFitScheduler,
    "fcfs": FcfsScheduler,
    "easy-backfill": EasyBackfillScheduler,
    "conservative-backfill": ConservativeBackfillScheduler,
    "sjf": SjfScheduler,
    "weighted-fair-share": WeightedFairShareScheduler,
}

for _name, _cls in SCHEDULER_REGISTRY.items():
    register_component("scheduler", _name, _cls, skip_params=("self",))
del _name, _cls


def make_scheduler(name: str) -> Scheduler:
    """Deprecated: use the component registry instead.

    ``repro.api.default_components().create("scheduler", name)`` is the
    spec-API spelling; this shim keeps old call sites working.
    """
    warnings.warn(
        "make_scheduler() is deprecated; use "
        "repro.api.default_components().create('scheduler', name) or name "
        "the scheduler in a SystemSpec",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        cls = SCHEDULER_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULER_REGISTRY)}"
        ) from None
    return cls()


__all__ = [
    "ConservativeBackfillScheduler",
    "EasyBackfillScheduler",
    "FcfsScheduler",
    "FirstFitScheduler",
    "JobQueue",
    "RunningJob",
    "SCHEDULER_REGISTRY",
    "Scheduler",
    "SjfScheduler",
    "WeightedFairShareScheduler",
    "make_scheduler",
]
