"""Workload substrate: jobs, workflows, traces and generators.

This package provides everything the evaluation consumes:

* :mod:`repro.workloads.job` — the :class:`Job` record and :class:`Trace`
  container shared by every emulated system.
* :mod:`repro.workloads.workflow` — DAG workflows (dependencies, levels,
  critical path) built on :mod:`networkx`.
* :mod:`repro.workloads.swf` — a reader/writer for the Standard Workload
  Format used by the Parallel Workloads Archive, so real traces can be
  dropped in where the paper used NASA iPSC and SDSC BLUE.
* :mod:`repro.workloads.traces` — seeded synthetic stand-ins for the two
  archive traces, calibrated to the utilization/size/count figures the
  paper reports (see DESIGN.md §2 for the substitution argument).
* :mod:`repro.workloads.montage` — the Montage-1000 workflow generator.
* :mod:`repro.workloads.archive` — a catalog of synthetic stand-ins for
  further Parallel Workloads Archive logs spanning the 24.4%-86.5%
  utilization range the paper quotes.
* :mod:`repro.workloads.pegasus` — the other classic Pegasus workflows
  (CyberShake, Epigenomics, LIGO Inspiral, SIPHT).
* :mod:`repro.workloads.workflowgen` — generic DAG workload recipes.
* :mod:`repro.workloads.scaling` — trace rescaling utilities.
* :mod:`repro.workloads.stats` — workload statistics.
* :mod:`repro.workloads.store` — the process-wide content-keyed
  :class:`TraceStore` that deduplicates generation across sweep points
  and (forked) orchestrator pool workers.
"""

from repro.workloads.archive import (
    ARCHIVE,
    archive_names,
    generate_archive_trace,
    utilization_family,
)
from repro.workloads.job import Job, JobState, Trace, TraceArrays
from repro.workloads.store import TraceStore, default_store, paper_trace
from repro.workloads.montage import (
    MontageSpec,
    generate_montage,
    montage_family,
    montage_spec_for_size,
)
from repro.workloads.pegasus import PEGASUS_GENERATORS, PegasusSpec, generate_pegasus
from repro.workloads.swf import parse_swf, parse_swf_file, write_swf
from repro.workloads.traces import (
    HTCTraceSpec,
    generate_htc_trace,
    generate_nasa_ipsc,
    generate_sdsc_blue,
)
from repro.workloads.workflow import Workflow

__all__ = [
    "ARCHIVE",
    "HTCTraceSpec",
    "PEGASUS_GENERATORS",
    "PegasusSpec",
    "Job",
    "JobState",
    "MontageSpec",
    "Trace",
    "TraceArrays",
    "TraceStore",
    "Workflow",
    "default_store",
    "paper_trace",
    "archive_names",
    "generate_archive_trace",
    "generate_htc_trace",
    "generate_montage",
    "generate_pegasus",
    "montage_family",
    "montage_spec_for_size",
    "generate_nasa_ipsc",
    "generate_sdsc_blue",
    "parse_swf",
    "utilization_family",
    "parse_swf_file",
    "write_swf",
]
