"""Synthetic generators for the classic Pegasus workflow family.

The paper obtains its Montage instance from the Pegasus WorkflowGenerator
site [15], which also publishes the other canonical scientific workflows
used throughout the MTC literature: **CyberShake** (seismic hazard),
**Epigenomics** (genome sequencing pipelines), **LIGO Inspiral** (gravity
wave analysis) and **SIPHT** (sRNA identification).  This module
synthesizes all four with their published level structures, so the
workflow-zoo benchmark can check that the Table-4 story — DawningCloud's
demand-driven sizing matching the fixed system while DRP pays for the
widest ready level — holds across workflow *shapes*, not just for Montage.

Shapes (entry level first; ``n`` is the generator's size parameter):

* **CyberShake**: 2 ExtractSGT fan out to ``n`` SeismogramSynthesis, each
  feeding one ZipSeis + one PeakValCalc; all PeakValCalc join into ZipPSA.
  Very wide and shallow — the DRP-hostile shape.
* **Epigenomics**: ``k`` independent lanes, each a 4-stage chain
  (filterContams → sol2sanger → fastq2bfq → map) of ``n/k`` parallel
  tasks, merging through mapMerge → maqIndex → pileup.  Deep with
  sustained mid-level parallelism.
* **LIGO Inspiral**: ``g`` groups; each group fans TmpltBank out to
  ``n/g`` Inspiral tasks joined by a Thinca, a second Inspiral stage and a
  final group join; all groups join into a trigger bank.  Two humps of
  parallelism with synchronization valleys.
* **SIPHT**: a broad first level of Patser tasks joined by PatserConcat,
  beside mid-width Blast/SRNA stages that all meet in FindTerm → SrnaAnnotate.
  Asymmetric fan-in — exercises ready-set accounting with uneven branches.

Every task is single-node (the paper's MTC normalization) and runtimes are
drawn per task type with mild lognormal jitter, deterministic in ``seed``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.simkit.rng import RandomStreams
from repro.workloads.job import Job
from repro.workloads.workflow import Workflow


@dataclass(frozen=True)
class PegasusSpec:
    """Size/runtime parameters shared by the four generators."""

    n_tasks_hint: int = 1000
    #: multiplicative rescale so the workflow-wide mean runtime matches;
    #: None keeps the per-type means as drawn.
    mean_runtime: Optional[float] = None
    submit_time: float = 0.0
    workflow_id: int = 1


class _Builder:
    """Incremental DAG builder with per-type runtime sampling."""

    def __init__(self, name: str, spec: PegasusSpec, seed: int) -> None:
        self.name = name
        self.spec = spec
        self.rng = RandomStreams(seed).stream(f"pegasus/{name}")
        self._next_id = 1
        self.tasks: list[Job] = []

    def add(self, task_type: str, mean_s: float, jitter: float,
            deps: tuple[int, ...] = ()) -> int:
        rt = mean_s * math.exp(jitter * float(self.rng.standard_normal()))
        job = Job(
            job_id=self._next_id,
            submit_time=self.spec.submit_time,
            size=1,
            runtime=max(rt, 0.5),
            task_type=task_type,
            workflow_id=self.spec.workflow_id,
            dependencies=deps,
        )
        self.tasks.append(job)
        self._next_id += 1
        return job.job_id

    def add_many(self, n: int, task_type: str, mean_s: float, jitter: float,
                 deps: tuple[int, ...] = ()) -> list[int]:
        return [self.add(task_type, mean_s, jitter, deps) for _ in range(n)]

    def build(self) -> Workflow:
        if self.spec.mean_runtime is not None:
            current = sum(t.runtime for t in self.tasks) / len(self.tasks)
            scale = self.spec.mean_runtime / current
            rescaled = [
                Job(
                    job_id=t.job_id,
                    submit_time=t.submit_time,
                    size=t.size,
                    runtime=t.runtime * scale,
                    task_type=t.task_type,
                    workflow_id=t.workflow_id,
                    dependencies=t.dependencies,
                )
                for t in self.tasks
            ]
            self.tasks = rescaled
        return Workflow(
            workflow_id=self.spec.workflow_id,
            tasks=self.tasks,
            name=self.name,
            submit_time=self.spec.submit_time,
        )


def generate_cybershake(spec: PegasusSpec = PegasusSpec(), seed: int = 0) -> Workflow:
    """CyberShake: 2 → n → 2n → 1 (wide, shallow)."""
    n = max((spec.n_tasks_hint - 3) // 3, 2)
    b = _Builder("cybershake", spec, seed)
    sgt = b.add_many(2, "ExtractSGT", 110.0, 0.20)
    synth = b.add_many(n, "SeismogramSynthesis", 48.0, 0.35, tuple(sgt))
    for s in synth:
        b.add("ZipSeis", 2.0, 0.10, (s,))
    peaks = [b.add("PeakValCalc", 1.0, 0.20, (s,)) for s in synth]
    b.add("ZipPSA", 5.0, 0.10, tuple(peaks))
    return b.build()


def generate_epigenomics(
    spec: PegasusSpec = PegasusSpec(), lanes: int = 4, seed: int = 0
) -> Workflow:
    """Epigenomics: k lanes of 4-stage chains merging into a 3-deep tail."""
    if lanes < 1:
        raise ValueError("lanes must be >= 1")
    per_lane = max((spec.n_tasks_hint - 3 - 2 * lanes) // (4 * lanes), 1)
    b = _Builder("epigenomics", spec, seed)
    lane_merges: list[int] = []
    for _ in range(lanes):
        split = b.add("fastQSplit", 35.0, 0.15)
        filt = b.add_many(per_lane, "filterContams", 2.5, 0.30, (split,))
        sol = [b.add("sol2sanger", 0.5, 0.20, (f,)) for f in filt]
        bfq = [b.add("fastq2bfq", 1.5, 0.25, (s,)) for s in sol]
        mapped = [b.add("map", 100.0, 0.30, (q,)) for q in bfq]
        lane_merges.append(b.add("mapMerge", 10.0, 0.15, tuple(mapped)))
    index = b.add("maqIndex", 45.0, 0.10, tuple(lane_merges))
    b.add("pileup", 56.0, 0.10, (index,))
    return b.build()


def generate_ligo_inspiral(
    spec: PegasusSpec = PegasusSpec(), groups: int = 5, seed: int = 0
) -> Workflow:
    """LIGO Inspiral: g groups of fan-out/join/fan-out/join, global join."""
    if groups < 1:
        raise ValueError("groups must be >= 1")
    per_group = max((spec.n_tasks_hint - 1 - 3 * groups) // (2 * groups), 1)
    b = _Builder("ligo-inspiral", spec, seed)
    group_joins: list[int] = []
    for _ in range(groups):
        bank = b.add("TmpltBank", 18.0, 0.15)
        insp1 = b.add_many(per_group, "Inspiral", 460.0, 0.30, (bank,))
        thinca1 = b.add("Thinca", 5.0, 0.15, tuple(insp1))
        insp2 = b.add_many(per_group, "Inspiral2", 450.0, 0.30, (thinca1,))
        group_joins.append(b.add("Thinca2", 5.0, 0.15, tuple(insp2)))
    b.add("TrigBank", 30.0, 0.10, tuple(group_joins))
    return b.build()


def generate_sipht(spec: PegasusSpec = PegasusSpec(), seed: int = 0) -> Workflow:
    """SIPHT: broad Patser level + mid-width Blast branch, uneven fan-in."""
    n_patser = max(int(spec.n_tasks_hint * 0.55), 2)
    n_blast = max(int(spec.n_tasks_hint * 0.35), 2)
    b = _Builder("sipht", spec, seed)
    patser = b.add_many(n_patser, "Patser", 1.0, 0.25)
    patser_concat = b.add("PatserConcat", 1.5, 0.10, tuple(patser))
    blasts = b.add_many(n_blast, "Blast", 95.0, 0.35)
    srna = b.add("SRNA", 60.0, 0.15, tuple(blasts[: max(n_blast // 2, 1)]))
    ffn = b.add("FFN_Parse", 2.0, 0.10, (srna,))
    candidates = b.add_many(
        max(spec.n_tasks_hint - n_patser - n_blast - 5, 1),
        "BlastCandidate",
        28.0,
        0.30,
        (ffn,),
    )
    findterm = b.add("FindTerm", 120.0, 0.15, tuple(candidates + [patser_concat]))
    b.add("SrnaAnnotate", 3.0, 0.10, (findterm,))
    return b.build()


#: name → generator, for the workflow-zoo benchmark and CLI.
PEGASUS_GENERATORS: dict[str, Callable[..., Workflow]] = {
    "cybershake": generate_cybershake,
    "epigenomics": generate_epigenomics,
    "ligo-inspiral": generate_ligo_inspiral,
    "sipht": generate_sipht,
}


def generate_pegasus(name: str, spec: PegasusSpec = PegasusSpec(),
                     seed: int = 0) -> Workflow:
    """Generate a named Pegasus-family workflow."""
    try:
        gen = PEGASUS_GENERATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown pegasus workflow {name!r}; known: "
            f"{sorted(PEGASUS_GENERATORS)}"
        ) from None
    return gen(spec=spec, seed=seed)


def _register_pegasus_workload() -> None:
    """Self-register the Pegasus family as one parameterized workload."""
    from repro.api.registry import register_component

    def pegasus(
        seed: int = 0,
        family: str = "cybershake",
        n_tasks: int = 1000,
        mean_runtime: Optional[float] = None,
        submit_time: float = 0.0,
        fixed_nodes: Optional[int] = None,
    ):
        """A Pegasus-family MTC workflow (cybershake/epigenomics/...)."""
        from repro.systems.base import WorkloadBundle

        workflow = generate_pegasus(
            family,
            PegasusSpec(
                n_tasks_hint=n_tasks,
                mean_runtime=mean_runtime,
                submit_time=submit_time,
            ),
            seed=seed,
        )
        return WorkloadBundle.from_workflow(
            family, workflow, fixed_nodes=fixed_nodes
        )

    register_component("workload", "pegasus", pegasus, skip_params=("seed",))


_register_pegasus_workload()
