"""Trace rescaling utilities.

Section 4.4 of the paper: "the workload traces are obtained from the
platforms with different configurations ... In our experiments, we scale
workload traces with different values to the same configuration of which
each node owns one CPU."  (SDSC BLUE's nodes had eight CPUs; NASA iPSC's
had one.)  These helpers perform that normalization and general rescaling.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.workloads.job import Job, Trace


def _rebuild(trace: Trace, jobs: list[Job], name: str, nodes: int) -> Trace:
    return Trace(
        name,
        jobs,
        machine_nodes=nodes,
        duration=trace.duration,
        metadata=dict(trace.metadata),
    )


def scale_sizes(trace: Trace, factor: float, name: Optional[str] = None) -> Trace:
    """Multiply every job width (and the machine size) by ``factor``.

    Widths are rounded up to at least one node, so work is approximately
    preserved for factor < 1 and exactly scaled for integer factors.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    new_nodes = max(1, int(math.ceil(trace.machine_nodes * factor)))
    jobs = [
        Job(
            job_id=j.job_id,
            submit_time=j.submit_time,
            size=min(new_nodes, max(1, int(math.ceil(j.size * factor)))),
            runtime=j.runtime,
            user_id=j.user_id,
            task_type=j.task_type,
            workflow_id=j.workflow_id,
            dependencies=j.dependencies,
        )
        for j in trace
    ]
    return _rebuild(trace, jobs, name or f"{trace.name}-x{factor:g}", new_nodes)


def normalize_to_single_cpu(
    trace: Trace, cpus_per_node: int, name: Optional[str] = None
) -> Trace:
    """Re-express a trace recorded on ``cpus_per_node``-way nodes on a
    platform where each node owns exactly one CPU (the paper's §4.4 step).

    A job that used ``k`` multi-CPU nodes becomes a job of ``k *
    cpus_per_node`` single-CPU nodes; runtimes are unchanged.
    """
    if cpus_per_node < 1:
        raise ValueError("cpus_per_node must be >= 1")
    return scale_sizes(
        trace, float(cpus_per_node), name=name or f"{trace.name}-1cpu"
    )


def scale_load(
    trace: Trace, factor: float, name: Optional[str] = None
) -> Trace:
    """Scale offered load by stretching/compressing inter-arrival gaps.

    ``factor > 1`` compresses arrivals (higher load); runtimes, sizes and
    the trace duration are unchanged, so utilization scales by ``factor``
    for the portion of the trace that still fits in the window.
    """
    if factor <= 0:
        raise ValueError("factor must be positive")
    jobs = []
    for j in trace:
        submit = j.submit_time / factor
        if submit >= trace.duration:
            continue
        jobs.append(
            Job(
                job_id=j.job_id,
                submit_time=submit,
                size=j.size,
                runtime=j.runtime,
                user_id=j.user_id,
                task_type=j.task_type,
                workflow_id=j.workflow_id,
                dependencies=j.dependencies,
            )
        )
    return _rebuild(
        trace, jobs, name or f"{trace.name}-load{factor:g}", trace.machine_nodes
    )


def transform_runtimes(
    trace: Trace, fn: Callable[[float], float], name: Optional[str] = None
) -> Trace:
    """Apply ``fn`` to every runtime (e.g. for sensitivity studies)."""
    jobs = []
    for j in trace:
        runtime = float(fn(j.runtime))
        if runtime < 0:
            raise ValueError(f"transform produced negative runtime for job {j.job_id}")
        jobs.append(
            Job(
                job_id=j.job_id,
                submit_time=j.submit_time,
                size=j.size,
                runtime=runtime,
                user_id=j.user_id,
                task_type=j.task_type,
                workflow_id=j.workflow_id,
                dependencies=j.dependencies,
            )
        )
    return _rebuild(trace, jobs, name or f"{trace.name}-rt", trace.machine_nodes)
