"""Process-wide, content-keyed store of generated workloads.

Every sweep point, every table scenario and every pool worker used to
regenerate the identical seed-0 NASA/BLUE/Montage workload from scratch —
the same numpy sampling, calibration and (worst) per-job object
construction, once per *consumer* instead of once per *content*.  The
:class:`TraceStore` makes workload generation content-addressed inside one
process: a trace is keyed by ``(generator, spec, seed)`` and generated
exactly once; every consumer gets a cheap handle sharing the immutable
:class:`~repro.workloads.job.TraceArrays` columns (traces) or the
immutable DAG topology (workflows), with mutable per-replay state
materialized lazily per handle.

Cross-worker handoff
--------------------
The orchestrator prewarms the store with the workloads a scenario
selection declares (see :attr:`repro.experiments.registry.ScenarioSpec
.prewarm`) *before* creating its process pool.  Under the default ``fork``
start method the children inherit the populated store as copy-on-write
memory — each distinct trace is generated once per run, not once per
worker — which is the "pickle-once" handoff: the arrays cross the process
boundary a single time, at fork.  Under ``spawn`` the store simply starts
empty in each worker and dedupes within it; results are identical either
way because generation is deterministic in the key.

Keys are content keys: the spec is canonicalized (dataclasses →
sorted-key JSON) so two spec objects with equal fields share one entry.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from typing import Any, Callable, Iterable, Optional

from repro.workloads.job import Trace
from repro.workloads.workflow import Workflow


def _canonical_spec(spec: Any) -> str:
    """Stable text form of a generator spec (dataclass, mapping, scalar)."""
    if dataclasses.is_dataclass(spec) and not isinstance(spec, type):
        spec = dataclasses.asdict(spec)
    return json.dumps(spec, sort_keys=True, default=repr)


class TraceStore:
    """In-process content-addressed cache of generated workloads.

    Values are *templates*: immutable by convention, never handed to a
    simulator directly.  :meth:`trace` returns a fresh
    :class:`~repro.workloads.job.Trace` sharing the template's columns;
    :meth:`workflow` returns a fresh clone sharing the template's DAG.
    Thread-safe (the orchestrator prewarms from the main thread while
    benchmarks may generate concurrently from test workers).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    def key(self, generator: str, spec: Any, seed: int) -> tuple:
        return (generator, _canonical_spec(spec), int(seed))

    def _get_or_build(self, key: tuple, build: Callable[[], Any]) -> Any:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                return entry
        # build outside the lock: generation can take tens of ms and must
        # not serialize unrelated keys; a racing duplicate build is safe
        # (deterministic content) and the first writer wins
        value = build()
        with self._lock:
            entry = self._entries.setdefault(key, value)
            self.misses += 1
        return entry

    # ------------------------------------------------------------------ #
    def trace(
        self, generator: str, spec: Any, seed: int, build: Callable[[], Trace]
    ) -> Trace:
        """A fresh replayable trace for ``(generator, spec, seed)``.

        The template is generated on first request; every request returns
        a new :class:`Trace` whose immutable columns are shared and whose
        jobs materialize lazily, so handing the result straight to a
        runner is safe.
        """
        template = self._get_or_build(self.key(generator, spec, seed), build)
        return template.copy()

    def workflow(
        self, generator: str, spec: Any, seed: int, build: Callable[[], Workflow]
    ) -> Workflow:
        """A fresh replayable workflow for ``(generator, spec, seed)``."""
        template = self._get_or_build(self.key(generator, spec, seed), build)
        return template.clone()

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TraceStore entries={len(self._entries)} hits={self.hits} "
            f"misses={self.misses}>"
        )


#: The process-wide store every built-in bundle factory routes through.
_STORE = TraceStore()


def default_store() -> TraceStore:
    return _STORE


# --------------------------------------------------------------------- #
# named workloads (the prewarm vocabulary)
# --------------------------------------------------------------------- #
def paper_trace(name: str, seed: int = 0) -> Trace:
    """A named paper/archive HTC trace through the store.

    ``name`` is any :data:`repro.workloads.archive.ARCHIVE` entry
    (``nasa-ipsc``, ``sdsc-blue``, ``ctc-sp2``, ...).
    """
    from repro.workloads.archive import ARCHIVE
    from repro.workloads.traces import generate_htc_trace

    try:
        spec = ARCHIVE[name]
    except KeyError:
        raise ValueError(f"unknown trace {name!r}; known: {sorted(ARCHIVE)}") from None
    return _STORE.trace(
        "htc-trace", spec, seed, lambda: generate_htc_trace(spec, seed)
    )


def montage_workflow(
    spec: Optional[Any] = None, seed: int = 0, submit_time: float = 0.0
) -> Workflow:
    """The Montage workflow through the store.

    ``submit_time`` is part of the generated content (tasks carry it), so
    it participates in the key.
    """
    from repro.workloads.montage import MontageSpec, generate_montage

    spec = spec or MontageSpec()
    return _STORE.workflow(
        "montage",
        {"spec": dataclasses.asdict(spec), "submit_time": submit_time},
        seed,
        lambda: generate_montage(spec, seed=seed, submit_time=submit_time),
    )


def prewarm(names: Iterable[str], seed: int = 0) -> int:
    """Generate the named workloads into the store (idempotent).

    The vocabulary is the archive trace names plus ``"montage"``.  Called
    by the orchestrator before forking pool workers so children inherit
    the populated store; returns the number of entries now present.
    """
    for name in names:
        if name == "montage":
            montage_workflow(seed=seed)
        else:
            paper_trace(name, seed)
    return len(_STORE)


# --------------------------------------------------------------------- #
# workload components (the spec API's generator vocabulary)
# --------------------------------------------------------------------- #
def _register_workloads() -> None:
    """Self-register the store-backed workload generators.

    Every archive trace name becomes a workload component (``nasa-ipsc``,
    ``sdsc-blue``, ...), alongside ``montage`` and the fully synthetic
    ``htc-trace`` whose parameters mirror :class:`~repro.workloads.traces
    .HTCTraceSpec` — so a TOML spec can bring its own workload without
    any Python.
    """
    from repro.api.registry import Param, register_component
    from repro.workloads.archive import ARCHIVE

    def trace_factory(trace_name: str):
        def build(seed: int = 0, fixed_nodes: Optional[int] = None):
            from repro.systems.base import WorkloadBundle

            return WorkloadBundle(
                name=trace_name, kind="htc",
                trace=paper_trace(trace_name, seed), fixed_nodes=fixed_nodes,
            )

        return build

    for trace_name, spec in ARCHIVE.items():
        register_component(
            "workload", trace_name, trace_factory(trace_name),
            skip_params=("seed",),
            description=(
                f"archive HTC trace stand-in ({spec.machine_nodes} nodes, "
                f"{spec.target_utilization:.1%} load, {spec.n_jobs} jobs)"
            ),
        )

    # defaults derive from MontageSpec / MONTAGE_FIXED_NODES so the
    # paper-pinned constants (166/662/11.38/166) live in exactly one place
    from repro.workloads.montage import MONTAGE_FIXED_NODES, MontageSpec

    _montage_defaults = MontageSpec()

    def montage(
        seed: int = 0,
        n_images: int = _montage_defaults.n_images,
        n_diffs: int = _montage_defaults.n_diffs,
        mean_runtime: Optional[float] = _montage_defaults.mean_runtime,
        submit_time: float = 0.0,
        fixed_nodes: int = MONTAGE_FIXED_NODES,
    ):
        """The paper's Montage mosaic workflow (MTC; Table 4's instance)."""
        from repro.systems.base import WorkloadBundle

        spec = MontageSpec(
            n_images=n_images, n_diffs=n_diffs, mean_runtime=mean_runtime
        )
        workflow = montage_workflow(spec, seed=seed, submit_time=submit_time)
        return WorkloadBundle.from_workflow(
            "montage", workflow, fixed_nodes=fixed_nodes
        )

    register_component("workload", "montage", montage, skip_params=("seed",))

    def htc_trace(seed: int = 0, *, fixed_nodes: Optional[int] = None, **spec_fields):
        """A fully spec-driven synthetic HTC trace (HTCTraceSpec fields)."""
        from repro.systems.base import WorkloadBundle
        from repro.workloads.traces import HTCTraceSpec, generate_htc_trace

        def freeze(v):
            return tuple(freeze(x) for x in v) if isinstance(v, list) else v

        spec = HTCTraceSpec(**{k: freeze(v) for k, v in spec_fields.items()})
        trace = _STORE.trace(
            "htc-trace", spec, seed, lambda: generate_htc_trace(spec, seed)
        )
        return WorkloadBundle(
            name=spec.name, kind="htc", trace=trace, fixed_nodes=fixed_nodes
        )

    import dataclasses as _dc

    from repro.workloads.traces import HTCTraceSpec as _Spec

    register_component(
        "workload", "htc-trace", htc_trace,
        params=(Param("fixed_nodes", None),) + tuple(
            Param(f.name) if f.default is _dc.MISSING else Param(f.name, f.default)
            for f in _dc.fields(_Spec)
        ),
        description="A fully spec-driven synthetic HTC trace "
                    "(HTCTraceSpec fields as parameters)",
    )

    def inline_trace(seed=0, *, name, machine_nodes, duration, jobs,
                     fixed_nodes=None):
        """A literal HTC trace carried inside the spec itself.

        ``jobs`` is a list of ``[job_id, submit_time, size, runtime,
        user_id]`` rows, so any in-memory trace — a hand-built test
        workload, a captured live ingest — can ride through the spec
        API, the result cache and the ablation engine without being a
        named generator first.  ``seed`` is ignored: the jobs are data.
        """
        from repro.systems.base import WorkloadBundle
        from repro.workloads.job import Job

        def build():
            return Trace(
                name,
                [
                    Job(
                        job_id=int(j[0]), submit_time=float(j[1]),
                        size=int(j[2]), runtime=float(j[3]),
                        user_id=int(j[4]) if len(j) > 4 else 0,
                        task_type=str(j[5]) if len(j) > 5 else "htc",
                    )
                    for j in jobs
                ],
                machine_nodes=int(machine_nodes),
                duration=float(duration),
            )

        spec = {"name": name, "machine_nodes": machine_nodes,
                "duration": duration, "jobs": [list(j) for j in jobs]}
        trace = _STORE.trace("inline-trace", spec, 0, build)
        return WorkloadBundle(
            name=name, kind="htc", trace=trace, fixed_nodes=fixed_nodes
        )

    register_component(
        "workload", "inline-trace", inline_trace,
        params=(
            Param("name"), Param("machine_nodes"), Param("duration"),
            Param("jobs"), Param("fixed_nodes", None),
        ),
        description="A literal HTC trace (job rows carried in the spec)",
    )


_register_workloads()
