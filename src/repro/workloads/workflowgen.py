"""Generic workflow generators.

Beyond the Montage instance the paper evaluates, the library ships a few
parametric DAG families that are useful for policy experiments and tests:

* :func:`bag_of_tasks` — independent single-node tasks (degenerate DAG).
* :func:`fork_join` — one entry task fans out to ``width`` workers that
  join into one exit task.
* :func:`layered_random` — a random layered DAG where each task depends on
  1..k tasks of the previous layer (the classic "LU-like" synthetic shape).
* :func:`chain` — a purely sequential pipeline.

All generators return :class:`~repro.workloads.workflow.Workflow` objects
and are deterministic given their seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.simkit.rng import RandomStreams
from repro.workloads.job import Job
from repro.workloads.workflow import Workflow


def _runtime_sampler(
    rng: np.random.Generator, mean_runtime: float, jitter: float
):
    def draw() -> float:
        value = mean_runtime * (1.0 + jitter * float(rng.standard_normal()))
        return max(value, 0.1 * mean_runtime)

    return draw


def _draw_runtimes(
    rng: np.random.Generator, mean_runtime: float, jitter: float, k: int
) -> list[float]:
    """Vectorized batch equal to ``k`` successive :func:`_runtime_sampler`
    draws (numpy's block ``standard_normal`` consumes the stream
    identically), used by the generators whose draws are not interleaved
    with other RNG calls."""
    values = mean_runtime * (1.0 + jitter * rng.standard_normal(k))
    return np.maximum(values, 0.1 * mean_runtime).tolist()


def bag_of_tasks(
    n_tasks: int,
    mean_runtime: float = 60.0,
    jitter: float = 0.3,
    seed: int = 0,
    workflow_id: int = 1,
    submit_time: float = 0.0,
) -> Workflow:
    """``n_tasks`` independent single-node tasks."""
    if n_tasks < 1:
        raise ValueError("n_tasks must be >= 1")
    rng = RandomStreams(seed).stream(f"bag/{workflow_id}")
    runtimes = _draw_runtimes(rng, mean_runtime, jitter, n_tasks)
    tasks = [
        Job(
            job_id=i + 1,
            submit_time=submit_time,
            size=1,
            runtime=runtimes[i],
            task_type="bag-task",
            workflow_id=workflow_id,
        )
        for i in range(n_tasks)
    ]
    return Workflow(workflow_id, tasks, name=f"bag-{n_tasks}", submit_time=submit_time)


def chain(
    length: int,
    mean_runtime: float = 60.0,
    jitter: float = 0.2,
    seed: int = 0,
    workflow_id: int = 1,
    submit_time: float = 0.0,
) -> Workflow:
    """A purely sequential pipeline of ``length`` tasks."""
    if length < 1:
        raise ValueError("length must be >= 1")
    rng = RandomStreams(seed).stream(f"chain/{workflow_id}")
    runtimes = _draw_runtimes(rng, mean_runtime, jitter, length)
    tasks = []
    for i in range(length):
        deps = (i,) if i >= 1 else ()
        tasks.append(
            Job(
                job_id=i + 1,
                submit_time=submit_time,
                size=1,
                runtime=runtimes[i],
                task_type="stage",
                workflow_id=workflow_id,
                dependencies=deps,
            )
        )
    return Workflow(workflow_id, tasks, name=f"chain-{length}", submit_time=submit_time)


def fork_join(
    width: int,
    mean_runtime: float = 60.0,
    jitter: float = 0.3,
    seed: int = 0,
    workflow_id: int = 1,
    submit_time: float = 0.0,
) -> Workflow:
    """Entry task → ``width`` parallel workers → exit task."""
    if width < 1:
        raise ValueError("width must be >= 1")
    rng = RandomStreams(seed).stream(f"forkjoin/{workflow_id}")
    runtimes = _draw_runtimes(rng, mean_runtime, jitter, width + 2)
    tasks = [
        Job(
            job_id=1,
            submit_time=submit_time,
            size=1,
            runtime=runtimes[0],
            task_type="fork",
            workflow_id=workflow_id,
        )
    ]
    worker_ids = []
    for i in range(width):
        jid = 2 + i
        worker_ids.append(jid)
        tasks.append(
            Job(
                job_id=jid,
                submit_time=submit_time,
                size=1,
                runtime=runtimes[jid - 1],
                task_type="worker",
                workflow_id=workflow_id,
                dependencies=(1,),
            )
        )
    tasks.append(
        Job(
            job_id=width + 2,
            submit_time=submit_time,
            size=1,
            runtime=runtimes[width + 1],
            task_type="join",
            workflow_id=workflow_id,
            dependencies=tuple(worker_ids),
        )
    )
    return Workflow(
        workflow_id, tasks, name=f"forkjoin-{width}", submit_time=submit_time
    )


def layered_random(
    layer_widths: Sequence[int],
    mean_runtime: float = 60.0,
    jitter: float = 0.3,
    max_fanin: int = 3,
    seed: int = 0,
    workflow_id: int = 1,
    submit_time: float = 0.0,
) -> Workflow:
    """Random layered DAG; each task depends on 1..``max_fanin`` tasks of
    the previous layer (always at least one, so layers are genuine)."""
    if not layer_widths or any(w < 1 for w in layer_widths):
        raise ValueError("layer_widths must be non-empty positive ints")
    if max_fanin < 1:
        raise ValueError("max_fanin must be >= 1")
    rng = RandomStreams(seed).stream(f"layered/{workflow_id}")
    draw = _runtime_sampler(rng, mean_runtime, jitter)
    tasks: list[Job] = []
    next_id = 1
    prev_layer: list[int] = []
    for layer_index, width in enumerate(layer_widths):
        this_layer: list[int] = []
        for _ in range(width):
            if prev_layer:
                fanin = int(rng.integers(1, min(max_fanin, len(prev_layer)) + 1))
                deps = tuple(
                    sorted(
                        int(prev_layer[i])
                        for i in rng.choice(len(prev_layer), size=fanin, replace=False)
                    )
                )
            else:
                deps = ()
            tasks.append(
                Job(
                    job_id=next_id,
                    submit_time=submit_time,
                    size=1,
                    runtime=draw(),
                    task_type=f"layer-{layer_index}",
                    workflow_id=workflow_id,
                    dependencies=deps,
                )
            )
            this_layer.append(next_id)
            next_id += 1
        prev_layer = this_layer
    return Workflow(
        workflow_id,
        tasks,
        name=f"layered-{'x'.join(str(w) for w in layer_widths)}",
        submit_time=submit_time,
    )


def _register_workflow_workloads() -> None:
    """Self-register the synthetic DAG shapes as workload components."""
    from repro.api.registry import register_component

    def as_bundle(name, workflow, fixed_nodes):
        from repro.systems.base import WorkloadBundle

        return WorkloadBundle.from_workflow(
            name, workflow, fixed_nodes=fixed_nodes
        )

    def bag(seed=0, n_tasks=100, mean_runtime=60.0, jitter=0.3,
            submit_time=0.0, fixed_nodes=None):
        """Independent single-node tasks (bag-of-tasks MTC workload)."""
        wf = bag_of_tasks(n_tasks, mean_runtime, jitter, seed=seed,
                          submit_time=submit_time)
        return as_bundle(wf.name, wf, fixed_nodes)

    def chain_wl(seed=0, length=50, mean_runtime=60.0, jitter=0.2,
                 submit_time=0.0, fixed_nodes=None):
        """A purely sequential pipeline (chain MTC workload)."""
        wf = chain(length, mean_runtime, jitter, seed=seed,
                   submit_time=submit_time)
        return as_bundle(wf.name, wf, fixed_nodes)

    def forkjoin(seed=0, width=64, mean_runtime=60.0, jitter=0.3,
                 submit_time=0.0, fixed_nodes=None):
        """Entry task, a wide parallel stage, an exit task (fork-join)."""
        wf = fork_join(width, mean_runtime, jitter, seed=seed,
                       submit_time=submit_time)
        return as_bundle(wf.name, wf, fixed_nodes)

    def layered(seed=0, layer_widths=(16, 64, 16), mean_runtime=60.0,
                jitter=0.3, max_fanin=3, submit_time=0.0, fixed_nodes=None):
        """A random layered DAG with bounded fan-in."""
        wf = layered_random(tuple(layer_widths), mean_runtime, jitter,
                            max_fanin, seed=seed, submit_time=submit_time)
        return as_bundle(wf.name, wf, fixed_nodes)

    register_component("workload", "bag-of-tasks", bag, skip_params=("seed",))
    register_component("workload", "chain", chain_wl, skip_params=("seed",))
    register_component("workload", "fork-join", forkjoin, skip_params=("seed",))
    register_component("workload", "layered-random", layered,
                       skip_params=("seed",))


_register_workflow_workloads()
